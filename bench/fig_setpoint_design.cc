/**
 * @file
 * Paper Section 2.2, made concrete: "controllers can be designed with
 * guaranteed settling times ... and an analysis of the maximum
 * overshoot can be used to choose a setpoint that is as high as
 * possible without risking an actual emergency."
 *
 * For each controller family the analysis computes the worst-case
 * overshoot (setpoint approach + full-scale workload surge) and derives
 * the highest safe setpoint below the 111.8 C emergency level; the
 * derived setpoint is then validated in full simulation on the hottest
 * benchmark. Expected shape: PI/PID admit a setpoint within a few
 * tenths of a degree of the emergency level (the paper uses 111.6), the
 * P controller needs more room, and the simulation confirms zero
 * emergencies at the derived setpoints.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "control/analysis.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Analytic setpoint selection from worst-case overshoot",
        "Section 2.2 (overshoot analysis -> setpoint choice)");

    SimConfig cfg;
    cfg.workload = specProfile("301.apsi");
    Simulator probe(cfg);
    const FopdtPlant plant = probe.dtmPlant();
    const Celsius t_base = cfg.thermal.t_base;
    const Celsius t_emerg = cfg.thermal.t_emergency;

    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    const auto base = session.runOne(cfg.workload, none);

    TextTable t;
    t.setHeader({"controller", "worst-case overshoot",
                 "derived setpoint (C)", "sim emerg %", "sim max T (C)",
                 "% of base IPC"});

    const std::pair<ControllerKind, DtmPolicyKind> kinds[] = {
        {ControllerKind::P, DtmPolicyKind::P},
        {ControllerKind::PI, DtmPolicyKind::PI},
        {ControllerKind::PID, DtmPolicyKind::PID},
    };
    for (auto [ck, pk] : kinds) {
        PidConfig pid = tuneLoopShaping(ck, plant);
        pid.dt = static_cast<double>(cfg.dtm.sample_interval)
            * cfg.power.tech.cycleSeconds();
        const double overshoot = worstCaseOvershoot(pid, plant);
        const Celsius setpoint =
            chooseSafeSetpoint(pid, plant, t_base, t_emerg, 0.05);

        // Validate in full simulation at the derived setpoint.
        DtmPolicySettings s;
        s.kind = pk;
        if (pk == DtmPolicyKind::P) {
            s.p_setpoint = setpoint;
            s.p_range_low = setpoint - 0.4;
        } else {
            s.ct_setpoint = setpoint;
            s.ct_range_low = setpoint - 0.2;
        }
        const auto r = session.runOne(cfg.workload, s);

        t.addRow({controllerKindName(ck),
                  formatPercent(overshoot, 2),
                  formatDouble(setpoint, 2),
                  formatPercent(r.emergency_fraction, 3),
                  formatDouble(r.max_temperature, 2),
                  formatPercent(r.ipc / base.ipc, 1)});
    }
    t.print(std::cout);
    std::cout << "\n(paper's hand-chosen setpoints: 111.2 for P, 111.6 "
                 "for PI/PID)\n";
    return 0;
}
