/**
 * @file
 * Paper Table 5: categories of thermal behaviour (extreme / high /
 * medium / low), derived by classifying the Table 4 characterization
 * runs and cross-checked against the intended per-profile labels.
 */

#include <iostream>
#include <cstdlib>
#include <map>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/config.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv,
                           "Table 5: categories of thermal behaviour",
                           "Table 5");

    auto results = session.characterizeAll();

    std::map<ThermalCategory, std::vector<std::string>> groups;
    int mismatches = 0;
    for (const auto &r : results) {
        const ThermalCategory measured = classifyThermalBehaviour(r);
        groups[measured].push_back(r.benchmark);
        if (measured != r.category) {
            ++mismatches;
            std::cout << "note: " << r.benchmark << " measured as "
                      << thermalCategoryName(measured)
                      << " but profiled as "
                      << thermalCategoryName(r.category) << "\n";
        }
    }

    TextTable t;
    t.setHeader({"category", "benchmarks"});
    for (auto cat : {ThermalCategory::Extreme, ThermalCategory::High,
                     ThermalCategory::Medium, ThermalCategory::Low}) {
        std::string names;
        for (const auto &n : groups[cat])
            names += (names.empty() ? "" : ", ") + n;
        t.addRow({thermalCategoryName(cat), names});
    }
    t.print(std::cout);
    std::cout << "\nlabel/measurement mismatches: " << mismatches
              << " of " << results.size() << "\n";
    // Category boundaries are only meaningful under the full protocol;
    // THERMCTL_FAST runs are too short for the hottest excursions.
    const char *fast = std::getenv("THERMCTL_FAST");
    if (fast && fast[0] == '1')
        return 0;
    return mismatches > 2 ? 1 : 0;
}
