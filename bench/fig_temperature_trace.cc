/**
 * @file
 * Temperature-versus-time traces of the hottest structure under no DTM,
 * toggle1 and PID on a hot benchmark (paper Section 7's behavioural
 * discussion). Printed as aligned columns (cycle, one column per
 * policy) plus an ASCII strip chart of the PID trace.
 *
 * Expected shape: without DTM the structure rides above the emergency
 * line; toggle1 saw-tooths far below the trigger (over-cooling = lost
 * performance); PID pins the temperature at the 111.6 setpoint without
 * ever crossing 111.8.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

std::vector<double>
trace(DtmPolicyKind kind, std::uint64_t cycles, Cycle stride)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = kind;
    Simulator sim(cfg);
    std::vector<double> samples;
    sim.setProbe(
        [&](const Simulator &s, Cycle) {
            samples.push_back(s.thermal().temperatures().maxHotspot());
        },
        stride);
    sim.warmUp(300000);
    sim.run(cycles);
    return samples;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Temperature trace of the hottest structure: none / toggle1 / "
        "PID on crafty",
        "Section 7 (controller behaviour over time)");

    const std::uint64_t cycles = 400000;
    const Cycle stride = 8000;
    auto none = trace(DtmPolicyKind::None, cycles, stride);
    auto t1 = trace(DtmPolicyKind::Toggle1, cycles, stride);
    auto pid = trace(DtmPolicyKind::PID, cycles, stride);

    TextTable t;
    t.setHeader({"cycle", "none (C)", "toggle1 (C)", "PID (C)"});
    for (std::size_t i = 0; i < none.size(); ++i) {
        t.addRow({std::to_string((i + 1) * stride),
                  formatDouble(none[i], 3), formatDouble(t1[i], 3),
                  formatDouble(pid[i], 3)});
    }
    t.print(std::cout);

    const SimConfig cfg;
    std::cout << "\nPID strip chart (" << formatDouble(110.5, 1) << " .. "
              << formatDouble(112.0, 1) << " C; '!' = emergency "
              << formatDouble(cfg.thermal.t_emergency, 1)
              << ", '|' = setpoint "
              << formatDouble(cfg.policy.ct_setpoint, 1) << "):\n";
    for (std::size_t i = 0; i < pid.size(); ++i) {
        const double lo = 110.5, hi = 112.0;
        const int width = 60;
        int pos = static_cast<int>((pid[i] - lo) / (hi - lo) * width);
        pos = std::clamp(pos, 0, width - 1);
        const int sp = static_cast<int>(
            (cfg.policy.ct_setpoint - lo) / (hi - lo) * width);
        const int em = static_cast<int>(
            (cfg.thermal.t_emergency - lo) / (hi - lo) * width);
        std::string line(width, ' ');
        line[sp] = '|';
        line[em] = '!';
        line[pos] = '*';
        std::cout << "  " << line << "\n";
    }

    double max_pid = 0.0;
    for (double v : pid)
        max_pid = std::max(max_pid, v);
    std::cout << "\nmax PID temperature: " << formatDouble(max_pid, 3)
              << " C (emergency "
              << formatDouble(cfg.thermal.t_emergency, 1) << " C)\n";
    return max_pid > cfg.thermal.t_emergency ? 1 : 0;
}
