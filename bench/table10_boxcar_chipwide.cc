/**
 * @file
 * Paper Table 10 / Section 6: chip-wide boxcar power average (the prior
 * work's 47 W-class trigger) vs. the localized RC model.
 *
 * Expected shape: the chip-wide treatment misses almost all localized
 * thermal emergencies — localized heating is orders of magnitude faster
 * than anything visible in chip-wide power — which is the paper's
 * motivation for per-structure thermal modeling.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "thermal/boxcar.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Table 10: chip-wide boxcar power proxy vs. localized RC model",
        "Table 10 / Section 6");

    const RunProtocol proto = session.protocol();
    const double trigger_watts = 47.0;

    TextTable t;
    t.setHeader({"benchmark", "emerg cyc", "missed 10K", "false 10K",
                 "missed 500K", "false 500K"});
    std::uint64_t total_emerg = 0, total_missed_small = 0,
                  total_missed_large = 0;

    for (const auto &profile : allSpecProfiles()) {
        SimConfig cfg;
        cfg.workload = profile;
        Simulator sim(cfg);
        ChipBoxcarProxy small(10000, trigger_watts);
        ChipBoxcarProxy large(500000, trigger_watts);
        ProxyComparison cmp_small, cmp_large;

        sim.warmUp(proto.warmup_cycles);
        for (std::uint64_t c = 0; c < proto.measure_cycles; ++c) {
            sim.tick();
            const double p = sim.lastPower().total();
            small.add(p);
            large.add(p);
            const bool hot = sim.thermal().temperatures().maxHotspot()
                > cfg.thermal.t_emergency;
            cmp_small.record(hot, small.triggered());
            cmp_large.record(hot, large.triggered());
        }

        total_emerg += cmp_small.reference_emergencies;
        total_missed_small += cmp_small.missed;
        total_missed_large += cmp_large.missed;
        t.addRow({profile.name,
                  std::to_string(cmp_small.reference_emergencies),
                  formatPercent(cmp_small.missRate(), 1),
                  formatPercent(cmp_small.falseTriggerRate(), 2),
                  formatPercent(cmp_large.missRate(), 1),
                  formatPercent(cmp_large.falseTriggerRate(), 2)});
    }
    t.print(std::cout);

    if (total_emerg > 0) {
        std::cout << "\noverall chip-wide missed-emergency rate: "
                     "10K window "
                  << formatPercent(double(total_missed_small)
                                       / double(total_emerg),
                                   1)
                  << ", 500K window "
                  << formatPercent(double(total_missed_large)
                                       / double(total_emerg),
                                   1)
                  << " (paper: almost all localized emergencies missed)\n";
    }
    return 0;
}
