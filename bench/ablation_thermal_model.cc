/**
 * @file
 * Ablation (paper Figures 2-3 / Section 4.3): the simplified per-block
 * RC network (Fig. 3C) against the detailed model with tangential
 * resistances and an explicit heatsink node (Fig. 3B).
 *
 * Both models are driven by the identical per-cycle power trace of a
 * live simulation. Expected shape: per-block temperature differences of
 * at most a few tenths of a degree — the paper's justification for
 * dropping the tangential paths (R_tan orders of magnitude above
 * R_normal) and freezing the heatsink temperature over short spans.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: simplified (Fig 3C) vs full tangential (Fig 3B) "
        "thermal model",
        "Section 4.3 model simplification");

    const RunProtocol proto = session.protocol();

    TextTable t;
    t.setHeader({"benchmark", "block", "avg |dT| (C)", "max |dT| (C)",
                 "emerg cyc 3C", "emerg cyc 3B"});

    for (const char *name : {"186.crafty", "191.fma3d", "179.art"}) {
        SimConfig cfg;
        cfg.workload = specProfile(name);
        Simulator sim(cfg);
        FullRCModel full(sim.floorplan(), cfg.thermal,
                         cfg.power.tech.cycleSeconds());

        sim.warmUp(proto.warmup_cycles);
        // Align the full model with the warmed simplified state so the
        // measured differences are purely structural (tangential paths
        // and heatsink dynamics), not initialization artifacts.
        full.setTemperatures(sim.thermal().temperatures(),
                             cfg.thermal.t_base);

        std::array<Accumulator, kNumHotspotStructures> diff;
        std::array<std::uint64_t, kNumHotspotStructures> emerg_3c{};
        std::array<std::uint64_t, kNumHotspotStructures> emerg_3b{};

        for (std::uint64_t c = 0; c < proto.measure_cycles; ++c) {
            sim.tick();
            full.step(sim.lastPower());
            const auto &ts = sim.thermal().temperatures();
            const auto &tf = full.temperatures();
            for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
                diff[i].add(std::abs(ts.value[i] - tf.value[i]));
                if (ts.value[i] > cfg.thermal.t_emergency)
                    ++emerg_3c[i];
                if (tf.value[i] > cfg.thermal.t_emergency)
                    ++emerg_3b[i];
            }
        }

        for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
            t.addRow({name, structureName(static_cast<StructureId>(i)),
                      formatDouble(diff[i].mean(), 3),
                      formatDouble(diff[i].max(), 3),
                      std::to_string(emerg_3c[i]),
                      std::to_string(emerg_3b[i])});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\nReading guide: with our tangential resistances 20-150x"
                 " the normal paths, the\nsimplified model tracks the "
                 "full network to within ~10-15% of the temperature\n"
                 "rise. It errs on the conservative side for the hot "
                 "block itself (lateral bleed\nmakes the true hot spot "
                 "slightly cooler), while neighbours of a hot block "
                 "run\nslightly warmer than the simplified model "
                 "predicts — both consistent with the\npaper's 'very "
                 "little loss of accuracy' argument for Fig. 3C.\n";
    return 0;
}
