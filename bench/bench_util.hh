/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: the
 * standard run protocol (overridable via THERMCTL_FAST=1 for quick
 * smoke runs), and the characterization sweep reused by Tables 4-8.
 */

#ifndef THERMCTL_BENCH_BENCH_UTIL_HH
#define THERMCTL_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace thermctl::bench
{

/** Standard protocol (honours THERMCTL_FAST=1). */
RunProtocol standardProtocol();

/** Run all 18 benchmarks with no DTM under the standard protocol. */
std::vector<RunResult> characterizeAll();

/** Print the standard header naming the experiment. */
void printHeader(const std::string &title, const std::string &paper_ref);

} // namespace thermctl::bench

#endif // THERMCTL_BENCH_BENCH_UTIL_HH
