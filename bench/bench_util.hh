/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 *
 * bench::Session is the one object a binary constructs: it parses the
 * shared sweep flags (--jobs, --cache-dir, --no-cache, --quiet) and
 * environment (THERMCTL_JOBS, THERMCTL_CACHE_DIR, THERMCTL_NO_CACHE,
 * THERMCTL_FAST), owns the standard run protocol and a cache-backed
 * SweepEngine with progress telemetry on stderr, and prints the
 * standard experiment header. The shared no-DTM characterization sweep
 * behind Tables 4-8 is one cached grid: the first binary to run it
 * simulates, every later binary (and every later invocation) loads the
 * results from the content-addressed cache.
 */

#ifndef THERMCTL_BENCH_BENCH_UTIL_HH
#define THERMCTL_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace thermctl::bench
{

/** One bench binary's experiment session. */
class Session
{
  public:
    /**
     * Parse the shared flags from `argv` (fatal on unknown arguments,
     * exits on --help), then print the standard header naming the
     * experiment.
     */
    Session(int argc, char **argv, const std::string &title,
            const std::string &paper_ref);

    /** Environment-configured session without a header (tests). */
    Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Standard run protocol (honours THERMCTL_FAST=1). */
    const RunProtocol &protocol() const { return proto_; }

    /** The cache-backed engine executing this session's sweeps. */
    const SweepEngine &engine() const { return engine_; }

    /** @return a fresh spec with the session protocol pre-installed. */
    SweepSpec spec() const;

    /** Execute a sweep with progress telemetry and a summary line. */
    SweepResults run(const SweepSpec &spec) const;

    /**
     * The shared characterization sweep: all 18 benchmarks, no DTM,
     * standard protocol (the grid behind paper Tables 4-8).
     */
    std::vector<RunResult> characterizeAll() const;

    /** Run a single point through the engine (cached like any other). */
    RunResult runOne(const WorkloadProfile &profile,
                     const DtmPolicySettings &policy,
                     const SimConfig &base = {}) const;

    /** Print the standard header naming the experiment. */
    static void printTitle(const std::string &title,
                           const std::string &paper_ref);

  private:
    explicit Session(const SweepOptions &opts, bool quiet);

    RunProtocol proto_;
    SweepEngine engine_;
    bool quiet_ = false;
};

} // namespace thermctl::bench

#endif // THERMCTL_BENCH_BENCH_UTIL_HH
