/**
 * @file
 * Ablation: modeling granularity — the paper's block-lumped RC model
 * vs a grid-refined model (the future-work direction that became
 * HotSpot).
 *
 * A per-benchmark average power profile drives both models to steady
 * state. Reported per block: the lumped temperature, the grid model's
 * mean/max cell temperature and the within-block gradient. Expected
 * shape: the lumped model tracks the grid mean well, but within-block
 * gradients of several tenths of a degree exist, and the grid max —
 * what a worst-case-placed sensor should see — can sit above the
 * lumped estimate for concentrated heaters next to cool neighbours.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "thermal/grid_model.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: block-lumped vs grid-refined thermal modeling",
        "Section 4.2 (granularity of localized modeling; future work)");

    const RunProtocol proto = session.protocol();

    TextTable t;
    t.setHeader({"benchmark", "block", "lumped (C)", "grid mean (C)",
                 "grid max (C)", "in-block gradient (C)"});

    for (const char *name : {"186.crafty", "191.fma3d"}) {
        // Measure the average per-structure power of the benchmark.
        SimConfig cfg;
        cfg.workload = specProfile(name);
        Simulator sim(cfg);
        sim.warmUp(proto.warmup_cycles);
        sim.run(proto.measure_cycles / 2);
        PowerVector avg;
        for (std::size_t i = 0; i < kNumStructures; ++i) {
            avg.value[i] = sim.stats().power_sum.value[i]
                / static_cast<double>(sim.stats().cycles);
        }

        // Drive both models to steady state under that power.
        Floorplan fp(cfg.floorplan);
        const double dt = cfg.power.tech.cycleSeconds();
        SimplifiedRCModel lumped(fp, cfg.thermal, dt);
        GridThermalModel grid(fp, cfg.thermal, dt, 0.5);
        lumped.stepExact(avg, 4'000'000);
        grid.stepSpan(avg, 4'000'000);

        for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
            const auto id = static_cast<StructureId>(i);
            t.addRow({name, structureName(id),
                      formatDouble(lumped.temperatures()[id], 2),
                      formatDouble(grid.blockMean(id), 2),
                      formatDouble(grid.blockMax(id), 2),
                      formatDouble(grid.blockGradient(id), 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
