/**
 * @file
 * Paper Table 9 / Section 6: per-structure boxcar power averages as a
 * temperature proxy vs. the RC thermal model.
 *
 * For every benchmark, the same simulation drives the RC reference and
 * two per-structure boxcar proxies (10 K-cycle and 500 K-cycle windows,
 * trigger = the power that would sustain the emergency temperature).
 * The table reports, per window, the fraction of true emergency
 * structure-cycles the proxy misses and the spurious triggers it fires.
 * Expected shape: both windows show substantial misses and/or false
 * triggers for the thermally active benchmarks, because heating is an
 * exponential RC effect a boxcar average cannot capture.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "thermal/boxcar.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

struct ProxyResult
{
    ProxyComparison small_window;
    ProxyComparison large_window;
};

ProxyResult
runOne(const WorkloadProfile &profile, const RunProtocol &proto)
{
    SimConfig cfg;
    cfg.workload = profile;
    Simulator sim(cfg);
    const Floorplan &fp = sim.floorplan();

    StructureBoxcarProxy proxy_small(fp, cfg.thermal, 10000,
                                     cfg.thermal.t_emergency);
    StructureBoxcarProxy proxy_large(fp, cfg.thermal, 500000,
                                     cfg.thermal.t_emergency);
    sim.warmUp(proto.warmup_cycles);

    ProxyResult result;
    for (std::uint64_t c = 0; c < proto.measure_cycles; ++c) {
        sim.tick();
        const PowerVector &p = sim.lastPower();
        proxy_small.add(p);
        proxy_large.add(p);
        const auto &temps = sim.thermal().temperatures();
        for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
            const auto id = static_cast<StructureId>(i);
            const bool hot =
                temps[id] > cfg.thermal.t_emergency;
            result.small_window.record(hot, proxy_small.triggered(id));
            result.large_window.record(hot, proxy_large.triggered(id));
        }
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Table 9: per-structure boxcar power proxy vs. RC model",
        "Table 9 / Section 6");

    const RunProtocol proto = session.protocol();

    TextTable t;
    t.setHeader({"benchmark", "emerg cyc", "missed 10K", "false 10K",
                 "missed 500K", "false 500K"});
    std::uint64_t total_emerg = 0, total_missed_small = 0,
                  total_missed_large = 0;
    for (const auto &profile : allSpecProfiles()) {
        auto r = runOne(profile, proto);
        total_emerg += r.small_window.reference_emergencies;
        total_missed_small += r.small_window.missed;
        total_missed_large += r.large_window.missed;
        t.addRow({profile.name,
                  std::to_string(r.small_window.reference_emergencies),
                  formatPercent(r.small_window.missRate(), 1),
                  formatPercent(r.small_window.falseTriggerRate(), 2),
                  formatPercent(r.large_window.missRate(), 1),
                  formatPercent(r.large_window.falseTriggerRate(), 2)});
    }
    t.print(std::cout);

    if (total_emerg > 0) {
        std::cout << "\noverall missed-emergency rate: 10K window "
                  << formatPercent(double(total_missed_small)
                                       / double(total_emerg),
                                   1)
                  << ", 500K window "
                  << formatPercent(double(total_missed_large)
                                       / double(total_emerg),
                                   1)
                  << "\n";
    }
    return 0;
}
