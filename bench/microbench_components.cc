/**
 * @file
 * google-benchmark microbenchmarks of the core components: the cost of
 * one simulated cycle and of each model that runs inside it. These
 * bound the wall-clock cost of the table/figure reproductions (the
 * paper's grid is hundreds of millions of simulated cycles).
 */

#include <benchmark/benchmark.h>

#include "branch/hybrid.hh"
#include "cache/cache.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "control/pid.hh"
#include "multicore/chip_model.hh"
#include "multicore/multicore_sim.hh"
#include "power/model.hh"
#include "sim/simulator.hh"
#include "thermal/rc_model.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"

using namespace thermctl;

namespace
{

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_BoxcarAdd(benchmark::State &state)
{
    BoxcarAverage box(static_cast<std::size_t>(state.range(0)));
    double x = 0.0;
    for (auto _ : state) {
        box.add(x);
        x += 0.25;
        benchmark::DoNotOptimize(box.average());
    }
}
BENCHMARK(BM_BoxcarAdd)->Arg(10000)->Arg(500000);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{.name = "l1", .size_bytes = 64 * 1024,
                            .assoc = 2, .block_bytes = 32,
                            .hit_latency = 1});
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(256 * 1024), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorRoundTrip(benchmark::State &state)
{
    HybridPredictor pred;
    MicroOp op;
    op.pc = 0x1000;
    op.op = OpClass::Branch;
    op.is_branch = true;
    op.is_conditional = true;
    op.taken = true;
    op.target = 0x2000;
    for (auto _ : state) {
        auto p = pred.predict(op);
        pred.resolve(op, p);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_PredictorRoundTrip);

void
BM_ThermalStep(benchmark::State &state)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, 1.0 / 1.5e9);
    PowerVector p;
    p.value.fill(1.5);
    for (auto _ : state) {
        model.step(p);
        benchmark::DoNotOptimize(model.temperatures());
    }
}
BENCHMARK(BM_ThermalStep);

void
BM_PidUpdate(benchmark::State &state)
{
    PidConfig cfg;
    cfg.kp = 2.0;
    cfg.ki = 1e5;
    cfg.kd = 1e-6;
    cfg.setpoint = 111.6;
    cfg.dt = 667e-9;
    PidController pid(cfg);
    double t = 111.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pid.update(t));
        t = 111.0 + 0.5 * (t - 111.0);
    }
}
BENCHMARK(BM_PidUpdate);

void
BM_PowerCycle(benchmark::State &state)
{
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    CpuActivity act;
    act.int_alu_ops = 3;
    act.l1d_accesses = 2;
    act.dispatched_ops = 4;
    act.regfile_reads = 6;
    for (auto _ : state)
        benchmark::DoNotOptimize(pm.cyclePower(act));
}
BENCHMARK(BM_PowerCycle);

void
BM_CoreTick(benchmark::State &state)
{
    SyntheticWorkload wl(specProfile("186.crafty"));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, wl, mem);
    for (auto _ : state)
        core.tick();
    state.counters["IPC"] = core.stats().ipc();
}
BENCHMARK(BM_CoreTick);

void
BM_SimulatorTick(benchmark::State &state)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::PID;
    Simulator sim(cfg);
    for (auto _ : state)
        sim.tick();
    state.counters["kcycles/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) / 1000.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorTick);

void
BM_ChipModelStep(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    Floorplan fp;
    ThermalConfig cfg;
    MulticoreConfig mc;
    mc.num_cores = cores;
    multicore::ChipModel chip(fp, cfg, 1.0 / 1.5e9, mc);
    std::vector<PowerVector> power(cores);
    for (auto &p : power)
        p.value.fill(1.5);
    for (auto _ : state) {
        chip.step(power);
        benchmark::DoNotOptimize(chip.temperatures(0));
    }
    state.counters["cores"] = static_cast<double>(cores);
}
BENCHMARK(BM_ChipModelStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_MulticoreStep(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::PerCorePid;
    cfg.multicore.num_cores = cores;
    multicore::MulticoreSimulator sim(cfg);
    for (auto _ : state)
        sim.run(1);
    state.counters["knom-cycles/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) / 1000.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MulticoreStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_WorkloadNext(benchmark::State &state)
{
    SyntheticWorkload wl(specProfile("176.gcc"));
    for (auto _ : state)
        benchmark::DoNotOptimize(wl.next());
}
BENCHMARK(BM_WorkloadNext);

} // namespace

BENCHMARK_MAIN();
