/**
 * @file
 * Paper Table 3: per-structure area, peak power, thermal R, thermal C
 * and RC time constant, plus the chip-wide row.
 *
 * The areas are the paper's; R and C are derived from the silicon
 * material properties of Section 4.3 (C = c_si*A*t, R = k*rho_si*t/A;
 * the spreading factors k are the documented calibration — see
 * FloorplanConfig). The expected shape: block RCs of tens to hundreds
 * of microseconds vs. a chip-wide RC of tens of seconds.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "power/model.hh"
#include "sim/config.hh"
#include "thermal/floorplan.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Table 3: per-structure area and thermal-R/C estimates",
        "Table 3");

    const SimConfig cfg;
    Floorplan fp(cfg.floorplan);
    PowerModel pm(cfg.power, cfg.cpu, cfg.memory);

    TextTable t;
    t.setHeader({"structure", "area (m^2)", "peak power (W)", "R (K/W)",
                 "C (J/K)", "RC (us)"});
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        const auto &blk = fp.block(id);
        t.addRow({structureName(id), formatSci(blk.area_m2, 1),
                  formatDouble(pm.peak()[id], 1),
                  formatDouble(blk.resistance, 2),
                  formatSci(blk.capacitance, 2),
                  formatDouble(units::sToUs(blk.rc()), 0)});
    }
    t.addRule();
    const auto &f = cfg.floorplan;
    t.addRow({"chip (w/ heatsink)", formatSci(fp.dieAreaMm2() * 1e-6, 1),
              formatDouble(pm.peak().total(), 1),
              formatDouble(f.chip_resistance, 2),
              formatDouble(f.chip_capacitance, 0),
              formatDouble(
                  units::sToUs(f.chip_resistance * f.chip_capacitance),
                  0) + " (= "
                  + formatDouble(f.chip_resistance * f.chip_capacitance,
                                 1)
                  + " s)"});
    t.print(std::cout);

    std::cout << "\nTangential (block-to-block) resistances — the paper's"
                 " argument for ignoring them:\n";
    TextTable tt;
    tt.setHeader({"pair", "R_tan (K/W)", "R_tan / max(R_norm)"});
    for (const auto &tan : fp.tangential()) {
        const double rn = std::max(fp.block(tan.a).resistance,
                                   fp.block(tan.b).resistance);
        tt.addRow({std::string(structureName(tan.a)) + "-"
                       + structureName(tan.b),
                   formatDouble(tan.resistance, 0),
                   formatDouble(tan.resistance / rn, 0) + "x"});
    }
    tt.print(std::cout);
    return 0;
}
