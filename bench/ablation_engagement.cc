/**
 * @file
 * Ablation (paper Section 2.1): engagement mechanism — the direct
 * microarchitectural trigger signal the paper assumes vs. the
 * interrupt-based mechanism with its ~250-cycle handler cost per
 * policy change.
 *
 * Expected shape: for the 1000-cycle-sampled controllers the interrupt
 * delay slightly lags every actuation; safety is preserved (the thermal
 * time constants dwarf 250 cycles) but each policy change lands a
 * quarter sample late, costing a small amount of either performance or
 * control tightness — the paper's reason to postulate the direct
 * signal.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: direct vs interrupt-based DTM engagement",
        "Section 2.1 (trigger mechanisms)");

    const char *benches[] = {"186.crafty", "301.apsi"};

    SweepSpec spec = session.spec();
    for (const char *name : benches)
        spec.workload(specProfile(name));
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : {DtmPolicyKind::Toggle1, DtmPolicyKind::PID}) {
        s.kind = kind;
        spec.policy(s);
    }
    spec.variant("direct", [](SimConfig &cfg) {
        cfg.dtm.engagement = EngagementMechanism::Direct;
    });
    spec.variant("interrupt", [](SimConfig &cfg) {
        cfg.dtm.engagement = EngagementMechanism::Interrupt;
    });
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"benchmark", "policy", "engagement", "% of base IPC",
                 "emerg %", "max T (C)"});

    for (const char *name : benches) {
        const auto &base = res.at(
            name, dtmPolicyKindName(DtmPolicyKind::None), "direct");

        for (auto kind : {DtmPolicyKind::Toggle1, DtmPolicyKind::PID}) {
            for (const char *mech : {"direct", "interrupt"}) {
                const auto &r =
                    res.at(name, dtmPolicyKindName(kind), mech);
                t.addRow({name, dtmPolicyKindName(kind),
                          std::string(mech) == "direct"
                              ? "direct"
                              : "interrupt(250)",
                          formatPercent(r.ipc / base.ipc, 1),
                          formatPercent(r.emergency_fraction, 3),
                          formatDouble(r.max_temperature, 2)});
            }
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
