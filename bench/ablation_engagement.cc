/**
 * @file
 * Ablation (paper Section 2.1): engagement mechanism — the direct
 * microarchitectural trigger signal the paper assumes vs. the
 * interrupt-based mechanism with its ~250-cycle handler cost per
 * policy change.
 *
 * Expected shape: for the 1000-cycle-sampled controllers the interrupt
 * delay slightly lags every actuation; safety is preserved (the thermal
 * time constants dwarf 250 cycles) but each policy change lands a
 * quarter sample late, costing a small amount of either performance or
 * control tightness — the paper's reason to postulate the direct
 * signal.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main()
{
    bench::printHeader(
        "Ablation: direct vs interrupt-based DTM engagement",
        "Section 2.1 (trigger mechanisms)");

    ExperimentRunner runner(bench::standardProtocol());

    TextTable t;
    t.setHeader({"benchmark", "policy", "engagement", "% of base IPC",
                 "emerg %", "max T (C)"});

    for (const char *name : {"186.crafty", "301.apsi"}) {
        auto profile = specProfile(name);
        DtmPolicySettings s;
        s.kind = DtmPolicyKind::None;
        const auto base = runner.runOne(profile, s);

        for (auto kind : {DtmPolicyKind::Toggle1, DtmPolicyKind::PID}) {
            for (auto mech : {EngagementMechanism::Direct,
                              EngagementMechanism::Interrupt}) {
                SimConfig cfg;
                cfg.dtm.engagement = mech;
                s.kind = kind;
                const auto r = runner.runOne(profile, s, cfg);
                t.addRow({profile.name, dtmPolicyKindName(kind),
                          mech == EngagementMechanism::Direct
                              ? "direct"
                              : "interrupt(250)",
                          formatPercent(r.ipc / base.ipc, 1),
                          formatPercent(r.emergency_fraction, 3),
                          formatDouble(r.max_temperature, 2)});
            }
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
