/**
 * @file
 * The paper's headline evaluation (Section 7 figures): per-benchmark
 * performance of every DTM technique as a percentage of the non-DTM
 * IPC, together with the fraction of cycles spent in thermal emergency.
 *
 * Expected shape (paper):
 *  - every technique except toggle2 eliminates thermal emergencies;
 *  - the fixed-response toggle1 loses by far the most performance;
 *  - the hand-built proportional "M" improves on toggle1;
 *  - CT-DTM PI and PID, with their trigger only 0.2 C below the
 *    emergency threshold, recover most of the loss — ~65% less
 *    performance lost than toggle1 on average.
 */

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "DTM evaluation: % of non-DTM IPC and emergency cycles, "
        "per technique",
        "Section 7 figures (performance of TM techniques)");

    const DtmPolicyKind policies[] = {
        DtmPolicyKind::Toggle1, DtmPolicyKind::Toggle2,
        DtmPolicyKind::Manual, DtmPolicyKind::P, DtmPolicyKind::PI,
        DtmPolicyKind::PID,
    };

    SweepSpec spec = session.spec();
    spec.workloads(allSpecProfiles());
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : policies) {
        s.kind = kind;
        spec.policy(s);
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    std::vector<std::string> header = {"benchmark", "base IPC"};
    for (auto kind : policies) {
        header.push_back(std::string(dtmPolicyKindName(kind)) + " %");
        header.push_back(std::string(dtmPolicyKindName(kind)) + " em%");
    }
    t.setHeader(header);

    std::map<DtmPolicyKind, double> loss_sum;
    std::map<DtmPolicyKind, double> emerg_sum;
    int counted = 0;

    for (const auto &profile : allSpecProfiles()) {
        const auto &base = res.at(
            profile.name, dtmPolicyKindName(DtmPolicyKind::None));

        std::vector<std::string> row = {profile.name,
                                        formatDouble(base.ipc, 2)};
        const bool thermally_active = base.stress_fraction > 0.01;
        if (thermally_active)
            ++counted;
        for (auto kind : policies) {
            const auto &r = res.at(profile.name, dtmPolicyKindName(kind));
            const double rel = base.ipc > 0 ? r.ipc / base.ipc : 1.0;
            row.push_back(formatPercent(rel, 1));
            row.push_back(formatPercent(r.emergency_fraction, 2));
            if (thermally_active) {
                loss_sum[kind] += 1.0 - rel;
                emerg_sum[kind] += r.emergency_fraction;
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nMean performance loss over thermally active "
                 "benchmarks (" << counted << " of 18):\n";
    for (auto kind : policies) {
        std::cout << "  " << dtmPolicyKindName(kind) << ": "
                  << formatPercent(loss_sum[kind] / counted, 1)
                  << " loss, mean emergency "
                  << formatPercent(emerg_sum[kind] / counted, 3) << "\n";
    }

    const double t1 = loss_sum[DtmPolicyKind::Toggle1];
    const double pid = loss_sum[DtmPolicyKind::PID];
    const double pi = loss_sum[DtmPolicyKind::PI];
    if (t1 > 0.0) {
        std::cout << "\nHEADLINE — reduction in DTM performance loss vs "
                     "toggle1: PI "
                  << formatPercent(1.0 - pi / t1, 0) << ", PID "
                  << formatPercent(1.0 - pid / t1, 0)
                  << " (paper: 65%)\n";
    }
    return 0;
}
