/**
 * @file
 * Paper Table 8: percentage of cycles each individual structure spends
 * above the thermal-stress level (one degree below emergency), per
 * benchmark (no DTM). Programs like mesa/facerec/eon/vortex spend most
 * of their time here without ever reaching emergency — the group the
 * paper says a good DTM scheme must not penalize.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "power/structures.hh"
#include "sim/config.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    const SimConfig cfg;
    bench::Session session(
        argc, argv,
        "Table 8: % cycles above the stress level ("
            + formatDouble(cfg.thermal.stressLevel(), 1)
            + " C), by structure",
        "Table 8");

    auto results = session.characterizeAll();

    TextTable t;
    std::vector<std::string> header = {"benchmark", "any"};
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        header.push_back(structureName(static_cast<StructureId>(i)));
    t.setHeader(header);

    for (const auto &r : results) {
        std::vector<std::string> row = {
            r.benchmark, formatPercent(r.stress_fraction, 1)};
        for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
            row.push_back(
                formatPercent(r.structures[i].stress_fraction, 1));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
