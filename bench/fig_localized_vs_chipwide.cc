/**
 * @file
 * Paper Sections 4.2/6 motivation figure: localized heating is orders
 * of magnitude faster than chip-wide heating.
 *
 * A power step is applied and the time for each thermal node to cover
 * 63% (one time constant) of its rise is reported: blocks respond in
 * tens to hundreds of microseconds, the chip+heatsink in tens of
 * seconds — a ratio of ~10^5, which is why chip-wide measurements
 * cannot protect against local hot spots.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "sim/config.hh"
#include "thermal/rc_model.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Localized vs chip-wide heating speed under a power step",
        "Sections 4.2 and 6 (motivation)");

    const SimConfig cfg;
    Floorplan fp(cfg.floorplan);
    const double dt = cfg.power.tech.cycleSeconds();
    SimplifiedRCModel model(fp, cfg.thermal, dt);

    // Step: every block dissipates a fixed power density of 0.5 W/mm^2.
    PowerVector step;
    for (StructureId id : kAllStructures)
        step[id] = 0.5 * fp.block(id).area_m2 * 1e6;

    TextTable t;
    t.setHeader({"node", "time to 63% of rise", "cycles @1.5GHz"});

    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        const double target = cfg.thermal.t_base
            + (1.0 - 1.0 / M_E)
                  * (model.steadyState(id, step[id]) - cfg.thermal.t_base);
        SimplifiedRCModel m(fp, cfg.thermal, dt);
        std::uint64_t cycles = 0;
        while (m.temperatures()[id] < target && cycles < 100'000'000) {
            m.stepExact(step, 1000);
            cycles += 1000;
        }
        t.addRow({structureName(id),
                  formatDouble(units::sToUs(cycles * dt), 1) + " us",
                  std::to_string(cycles)});
    }

    // Chip-level node under total chip power.
    ChipLevelModel chip(cfg.floorplan, cfg.floorplan.ambient, dt);
    const double total = step.total();
    const double chip_target = cfg.floorplan.ambient
        + (1.0 - 1.0 / M_E) * total * cfg.floorplan.chip_resistance;
    double chip_seconds = 0.0;
    while (chip.temperature() < chip_target && chip_seconds < 1000.0) {
        chip.stepExact(total, static_cast<std::uint64_t>(0.01 / dt));
        chip_seconds += 0.01;
    }
    t.addRule();
    t.addRow({"chip + heatsink",
              formatDouble(chip_seconds, 2) + " s",
              std::to_string(static_cast<std::uint64_t>(
                  chip_seconds / dt))});
    t.print(std::cout);

    std::cout << "\nratio chip/block time constants: ~"
              << formatSci(chip_seconds
                               / (fp.block(StructureId::Window).rc()),
                           1)
              << "x (paper: orders of magnitude)\n";
    return 0;
}
