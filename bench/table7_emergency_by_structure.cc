/**
 * @file
 * Paper Table 7: percentage of cycles each individual structure spends
 * above the emergency threshold, per benchmark (no DTM).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "power/structures.hh"
#include "sim/config.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    const SimConfig cfg;
    bench::Session session(
        argc, argv,
        "Table 7: % cycles above the emergency threshold ("
            + formatDouble(cfg.thermal.t_emergency, 1)
            + " C), by structure",
        "Table 7");

    auto results = session.characterizeAll();

    TextTable t;
    std::vector<std::string> header = {"benchmark", "any"};
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        header.push_back(structureName(static_cast<StructureId>(i)));
    t.setHeader(header);

    for (const auto &r : results) {
        std::vector<std::string> row = {
            r.benchmark, formatPercent(r.emergency_fraction, 2)};
        for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
            row.push_back(
                formatPercent(r.structures[i].emergency_fraction, 2));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
