/**
 * @file
 * Paper Table 6: average and maximum temperature of each individual
 * structure for each benchmark (no DTM), demonstrating that different
 * program classes produce different hot spots — FP codes heat the FP
 * unit and register file, integer codes the integer unit, window and
 * D-cache, branchy codes the predictor.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "power/structures.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Table 6: per-structure avg/max temperature by benchmark",
        "Table 6");

    auto results = session.characterizeAll();

    TextTable t;
    std::vector<std::string> header = {"benchmark"};
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        header.push_back(structureName(static_cast<StructureId>(i)));
    t.setHeader(header);

    for (const auto &r : results) {
        std::vector<std::string> row = {r.benchmark};
        for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
            const auto &s = r.structures[i];
            row.push_back(formatDouble(s.avg_temp, 1) + "/"
                          + formatDouble(s.max_temp, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // Hot-spot diversity check: the hottest structure differs across
    // benchmark classes.
    std::cout << "\nhottest structure per benchmark:\n";
    for (const auto &r : results) {
        std::size_t hot = 0;
        for (std::size_t i = 1; i < kNumHotspotStructures; ++i)
            if (r.structures[i].max_temp > r.structures[hot].max_temp)
                hot = i;
        std::cout << "  " << r.benchmark << ": "
                  << structureName(static_cast<StructureId>(hot)) << "\n";
    }
    return 0;
}
