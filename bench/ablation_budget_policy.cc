/**
 * @file
 * Ablation (extension): global power-budget split policies.
 *
 * A 4-core chip with a chip-level power budget is coordinated by the
 * BudgetCoordinator once per epoch under each of its three split
 * policies (uniform, demand-proportional, thermal-headroom), across a
 * range of budgets from starved to unconstrained. Cores run
 * decorrelated instances of the same profile, so their instantaneous
 * demand differs even though their long-run averages match.
 *
 * Expected shape: at an unconstrained budget all policies converge to
 * the uncapped result; as the budget tightens, demand-proportional
 * holds more aggregate throughput than uniform (it routes watts to the
 * cores that can spend them), and thermal-headroom trades a little
 * throughput for a lower hottest block.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "multicore/multicore_sim.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    multicore::ensureBackendRegistered();
    bench::Session session(
        argc, argv,
        "Ablation: chip power-budget split policy",
        "extension (budget coordinator; DESIGN.md section 15)");

    auto profile = specProfile("186.crafty");
    const double budgets[] = {40.0, 70.0, 120.0};
    const BudgetPolicy policies[] = {BudgetPolicy::Uniform,
                                     BudgetPolicy::DemandProportional,
                                     BudgetPolicy::ThermalHeadroom};

    SweepSpec spec = session.spec();
    spec.workload(profile);
    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    spec.policy(none);
    for (double budget : budgets) {
        for (BudgetPolicy policy : policies) {
            spec.variant(
                std::string(budgetPolicyName(policy)) + "-"
                    + formatDouble(budget, 0) + "W",
                [budget, policy](SimConfig &cfg) {
                    cfg.multicore.num_cores = 4;
                    cfg.multicore.chip_budget = budget;
                    cfg.multicore.budget_policy = policy;
                });
        }
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"budget (W)", "split policy", "chip IPC",
                 "avg pwr (W)", "max T (C)", "mean duty"});
    for (double budget : budgets) {
        for (BudgetPolicy policy : policies) {
            const std::string variant =
                std::string(budgetPolicyName(policy)) + "-"
                + formatDouble(budget, 0) + "W";
            const auto &r = res.at(profile.name,
                                   dtmPolicyKindName(none.kind), variant);
            t.addRow({formatDouble(budget, 0), budgetPolicyName(policy),
                      formatDouble(r.ipc, 2),
                      formatDouble(r.avg_power, 1),
                      formatDouble(r.max_temperature, 2),
                      formatDouble(r.mean_duty, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
