#include "bench_util.hh"

#include <cstdlib>
#include <iostream>

#include "workload/spec_profiles.hh"

namespace thermctl::bench
{

RunProtocol
standardProtocol()
{
    RunProtocol proto;
    const char *fast = std::getenv("THERMCTL_FAST");
    if (fast && fast[0] == '1') {
        proto.warmup_cycles = 120000;
        proto.measure_cycles = 300000;
    } else {
        proto.warmup_cycles = 300000;
        proto.measure_cycles = 1000000;
    }
    return proto;
}

std::vector<RunResult>
characterizeAll()
{
    ExperimentRunner runner(standardProtocol());
    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    return runner.runAll(allSpecProfiles(), none);
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==================================================="
                 "=========================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "(Skadron, Abdelzaher & Stan, HPCA 2002 — see "
                 "EXPERIMENTS.md for the comparison)\n"
              << "==================================================="
                 "=========================\n";
}

} // namespace thermctl::bench
