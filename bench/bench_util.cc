#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/logging.hh"
#include "workload/spec_profiles.hh"

namespace thermctl::bench
{

namespace
{

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v && v[0] == '1';
}

RunProtocol
makeProtocol()
{
    RunProtocol proto;
    if (envFlag("THERMCTL_FAST")) {
        proto.warmup_cycles = 120000;
        proto.measure_cycles = 300000;
    } else {
        proto.warmup_cycles = 300000;
        proto.measure_cycles = 1000000;
    }
    return proto;
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [--jobs N] [--cache-dir PATH] [--no-cache] "
        "[--quiet]\n"
        "  --jobs N        sweep worker threads (default: "
        "THERMCTL_JOBS or all cores)\n"
        "  --cache-dir P   result cache directory (default: "
        "THERMCTL_CACHE_DIR or ~/.cache/thermctl)\n"
        "  --no-cache      disable the on-disk result cache "
        "(THERMCTL_NO_CACHE=1)\n"
        "  --quiet         suppress sweep progress on stderr\n"
        "env: THERMCTL_FAST=1 shortens the run protocol for smoke "
        "runs\n",
        prog);
}

struct ParsedArgs
{
    SweepOptions opts;
    bool quiet = false;
};

ParsedArgs
parseArgs(int argc, char **argv)
{
    ParsedArgs parsed;
    parsed.opts.use_cache = !envFlag("THERMCTL_NO_CACHE");
    parsed.quiet = envFlag("THERMCTL_QUIET");

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv[0], arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            const long v = std::strtol(next(), nullptr, 10);
            if (v < 1) {
                std::fprintf(stderr, "%s: --jobs must be >= 1\n",
                             argv[0]);
                std::exit(2);
            }
            parsed.opts.jobs = static_cast<unsigned>(v);
        } else if (arg == "--cache-dir") {
            parsed.opts.cache_dir = next();
        } else if (arg == "--no-cache") {
            parsed.opts.use_cache = false;
        } else if (arg == "--quiet") {
            parsed.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            usage(argv[0]);
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg.c_str());
            std::exit(2);
        }
    }
    return parsed;
}

} // namespace

Session::Session(const SweepOptions &opts, bool quiet)
    : proto_(makeProtocol()), engine_(opts), quiet_(quiet)
{
    if (!quiet_) {
        engine_.setTelemetry(SweepTelemetry{
            .on_run_start = nullptr,
            .on_run_done =
                [](const SweepOutcome &oc, std::size_t grid_size) {
                    if (oc.cache_hit) {
                        std::fprintf(stderr,
                                     "[%4zu/%zu] %-40s (cached)\n",
                                     oc.point.index + 1, grid_size,
                                     oc.point.key.c_str());
                    } else {
                        std::fprintf(stderr, "[%4zu/%zu] %-40s %.2fs\n",
                                     oc.point.index + 1, grid_size,
                                     oc.point.key.c_str(),
                                     oc.wall_seconds);
                    }
                },
        });
    }
}

Session::Session(int argc, char **argv, const std::string &title,
                 const std::string &paper_ref)
    : Session(parseArgs(argc, argv).opts, parseArgs(argc, argv).quiet)
{
    printTitle(title, paper_ref);
}

Session::Session() : Session(parseArgs(0, nullptr).opts, true) {}

SweepSpec
Session::spec() const
{
    SweepSpec s;
    s.protocol(proto_);
    return s;
}

SweepResults
Session::run(const SweepSpec &spec) const
{
    SweepResults results = engine_.run(spec);
    if (!quiet_) {
        std::fprintf(
            stderr,
            "sweep: %zu points in %.2fs (jobs=%u): %zu simulated, "
            "%zu cached\n",
            results.size(), results.wallSeconds(),
            engine_.effectiveJobs(results.size()), results.simulated(),
            results.cacheHits());
    }
    return results;
}

std::vector<RunResult>
Session::characterizeAll() const
{
    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    SweepSpec s = spec();
    s.workloads(allSpecProfiles()).policy(none);
    return run(s).results();
}

RunResult
Session::runOne(const WorkloadProfile &profile,
                const DtmPolicySettings &policy,
                const SimConfig &base) const
{
    SweepSpec s = spec();
    s.base(base).workload(profile).policy(policy);
    return run(s).outcomes().front().result;
}

void
Session::printTitle(const std::string &title,
                    const std::string &paper_ref)
{
    std::cout << "==================================================="
                 "=========================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "(Skadron, Abdelzaher & Stan, HPCA 2002 — see "
                 "EXPERIMENTS.md for the comparison)\n"
              << "==================================================="
                 "=========================\n";
}

} // namespace thermctl::bench
