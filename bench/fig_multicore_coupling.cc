/**
 * @file
 * Figure (extension): multicore scaling and inter-core thermal coupling.
 *
 * Sweeps the chip from 1 to 16 cores, with and without lateral coupling
 * between adjacent cores, under the per-core PID policy. Two questions:
 *
 *  1. How does aggregate throughput and the hottest block scale with
 *     the core count when every core runs the same hot workload and
 *     all of them share one heatsink?
 *  2. How much does lateral coupling matter — does a core's thermal
 *     headroom shrink when its neighbours run hot too?
 *
 * Expected shape: throughput scales near-linearly (cores are
 * decorrelated instances of the same profile), the hottest block creeps
 * up with the core count through the shared sink, and enabling coupling
 * nudges interior cores hotter than the isolated variant at the same
 * count.
 *
 * The sweep itself runs through the cached SweepEngine like every other
 * figure. A separate uncached, timed stepping loop measures raw engine
 * throughput (nominal cycles/second at each core count) and writes it
 * to a machine-readable JSON report (--json PATH, default
 * BENCH_sim.json) so CI can track simulator performance.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "multicore/multicore_sim.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

constexpr std::uint32_t kCoreCounts[] = {1, 2, 4, 8, 16};

/** One timed, uncached stepping measurement at a given core count. */
struct StepRate
{
    std::uint32_t cores = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    double cycles_per_sec = 0.0;
};

StepRate
timeStepping(std::uint32_t cores, std::uint64_t cycles)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::PerCorePid;
    cfg.multicore.num_cores = cores;
    multicore::MulticoreSimulator sim(cfg);
    sim.warmUp(cycles / 10);

    const auto start = std::chrono::steady_clock::now();
    sim.run(cycles);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();

    StepRate r;
    r.cores = cores;
    r.cycles = cycles;
    r.seconds = secs;
    r.cycles_per_sec =
        secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
    return r;
}

void
writeJson(const std::string &path, const std::vector<StepRate> &rates)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", path);
    out << "{\n  \"benchmark\": \"multicore_stepping\",\n  \"rates\": [\n";
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const StepRate &r = rates[i];
        out << "    {\"cores\": " << r.cores
            << ", \"nominal_cycles\": " << r.cycles
            << ", \"seconds\": " << r.seconds
            << ", \"cycles_per_sec\": " << r.cycles_per_sec << "}"
            << (i + 1 < rates.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // The shared flags go to the Session; --json is ours.
    std::string json_path = "BENCH_sim.json";
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc)
                fatal("missing value for --json");
            json_path = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }

    multicore::ensureBackendRegistered();
    bench::Session session(
        static_cast<int>(passthrough.size()), passthrough.data(),
        "Figure: multicore scaling and inter-core coupling",
        "extension (multicore thermal RC network; DESIGN.md section 15)");

    auto profile = specProfile("186.crafty");
    SweepSpec spec = session.spec();
    spec.workload(profile);
    DtmPolicySettings pid;
    pid.kind = DtmPolicyKind::PerCorePid;
    spec.policy(pid);
    for (std::uint32_t cores : kCoreCounts) {
        for (bool coupled : {false, true}) {
            // A 1-core chip has no seam; skip the redundant variant.
            if (cores == 1 && coupled)
                continue;
            spec.variant(
                "cores" + std::to_string(cores)
                    + (coupled ? "-coupled" : "-isolated"),
                [cores, coupled](SimConfig &cfg) {
                    cfg.multicore.num_cores = cores;
                    cfg.multicore.coupling_resistance =
                        coupled ? 4.0 : 0.0;
                });
        }
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"cores", "coupling", "chip IPC", "avg pwr (W)",
                 "max T (C)", "mean duty"});
    for (std::uint32_t cores : kCoreCounts) {
        for (bool coupled : {false, true}) {
            if (cores == 1 && coupled)
                continue;
            const std::string variant =
                "cores" + std::to_string(cores)
                + (coupled ? "-coupled" : "-isolated");
            const auto &r = res.at(profile.name,
                                   dtmPolicyKindName(pid.kind), variant);
            t.addRow({std::to_string(cores),
                      coupled ? "on" : "off",
                      formatDouble(r.ipc, 2),
                      formatDouble(r.avg_power, 1),
                      formatDouble(r.max_temperature, 2),
                      formatDouble(r.mean_duty, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);

    // Uncached engine-throughput measurement (never cache this: the
    // point is wall-clock speed, not the simulated result).
    const char *fast = std::getenv("THERMCTL_FAST");
    const std::uint64_t cycles =
        (fast && fast[0] == '1') ? 20000 : 200000;
    std::vector<StepRate> rates;
    for (std::uint32_t cores : kCoreCounts)
        rates.push_back(timeStepping(cores, cycles));
    writeJson(json_path, rates);

    std::cout << "\nengine stepping rate (uncached, " << cycles
              << " nominal cycles each):\n";
    for (const StepRate &r : rates) {
        std::cout << "  " << r.cores << " cores: "
                  << formatDouble(r.cycles_per_sec / 1e6, 2)
                  << " Mcycles/s\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
