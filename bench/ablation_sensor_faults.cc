/**
 * @file
 * Ablation: outright sensor failures and the failsafe fallback.
 *
 * The paper's controllers trust the sensed temperature; its stated
 * future work is modeling sensors distinct from the physical truth.
 * This experiment takes that one step further than ablation_sensors:
 * the sensor *fails* mid-run (stuck-at-last, stuck-at-value, dropout
 * with hold — see SensorFaultMode) and the PID scheme runs with and
 * without the FailsafePolicy wrapper (dtm/failsafe.hh).
 *
 * Expected shape: a stuck sensor freezes the controller's view below
 * the trigger, so plain PID holds full fetch and thermal emergencies
 * run unchecked — the max temperature column is the tell. The failsafe
 * detects the implausible stream (too many bit-identical samples) and
 * latches the paper's fallback, full fetch toggling (duty 0), trading
 * IPC for a bounded temperature. Moderate dropout-with-hold should ride
 * through both configurations: held samples are stale but plausible,
 * and the PID's next fresh sample corrects the small drift.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

struct FaultCase
{
    const char *name;
    const char *label;
    SensorConfig sensor;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv,
                           "Ablation: sensor failure modes and the "
                           "failsafe fallback (PID on apsi)",
                           "Section 4.2 (sensor modeling, future work)");

    auto profile = specProfile("301.apsi");
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    const auto base = session.runOne(profile, s);

    DtmPolicySettings pid;
    pid.kind = DtmPolicyKind::PID;
    DtmPolicySettings guarded = pid;
    guarded.failsafe = true;

    // fault_start counts sensor samples (one per DTM sampling interval):
    // 50 samples in, the chip is still heating toward the setpoint, so a
    // reading frozen there looks safely cool forever.
    const FaultCase cases[] = {
        {"healthy", "healthy (paper)", SensorConfig{}},
        {"stuck-last", "stuck at last reading",
         SensorConfig{.fault_mode = SensorFaultMode::StuckAtLast,
                      .fault_start = 50}},
        {"stuck-cool", "stuck at 60 C (reads cool)",
         SensorConfig{.fault_mode = SensorFaultMode::StuckAtValue,
                      .fault_start = 50, .fault_value = 60.0}},
        {"dropout", "25% dropout with hold",
         SensorConfig{.fault_mode = SensorFaultMode::DropoutHold,
                      .fault_start = 50, .dropout_p = 0.25}},
    };

    SweepSpec spec = session.spec();
    spec.workload(profile);
    spec.policy(pid).policy(guarded, "PID+failsafe");
    for (const auto &c : cases) {
        const SensorConfig sensor = c.sensor;
        spec.variant(c.name,
                     [sensor](SimConfig &cfg) { cfg.dtm.sensor = sensor; });
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"sensor fault", "policy", "% of base IPC", "emerg %",
                 "max T (C)"});
    for (const auto &c : cases) {
        for (const char *policy : {"PID", "PID+failsafe"}) {
            const auto &r = res.at(profile.name, policy, c.name);
            t.addRow({c.label, policy, formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 3),
                      formatDouble(r.max_temperature, 2)});
        }
    }

    t.print(std::cout);
    return 0;
}
