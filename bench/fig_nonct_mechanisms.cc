/**
 * @file
 * Paper Section 2.1: the non-control-theoretic microarchitectural DTM
 * mechanisms of Brooks & Martonosi — fetch toggling, fetch throttling,
 * and speculation control — compared head to head.
 *
 * Expected shape (the paper's qualitative findings):
 *  - toggle1 is the only fixed mechanism that reliably eliminates
 *    emergencies, at a large performance cost;
 *  - throttling leaves the I-cache and branch predictor busy every
 *    cycle, so it "often cannot prevent certain hot spots" — on the
 *    bpred-hot apsi profile it fails where toggle1 succeeds;
 *  - speculation control is ineffective for programs (or phases) with
 *    excellent branch prediction, failing on the loop-dominated FP
 *    codes while doing something on branchy integer codes.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Non-CT microarchitectural DTM mechanisms: toggling vs "
        "throttling vs speculation control",
        "Section 2.1 (mechanism comparison)");

    const char *benches[] = {"186.crafty", "301.apsi", "191.fma3d",
                             "253.perlbmk"};
    const DtmPolicyKind mechanisms[] = {
        DtmPolicyKind::Toggle1, DtmPolicyKind::Toggle2,
        DtmPolicyKind::Throttle, DtmPolicyKind::SpecControl};

    SweepSpec spec = session.spec();
    for (const char *name : benches)
        spec.workload(specProfile(name));
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : mechanisms) {
        s.kind = kind;
        spec.policy(s);
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"benchmark", "mechanism", "% of base IPC", "emerg %",
                 "max T (C)"});

    for (const char *name : benches) {
        const auto &base = res.at(
            name, dtmPolicyKindName(DtmPolicyKind::None));

        for (auto kind : mechanisms) {
            const auto &r = res.at(name, dtmPolicyKindName(kind));
            t.addRow({name, dtmPolicyKindName(kind),
                      formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n(the paper drops throttling and speculation control "
                 "after observing exactly\nthese failure modes, and "
                 "builds its controllers on toggling instead)\n";
    return 0;
}
