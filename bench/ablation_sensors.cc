/**
 * @file
 * Ablation (the paper's stated future work): non-ideal temperature
 * sensors. The paper assumes an idealized sensor per block; here the
 * PID scheme runs with static offsets, Gaussian noise, and quantized
 * readings.
 *
 * Expected shape: a sensor that reads low (negative offset) erodes the
 * 0.2 C safety margin and lets emergencies through; one that reads
 * high wastes performance; moderate zero-mean noise mostly averages out
 * through the integral term but fuzzes the margin; quantization coarser
 * than the margin breaks the tight-setpoint scheme.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

struct SensorCase
{
    const char *name;
    const char *label;
    SensorConfig sensor;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv,
                           "Ablation: temperature-sensor non-idealities "
                           "(PID on apsi)",
                           "Section 4.2 (sensor modeling, future work)");

    auto profile = specProfile("301.apsi");
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    const auto base = session.runOne(profile, s);
    s.kind = DtmPolicyKind::PID;

    const SensorCase cases[] = {
        {"ideal", "ideal (paper)", SensorConfig{}},
        {"offset-0.3", "offset -0.3 C (reads cool)",
         SensorConfig{.offset = -0.3}},
        {"offset+0.3", "offset +0.3 C (reads hot)",
         SensorConfig{.offset = 0.3}},
        {"noise0.05", "noise sigma 0.05 C",
         SensorConfig{.noise_sigma = 0.05}},
        {"noise0.2", "noise sigma 0.2 C",
         SensorConfig{.noise_sigma = 0.2}},
        {"quant0.25", "quantized 0.25 C", SensorConfig{.quantum = 0.25}},
        {"quant1.0", "quantized 1.0 C", SensorConfig{.quantum = 1.0}},
    };

    SweepSpec spec = session.spec();
    spec.workload(profile).policy(s);
    for (const auto &c : cases) {
        const SensorConfig sensor = c.sensor;
        spec.variant(c.name,
                     [sensor](SimConfig &cfg) { cfg.dtm.sensor = sensor; });
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"sensor model", "% of base IPC", "emerg %",
                 "max T (C)"});
    for (const auto &c : cases) {
        const auto &r = res.at(
            profile.name, dtmPolicyKindName(DtmPolicyKind::PID), c.name);
        t.addRow({c.label, formatPercent(r.ipc / base.ipc, 1),
                  formatPercent(r.emergency_fraction, 3),
                  formatDouble(r.max_temperature, 2)});
    }

    t.print(std::cout);
    return 0;
}
