/**
 * @file
 * Ablation (the paper's stated future work): non-ideal temperature
 * sensors. The paper assumes an idealized sensor per block; here the
 * PID scheme runs with static offsets, Gaussian noise, and quantized
 * readings.
 *
 * Expected shape: a sensor that reads low (negative offset) erodes the
 * 0.2 C safety margin and lets emergencies through; one that reads
 * high wastes performance; moderate zero-mean noise mostly averages out
 * through the integral term but fuzzes the margin; quantization coarser
 * than the margin breaks the tight-setpoint scheme.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main()
{
    bench::printHeader("Ablation: temperature-sensor non-idealities "
                       "(PID on apsi)",
                       "Section 4.2 (sensor modeling, future work)");

    ExperimentRunner runner(bench::standardProtocol());
    auto profile = specProfile("301.apsi");
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    const auto base = runner.runOne(profile, s);
    s.kind = DtmPolicyKind::PID;

    TextTable t;
    t.setHeader({"sensor model", "% of base IPC", "emerg %",
                 "max T (C)"});

    auto run_with = [&](const std::string &label, SensorConfig sensor) {
        SimConfig cfg;
        cfg.dtm.sensor = sensor;
        const auto r = runner.runOne(profile, s, cfg);
        t.addRow({label, formatPercent(r.ipc / base.ipc, 1),
                  formatPercent(r.emergency_fraction, 3),
                  formatDouble(r.max_temperature, 2)});
    };

    run_with("ideal (paper)", SensorConfig{});
    run_with("offset -0.3 C (reads cool)",
             SensorConfig{.offset = -0.3});
    run_with("offset +0.3 C (reads hot)", SensorConfig{.offset = 0.3});
    run_with("noise sigma 0.05 C", SensorConfig{.noise_sigma = 0.05});
    run_with("noise sigma 0.2 C", SensorConfig{.noise_sigma = 0.2});
    run_with("quantized 0.25 C", SensorConfig{.quantum = 0.25});
    run_with("quantized 1.0 C", SensorConfig{.quantum = 1.0});

    t.print(std::cout);
    return 0;
}
