/**
 * @file
 * Ablation (paper Section 3.3): integrator anti-windup.
 *
 * On the bursty art profile, a PI controller without windup protection
 * accumulates an enormous integral during the long cool phases (the
 * actuator is saturated at full speed and the error stays positive);
 * when the FP burst arrives, the output takes many samples to unwind
 * back into the actuator range, toggling engages late, and the
 * structure runs into thermal emergency — exactly the failure the
 * paper describes. The conditional-integration controller reacts
 * immediately.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "control/tuning.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

struct Outcome
{
    double emerg_frac = 0.0;
    Celsius max_temp = 0.0;
    double rel_ipc = 0.0;
};

Outcome
runArt(const RunProtocol &proto, AntiWindup mode, double base_ipc)
{
    SimConfig cfg;
    cfg.workload = specProfile("179.art");
    cfg.policy.kind = DtmPolicyKind::PI;
    Simulator sim(cfg);

    // Rebuild the PI policy with the selected anti-windup mode.
    PidConfig pid = tuneLoopShaping(ControllerKind::PI, sim.dtmPlant());
    pid.setpoint = cfg.policy.ct_setpoint;
    pid.dt = static_cast<double>(cfg.dtm.sample_interval)
        * cfg.power.tech.cycleSeconds();
    pid.out_min = 0.0;
    pid.out_max = 1.0;
    pid.anti_windup = mode;
    sim.setDtmPolicy(std::make_unique<CtPolicy>(
        ControllerKind::PI, pid, cfg.policy.ct_range_low));

    sim.warmUp(proto.warmup_cycles);
    sim.run(proto.measure_cycles);

    const auto &stats = sim.dtm().stats();
    return Outcome{
        .emerg_frac = stats.emergencyFraction(),
        .max_temp = stats.max_temperature,
        .rel_ipc = sim.measuredIpc() / base_ipc,
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: integrator anti-windup (PI on the bursty art "
        "profile)",
        "Section 3.3 (actuator saturation / integral windup)");

    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    const auto base = session.runOne(specProfile("179.art"), none);

    TextTable t;
    t.setHeader({"anti-windup", "emerg %", "max T (C)",
                 "% of base IPC"});
    // The custom-controller runs stay on a direct Simulator: they inject
    // a hand-built CtPolicy, which the declarative sweep grid cannot
    // express (and so cannot cache).
    const auto with =
        runArt(session.protocol(), AntiWindup::Conditional, base.ipc);
    const auto without =
        runArt(session.protocol(), AntiWindup::None, base.ipc);
    t.addRow({"conditional (paper)", formatPercent(with.emerg_frac, 3),
              formatDouble(with.max_temp, 2),
              formatPercent(with.rel_ipc, 1)});
    t.addRow({"none (windup)", formatPercent(without.emerg_frac, 3),
              formatDouble(without.max_temp, 2),
              formatPercent(without.rel_ipc, 1)});
    t.print(std::cout);

    std::cout << "\n(no-DTM art: emergency "
              << formatPercent(base.emergency_fraction, 2) << ", max "
              << formatDouble(base.max_temperature, 2) << " C)\n";
    return 0;
}
