/**
 * @file
 * Paper Section 2.1: microarchitectural techniques vs voltage/frequency
 * scaling as the DTM response.
 *
 * Expected shape: scaling eliminates emergencies (power falls roughly
 * with s*V^2), but the whole processor runs slower for as long as the
 * policy is engaged, and each transition stalls the pipeline while the
 * clock resynchronizes — so its performance cost exceeds the
 * fine-grained microarchitectural techniques, which is why the paper
 * (following Brooks & Martonosi) prefers toggling with scaling at most
 * as a backup.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Voltage/frequency scaling vs microarchitectural DTM",
        "Section 2.1 (scaling techniques)");

    const char *benches[] = {"186.crafty", "301.apsi", "177.mesa"};
    const DtmPolicyKind kinds[] = {DtmPolicyKind::VfScale,
                                   DtmPolicyKind::Toggle1,
                                   DtmPolicyKind::PID};

    SweepSpec spec = session.spec();
    for (const char *name : benches)
        spec.workload(specProfile(name));
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : kinds) {
        s.kind = kind;
        spec.policy(s);
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"benchmark", "policy", "perf (wall-clock norm.)",
                 "% of base", "emerg %", "max T (C)"});

    for (const char *name : benches) {
        const auto &base = res.at(
            name, dtmPolicyKindName(DtmPolicyKind::None));

        for (auto kind : kinds) {
            const auto &r = res.at(name, dtmPolicyKindName(kind));
            t.addRow({name, dtmPolicyKindName(kind),
                      formatDouble(r.ipc, 3),
                      formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n(performance is committed instructions per nominal "
                 "clock period of wall time,\nso the slower scaled clock "
                 "and its resynchronization stalls are charged)\n";
    return 0;
}
