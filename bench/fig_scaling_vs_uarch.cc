/**
 * @file
 * Paper Section 2.1: microarchitectural techniques vs voltage/frequency
 * scaling as the DTM response.
 *
 * Expected shape: scaling eliminates emergencies (power falls roughly
 * with s*V^2), but the whole processor runs slower for as long as the
 * policy is engaged, and each transition stalls the pipeline while the
 * clock resynchronizes — so its performance cost exceeds the
 * fine-grained microarchitectural techniques, which is why the paper
 * (following Brooks & Martonosi) prefers toggling with scaling at most
 * as a backup.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main()
{
    bench::printHeader(
        "Voltage/frequency scaling vs microarchitectural DTM",
        "Section 2.1 (scaling techniques)");

    ExperimentRunner runner(bench::standardProtocol());

    TextTable t;
    t.setHeader({"benchmark", "policy", "perf (wall-clock norm.)",
                 "% of base", "emerg %", "max T (C)"});

    for (const char *name : {"186.crafty", "301.apsi", "177.mesa"}) {
        auto profile = specProfile(name);
        DtmPolicySettings s;
        s.kind = DtmPolicyKind::None;
        const auto base = runner.runOne(profile, s);

        for (auto kind : {DtmPolicyKind::VfScale, DtmPolicyKind::Toggle1,
                          DtmPolicyKind::PID}) {
            s.kind = kind;
            const auto r = runner.runOne(profile, s);
            t.addRow({profile.name, dtmPolicyKindName(kind),
                      formatDouble(r.ipc, 3),
                      formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n(performance is committed instructions per nominal "
                 "clock period of wall time,\nso the slower scaled clock "
                 "and its resynchronization stalls are charged)\n";
    return 0;
}
