/**
 * @file
 * Paper Section 7 setpoint-sensitivity study: the PI and PID
 * controllers run with their standard setpoint (111.6, trigger within
 * 0.2 C of emergency) and with the lower alternative the paper also
 * tested (111.2, sensor range 111.0-111.4).
 *
 * Expected shape: the lower setpoint stays safe but costs additional
 * performance on the high-stress benchmarks, because toggling engages
 * when it is not yet needed; the robust controllers allow the tighter
 * setpoint with no emergencies — the core of the paper's argument for
 * feedback control.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv,
                           "Setpoint sensitivity of the PI/PID controllers",
                           "Section 7 (choice of setpoint)");

    const char *benches[] = {"176.gcc", "186.crafty", "191.fma3d",
                             "301.apsi", "177.mesa", "187.facerec"};

    SweepSpec spec = session.spec();
    for (const char *name : benches)
        spec.workload(specProfile(name));
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : {DtmPolicyKind::PI, DtmPolicyKind::PID}) {
        for (double setpoint : {111.6, 111.2}) {
            s.kind = kind;
            s.ct_setpoint = setpoint;
            s.ct_range_low = setpoint - 0.2;
            spec.policy(s, std::string(dtmPolicyKindName(kind)) + "@" +
                               formatDouble(setpoint, 1));
        }
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"benchmark", "policy", "setpoint", "% of base IPC",
                 "emerg %", "max T"});

    for (const char *name : benches) {
        const auto &base = res.at(
            name, dtmPolicyKindName(DtmPolicyKind::None));

        for (auto kind : {DtmPolicyKind::PI, DtmPolicyKind::PID}) {
            for (double setpoint : {111.6, 111.2}) {
                const auto &r =
                    res.at(name, std::string(dtmPolicyKindName(kind)) +
                                     "@" + formatDouble(setpoint, 1));
                t.addRow({name, dtmPolicyKindName(kind),
                          formatDouble(setpoint, 1),
                          formatPercent(r.ipc / base.ipc, 1),
                          formatPercent(r.emergency_fraction, 2),
                          formatDouble(r.max_temperature, 2)});
            }
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
