/**
 * @file
 * Paper Table 4: average IPC, power and temperature characteristics for
 * each benchmark without thermal management, plus the fraction of
 * cycles above the emergency threshold and above the stress level
 * (emergency - 1).
 *
 * "Avg temp" follows the paper's convention: ambient 27 C plus the
 * chip-wide thermal R (0.34 K/W) times average power. The emergency /
 * stress percentages use the per-structure RC model with the heatsink
 * risen to its loaded base temperature.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/config.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Table 4: per-benchmark IPC / power / thermal characteristics",
        "Table 4");

    const SimConfig cfg;
    auto results = session.characterizeAll();

    TextTable t;
    t.setHeader({"benchmark", "avg IPC", "avg pwr (W)", "avg temp (C)",
                 "% above " + formatDouble(cfg.thermal.t_emergency, 1),
                 "% above " + formatDouble(cfg.thermal.stressLevel(), 1)});
    for (const auto &r : results) {
        const double avg_temp = cfg.floorplan.ambient
            + cfg.floorplan.chip_resistance * r.avg_power;
        t.addRow({r.benchmark, formatDouble(r.ipc, 2),
                  formatDouble(r.avg_power, 1),
                  formatDouble(avg_temp, 1),
                  formatPercent(r.emergency_fraction, 2),
                  formatPercent(r.stress_fraction, 1)});
    }
    t.print(std::cout);

    int with_emergencies = 0;
    for (const auto &r : results)
        with_emergencies += r.emergency_fraction > 0.001;
    std::cout << "\nBenchmarks experiencing actual thermal emergencies: "
              << with_emergencies << " (paper: eight)\n";
    return 0;
}
