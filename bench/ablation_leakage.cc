/**
 * @file
 * Ablation (extension): temperature-dependent leakage power.
 *
 * At the paper's 0.18 um node leakage was negligible; at later nodes it
 * becomes the dominant thermal feedback — leakage grows exponentially
 * with temperature, so a hot structure leaks more and heats further.
 * This bench quantifies the loop: the same benchmark is run with
 * leakage off and at increasing reference fractions, reporting the
 * extra steady-state temperature and the extra work DTM must do.
 *
 * Expected shape: each increment of the leakage fraction raises hot-spot
 * temperatures super-linearly (the exponential closes the loop), no-DTM
 * emergencies grow, and the PID controller compensates by holding a
 * lower duty — until the clock-gating floor plus leakage exceeds what
 * toggling can remove.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: temperature-dependent leakage feedback",
        "extension (leakage; cf. the paper's Wong et al. citation)");

    auto profile = specProfile("186.crafty");
    const double fracs[] = {0.0, 0.02, 0.04, 0.06};

    SweepSpec spec = session.spec();
    spec.workload(profile);
    for (auto kind : {DtmPolicyKind::None, DtmPolicyKind::PID}) {
        DtmPolicySettings s;
        s.kind = kind;
        spec.policy(s);
    }
    for (double frac : fracs) {
        spec.variant("leak" + formatPercent(frac, 0),
                     [frac](SimConfig &cfg) {
                         cfg.power.leakage_enabled = frac > 0.0;
                         cfg.power.leakage_fraction_at_ref = frac;
                         // Reference the fraction at the operating point
                         // so the knob is directly interpretable.
                         cfg.power.leakage_ref_temp = 110.0;
                     });
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"leakage @110C", "policy", "avg pwr (W)", "emerg %",
                 "max T (C)", "mean duty"});

    for (double frac : fracs) {
        for (auto kind : {DtmPolicyKind::None, DtmPolicyKind::PID}) {
            const auto &r = res.at(profile.name, dtmPolicyKindName(kind),
                                   "leak" + formatPercent(frac, 0));
            t.addRow({formatPercent(frac, 0), dtmPolicyKindName(kind),
                      formatDouble(r.avg_power, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2),
                      formatDouble(r.mean_duty, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
