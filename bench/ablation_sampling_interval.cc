/**
 * @file
 * Ablation (paper Section 5.3 future work): sensitivity of the PID
 * CT-DTM scheme to the controller sampling interval. The paper samples
 * every 1000 cycles and conjectures that "a longer sampling interval
 * [could be used] without significantly affecting accuracy, since the
 * thermal time constants are ... much greater than 667 nanosec."
 *
 * Expected shape: performance and safety are flat across a wide range
 * of intervals, degrading only when the interval becomes a significant
 * fraction of the block thermal time constants (~10^5 cycles).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Ablation: controller sampling interval (PID on crafty)",
        "Section 5.3 (sampling-interval conjecture)");

    auto profile = specProfile("186.crafty");
    const Cycle intervals[] = {250u,  500u,   1000u,  2000u,
                               4000u, 8000u, 16000u, 32000u};

    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    const auto base = session.runOne(profile, none);

    SweepSpec spec = session.spec();
    spec.workload(profile);
    DtmPolicySettings pid;
    pid.kind = DtmPolicyKind::PID;
    spec.policy(pid);
    for (Cycle interval : intervals) {
        spec.variant(std::to_string(interval) + "cyc",
                     [interval](SimConfig &cfg) {
                         cfg.dtm.sample_interval = interval;
                     });
    }
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"interval (cycles)", "% of base IPC", "emerg %",
                 "max T (C)", "mean duty"});
    for (Cycle interval : intervals) {
        const auto &r =
            res.at(profile.name, dtmPolicyKindName(DtmPolicyKind::PID),
                   std::to_string(interval) + "cyc");
        t.addRow({std::to_string(interval),
                  formatPercent(r.ipc / base.ipc, 1),
                  formatPercent(r.emergency_fraction, 3),
                  formatDouble(r.max_temperature, 2),
                  formatDouble(r.mean_duty, 2)});
    }
    t.print(std::cout);
    return 0;
}
