/**
 * @file
 * Paper Section 2.1: "a realistic implementation might employ a
 * hierarchy of TM techniques: for example, a low-cost mechanism like
 * toggling might be used with a high trigger threshold. Only when
 * temperature gets truly close to emergency would auxiliary mechanisms
 * like voltage/frequency scaling be employed."
 *
 * Scenario: degraded cooling (base temperature risen from 108.0 to
 * 110.2 C — a failing fan or hot ambient). Fetch toggling saturates:
 * even with fetch fully off, the 10% conditional-clocking floor keeps
 * the hottest structure above the emergency level, so PID toggling
 * alone cannot protect the chip. The hierarchical policy's V/f backup
 * (engaging only above 111.75 C) cuts the floor power by ~2x in
 * voltage-squared and restores safety. Under normal cooling the backup
 * never engages and the hierarchical policy behaves exactly like PID.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv,
        "Hierarchical DTM: PID toggling with a V/f scaling backup",
        "Section 2.1 (hierarchy of TM techniques)");

    auto profile = specProfile("301.apsi");
    const DtmPolicyKind kinds[] = {DtmPolicyKind::PID,
                                   DtmPolicyKind::VfScale,
                                   DtmPolicyKind::Hierarchical};

    SweepSpec spec = session.spec();
    spec.workload(profile);
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    spec.policy(s);
    for (auto kind : kinds) {
        s.kind = kind;
        spec.policy(s);
    }
    spec.variant("normal",
                 [](SimConfig &cfg) { cfg.thermal.t_base = 108.0; });
    spec.variant("degraded",
                 [](SimConfig &cfg) { cfg.thermal.t_base = 110.2; });
    const SweepResults res = session.run(spec);

    TextTable t;
    t.setHeader({"cooling", "policy", "perf (wall-norm.)", "% of base",
                 "emerg %", "max T (C)"});

    for (const char *cooling : {"normal", "degraded"}) {
        const auto &base = res.at(
            profile.name, dtmPolicyKindName(DtmPolicyKind::None), cooling);

        const std::string label = std::string(cooling) == "normal"
            ? "normal (108.0)"
            : "degraded (110.2)";
        for (auto kind : kinds) {
            const auto &r =
                res.at(profile.name, dtmPolicyKindName(kind), cooling);
            t.addRow({label, dtmPolicyKindName(kind),
                      formatDouble(r.ipc, 3),
                      formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n(under degraded cooling, toggling saturates at its "
                 "clock-gating floor and PID\nalone cannot stay below "
                 "emergency; the hierarchical backup engages scaling "
                 "only\nwhen 'truly close to emergency' and restores "
                 "safety at far lower cost than\nscaling everything "
                 "all the time)\n";
    return 0;
}
