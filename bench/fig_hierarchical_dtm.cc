/**
 * @file
 * Paper Section 2.1: "a realistic implementation might employ a
 * hierarchy of TM techniques: for example, a low-cost mechanism like
 * toggling might be used with a high trigger threshold. Only when
 * temperature gets truly close to emergency would auxiliary mechanisms
 * like voltage/frequency scaling be employed."
 *
 * Scenario: degraded cooling (base temperature risen from 108.0 to
 * 110.2 C — a failing fan or hot ambient). Fetch toggling saturates:
 * even with fetch fully off, the 10% conditional-clocking floor keeps
 * the hottest structure above the emergency level, so PID toggling
 * alone cannot protect the chip. The hierarchical policy's V/f backup
 * (engaging only above 111.75 C) cuts the floor power by ~2x in
 * voltage-squared and restores safety. Under normal cooling the backup
 * never engages and the hierarchical policy behaves exactly like PID.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main()
{
    bench::printHeader(
        "Hierarchical DTM: PID toggling with a V/f scaling backup",
        "Section 2.1 (hierarchy of TM techniques)");

    ExperimentRunner runner(bench::standardProtocol());
    auto profile = specProfile("301.apsi");

    TextTable t;
    t.setHeader({"cooling", "policy", "perf (wall-norm.)", "% of base",
                 "emerg %", "max T (C)"});

    for (Celsius t_base : {108.0, 110.2}) {
        SimConfig cfg;
        cfg.thermal.t_base = t_base;

        DtmPolicySettings s;
        s.kind = DtmPolicyKind::None;
        const auto base = runner.runOne(profile, s, cfg);

        const std::string label = t_base == 108.0
            ? "normal (108.0)"
            : "degraded (110.2)";
        for (auto kind : {DtmPolicyKind::PID, DtmPolicyKind::VfScale,
                          DtmPolicyKind::Hierarchical}) {
            s.kind = kind;
            const auto r = runner.runOne(profile, s, cfg);
            t.addRow({label, dtmPolicyKindName(kind),
                      formatDouble(r.ipc, 3),
                      formatPercent(r.ipc / base.ipc, 1),
                      formatPercent(r.emergency_fraction, 2),
                      formatDouble(r.max_temperature, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n(under degraded cooling, toggling saturates at its "
                 "clock-gating floor and PID\nalone cannot stay below "
                 "emergency; the hierarchical backup engages scaling "
                 "only\nwhen 'truly close to emergency' and restores "
                 "safety at far lower cost than\nscaling everything "
                 "all the time)\n";
    return 0;
}
