/**
 * @file
 * Paper Table 2: configuration of the simulated processor
 * microarchitecture. Printed from the live configuration structs so the
 * table is guaranteed to match what every other experiment simulates.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/config.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv, "Table 2: simulated processor configuration",
        "Table 2");

    const SimConfig cfg;
    const auto &cpu = cfg.cpu;
    const auto &mem = cfg.memory;
    const auto &tech = cfg.power.tech;

    TextTable t;
    t.setHeader({"parameter", "value"});
    t.addRow({"technology", formatDouble(tech.feature_um, 2) + " um, "
                                + formatDouble(tech.vdd, 1) + " V, "
                                + formatDouble(tech.freq_hz / 1e9, 1)
                                + " GHz"});
    t.addRule();
    t.addRow({"instruction window",
              std::to_string(cpu.window_size) + "-RUU, "
                  + std::to_string(cpu.lsq_size) + "-LSQ"});
    t.addRow({"issue width",
              std::to_string(cpu.int_issue_width + cpu.fp_issue_width)
                  + " per cycle (" + std::to_string(cpu.int_issue_width)
                  + " Int, " + std::to_string(cpu.fp_issue_width)
                  + " FP)"});
    t.addRow({"functional units",
              std::to_string(cpu.num_int_alu) + " IntALU, "
                  + std::to_string(cpu.num_int_mult) + " IntMult/Div, "
                  + std::to_string(cpu.num_fp_alu) + " FPALU, "
                  + std::to_string(cpu.num_fp_mult) + " FPMult/Div, "
                  + std::to_string(cpu.num_mem_ports) + " mem ports"});
    t.addRow({"fetch / dispatch / commit",
              std::to_string(cpu.fetch_width) + " / "
                  + std::to_string(cpu.dispatch_width) + " / "
                  + std::to_string(cpu.commit_width)});
    t.addRow({"extra rename/enqueue stages",
              std::to_string(cpu.frontend_depth - 2)
                  + " (between decode and issue)"});
    t.addRule();
    auto cache_row = [&](const char *label, const CacheConfig &c) {
        t.addRow({label,
                  std::to_string(c.size_bytes / 1024) + " KB, "
                      + std::to_string(c.assoc) + "-way LRU, "
                      + std::to_string(c.block_bytes) + " B blocks, "
                      + std::to_string(c.hit_latency)
                      + "-cycle latency"});
    };
    cache_row("L1 D-cache", mem.l1d);
    cache_row("L1 I-cache", mem.l1i);
    t.addRow({"L2 unified",
              std::to_string(mem.l2.size_bytes / 1024 / 1024) + " MB, "
                  + std::to_string(mem.l2.assoc) + "-way LRU, "
                  + std::to_string(mem.l2.block_bytes) + " B blocks, "
                  + std::to_string(mem.l2.hit_latency)
                  + "-cycle latency, WB"});
    t.addRow({"memory",
              std::to_string(mem.memory_latency) + " cycles"});
    t.addRow({"TLB",
              std::to_string(mem.tlb.entries) + "-entry, fully assoc., "
                  + std::to_string(mem.tlb.miss_penalty)
                  + "-cycle miss penalty"});
    t.addRule();
    const auto &bp = cpu.bpred;
    t.addRow({"branch predictor",
              "hybrid: " + std::to_string(bp.bimod_entries / 1024)
                  + "K bimod + " + std::to_string(bp.gag_entries / 1024)
                  + "K/" + std::to_string(bp.gag_history_bits)
                  + "-bit GAg, "
                  + std::to_string(bp.chooser_entries / 1024)
                  + "K bimod-style chooser"});
    t.addRow({"branch target buffer",
              std::to_string(bp.btb_entries / 1024) + "K-entry, "
                  + std::to_string(bp.btb_ways) + "-way"});
    t.addRow({"return-address stack",
              std::to_string(bp.ras_entries) + "-entry"});

    t.print(std::cout);
    return 0;
}
