/**
 * @file
 * Tests for the Section 2.1 auxiliary DTM mechanisms (fetch throttling,
 * speculation control, voltage/frequency scaling) and the grid-refined
 * thermal model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"
#include "thermal/grid_model.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"

namespace thermctl
{
namespace
{

TemperatureVector
uniformTemps(Celsius t)
{
    TemperatureVector v;
    v.value.fill(t);
    return v;
}

// ------------------------------------------------------- core actuators

TEST(CoreActuators, FetchWidthLimitReducesThroughput)
{
    auto run_ipc = [](std::uint32_t limit) {
        SyntheticWorkload wl(specProfile("186.crafty"));
        MemoryHierarchy mem;
        Core core(CpuConfig{}, wl, mem);
        core.setFetchWidthLimit(limit);
        for (int i = 0; i < 60000; ++i)
            core.tick();
        return core.stats().ipc();
    };
    const double full = run_ipc(0);
    const double limited = run_ipc(1);
    EXPECT_LT(limited, 0.8 * full);
    EXPECT_LE(limited, 1.05); // at most ~1 op per cycle fetched
}

TEST(CoreActuators, ThrottlingKeepsFrontEndBusy)
{
    // The paper's criticism of throttling: the I-cache and predictor
    // are still accessed every cycle, so front-end hot spots persist.
    SyntheticWorkload wl(specProfile("186.crafty"));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, wl, mem);
    core.setFetchWidthLimit(1);
    std::uint64_t icache_accesses = 0;
    const int cycles = 20000;
    for (int i = 0; i < cycles; ++i) {
        core.tick();
        icache_accesses += core.activity().icache_accesses;
    }
    // Fetch still fires most cycles (modulo stalls/backpressure).
    EXPECT_GT(icache_accesses, cycles / 2u);
}

TEST(CoreActuators, SpeculationLimitBlocksFetch)
{
    auto run = [](std::uint32_t limit) {
        SyntheticWorkload wl(specProfile("253.perlbmk")); // branchy
        MemoryHierarchy mem;
        Core core(CpuConfig{}, wl, mem);
        core.setSpeculationLimit(limit);
        for (int i = 0; i < 60000; ++i) {
            core.tick();
            if (limit) {
                // The invariant can overshoot by at most one fetch
                // group between checks.
                EXPECT_LE(core.unresolvedBranches(), limit + 4);
            }
        }
        return core.stats().ipc();
    };
    const double free_ipc = run(0);
    const double limited_ipc = run(1);
    EXPECT_LT(limited_ipc, 0.9 * free_ipc);
}

TEST(CoreActuators, SpecControlHarmlessWithPerfectPrediction)
{
    // A tight predictable loop keeps few branches unresolved, so
    // speculation control barely engages — the paper's point that the
    // technique is "ineffective for programs with excellent branch
    // prediction".
    auto run = [](std::uint32_t limit) {
        WorkloadProfile p;
        p.name = "predictable";
        p.seed = 7;
        p.frac_loop_branches = 1.0;
        p.frac_biased_branches = 0.0;
        p.frac_patterned_branches = 0.0;
        p.frac_random_branches = 0.0;
        p.mean_trip_count = 64.0;
        p.mean_block_len = 10.0;
        SyntheticWorkload wl(p);
        MemoryHierarchy mem;
        Core core(CpuConfig{}, wl, mem);
        core.setSpeculationLimit(limit);
        for (int i = 0; i < 60000; ++i)
            core.tick();
        return core.stats().ipc();
    };
    const double free_ipc = run(0);
    const double limited_ipc = run(4);
    EXPECT_GT(limited_ipc, 0.75 * free_ipc);
}

// ------------------------------------------------------- policy objects

TEST(AuxPolicies, ThrottleEngagesWidthLimit)
{
    FetchThrottlePolicy policy(2, 110.8, 5000);
    auto cmd = policy.onSample(uniformTemps(111.0), 0);
    EXPECT_EQ(cmd.width_limit, 2u);
    EXPECT_DOUBLE_EQ(cmd.duty, 1.0);
    cmd = policy.onSample(uniformTemps(110.0), 10000);
    EXPECT_EQ(cmd.width_limit, 0u);
}

TEST(AuxPolicies, SpecControlEngagesBranchLimit)
{
    SpeculationControlPolicy policy(2, 110.8, 5000);
    auto cmd = policy.onSample(uniformTemps(111.0), 0);
    EXPECT_EQ(cmd.spec_limit, 2u);
    EXPECT_EQ(policy.name(), "spec-ctrl");
}

TEST(AuxPolicies, VfScalingEngagesFrequencyScale)
{
    VoltageScalingPolicy policy(0.7, 110.8, 5000);
    auto cmd = policy.onSample(uniformTemps(111.0), 0);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 0.7);
    cmd = policy.onSample(uniformTemps(110.0), 10000);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 1.0);
}

TEST(AuxPolicies, ValidateParameters)
{
    EXPECT_THROW(FetchThrottlePolicy(0, 110.8, 1), FatalError);
    EXPECT_THROW(SpeculationControlPolicy(0, 110.8, 1), FatalError);
    EXPECT_THROW(VoltageScalingPolicy(0.0, 110.8, 1), FatalError);
    EXPECT_THROW(VoltageScalingPolicy(1.0, 110.8, 1), FatalError);
}

// ------------------------------------------------- simulator scaling

TEST(VfScaling, SlowsWallClockAndCoolsChip)
{
    SimConfig hot;
    hot.workload = specProfile("186.crafty");
    hot.policy.kind = DtmPolicyKind::None;

    SimConfig scaled = hot;
    scaled.policy.kind = DtmPolicyKind::VfScale;

    Simulator a(hot), b(scaled);
    a.warmUp(300000);
    b.warmUp(300000);
    a.run(400000);
    b.run(400000);

    // Scaling engages on crafty: performance (wall-clock normalized)
    // drops below the baseline and below plain cycle-IPC. (The clock
    // may be back at nominal at the instant the run ends, so the scale
    // itself is not asserted.)
    EXPECT_LT(b.measuredPerformance(), 0.95 * a.measuredPerformance());
    EXPECT_LT(b.measuredPerformance(), b.measuredIpc());
    // And the chip runs cooler.
    EXPECT_LT(b.dtm().stats().max_temperature,
              a.dtm().stats().max_temperature);
    // Without scaling the two metrics agree.
    EXPECT_NEAR(a.measuredPerformance(), a.measuredIpc(), 1e-9);
}

TEST(VfScaling, ResyncStallsFetch)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::VfScale;
    cfg.dtm.resync_cycles = 50000;
    Simulator sim(cfg);
    sim.warmUp(300000); // gets hot, scaling engages at least once
    sim.run(200000);
    // The fetch-gated cycles include the resynchronization stalls.
    EXPECT_GT(sim.core().stats().fetch_gated_cycles, 20000u);
}

// --------------------------------------------------- manager pass-through

TEST(ManagerCommands, CommandFieldsReachTheSimulatorPath)
{
    DtmConfig cfg;
    cfg.sample_interval = 10;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal,
                   std::make_unique<FetchThrottlePolicy>(2, 110.8,
                                                         100000));
    // Cool: default command.
    mgr.tick(uniformTemps(109.0), 0);
    EXPECT_EQ(mgr.command().width_limit, 0u);
    // Hot: throttle engages on the next sample.
    mgr.tick(uniformTemps(111.5), 10);
    EXPECT_EQ(mgr.command().width_limit, 2u);
    EXPECT_DOUBLE_EQ(mgr.command().duty, 1.0);
}

TEST(ManagerCommands, InterruptDelaysWholeCommand)
{
    DtmConfig cfg;
    cfg.sample_interval = 10;
    cfg.engagement = EngagementMechanism::Interrupt;
    cfg.interrupt_delay = 40;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal,
                   std::make_unique<VoltageScalingPolicy>(0.7, 110.8,
                                                          100000));
    for (Cycle c = 0; c < 30; ++c) {
        mgr.tick(uniformTemps(111.5), c);
        EXPECT_DOUBLE_EQ(mgr.command().freq_scale, 1.0) << c;
    }
    for (Cycle c = 30; c < 60; ++c)
        mgr.tick(uniformTemps(111.5), c);
    EXPECT_DOUBLE_EQ(mgr.command().freq_scale, 0.7);
}

// ------------------------------------------------------ scaled RC steps

TEST(ScaledThermalStep, MatchesRepeatedUnitSteps)
{
    Floorplan fp;
    ThermalConfig cfg;
    const double dt = 1.0 / 1.5e9;
    SimplifiedRCModel a(fp, cfg, dt);
    SimplifiedRCModel b(fp, cfg, dt);
    PowerVector p;
    p.value.fill(2.0);
    for (int i = 0; i < 20000; ++i) {
        a.stepScaled(p, 2.0);
        b.step(p);
        b.step(p);
    }
    for (StructureId id : kAllStructures) {
        // First-order Euler difference only; must agree tightly at
        // dt << RC.
        EXPECT_NEAR(a.temperatures()[id], b.temperatures()[id], 1e-4)
            << structureName(id);
    }
}

// ----------------------------------------------------------- grid model

TEST(GridModel, AgreesWithLumpedModelForUniformHeating)
{
    Floorplan fp;
    ThermalConfig cfg;
    const double dt = 1.0 / 1.5e9;
    SimplifiedRCModel lumped(fp, cfg, dt);
    GridThermalModel grid(fp, cfg, dt, 0.5);

    // Heat one block steadily; compare steady states.
    PowerVector p;
    p[StructureId::DCache] = 2.0;
    lumped.stepExact(p, 3'000'000);
    grid.stepSpan(p, 3'000'000);

    const double t_lumped = lumped.temperatures()[StructureId::DCache];
    const double t_grid = grid.blockMean(StructureId::DCache);
    // Lateral bleed makes the grid block slightly cooler on average;
    // they agree within ~20% of the rise.
    EXPECT_NEAR(t_grid, t_lumped, 0.2 * (t_lumped - cfg.t_base));
}

TEST(GridModel, ResolvesWithinBlockGradients)
{
    Floorplan fp;
    ThermalConfig cfg;
    GridThermalModel grid(fp, cfg, 1.0 / 1.5e9, 0.5);
    PowerVector p;
    p[StructureId::FpExec] = 4.0;
    grid.stepSpan(p, 3'000'000);
    // The heated block's interior is hotter than its edges.
    EXPECT_GT(grid.blockGradient(StructureId::FpExec), 0.1);
    // Neighbours pick up lateral heat; remote blocks stay near base.
    EXPECT_GT(grid.blockMean(StructureId::Regfile), cfg.t_base + 0.05);
    EXPECT_LT(grid.blockMean(StructureId::DCache),
              grid.blockMean(StructureId::Regfile));
}

TEST(GridModel, DieMaxAndCellQueries)
{
    Floorplan fp;
    ThermalConfig cfg;
    GridThermalModel grid(fp, cfg, 1.0 / 1.5e9, 0.5);
    PowerVector p;
    p[StructureId::IntExec] = 5.0;
    grid.stepSpan(p, 2'000'000);
    const auto &rect = fp.rect(StructureId::IntExec);
    const double cx = rect.x_mm + rect.w_mm / 2;
    const double cy = rect.y_mm + rect.h_mm / 2;
    EXPECT_GT(grid.cellAt(cx, cy), cfg.t_base + 1.0);
    EXPECT_NEAR(grid.dieMax(), grid.blockMax(StructureId::IntExec),
                1e-9);
}

TEST(GridModel, RejectsBadResolution)
{
    Floorplan fp;
    ThermalConfig cfg;
    EXPECT_THROW(GridThermalModel(fp, cfg, 1.0 / 1.5e9, 0.3),
                 FatalError);
    EXPECT_THROW(GridThermalModel(fp, cfg, 0.0, 0.5), FatalError);
}

TEST(GridModel, SetUniformResets)
{
    Floorplan fp;
    ThermalConfig cfg;
    GridThermalModel grid(fp, cfg, 1.0 / 1.5e9, 1.0);
    PowerVector p;
    p[StructureId::Lsq] = 3.0;
    grid.stepSpan(p, 500000);
    grid.setUniform(cfg.t_base);
    EXPECT_DOUBLE_EQ(grid.dieMax(), cfg.t_base);
}

} // namespace
} // namespace thermctl
