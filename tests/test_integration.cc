/**
 * @file
 * End-to-end integration tests reproducing the paper's key claims in
 * miniature: CT-DTM holds the chip out of thermal emergency with far
 * less performance loss than fixed-response toggling, and the boxcar
 * power proxy misses localized emergencies that the RC model sees.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "thermal/boxcar.hh"
#include "workload/spec_profiles.hh"

namespace thermctl
{
namespace
{

RunProtocol
shortProtocol()
{
    RunProtocol proto;
    proto.warmup_cycles = 150000;
    proto.measure_cycles = 500000;
    return proto;
}

class DtmPolicyInvariant
    : public ::testing::TestWithParam<DtmPolicyKind>
{
};

/**
 * The paper's hard requirement: every DTM policy except toggle2 must
 * never let any structure exceed the emergency threshold, on the
 * hottest steady benchmark.
 */
TEST_P(DtmPolicyInvariant, NoEmergenciesOnHottestBenchmark)
{
    const DtmPolicyKind kind = GetParam();
    ExperimentRunner runner(shortProtocol());
    DtmPolicySettings policy;
    policy.kind = kind;
    auto r = runner.runOne(specProfile("301.apsi"), policy);
    EXPECT_DOUBLE_EQ(r.emergency_fraction, 0.0)
        << dtmPolicyKindName(kind);
    SimConfig cfg;
    EXPECT_LE(r.max_temperature, cfg.thermal.t_emergency)
        << dtmPolicyKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(Policies, DtmPolicyInvariant,
                         ::testing::Values(DtmPolicyKind::Toggle1,
                                           DtmPolicyKind::Manual,
                                           DtmPolicyKind::P,
                                           DtmPolicyKind::PI,
                                           DtmPolicyKind::PID));

TEST(Integration, CtDtmBeatsFixedToggling)
{
    // The headline: PI/PID cut the performance loss of DTM by a large
    // factor relative to toggle1 while still eliminating emergencies.
    ExperimentRunner runner(shortProtocol());
    const auto profile = specProfile("186.crafty");

    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    const double base_ipc = runner.runOne(profile, s).ipc;

    s.kind = DtmPolicyKind::Toggle1;
    auto t1 = runner.runOne(profile, s);
    s.kind = DtmPolicyKind::PID;
    auto pid = runner.runOne(profile, s);

    const double loss_t1 = 1.0 - t1.ipc / base_ipc;
    const double loss_pid = 1.0 - pid.ipc / base_ipc;
    EXPECT_GT(loss_t1, 0.2);
    // At least a 50% reduction in performance loss (the paper: 65%).
    EXPECT_LT(loss_pid, 0.5 * loss_t1);
    EXPECT_DOUBLE_EQ(pid.emergency_fraction, 0.0);
}

TEST(Integration, Toggle2CannotStopBurstyEmergencies)
{
    // toggle2 halves fetch but cannot stop fetching entirely, so the
    // bursty art profile still reaches emergency (paper Section 2.1).
    ExperimentRunner runner(shortProtocol());
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::Toggle2;
    auto r = runner.runOne(specProfile("179.art"), s);
    EXPECT_GT(r.emergency_fraction, 0.0);
}

TEST(Integration, PidHoldsTemperatureNearSetpoint)
{
    // With the PI/PID setpoint at 111.6 and emergency at 111.8, the
    // controller keeps the hottest structure pinned within the band:
    // above the trigger floor, never across the emergency line.
    SimConfig cfg;
    cfg.workload = specProfile("191.fma3d");
    cfg.policy.kind = DtmPolicyKind::PID;
    Simulator sim(cfg);
    sim.warmUp(200000);

    Celsius max_seen = 0.0;
    Accumulator hottest;
    sim.setProbe(
        [&](const Simulator &s, Cycle) {
            const Celsius t = s.thermal().temperatures().maxHotspot();
            hottest.add(t);
            max_seen = std::max(max_seen, t);
        },
        1000);
    sim.run(400000);

    EXPECT_LE(max_seen, cfg.thermal.t_emergency);
    // Time-average of the hottest structure sits near the setpoint.
    EXPECT_NEAR(hottest.mean(), cfg.policy.ct_setpoint, 0.25);
}

TEST(Integration, LowBenchmarksNeverEngageDtm)
{
    ExperimentRunner runner(shortProtocol());
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::PID;
    auto r = runner.runOne(specProfile("164.gzip"), s);
    // Cool benchmark: the controller stays quiescent and costs nothing.
    EXPECT_NEAR(r.mean_duty, 1.0, 1e-9);
    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    auto base = runner.runOne(specProfile("164.gzip"), none);
    EXPECT_NEAR(r.ipc, base.ipc, 0.02 * base.ipc);
}

TEST(Integration, CategoriesReproduceUnderClassifier)
{
    // Spot-check one representative per category (the full 18-benchmark
    // sweep lives in bench/table5_categories). Band-edge categories need
    // the full protocol: stress fractions shift with window length.
    RunProtocol proto;
    proto.warmup_cycles = 300000;
    proto.measure_cycles = 1000000;
    ExperimentRunner runner(proto);
    DtmPolicySettings none;
    none.kind = DtmPolicyKind::None;
    const std::pair<const char *, ThermalCategory> cases[] = {
        {"186.crafty", ThermalCategory::Extreme},
        {"177.mesa", ThermalCategory::High},
        {"168.wupwise", ThermalCategory::Medium},
        {"164.gzip", ThermalCategory::Low},
    };
    for (const auto &[name, expected] : cases) {
        auto r = runner.runOne(specProfile(name), none);
        EXPECT_EQ(classifyThermalBehaviour(r), expected) << name;
    }
}

TEST(Integration, ChipWideProxyMissesLocalizedEmergencies)
{
    // Paper Section 6 / Table 10 in miniature: drive the RC model and a
    // chip-wide boxcar proxy from the same simulation; the proxy (47 W
    // trigger) misses essentially all localized emergency cycles.
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    Simulator sim(cfg);
    ChipBoxcarProxy proxy(10000, 47.0);
    ProxyComparison cmp;
    sim.warmUp(150000);
    for (int i = 0; i < 300000; ++i) {
        sim.tick();
        proxy.add(sim.lastPower().total());
        const bool hot = sim.thermal().temperatures().maxHotspot()
            > cfg.thermal.t_emergency;
        cmp.record(hot, proxy.triggered());
    }
    EXPECT_GT(cmp.reference_emergencies, 1000u);
    EXPECT_GT(cmp.missRate(), 0.9);
}

} // namespace
} // namespace thermctl
