/**
 * @file
 * Standalone corpus-replay driver for the fuzz harnesses.
 *
 * Linked with a harness's LLVMFuzzerTestOneInput in plain (non-libFuzzer)
 * builds, it feeds every file named on the command line — directories
 * are walked recursively, entries sorted for determinism — through the
 * harness exactly once. This is how the committed regression corpus runs
 * as an ordinary ctest on any compiler, sanitized or not.
 *
 * Exit status: 0 after replaying at least one input, 1 when the corpus
 * resolved to zero inputs (a misconfigured path must fail the test, not
 * silently pass), 2 on I/O errors.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace fs = std::filesystem;

namespace
{

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s CORPUS_FILE_OR_DIR...\n", argv[0]);
        return 2;
    }

    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        std::error_code ec;
        if (fs::is_directory(argv[i], ec)) {
            std::vector<fs::path> batch;
            for (const auto &entry :
                 fs::recursive_directory_iterator(argv[i], ec))
                if (entry.is_regular_file())
                    batch.push_back(entry.path());
            std::sort(batch.begin(), batch.end());
            inputs.insert(inputs.end(), batch.begin(), batch.end());
        } else if (fs::is_regular_file(argv[i], ec)) {
            inputs.emplace_back(argv[i]);
        } else {
            std::fprintf(stderr, "replay: no such file or directory: %s\n",
                         argv[i]);
            return 2;
        }
    }

    for (const fs::path &p : inputs) {
        std::string bytes;
        if (!readFile(p, bytes)) {
            std::fprintf(stderr, "replay: cannot read %s\n",
                         p.string().c_str());
            return 2;
        }
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const std::uint8_t *>(bytes.data()),
            bytes.size());
    }

    if (inputs.empty()) {
        std::fprintf(stderr, "replay: corpus resolved to zero inputs\n");
        return 1;
    }
    std::printf("replayed %zu corpus inputs\n", inputs.size());
    return 0;
}
