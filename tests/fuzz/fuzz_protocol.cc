/**
 * @file
 * Fuzz harness for the thermctl-serve wire protocol (serve/protocol.cc).
 *
 * Input layout: byte 0 selects what to decode, the rest is the payload.
 * Selector 0 exercises frame-header validation; the others hit each
 * message type's decode(). Hostile payloads must never crash, and a
 * payload that decodes must survive the canonical round trip:
 * decode -> encode -> decode yields the same encoding (the encoder is
 * the single source of canonical form, so re-encoding a decoded value
 * is bit-stable).
 */

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_common.hh"
#include "serve/protocol.hh"

using namespace thermctl::serve;

namespace
{

/** decode -> encode -> decode must reproduce the first encoding. */
template <typename Msg>
void
checkMessage(std::string_view payload)
{
    Msg msg;
    if (!Msg::decode(payload, msg))
        return;
    const std::string once = msg.encode();
    Msg again;
    FUZZ_ASSERT(Msg::decode(once, again));
    FUZZ_ASSERT(again.encode() == once);
}

void
checkFrameHeader(std::string_view bytes)
{
    FrameHeader hdr;
    const FrameStatus status = decodeFrameHeader(bytes, hdr);
    if (status != FrameStatus::Ok)
        return;
    FUZZ_ASSERT(hdr.payload_len <= kMaxFramePayload);
    FUZZ_ASSERT(msgTypeValid(static_cast<std::uint8_t>(hdr.type)));
    // A valid header must round-trip through encodeFrame's header.
    const std::string frame = encodeFrame(hdr.type, "");
    FrameHeader echo;
    FUZZ_ASSERT(decodeFrameHeader(
                    std::string_view(frame).substr(0, kFrameHeaderBytes),
                    echo)
                == FrameStatus::Ok);
    FUZZ_ASSERT(echo.type == hdr.type);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size == 0)
        return 0;
    const std::string_view payload =
        thermctl::fuzz::asView(data + 1, size - 1);

    switch (data[0] % 14) {
      case 0:
        checkFrameHeader(payload);
        break;
      case 1:
        checkMessage<RunRequest>(payload);
        break;
      case 2:
        checkMessage<SweepRequest>(payload);
        break;
      case 3:
        checkMessage<CacheQueryRequest>(payload);
        break;
      case 4:
        checkMessage<StatsRequest>(payload);
        break;
      case 5:
        checkMessage<DrainRequest>(payload);
        break;
      case 6:
        checkMessage<RunReply>(payload);
        break;
      case 7:
        checkMessage<SweepReply>(payload);
        break;
      case 8:
        checkMessage<CacheQueryReply>(payload);
        break;
      case 9:
        checkMessage<StatsReply>(payload);
        break;
      case 10:
        checkMessage<DrainReply>(payload);
        break;
      case 11:
        checkMessage<ErrorReply>(payload);
        break;
      case 12:
        checkMessage<PingRequest>(payload);
        break;
      case 13:
        checkMessage<PingReply>(payload);
        break;
    }
    return 0;
}
