/**
 * @file
 * Shared helpers for the thermctl fuzz harnesses.
 *
 * Each harness defines LLVMFuzzerTestOneInput and builds two ways:
 *
 *   THERMCTL_FUZZ=ON (Clang)   linked with -fsanitize=fuzzer into a
 *                              coverage-guided libFuzzer binary
 *   plain build (any compiler) linked with replay_main.cc into a
 *                              corpus-replay binary that runs the
 *                              committed corpus as an ordinary ctest
 *
 * Invariant violations abort via FUZZ_ASSERT so both the fuzzer and the
 * replay driver (under ASan/UBSan or not) report them as crashes.
 */

#ifndef THERMCTL_TESTS_FUZZ_FUZZ_COMMON_HH
#define THERMCTL_TESTS_FUZZ_FUZZ_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

/** Abort (don't throw) so every build mode surfaces the violation. */
#define FUZZ_ASSERT(cond)                                                  \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n",      \
                         __FILE__, __LINE__, #cond);                       \
            std::abort();                                                  \
        }                                                                  \
    } while (0)

namespace thermctl::fuzz
{

/** View over the raw fuzz input. */
inline std::string_view
asView(const std::uint8_t *data, std::size_t size)
{
    return {reinterpret_cast<const char *>(data), size};
}

} // namespace thermctl::fuzz

#endif // THERMCTL_TESTS_FUZZ_FUZZ_COMMON_HH
