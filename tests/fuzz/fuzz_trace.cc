/**
 * @file
 * Fuzz harness for the binary micro-op trace parser (workload/trace.cc).
 *
 * decodeTrace() is the validation core behind TraceReader: header magic
 * and version, record count cross-checked against the byte length
 * before any allocation, and a per-record op-class range check.
 * Invariants under hostile bytes: never crash, never allocate from an
 * unvalidated count, and always produce either a non-empty ops vector
 * (success) or a non-empty diagnostic (failure) — never both empty.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_common.hh"
#include "workload/trace.hh"

using namespace thermctl;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::vector<MicroOp> ops;
    std::string error;
    const bool ok = decodeTrace(fuzz::asView(data, size), ops, error);
    if (ok) {
        FUZZ_ASSERT(!ops.empty());
        FUZZ_ASSERT(error.empty());
        for (const MicroOp &op : ops)
            FUZZ_ASSERT(static_cast<std::uint8_t>(op.op)
                        < static_cast<std::uint8_t>(OpClass::NumOpClasses));
    } else {
        FUZZ_ASSERT(!error.empty());
        FUZZ_ASSERT(ops.empty());
    }
    return 0;
}
