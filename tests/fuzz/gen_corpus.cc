/**
 * @file
 * Seed/regression corpus generator for the fuzz harnesses.
 *
 * Writes the committed corpus under the directory given as argv[1]
 * (normally tests/fuzz/corpus). Two kinds of entries:
 *
 *   seed_*     valid encodings of every message/format, produced by the
 *              real encoders, so coverage-guided fuzzing starts from
 *              deep in the decode paths rather than from noise
 *   regress_*  inputs reproducing fixed decode defects (allocation
 *              bombs from hostile count prefixes, truncations, checksum
 *              and version corruption, out-of-range enums), kept so the
 *              plain-build corpus replay re-checks every fix forever
 *
 * Deterministic by construction: running it twice writes identical
 * bytes, so regenerating after a format bump yields a clean diff.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "common/serialize.hh"
#include "serve/protocol.hh"
#include "sim/sweep.hh"
#include "workload/trace.hh"

namespace fs = std::filesystem;
using namespace thermctl;
using namespace thermctl::serve;

namespace
{

bool
writeBytes(const fs::path &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
        std::fprintf(stderr, "gen_corpus: cannot write %s\n",
                     path.string().c_str());
        return false;
    }
    return true;
}

/** Prefix a harness payload with its fuzz_protocol selector byte. */
std::string
sel(std::uint8_t selector, std::string_view payload)
{
    std::string out(1, static_cast<char>(selector));
    out.append(payload);
    return out;
}

RunResult
sampleResult()
{
    RunResult r;
    r.benchmark = "183.equake";
    r.policy = "PI";
    r.category = ThermalCategory::High;
    r.ipc = 1.375;
    r.raw_ipc = 1.4375;
    r.avg_power = 41.25;
    r.emergency_fraction = 0.0625;
    r.stress_fraction = 0.25;
    r.max_temperature = 113.5;
    r.mean_duty = 0.9375;
    for (std::size_t i = 0; i < r.structures.size(); ++i) {
        r.structures[i].avg_temp = 70.0 + double(i);
        r.structures[i].max_temp = 95.0 + double(i);
        r.structures[i].emergency_fraction = 0.001 * double(i);
        r.structures[i].stress_fraction = 0.002 * double(i);
        r.structures[i].avg_power = 2.0 + 0.25 * double(i);
    }
    return r;
}

bool
genProtocol(const fs::path &dir)
{
    // --- seeds: every message type, encoded by the real encoders.
    RunRequest run_req;
    run_req.deadline_ms = 2500;
    run_req.point.num_cores = 4;
    run_req.point.coupling_r = 4.0;
    run_req.point.chip_budget = 60.0;
    run_req.point.budget_policy = 1; // demand-proportional

    SweepRequest sweep_req;
    sweep_req.benchmarks = {"186.crafty", "183.equake"};
    sweep_req.policies = {"none", "PI"};
    sweep_req.ct_setpoint = 81.8;
    sweep_req.num_cores = 2;
    sweep_req.chip_budget = 45.0;

    CacheQueryRequest cache_req;

    RunReply run_reply;
    run_reply.point.result = sampleResult();
    run_reply.point.cache_hit = true;
    run_reply.point.server_ms = 12.5;

    SweepReply sweep_reply;
    sweep_reply.points.resize(2);
    sweep_reply.points[0].result = sampleResult();
    sweep_reply.points[1].error = ServeError::DeadlineExceeded;
    sweep_reply.points[1].message = "expired in queue";

    CacheQueryReply cache_reply;
    cache_reply.cached = true;
    cache_reply.digest = 0x12345678abcdef00ull;

    StatsReply stats_reply;
    stats_reply.requests_total = 42;
    stats_reply.latency_count = 17;
    stats_reply.latency_mean_ms = 3.5;

    DrainReply drain_reply;
    drain_reply.was_draining = true;

    ErrorReply error_reply;
    error_reply.code = ServeError::Overloaded;
    error_reply.message = "queue full";

    PingReply ping_reply;
    ping_reply.draining = true;
    ping_reply.queue_depth = 7;
    ping_reply.stalled = 1;

    const std::string stats_frame =
        encodeFrame(MsgType::StatsRequest, StatsRequest{}.encode());

    bool ok = true;
    ok &= writeBytes(dir / "seed_frame_header",
                     sel(0, stats_frame.substr(0, kFrameHeaderBytes)));
    ok &= writeBytes(dir / "seed_run_request", sel(1, run_req.encode()));
    ok &= writeBytes(dir / "seed_sweep_request",
                     sel(2, sweep_req.encode()));
    ok &= writeBytes(dir / "seed_cache_query_request",
                     sel(3, cache_req.encode()));
    ok &= writeBytes(dir / "seed_stats_request",
                     sel(4, StatsRequest{}.encode()));
    ok &= writeBytes(dir / "seed_drain_request",
                     sel(5, DrainRequest{}.encode()));
    ok &= writeBytes(dir / "seed_run_reply", sel(6, run_reply.encode()));
    ok &= writeBytes(dir / "seed_sweep_reply",
                     sel(7, sweep_reply.encode()));
    ok &= writeBytes(dir / "seed_cache_query_reply",
                     sel(8, cache_reply.encode()));
    ok &= writeBytes(dir / "seed_stats_reply",
                     sel(9, stats_reply.encode()));
    ok &= writeBytes(dir / "seed_drain_reply",
                     sel(10, drain_reply.encode()));
    ok &= writeBytes(dir / "seed_error_reply",
                     sel(11, error_reply.encode()));
    ok &= writeBytes(dir / "seed_ping_request",
                     sel(12, PingRequest{}.encode()));
    ok &= writeBytes(dir / "seed_ping_reply",
                     sel(13, ping_reply.encode()));

    // --- regressions.
    // Allocation bomb: a tiny SweepRequest payload claiming 2^20
    // benchmark strings. Before the remaining()-based bound this made
    // decodeStrings() reserve a multi-hundred-MB vector.
    {
        ByteWriter w;
        w.u64(1u << 20);
        ok &= writeBytes(dir / "regress_sweep_request_count_bomb",
                         sel(2, w.take()));
    }
    // Same shape against SweepReply's point vector (inline RunResults).
    {
        ByteWriter w;
        w.u64(1u << 20);
        ok &= writeBytes(dir / "regress_sweep_reply_count_bomb",
                         sel(7, w.take()));
    }
    // Truncation mid-string must flip the reader, not read past the end.
    {
        const std::string full = run_req.encode();
        ok &= writeBytes(dir / "regress_run_request_truncated",
                         sel(1, full.substr(0, full.size() / 2)));
    }
    // Hostile multicore knobs (wire v3): a core count far beyond
    // kMaxCores, a negative coupling resistance, and an unknown budget
    // policy must each fail decode as a typed bad request — before any
    // core-count-sized allocation happens server-side.
    {
        RunRequest hostile = run_req;
        hostile.point.num_cores = 0xffffffffu;
        ok &= writeBytes(dir / "regress_run_request_hostile_cores",
                         sel(1, hostile.encode()));
    }
    {
        RunRequest hostile = run_req;
        hostile.point.coupling_r = -4.0;
        ok &= writeBytes(dir / "regress_run_request_negative_coupling",
                         sel(1, hostile.encode()));
    }
    {
        SweepRequest hostile = sweep_req;
        hostile.num_cores = 0xffffffffu;
        hostile.budget_policy = 0xff;
        ok &= writeBytes(dir / "regress_sweep_request_hostile_cores",
                         sel(2, hostile.encode()));
    }
    // Frame header abuse: bad magic, foreign version, oversize length.
    {
        std::string hdr = stats_frame.substr(0, kFrameHeaderBytes);
        hdr[0] = 'X';
        ok &= writeBytes(dir / "regress_frame_bad_magic", sel(0, hdr));
    }
    {
        std::string hdr = stats_frame.substr(0, kFrameHeaderBytes);
        hdr[4] = static_cast<char>(kWireVersion + 1);
        ok &= writeBytes(dir / "regress_frame_bad_version", sel(0, hdr));
    }
    {
        std::string hdr = stats_frame.substr(0, kFrameHeaderBytes);
        hdr[6] = '\xff'; // payload_len low byte
        hdr[7] = '\xff';
        hdr[8] = '\xff';
        hdr[9] = '\xff'; // => 0xffffffff > kMaxFramePayload
        ok &= writeBytes(dir / "regress_frame_oversize_len", sel(0, hdr));
    }
    // Mid-payload truncations at fault-point boundaries: the shapes an
    // injected serve.sock.read/write abort or short-count leaves behind
    // (connection cut partway through a reply). Decoders must reject
    // every cut cleanly — no overread, no partial decode accepted.
    {
        const std::string full = run_reply.encode();
        ok &= writeBytes(dir / "regress_run_reply_truncated",
                         sel(6, full.substr(0, full.size() / 2)));
        ok &= writeBytes(dir / "regress_run_reply_cut_last_byte",
                         sel(6, full.substr(0, full.size() - 1)));
    }
    {
        // Cut inside the second point of a sweep reply: the first point
        // decodes, the torn tail must still fail the whole message.
        const std::string full = sweep_reply.encode();
        ok &= writeBytes(dir / "regress_sweep_reply_truncated",
                         sel(7, full.substr(0, full.size() * 3 / 4)));
    }
    {
        // ErrorReply cut mid-message-string (code byte survives).
        const std::string full = error_reply.encode();
        ok &= writeBytes(dir / "regress_error_reply_truncated",
                         sel(11, full.substr(0, full.size() / 2)));
    }
    {
        // A header itself cut short by an aborted read.
        ok &= writeBytes(dir / "regress_frame_header_truncated",
                         sel(0, stats_frame.substr(
                                    0, kFrameHeaderBytes / 2)));
    }
    // Ping hostility (wire v4): a PingRequest with trailing bytes and a
    // PingReply with a non-boolean draining byte or a torn tail must
    // each fail decode — health probes are the first thing a coordinator
    // sends a worker, so their decoders meet hostile peers first.
    {
        ok &= writeBytes(dir / "regress_ping_request_trailing",
                         sel(12, std::string("\x01", 1)));
    }
    {
        std::string bad = ping_reply.encode();
        bad[1] = '\x02'; // draining must be strictly 0/1
        ok &= writeBytes(dir / "regress_ping_reply_bad_bool",
                         sel(13, bad));
        const std::string full = ping_reply.encode();
        ok &= writeBytes(dir / "regress_ping_reply_truncated",
                         sel(13, full.substr(0, full.size() / 2)));
    }
    return ok;
}

bool
genRunResult(const fs::path &dir)
{
    const std::string valid = serializeRunResult(sampleResult());

    bool ok = true;
    ok &= writeBytes(dir / "seed_valid", valid);

    std::string bad_version = valid;
    bad_version[0] = static_cast<char>(kRunResultFormatVersion + 1);
    ok &= writeBytes(dir / "regress_bad_version", bad_version);

    // Flipping any bit must fail the trailing checksum, never decode.
    std::string flipped = valid;
    flipped[valid.size() / 2] ^= 0x10;
    ok &= writeBytes(dir / "regress_payload_bitflip", flipped);

    std::string bad_sum = valid;
    bad_sum.back() ^= 0x01;
    ok &= writeBytes(dir / "regress_checksum_flip", bad_sum);

    ok &= writeBytes(dir / "regress_truncated",
                     std::string_view(valid).substr(0, valid.size() - 9));
    ok &= writeBytes(dir / "regress_empty", "");
    return ok;
}

bool
genTrace(const fs::path &dir)
{
    // Build a small valid trace with the real writer so the corpus
    // tracks the on-disk format exactly.
    const fs::path valid_path = dir / "seed_valid";
    {
        TraceWriter w(valid_path.string());
        MicroOp alu;
        alu.pc = 0x1000;
        alu.op = OpClass::IntAlu;
        alu.num_srcs = 2;
        alu.srcs = {1, 2};
        alu.dest = 3;
        w.append(alu);

        MicroOp load;
        load.pc = 0x1004;
        load.op = OpClass::Load;
        load.mem_addr = 0x8000;
        load.mem_size = 4;
        load.dest = 4;
        w.append(load);

        MicroOp br;
        br.pc = 0x1008;
        br.op = OpClass::Branch;
        br.is_branch = true;
        br.is_conditional = true;
        br.taken = true;
        br.target = 0x1000;
        w.append(br);
        w.close();
    }
    std::string valid;
    {
        std::ifstream in(valid_path, std::ios::binary);
        valid.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
        if (in.bad() || valid.empty()) {
            std::fprintf(stderr, "gen_corpus: cannot re-read %s\n",
                         valid_path.string().c_str());
            return false;
        }
    }
    constexpr std::size_t kHeaderBytes = 16; // magic+version+count

    bool ok = true;
    // Header bomb: 16-byte header declaring 2^60 records. Before the
    // count-vs-file-size cross-check this drove a 2^60-element reserve.
    {
        std::string bomb = valid.substr(0, kHeaderBytes);
        const std::uint64_t huge = 1ull << 60;
        for (int i = 0; i < 8; ++i)
            bomb[8 + i] = static_cast<char>(huge >> (8 * i));
        ok &= writeBytes(dir / "regress_header_count_bomb", bomb);
    }
    // Count disagreeing with the byte length (one extra claimed).
    {
        std::string off = valid;
        off[8] = static_cast<char>(off[8] + 1);
        ok &= writeBytes(dir / "regress_count_mismatch", off);
    }
    // Out-of-range op class in the second record.
    {
        std::string bad = valid;
        const std::size_t record = (bad.size() - kHeaderBytes) / 3;
        bad[kHeaderBytes + record + 30] = '\x7f'; // op field offset 30
        ok &= writeBytes(dir / "regress_bad_opclass", bad);
    }
    ok &= writeBytes(dir / "regress_truncated_record",
                     std::string_view(valid).substr(0, valid.size() - 5));
    ok &= writeBytes(dir / "regress_bad_magic",
                     std::string("XXXX") + valid.substr(4));
    ok &= writeBytes(dir / "regress_empty", "");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s CORPUS_ROOT_DIR\n", argv[0]);
        return 2;
    }
    const fs::path root = argv[1];
    std::error_code ec;
    for (const char *sub : {"protocol", "runresult", "trace"}) {
        fs::create_directories(root / sub, ec);
        if (ec) {
            std::fprintf(stderr, "gen_corpus: cannot create %s/%s\n",
                         root.string().c_str(), sub);
            return 2;
        }
    }
    if (!genProtocol(root / "protocol") || !genRunResult(root / "runresult")
        || !genTrace(root / "trace"))
        return 2;
    std::printf("corpus written under %s\n", root.string().c_str());
    return 0;
}
