/**
 * @file
 * Fuzz harness for the RunResult v2 binary format (sim/sweep.cc).
 *
 * The format is version byte + field payload + trailing FNV-1a
 * checksum, used both as the sweep cache payload and inside serve
 * frames. Invariants under hostile bytes: never crash; a buffer that
 * decodes Ok is in canonical form, so re-serializing the decoded value
 * reproduces the input bit-for-bit (exact consumption is part of the
 * decode contract).
 */

#include <cstdint>
#include <string>

#include "fuzz_common.hh"
#include "sim/sweep.hh"

using namespace thermctl;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string_view buffer = fuzz::asView(data, size);

    RunResult result;
    if (deserializeRunResult(buffer, result) != RunResultDecodeStatus::Ok)
        return 0;

    const std::string canonical = serializeRunResult(result);
    FUZZ_ASSERT(canonical == buffer);

    RunResult again;
    FUZZ_ASSERT(deserializeRunResult(canonical, again)
                == RunResultDecodeStatus::Ok);
    FUZZ_ASSERT(again.benchmark == result.benchmark);
    FUZZ_ASSERT(again.policy == result.policy);
    return 0;
}
