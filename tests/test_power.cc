/**
 * @file
 * Tests for the CACTI-lite array models and the Wattch-style structure
 * power model, including the cc0-cc3 conditional-clocking semantics.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/array.hh"
#include "power/model.hh"

namespace thermctl
{
namespace
{

Technology
tech()
{
    return Technology{};
}

TEST(ArrayModel, EnergyGrowsWithGeometry)
{
    ArrayEnergyModel small(
        ArrayGeometry{.rows = 64, .cols_bits = 64}, tech());
    ArrayEnergyModel tall(
        ArrayGeometry{.rows = 256, .cols_bits = 64}, tech());
    ArrayEnergyModel wide(
        ArrayGeometry{.rows = 64, .cols_bits = 256}, tech());
    EXPECT_GT(tall.readEnergy(), small.readEnergy());
    EXPECT_GT(wide.readEnergy(), small.readEnergy());
    EXPECT_GT(small.readEnergy(), 0.0);
}

TEST(ArrayModel, MorePortsCostMore)
{
    ArrayEnergyModel one(
        ArrayGeometry{.rows = 128, .cols_bits = 64, .read_ports = 1,
                      .write_ports = 1},
        tech());
    ArrayEnergyModel many(
        ArrayGeometry{.rows = 128, .cols_bits = 64, .read_ports = 6,
                      .write_ports = 4},
        tech());
    EXPECT_GT(many.readEnergy(), one.readEnergy());
    EXPECT_GT(many.peakCycleEnergy(), one.peakCycleEnergy());
}

TEST(ArrayModel, BankingAddsRoutingButBoundsBitlines)
{
    // Single subarray.
    ArrayEnergyModel flat(
        ArrayGeometry{.rows = 512, .cols_bits = 512}, tech());
    // Same active subarray inside a much larger banked structure.
    ArrayEnergyModel banked(
        ArrayGeometry{.rows = 512, .cols_bits = 512,
                      .total_bits = 16 * 1024 * 1024},
        tech());
    EXPECT_GT(banked.readEnergy(), flat.readEnergy());
    // Routing is a modest adder, not a multiplier blow-up.
    EXPECT_LT(banked.readEnergy(), 4.0 * flat.readEnergy());
}

TEST(ArrayModel, WriteCostsFullSwing)
{
    ArrayEnergyModel m(ArrayGeometry{.rows = 256, .cols_bits = 128},
                       tech());
    // Full-rail writes cost more than reduced-swing reads per bitline,
    // but reads pay for sense amps; both must be positive.
    EXPECT_GT(m.writeEnergy(), 0.0);
    EXPECT_GT(m.readEnergy(), 0.0);
}

TEST(ArrayModel, RejectsEmptyGeometry)
{
    EXPECT_THROW(ArrayEnergyModel(ArrayGeometry{}, tech()), FatalError);
}

TEST(CamModel, SearchScalesWithEntries)
{
    CamEnergyModel small(CamGeometry{.entries = 16, .tag_bits = 40},
                         tech());
    CamEnergyModel big(CamGeometry{.entries = 128, .tag_bits = 40},
                       tech());
    EXPECT_GT(big.searchEnergy(), small.searchEnergy());
    EXPECT_GT(small.searchEnergy(), 0.0);
    EXPECT_GT(small.writeEnergy(), 0.0);
}

TEST(CamModel, RejectsEmptyGeometry)
{
    EXPECT_THROW(CamEnergyModel(CamGeometry{}, tech()), FatalError);
}

// -------------------------------------------------------------- PowerModel

PowerModel
defaultModel(ClockGatingStyle style = ClockGatingStyle::Cc3)
{
    PowerConfig cfg;
    cfg.gating = style;
    return PowerModel(cfg, CpuConfig{}, MemoryHierarchyConfig{});
}

CpuActivity
busyActivity()
{
    CpuActivity act;
    act.icache_accesses = 1;
    act.bpred_lookups = 2;
    act.bpred_updates = 2;
    act.decoded_ops = 4;
    act.dispatched_ops = 4;
    act.issued_int = 4;
    act.issued_fp = 2;
    act.issued_mem = 2;
    act.wakeup_broadcasts = 6;
    act.regfile_reads = 12;
    act.regfile_writes = 6;
    act.lsq_accesses = 6;
    act.l1d_accesses = 2;
    act.l1i_accesses = 1;
    act.l2_accesses = 2;
    act.int_alu_ops = 4;
    act.int_mult_ops = 1;
    act.fp_alu_ops = 2;
    act.fp_mult_ops = 1;
    act.committed_ops = 4;
    return act;
}

TEST(PowerModel, PeaksArePositiveAndPlausible)
{
    auto pm = defaultModel();
    for (StructureId id : kAllStructures) {
        EXPECT_GT(pm.peak()[id], 0.5) << structureName(id);
        EXPECT_LT(pm.peak()[id], 50.0) << structureName(id);
    }
    // Chip-wide peak in the published 0.18 um high-performance range.
    EXPECT_GT(pm.peak().total(), 40.0);
    EXPECT_LT(pm.peak().total(), 120.0);
}

TEST(PowerModel, Cc3IdleFloorIsTenPercent)
{
    auto pm = defaultModel(ClockGatingStyle::Cc3);
    CpuActivity idle;
    auto p = pm.cyclePower(idle);
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        EXPECT_NEAR(p[id], 0.1 * pm.peak()[id], 1e-9)
            << structureName(id);
    }
}

TEST(PowerModel, Cc2IdleIsZero)
{
    auto pm = defaultModel(ClockGatingStyle::Cc2);
    CpuActivity idle;
    auto p = pm.cyclePower(idle);
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        EXPECT_DOUBLE_EQ(p[static_cast<StructureId>(i)], 0.0);
}

TEST(PowerModel, Cc1IsAllOrNothing)
{
    auto pm = defaultModel(ClockGatingStyle::Cc1);
    CpuActivity act;
    act.int_alu_ops = 1; // tiny activity
    auto p = pm.cyclePower(act);
    EXPECT_DOUBLE_EQ(p[StructureId::IntExec],
                     pm.peak()[StructureId::IntExec]);
    EXPECT_DOUBLE_EQ(p[StructureId::FpExec], 0.0);
}

TEST(PowerModel, Cc0AlwaysPeak)
{
    auto pm = defaultModel(ClockGatingStyle::Cc0);
    CpuActivity idle;
    auto p = pm.cyclePower(idle);
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        EXPECT_DOUBLE_EQ(p[id], pm.peak()[id]);
    }
}

TEST(PowerModel, BusyCyclePowerBoundedByPeak)
{
    auto pm = defaultModel();
    auto p = pm.cyclePower(busyActivity());
    for (StructureId id : kAllStructures) {
        EXPECT_LE(p[id], pm.peak()[id] + 1e-9) << structureName(id);
        EXPECT_GT(p[id], 0.0) << structureName(id);
    }
}

TEST(PowerModel, PowerScalesWithActivity)
{
    auto pm = defaultModel(ClockGatingStyle::Cc2);
    CpuActivity one;
    one.int_alu_ops = 1;
    CpuActivity two;
    two.int_alu_ops = 2;
    EXPECT_NEAR(pm.cyclePower(two)[StructureId::IntExec],
                2.0 * pm.cyclePower(one)[StructureId::IntExec], 1e-9);
}

TEST(PowerModel, FpActivityHeatsOnlyFpExec)
{
    auto pm = defaultModel(ClockGatingStyle::Cc2);
    CpuActivity act;
    act.fp_alu_ops = 2;
    auto p = pm.cyclePower(act);
    EXPECT_GT(p[StructureId::FpExec], 0.0);
    EXPECT_DOUBLE_EQ(p[StructureId::IntExec], 0.0);
    EXPECT_DOUBLE_EQ(p[StructureId::DCache], 0.0);
}

TEST(PowerModel, ExcessEventCountsClampToPeak)
{
    auto pm = defaultModel(ClockGatingStyle::Cc2);
    CpuActivity act;
    act.int_alu_ops = 1000; // absurd count
    auto p = pm.cyclePower(act);
    EXPECT_LE(p[StructureId::IntExec],
              pm.peak()[StructureId::IntExec] + 1e-9);
}

TEST(PowerModel, RestOfChipHasUngateableBase)
{
    auto pm = defaultModel(ClockGatingStyle::Cc2);
    CpuActivity idle;
    auto p = pm.cyclePower(idle);
    PowerConfig cfg;
    EXPECT_GE(p[StructureId::RestOfChip], cfg.rest_base_watts - 1e-9);
}

TEST(PowerModel, RejectsBadConfig)
{
    PowerConfig cfg;
    cfg.idle_fraction = 1.5;
    EXPECT_THROW(
        PowerModel(cfg, CpuConfig{}, MemoryHierarchyConfig{}),
        FatalError);
    cfg = PowerConfig{};
    cfg.tech.vdd = 0.0;
    EXPECT_THROW(
        PowerModel(cfg, CpuConfig{}, MemoryHierarchyConfig{}),
        FatalError);
}

TEST(PowerModel, StructureScaleMultipliesEnergy)
{
    PowerConfig cfg;
    cfg.gating = ClockGatingStyle::Cc2;
    PowerModel base(cfg, CpuConfig{}, MemoryHierarchyConfig{});
    cfg.structure_scale[static_cast<std::size_t>(StructureId::Bpred)] *=
        2.0;
    PowerModel scaled(cfg, CpuConfig{}, MemoryHierarchyConfig{});
    EXPECT_NEAR(scaled.peak()[StructureId::Bpred],
                2.0 * base.peak()[StructureId::Bpred], 1e-9);
}

} // namespace
} // namespace thermctl
