/**
 * @file
 * Tests for the later-added paper-grounded features: temperature-
 * dependent leakage, the hierarchical (toggling + V/f backup) policy,
 * settling-time-constrained design, and HotSpot-format floorplan I/O.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "control/analysis.hh"
#include "control/tuning.hh"
#include "power/model.hh"
#include "sim/simulator.hh"
#include "thermal/floorplan.hh"
#include "workload/spec_profiles.hh"

namespace thermctl
{
namespace
{

TemperatureVector
uniformTemps(Celsius t)
{
    TemperatureVector v;
    v.value.fill(t);
    return v;
}

// -------------------------------------------------------------- leakage

TEST(Leakage, DisabledByDefault)
{
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    std::array<Celsius, kNumStructures> temps;
    temps.fill(110.0);
    const auto leak = pm.leakagePower(temps);
    for (double w : leak.value)
        EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(Leakage, ExponentialInTemperature)
{
    PowerConfig cfg;
    cfg.leakage_enabled = true;
    cfg.leakage_fraction_at_ref = 0.05;
    cfg.leakage_ref_temp = 85.0;
    cfg.leakage_doubling_c = 10.0;
    PowerModel pm(cfg, CpuConfig{}, MemoryHierarchyConfig{});

    std::array<Celsius, kNumStructures> at_ref, plus10, plus20;
    at_ref.fill(85.0);
    plus10.fill(95.0);
    plus20.fill(105.0);
    const auto l0 = pm.leakagePower(at_ref);
    const auto l1 = pm.leakagePower(plus10);
    const auto l2 = pm.leakagePower(plus20);
    for (StructureId id : kAllStructures) {
        EXPECT_NEAR(l0[id], 0.05 * pm.peak()[id], 1e-9);
        EXPECT_NEAR(l1[id], 2.0 * l0[id], 1e-9);
        EXPECT_NEAR(l2[id], 4.0 * l0[id], 1e-9);
    }
}

TEST(Leakage, ClosesThermalFeedbackLoopInSimulation)
{
    auto max_temp = [](bool leakage) {
        SimConfig cfg;
        cfg.workload = specProfile("186.crafty");
        cfg.power.leakage_enabled = leakage;
        cfg.power.leakage_fraction_at_ref = 0.05;
        Simulator sim(cfg);
        sim.warmUp(200000);
        sim.run(300000);
        return sim.dtm().stats().max_temperature;
    };
    const double without = max_temp(false);
    const double with = max_temp(true);
    // Leakage adds heat; the exponential loop amplifies it.
    EXPECT_GT(with, without + 0.3);
}

// --------------------------------------------------------- hierarchical

TEST(Hierarchical, BackupOverridesOnlyNearEmergency)
{
    auto primary = std::make_unique<FixedTogglePolicy>(0.5, 110.8,
                                                       1000, "toggle2");
    HierarchicalPolicy policy(std::move(primary), 111.75, 0.7, 5000);
    // Hot but below the backup trigger: primary only.
    auto cmd = policy.onSample(uniformTemps(111.2), 0);
    EXPECT_DOUBLE_EQ(cmd.duty, 0.5);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 1.0);
    EXPECT_FALSE(policy.backupEngaged());
    // Truly close to emergency: backup engages on top of the primary.
    cmd = policy.onSample(uniformTemps(111.78), 100);
    EXPECT_DOUBLE_EQ(cmd.duty, 0.5);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 0.7);
    EXPECT_TRUE(policy.backupEngaged());
    // Cooled, but still inside the backup's policy delay.
    cmd = policy.onSample(uniformTemps(110.0), 2000);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 0.7);
    // Delay expired.
    cmd = policy.onSample(uniformTemps(110.0), 10000);
    EXPECT_DOUBLE_EQ(cmd.freq_scale, 1.0);
    EXPECT_EQ(policy.name(), "toggle2+vf");
}

TEST(Hierarchical, ValidatesArguments)
{
    EXPECT_THROW(HierarchicalPolicy(nullptr, 111.75, 0.7, 1),
                 FatalError);
    EXPECT_THROW(HierarchicalPolicy(std::make_unique<NoDtmPolicy>(),
                                    111.75, 1.0, 1),
                 FatalError);
}

TEST(Hierarchical, RescuesDegradedCooling)
{
    // With the base temperature near the emergency level, toggling
    // saturates at the clock-gating floor and cannot stay safe; the
    // hierarchical V/f backup restores safety.
    auto run = [](DtmPolicyKind kind) {
        SimConfig cfg;
        cfg.workload = specProfile("301.apsi");
        cfg.thermal.t_base = 110.2; // degraded cooling
        cfg.policy.kind = kind;
        Simulator sim(cfg);
        sim.warmUp(300000);
        sim.run(500000);
        return sim.dtm().stats();
    };
    const auto pid_only = run(DtmPolicyKind::PID);
    const auto hier = run(DtmPolicyKind::Hierarchical);
    EXPECT_GT(pid_only.emergencyFraction(), 0.01);
    EXPECT_LT(hier.emergencyFraction(),
              0.2 * pid_only.emergencyFraction());
    EXPECT_LT(hier.max_temperature, pid_only.max_temperature);
}

// ----------------------------------------------------- settling design

TEST(SettlingDesign, MeetsTheTargetInSimulation)
{
    FopdtPlant plant{.gain = 9.0, .tau = 130e-6, .dead_time = 333e-9};
    const double dt = 667e-9;
    for (double target : {2e-3, 5e-4, 1e-4}) {
        PidConfig cfg = tuneForSettlingTime(ControllerKind::PI, plant,
                                            target, dt);
        cfg.setpoint = 1.0;
        cfg.out_min = -1e12;
        cfg.out_max = 1e12;
        auto resp = simulateClosedLoop(cfg, plant);
        EXPECT_TRUE(resp.settled) << "target " << target;
        EXPECT_LE(resp.settling_time, target) << "target " << target;
        EXPECT_LE(resp.overshoot, 0.25) << "target " << target;
    }
}

TEST(SettlingDesign, TighterTargetsNeedHotterLoops)
{
    FopdtPlant plant{.gain = 9.0, .tau = 130e-6, .dead_time = 333e-9};
    const double dt = 667e-9;
    auto slow = tuneForSettlingTime(ControllerKind::PID, plant, 2e-3,
                                    dt);
    auto fast = tuneForSettlingTime(ControllerKind::PID, plant, 1e-4,
                                    dt);
    EXPECT_GT(fast.ki, slow.ki);
}

TEST(SettlingDesign, RejectsImpossibleRequests)
{
    FopdtPlant plant{.gain = 9.0, .tau = 130e-6, .dead_time = 333e-9};
    EXPECT_THROW(tuneForSettlingTime(ControllerKind::P, plant, 1e-3,
                                     667e-9),
                 FatalError);
    EXPECT_THROW(tuneForSettlingTime(ControllerKind::PI, plant, 0.0,
                                     667e-9),
                 FatalError);
    // Faster than the dead time allows.
    EXPECT_THROW(tuneForSettlingTime(ControllerKind::PI, plant, 1e-7,
                                     667e-9),
                 FatalError);
}

// ----------------------------------------------------------- .flp files

class FlpTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path()
            / "thermctl_test.flp";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    std::filesystem::path path_;
};

TEST_F(FlpTest, WriteThenLoadRoundTrips)
{
    Floorplan original;
    {
        std::ofstream out(path_);
        original.writeFlp(out);
    }
    FloorplanConfig cfg;
    cfg.flp_path = path_.string();
    Floorplan loaded(cfg);
    for (StructureId id : kAllStructures) {
        EXPECT_NEAR(loaded.rect(id).x_mm, original.rect(id).x_mm, 1e-9);
        EXPECT_NEAR(loaded.rect(id).w_mm, original.rect(id).w_mm, 1e-9);
        EXPECT_NEAR(loaded.block(id).resistance,
                    original.block(id).resistance, 1e-9);
        EXPECT_NEAR(loaded.block(id).capacitance,
                    original.block(id).capacitance, 1e-15);
    }
    EXPECT_EQ(loaded.tangential().size(), original.tangential().size());
}

TEST_F(FlpTest, CustomAreasChangeThermalParameters)
{
    // Double the FP unit's area: half the R, double the C.
    Floorplan original;
    std::ostringstream buf;
    original.writeFlp(buf);
    std::string text = buf.str();
    const std::string needle = "fp-exec\t0.0025\t0.002";
    ASSERT_NE(text.find(needle), std::string::npos);
    text.replace(text.find(needle), needle.size(),
                 "fp-exec\t0.005\t0.002");
    {
        std::ofstream out(path_);
        out << text;
    }
    FloorplanConfig cfg;
    cfg.flp_path = path_.string();
    Floorplan modified(cfg);
    EXPECT_NEAR(modified.block(StructureId::FpExec).resistance,
                0.5 * original.block(StructureId::FpExec).resistance,
                1e-9);
    EXPECT_NEAR(modified.block(StructureId::FpExec).capacitance,
                2.0 * original.block(StructureId::FpExec).capacitance,
                1e-12);
}

TEST_F(FlpTest, RejectsBadFiles)
{
    FloorplanConfig cfg;
    cfg.flp_path = "/nonexistent/die.flp";
    EXPECT_THROW(Floorplan{cfg}, FatalError);

    {
        std::ofstream out(path_);
        out << "LSQ 0.0025 0.002 0.005 0\n"; // only one block
    }
    cfg.flp_path = path_.string();
    EXPECT_THROW(Floorplan{cfg}, FatalError);

    {
        std::ofstream out(path_);
        Floorplan fp;
        fp.writeFlp(out);
        out << "mystery 0.001 0.001 0 0\n"; // unknown block
    }
    EXPECT_THROW(Floorplan{cfg}, FatalError);

    {
        std::ofstream out(path_);
        out << "LSQ bogus\n";
    }
    EXPECT_THROW(Floorplan{cfg}, FatalError);
}

TEST_F(FlpTest, CommentsAndBlankLinesIgnored)
{
    {
        std::ofstream out(path_);
        out << "# a comment\n\n";
        Floorplan fp;
        fp.writeFlp(out);
    }
    FloorplanConfig cfg;
    cfg.flp_path = path_.string();
    EXPECT_NO_THROW(Floorplan{cfg});
}

} // namespace
} // namespace thermctl
