/**
 * @file
 * Tests for the table renderer and number formatting helpers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace thermctl
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // All data lines have equal length (fixed column widths).
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    const auto header_len = line.size();
    std::getline(is, line); // rule
    while (std::getline(is, line))
        EXPECT_EQ(line.size(), header_len);
}

TEST(TextTable, RowCountSkipsRules)
{
    TextTable t;
    t.addRow({"a"});
    t.addRule();
    t.addRow({"b"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvQuotesSpecialCells)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote\"inside", "ok"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Format, Double)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-1.5, 0), "-2");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(Format, Scientific)
{
    EXPECT_EQ(formatSci(5e-6, 1), "5.0e-06");
}

} // namespace
} // namespace thermctl
