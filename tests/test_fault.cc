/**
 * @file
 * Tests for the fault-injection module (fault/fault.hh): plan grammar,
 * deterministic per-site decision streams, the every/after/max gates,
 * and the disarmed fast path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "fault/fault.hh"

using namespace thermctl;
using namespace thermctl::fault;

namespace
{

/** Disarm on scope exit so tests never leak an armed plan. */
struct ScopedDisarm
{
    ~ScopedDisarm() { FaultInjector::instance().disarm(); }
};

/** Probe `site` `n` times, returning the decision kinds in order. */
std::vector<FaultKind>
probeSeq(std::string_view site, int n)
{
    std::vector<FaultKind> kinds;
    kinds.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        kinds.push_back(FaultInjector::instance().probe(site).kind);
    return kinds;
}

} // namespace

// ------------------------------------------------------------- grammar

TEST(FaultPlan, ParsesFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=42;serve.sock.write=short@0.25;"
        "sched.batch=stall@0.5:ms=50:every=3:after=2:max=7");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 2u);

    EXPECT_EQ(plan.rules[0].site, "serve.sock.write");
    EXPECT_EQ(plan.rules[0].kind, FaultKind::ShortIo);
    EXPECT_EQ(plan.rules[0].probability, 0.25);
    EXPECT_EQ(plan.rules[0].every, 0u);

    EXPECT_EQ(plan.rules[1].site, "sched.batch");
    EXPECT_EQ(plan.rules[1].kind, FaultKind::Stall);
    EXPECT_EQ(plan.rules[1].probability, 0.5);
    EXPECT_EQ(plan.rules[1].stall_ms, 50u);
    EXPECT_EQ(plan.rules[1].every, 3u);
    EXPECT_EQ(plan.rules[1].after, 2u);
    EXPECT_EQ(plan.rules[1].max_fires, 7u);
}

TEST(FaultPlan, DefaultsAndEmptyClauses)
{
    // Empty clauses (leading/trailing/double semicolons) are ignored;
    // probability defaults to 1, seed defaults to 1.
    const FaultPlan plan = FaultPlan::parse(";cache.load=abort;;");
    EXPECT_EQ(plan.seed, 1u);
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules[0].kind, FaultKind::Abort);
    EXPECT_EQ(plan.rules[0].probability, 1.0);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string error;
    // No rules at all.
    EXPECT_FALSE(FaultPlan::tryParse("", plan, error));
    EXPECT_FALSE(FaultPlan::tryParse("seed=9", plan, error));
    // Unknown kind.
    EXPECT_FALSE(FaultPlan::tryParse("a.b=explode", plan, error));
    EXPECT_NE(error.find("explode"), std::string::npos);
    // Probability out of range or garbage.
    EXPECT_FALSE(FaultPlan::tryParse("a.b=abort@1.5", plan, error));
    EXPECT_FALSE(FaultPlan::tryParse("a.b=abort@zebra", plan, error));
    // Bad option key / value.
    EXPECT_FALSE(FaultPlan::tryParse("a.b=stall:frequency=2", plan, error));
    EXPECT_FALSE(FaultPlan::tryParse("a.b=stall:ms=ten", plan, error));
    // Bad seed.
    EXPECT_FALSE(FaultPlan::tryParse("seed=x;a.b=abort", plan, error));
    // Missing site.
    EXPECT_FALSE(FaultPlan::tryParse("=abort", plan, error));

    EXPECT_THROW(FaultPlan::parse("a.b=explode"), FatalError);
}

TEST(FaultPlan, DescribeReparsesToSamePlan)
{
    const char *spec =
        "seed=7;serve.sock.read=eintr@0.125:every=2;"
        "cache.publish=torn:after=1:max=3;sched.batch=stall:ms=25";
    const FaultPlan plan = FaultPlan::parse(spec);
    const FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(again.seed, plan.seed);
    ASSERT_EQ(again.rules.size(), plan.rules.size());
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
        EXPECT_EQ(again.rules[i].site, plan.rules[i].site);
        EXPECT_EQ(again.rules[i].kind, plan.rules[i].kind);
        EXPECT_EQ(again.rules[i].probability, plan.rules[i].probability);
        EXPECT_EQ(again.rules[i].every, plan.rules[i].every);
        EXPECT_EQ(again.rules[i].after, plan.rules[i].after);
        EXPECT_EQ(again.rules[i].max_fires, plan.rules[i].max_fires);
        EXPECT_EQ(again.rules[i].stall_ms, plan.rules[i].stall_ms);
    }
}

TEST(FaultKindNames, CoverEveryKind)
{
    EXPECT_EQ(faultKindName(FaultKind::None), "none");
    EXPECT_EQ(faultKindName(FaultKind::Abort), "abort");
    EXPECT_EQ(faultKindName(FaultKind::ShortIo), "short");
    EXPECT_EQ(faultKindName(FaultKind::Eintr), "eintr");
    EXPECT_EQ(faultKindName(FaultKind::Stall), "stall");
    EXPECT_EQ(faultKindName(FaultKind::Torn), "torn");
    EXPECT_EQ(faultKindName(static_cast<FaultKind>(99)), "invalid");
}

// ------------------------------------------------------------ injector

TEST(FaultInjector, DisarmedProbesAreNoOps)
{
    ScopedDisarm guard;
    FaultInjector &inj = FaultInjector::instance();
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.probe("any.site").fired());
    EXPECT_EQ(inj.firedCount(), 0u);

    // The production macro routes through the same path.
    EXPECT_FALSE(THERMCTL_FAULT_POINT("any.site").fired());
}

TEST(FaultInjector, SameSeedReplaysSameSequence)
{
    ScopedDisarm guard;
    const FaultPlan plan =
        FaultPlan::parse("seed=1234;x.read=abort@0.3;x.write=short@0.7");
    FaultInjector &inj = FaultInjector::instance();

    inj.arm(plan);
    const auto reads_a = probeSeq("x.read", 200);
    const auto writes_a = probeSeq("x.write", 200);
    const auto log_a = inj.firedLog();

    inj.arm(plan); // re-arm resets every per-rule stream
    const auto reads_b = probeSeq("x.read", 200);
    const auto writes_b = probeSeq("x.write", 200);
    const auto log_b = inj.firedLog();

    EXPECT_EQ(reads_a, reads_b);
    EXPECT_EQ(writes_a, writes_b);
    ASSERT_EQ(log_a.size(), log_b.size());
    for (std::size_t i = 0; i < log_a.size(); ++i) {
        EXPECT_EQ(log_a[i].site, log_b[i].site);
        EXPECT_EQ(log_a[i].hit, log_b[i].hit);
        EXPECT_EQ(log_a[i].kind, log_b[i].kind);
    }

    // A probabilistic rule must neither always fire nor never fire
    // over 200 draws at p=0.3 (chance of either is ~1e-31).
    std::size_t fired = 0;
    for (FaultKind k : reads_a)
        fired += (k != FaultKind::None);
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, reads_a.size());
}

TEST(FaultInjector, SequenceIsPerSiteNotGlobal)
{
    ScopedDisarm guard;
    const FaultPlan plan =
        FaultPlan::parse("seed=99;a.site=abort@0.5;b.site=abort@0.5");
    FaultInjector &inj = FaultInjector::instance();

    // Interleaving probes of an unrelated site must not perturb a
    // site's own decision stream (this is what makes multi-threaded
    // chaos runs replayable).
    inj.arm(plan);
    const auto solo = probeSeq("a.site", 64);

    inj.arm(plan);
    std::vector<FaultKind> interleaved;
    for (int i = 0; i < 64; ++i) {
        interleaved.push_back(inj.probe("a.site").kind);
        inj.probe("b.site");
        inj.probe("nonexistent.site");
    }
    EXPECT_EQ(solo, interleaved);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    ScopedDisarm guard;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(FaultPlan::parse("seed=1;x=abort@0.5"));
    const auto one = probeSeq("x", 128);
    inj.arm(FaultPlan::parse("seed=2;x=abort@0.5"));
    const auto two = probeSeq("x", 128);
    EXPECT_NE(one, two);
}

TEST(FaultInjector, EveryAfterMaxGates)
{
    ScopedDisarm guard;
    FaultInjector &inj = FaultInjector::instance();

    // every=3: fires on gate-passing hits 3, 6, 9, ...
    inj.arm(FaultPlan::parse("x=abort:every=3"));
    auto seq = probeSeq("x", 9);
    for (int i = 0; i < 9; ++i) {
        const bool expect_fire = (i + 1) % 3 == 0;
        EXPECT_EQ(seq[std::size_t(i)] == FaultKind::Abort, expect_fire)
            << "hit " << i + 1;
    }

    // after=4: first 4 hits pass through untouched.
    inj.arm(FaultPlan::parse("x=abort:after=4"));
    seq = probeSeq("x", 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(seq[std::size_t(i)] == FaultKind::Abort, i >= 4)
            << "hit " << i + 1;
    }

    // max=2: exactly two fires, then the rule goes quiet.
    inj.arm(FaultPlan::parse("x=abort:max=2"));
    seq = probeSeq("x", 10);
    std::size_t fires = 0;
    for (FaultKind k : seq)
        fires += (k == FaultKind::Abort);
    EXPECT_EQ(fires, 2u);
    EXPECT_EQ(seq[0], FaultKind::Abort);
    EXPECT_EQ(seq[1], FaultKind::Abort);
    EXPECT_EQ(inj.firedCount(), 2u);
}

TEST(FaultInjector, StallCarriesDuration)
{
    ScopedDisarm guard;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(FaultPlan::parse("x=stall:ms=123"));
    const FaultDecision d = inj.probe("x");
    EXPECT_TRUE(d.stall());
    EXPECT_EQ(d.stall_ms, 123u);
}

TEST(FaultInjector, FiredLogRecordsHitIndices)
{
    ScopedDisarm guard;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(FaultPlan::parse("x=torn:every=2:max=2"));
    probeSeq("x", 6);
    const auto log = inj.firedLog();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].site, "x");
    EXPECT_EQ(log[0].hit, 2u);
    EXPECT_EQ(log[0].kind, FaultKind::Torn);
    EXPECT_EQ(log[1].hit, 4u);
}
