/**
 * @file
 * Tests for the floorplan and the paper's Section 4.3 derivations:
 * block areas (Table 3), R/C formulas, the tangential-resistance claim,
 * and the tens-to-hundreds-of-microseconds block time constants.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "thermal/floorplan.hh"
#include "thermal/silicon.hh"

namespace thermctl
{
namespace
{

TEST(Silicon, ResistivityNearPaperValue)
{
    // ~0.01 (m*K)/W at the paper's operating temperatures.
    EXPECT_NEAR(silicon::thermalResistivity(105.0), 0.01, 0.002);
    // Conductivity falls with temperature -> resistivity rises.
    EXPECT_GT(silicon::thermalResistivity(110.0),
              silicon::thermalResistivity(30.0));
}

TEST(Silicon, HeatCapacityNearPaperValue)
{
    EXPECT_NEAR(silicon::volumetricHeatCapacity(105.0), 1.75e6, 0.1e6);
    EXPECT_GT(silicon::volumetricHeatCapacity(110.0),
              silicon::volumetricHeatCapacity(30.0));
}

TEST(Floorplan, Table3Areas)
{
    Floorplan fp;
    // Paper Table 3 block areas in m^2.
    EXPECT_NEAR(fp.block(StructureId::Lsq).area_m2, 5.0e-6, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::Window).area_m2, 9.0e-6, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::Regfile).area_m2, 2.5e-6, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::Bpred).area_m2, 3.5e-6, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::DCache).area_m2, 1.0e-5, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::IntExec).area_m2, 5.0e-6, 1e-9);
    EXPECT_NEAR(fp.block(StructureId::FpExec).area_m2, 5.0e-6, 1e-9);
    EXPECT_NEAR(fp.dieAreaMm2(), 100.0, 1e-6);
}

TEST(Floorplan, CapacitanceFollowsPhysics)
{
    FloorplanConfig cfg;
    Floorplan fp(cfg);
    const double c_v = silicon::volumetricHeatCapacity(
        cfg.reference_temp);
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        const auto &blk = fp.blocks()[i];
        EXPECT_NEAR(blk.capacitance,
                    c_v * blk.area_m2 * cfg.active_layer_m,
                    1e-12)
            << structureName(blk.id);
    }
}

TEST(Floorplan, ResistanceInverselyProportionalToArea)
{
    FloorplanConfig cfg;
    // Same spreading factor everywhere isolates the 1/A dependence.
    cfg.k_spread.fill(10.0);
    Floorplan fp(cfg);
    const auto &lsq = fp.block(StructureId::Lsq);      // 5 mm^2
    const auto &dcache = fp.block(StructureId::DCache); // 10 mm^2
    EXPECT_NEAR(lsq.resistance / dcache.resistance, 2.0, 1e-9);
}

TEST(Floorplan, BlockTimeConstantsInPaperRange)
{
    Floorplan fp;
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const double rc_us = fp.blocks()[i].rc() * 1e6;
        EXPECT_GT(rc_us, 20.0) << structureName(fp.blocks()[i].id);
        EXPECT_LT(rc_us, 1000.0) << structureName(fp.blocks()[i].id);
    }
}

TEST(Floorplan, TangentialResistancesDominateNormalOnes)
{
    // The paper's simplification argument: R_tangential is orders of
    // magnitude above R_normal, so lateral heat flow can be ignored.
    Floorplan fp;
    ASSERT_FALSE(fp.tangential().empty());
    for (const auto &tan : fp.tangential()) {
        const double r_norm_a = fp.block(tan.a).resistance;
        const double r_norm_b = fp.block(tan.b).resistance;
        EXPECT_GT(tan.resistance, 10.0 * std::max(r_norm_a, r_norm_b))
            << structureName(tan.a) << "-" << structureName(tan.b);
    }
}

TEST(Floorplan, AdjacencyMatchesLayout)
{
    Floorplan fp;
    auto adjacent = [&](StructureId a, StructureId b) {
        for (const auto &tan : fp.tangential())
            if ((tan.a == a && tan.b == b) || (tan.a == b && tan.b == a))
                return true;
        return false;
    };
    // D-cache and LSQ share an edge; D-cache and IntExec do not.
    EXPECT_TRUE(adjacent(StructureId::DCache, StructureId::Lsq));
    EXPECT_FALSE(adjacent(StructureId::DCache, StructureId::IntExec));
    // Everything in the second row touches RestOfChip.
    EXPECT_TRUE(adjacent(StructureId::Window, StructureId::RestOfChip));
    EXPECT_TRUE(adjacent(StructureId::Bpred, StructureId::RestOfChip));
}

TEST(Floorplan, ChipLevelConstantsFromPaper)
{
    FloorplanConfig cfg;
    EXPECT_NEAR(cfg.chip_resistance, 0.34, 1e-12);
    EXPECT_NEAR(cfg.chip_capacitance, 60.0, 1e-12);
    // Chip-level RC is ~20 s: orders of magnitude above block RC.
    Floorplan fp(cfg);
    const double chip_rc = cfg.chip_resistance * cfg.chip_capacitance;
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        EXPECT_GT(chip_rc, 1e4 * fp.blocks()[i].rc());
}

TEST(Floorplan, RejectsBadConfig)
{
    FloorplanConfig cfg;
    cfg.die_thickness_m = 0.0;
    EXPECT_THROW(Floorplan{cfg}, FatalError);
    cfg = FloorplanConfig{};
    cfg.active_layer_m = 1.0; // thicker than the die
    EXPECT_THROW(Floorplan{cfg}, FatalError);
}

} // namespace
} // namespace thermctl
