/**
 * @file
 * Tests for EIO-style trace record/replay: bit-exact round trips, loop
 * mode, and error handling.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace thermctl
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path()
            / "thermctl_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    std::filesystem::path path_;
};

void
expectSameOp(const MicroOp &a, const MicroOp &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.num_srcs, b.num_srcs);
    EXPECT_EQ(a.srcs, b.srcs);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
    EXPECT_EQ(a.mem_size, b.mem_size);
    EXPECT_EQ(a.is_branch, b.is_branch);
    EXPECT_EQ(a.is_conditional, b.is_conditional);
    EXPECT_EQ(a.is_call, b.is_call);
    EXPECT_EQ(a.is_return, b.is_return);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.target, b.target);
}

TEST_F(TraceTest, RoundTripPreservesEveryField)
{
    SyntheticWorkload wl(specProfile("gcc"));
    std::vector<MicroOp> ops;
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 5000; ++i) {
            MicroOp op = wl.next();
            ops.push_back(op);
            writer.append(op);
        }
        writer.close();
        EXPECT_EQ(writer.count(), 5000u);
    }

    TraceReader reader(path_.string());
    EXPECT_EQ(reader.count(), 5000u);
    for (const auto &expected : ops) {
        ASSERT_FALSE(reader.done());
        expectSameOp(reader.next(), expected);
    }
    EXPECT_TRUE(reader.done());
}

TEST_F(TraceTest, LoopModeWrapsAround)
{
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 10; ++i) {
            MicroOp op;
            op.pc = 0x1000 + 4 * i;
            writer.append(op);
        }
    } // destructor finalizes

    TraceReader reader(path_.string(), /*loop=*/true);
    // Straight-line ops wrap discontinuously, so the reader stitches
    // each wrap with a synthetic jump at the fall-through pc.
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 10; ++i) {
            ASSERT_FALSE(reader.done());
            EXPECT_EQ(reader.next().pc, 0x1000u + 4 * i);
        }
        MicroOp stitch = reader.next();
        EXPECT_TRUE(stitch.is_branch);
        EXPECT_TRUE(stitch.taken);
        EXPECT_EQ(stitch.pc, 0x1028u);
        EXPECT_EQ(stitch.target, 0x1000u);
    }
}

TEST_F(TraceTest, LoopWrapPreservesPcContinuity)
{
    // Capture a slice that is cut mid-stream, replay it in loop mode,
    // and verify the chained-PC invariant the fetch engine depends on:
    // each op's pc equals the previous op's actualNextPc().
    {
        SyntheticWorkload wl(specProfile("gcc"));
        TraceWriter writer(path_.string());
        for (int i = 0; i < 997; ++i) // odd length: cut mid-block
            writer.append(wl.next());
    }
    TraceReader reader(path_.string(), /*loop=*/true);
    MicroOp prev = reader.next();
    for (int i = 0; i < 5000; ++i) {
        MicroOp cur = reader.next();
        ASSERT_EQ(cur.pc, prev.actualNextPc())
            << "discontinuity at replayed op " << i;
        prev = cur;
    }
}

TEST_F(TraceTest, SimulatorRunsFromTracePath)
{
    {
        SyntheticWorkload wl(specProfile("177.mesa"));
        TraceWriter writer(path_.string());
        for (int i = 0; i < 100000; ++i)
            writer.append(wl.next());
    }
    SimConfig cfg;
    cfg.trace_path = path_.string();
    Simulator sim(cfg);
    sim.run(50000);
    EXPECT_GT(sim.measuredIpc(), 0.3);
    EXPECT_GT(sim.stats().avgPower(), 10.0);
}

TEST_F(TraceTest, NextPastEndPanics)
{
    {
        TraceWriter writer(path_.string());
        writer.append(MicroOp{});
    }
    TraceReader reader(path_.string());
    (void)reader.next(); // consume the only op; its value is irrelevant
    EXPECT_TRUE(reader.done());
    EXPECT_THROW(reader.next(), PanicError);
}

TEST_F(TraceTest, SynthesizeAtProducesNonBranches)
{
    {
        TraceWriter writer(path_.string());
        SyntheticWorkload wl(specProfile("gcc"));
        for (int i = 0; i < 100; ++i)
            writer.append(wl.next());
    }
    TraceReader reader(path_.string());
    for (int i = 0; i < 100; ++i) {
        MicroOp op = reader.synthesizeAt(0x9000);
        EXPECT_EQ(op.pc, 0x9000u);
        EXPECT_FALSE(op.is_branch);
        EXPECT_NE(op.op, OpClass::Branch);
    }
}

TEST_F(TraceTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.bin"), FatalError);
}

TEST_F(TraceTest, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        const char junk[64] = "not a trace";
        out.write(junk, sizeof(junk));
    }
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, TruncatedFileIsFatal)
{
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 100; ++i)
            writer.append(MicroOp{});
        writer.close();
    }
    // Chop the tail off.
    const auto full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full - 10);
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, EmptyTraceIsFatal)
{
    {
        TraceWriter writer(path_.string());
        writer.close();
    }
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, AppendAfterClosePanics)
{
    TraceWriter writer(path_.string());
    writer.append(MicroOp{});
    writer.close();
    EXPECT_THROW(writer.append(MicroOp{}), PanicError);
}

// decodeTrace is TraceReader's validation core, exposed for in-memory
// parsing of untrusted bytes (the fuzz harness drives it the same way).

class DecodeTraceTest : public TraceTest
{
  protected:
    /** Write `ops` with the real writer and slurp the file image. */
    std::string
    traceImage(int num_ops)
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < num_ops; ++i) {
            MicroOp op;
            op.pc = 0x1000 + 4 * static_cast<Addr>(i);
            op.op = OpClass::IntAlu;
            writer.append(op);
        }
        writer.close();
        std::ifstream in(path_, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }
};

TEST_F(DecodeTraceTest, ValidImageDecodes)
{
    const std::string image = traceImage(5);
    std::vector<MicroOp> ops;
    std::string error;
    ASSERT_TRUE(decodeTrace(image, ops, error)) << error;
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0].pc, 0x1000u);
    EXPECT_EQ(ops[4].pc, 0x1010u);
}

TEST_F(DecodeTraceTest, HeaderCountBombIsRejectedBeforeAllocation)
{
    // A 16-byte header claiming 2^60 records: the count cross-check
    // against the byte length must reject it (the pre-fix behaviour
    // was a 2^60-element reserve straight from the header).
    std::string image = traceImage(1).substr(0, 16);
    const std::uint64_t huge = 1ull << 60;
    for (int i = 0; i < 8; ++i)
        image[8 + i] = static_cast<char>(huge >> (8 * i));
    std::vector<MicroOp> ops;
    std::string error;
    EXPECT_FALSE(decodeTrace(image, ops, error));
    EXPECT_NE(error.find("disagrees"), std::string::npos) << error;
    EXPECT_TRUE(ops.empty());
}

TEST_F(DecodeTraceTest, CountFieldMustMatchByteLength)
{
    std::string image = traceImage(3);
    image[8] = static_cast<char>(image[8] + 1); // claim one extra record
    std::vector<MicroOp> ops;
    std::string error;
    EXPECT_FALSE(decodeTrace(image, ops, error));
}

TEST_F(DecodeTraceTest, OutOfRangeOpClassIsRejected)
{
    std::string image = traceImage(2);
    const std::size_t record_bytes = (image.size() - 16) / 2;
    // Op-class byte of the second record (offset 30 within the record).
    image[16 + record_bytes + 30] = '\x7f';
    std::vector<MicroOp> ops;
    std::string error;
    EXPECT_FALSE(decodeTrace(image, ops, error));
    EXPECT_NE(error.find("op class"), std::string::npos) << error;
    EXPECT_TRUE(ops.empty()); // no partial output on mid-stream failure
}

TEST_F(DecodeTraceTest, ForeignVersionIsRejected)
{
    std::string image = traceImage(1);
    image[4] = static_cast<char>(kTraceVersion + 1);
    std::vector<MicroOp> ops;
    std::string error;
    EXPECT_FALSE(decodeTrace(image, ops, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

} // namespace
} // namespace thermctl
