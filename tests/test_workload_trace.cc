/**
 * @file
 * Tests for EIO-style trace record/replay: bit-exact round trips, loop
 * mode, and error handling.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace thermctl
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path()
            / "thermctl_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    std::filesystem::path path_;
};

void
expectSameOp(const MicroOp &a, const MicroOp &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.num_srcs, b.num_srcs);
    EXPECT_EQ(a.srcs, b.srcs);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
    EXPECT_EQ(a.mem_size, b.mem_size);
    EXPECT_EQ(a.is_branch, b.is_branch);
    EXPECT_EQ(a.is_conditional, b.is_conditional);
    EXPECT_EQ(a.is_call, b.is_call);
    EXPECT_EQ(a.is_return, b.is_return);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.target, b.target);
}

TEST_F(TraceTest, RoundTripPreservesEveryField)
{
    SyntheticWorkload wl(specProfile("gcc"));
    std::vector<MicroOp> ops;
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 5000; ++i) {
            MicroOp op = wl.next();
            ops.push_back(op);
            writer.append(op);
        }
        writer.close();
        EXPECT_EQ(writer.count(), 5000u);
    }

    TraceReader reader(path_.string());
    EXPECT_EQ(reader.count(), 5000u);
    for (const auto &expected : ops) {
        ASSERT_FALSE(reader.done());
        expectSameOp(reader.next(), expected);
    }
    EXPECT_TRUE(reader.done());
}

TEST_F(TraceTest, LoopModeWrapsAround)
{
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 10; ++i) {
            MicroOp op;
            op.pc = 0x1000 + 4 * i;
            writer.append(op);
        }
    } // destructor finalizes

    TraceReader reader(path_.string(), /*loop=*/true);
    // Straight-line ops wrap discontinuously, so the reader stitches
    // each wrap with a synthetic jump at the fall-through pc.
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 10; ++i) {
            ASSERT_FALSE(reader.done());
            EXPECT_EQ(reader.next().pc, 0x1000u + 4 * i);
        }
        MicroOp stitch = reader.next();
        EXPECT_TRUE(stitch.is_branch);
        EXPECT_TRUE(stitch.taken);
        EXPECT_EQ(stitch.pc, 0x1028u);
        EXPECT_EQ(stitch.target, 0x1000u);
    }
}

TEST_F(TraceTest, LoopWrapPreservesPcContinuity)
{
    // Capture a slice that is cut mid-stream, replay it in loop mode,
    // and verify the chained-PC invariant the fetch engine depends on:
    // each op's pc equals the previous op's actualNextPc().
    {
        SyntheticWorkload wl(specProfile("gcc"));
        TraceWriter writer(path_.string());
        for (int i = 0; i < 997; ++i) // odd length: cut mid-block
            writer.append(wl.next());
    }
    TraceReader reader(path_.string(), /*loop=*/true);
    MicroOp prev = reader.next();
    for (int i = 0; i < 5000; ++i) {
        MicroOp cur = reader.next();
        ASSERT_EQ(cur.pc, prev.actualNextPc())
            << "discontinuity at replayed op " << i;
        prev = cur;
    }
}

TEST_F(TraceTest, SimulatorRunsFromTracePath)
{
    {
        SyntheticWorkload wl(specProfile("177.mesa"));
        TraceWriter writer(path_.string());
        for (int i = 0; i < 100000; ++i)
            writer.append(wl.next());
    }
    SimConfig cfg;
    cfg.trace_path = path_.string();
    Simulator sim(cfg);
    sim.run(50000);
    EXPECT_GT(sim.measuredIpc(), 0.3);
    EXPECT_GT(sim.stats().avgPower(), 10.0);
}

TEST_F(TraceTest, NextPastEndPanics)
{
    {
        TraceWriter writer(path_.string());
        writer.append(MicroOp{});
    }
    TraceReader reader(path_.string());
    reader.next();
    EXPECT_TRUE(reader.done());
    EXPECT_THROW(reader.next(), PanicError);
}

TEST_F(TraceTest, SynthesizeAtProducesNonBranches)
{
    {
        TraceWriter writer(path_.string());
        SyntheticWorkload wl(specProfile("gcc"));
        for (int i = 0; i < 100; ++i)
            writer.append(wl.next());
    }
    TraceReader reader(path_.string());
    for (int i = 0; i < 100; ++i) {
        MicroOp op = reader.synthesizeAt(0x9000);
        EXPECT_EQ(op.pc, 0x9000u);
        EXPECT_FALSE(op.is_branch);
        EXPECT_NE(op.op, OpClass::Branch);
    }
}

TEST_F(TraceTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.bin"), FatalError);
}

TEST_F(TraceTest, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        const char junk[64] = "not a trace";
        out.write(junk, sizeof(junk));
    }
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, TruncatedFileIsFatal)
{
    {
        TraceWriter writer(path_.string());
        for (int i = 0; i < 100; ++i)
            writer.append(MicroOp{});
        writer.close();
    }
    // Chop the tail off.
    const auto full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full - 10);
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, EmptyTraceIsFatal)
{
    {
        TraceWriter writer(path_.string());
        writer.close();
    }
    EXPECT_THROW(TraceReader(path_.string()), FatalError);
}

TEST_F(TraceTest, AppendAfterClosePanics)
{
    TraceWriter writer(path_.string());
    writer.append(MicroOp{});
    writer.close();
    EXPECT_THROW(writer.append(MicroOp{}), PanicError);
}

} // namespace
} // namespace thermctl
