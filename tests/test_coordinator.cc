/**
 * @file
 * Coordinator (thermctl-flock) tests: option validation, grid
 * expansion order, sharded runs checked bit-identical against direct
 * ExperimentRunner executions, digest coalescing of duplicate points,
 * bounded settlement against dead endpoints, failover from a dead
 * worker to live ones, and injected dispatch/collect faults retried
 * to completion. The full kill -9 / stall soak lives in the chaos
 * harness (tests/chaos) and check.sh cluster-smoke.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "serve/coordinator.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/policy_factory.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

/** Unique short Unix socket path (sun_path is tiny). */
std::string
coordSocketPath(int idx)
{
    return "/tmp/tcoord-" + std::to_string(::getpid()) + "-"
           + std::to_string(idx) + ".sock";
}

ServerOptions
fastServerOptions(int sock_idx)
{
    ServerOptions o;
    o.unix_path = coordSocketPath(sock_idx);
    o.sweep.use_cache = false;
    o.sweep.jobs = 4;
    o.dispatchers = 1;
    o.workers = 4;
    // The coordinator's prober may leave a probe connection behind;
    // don't let shutdown wait the full default drain window for it.
    o.drain_flush_ms = 100;
    return o;
}

/** Small fast grid: benchmarks outer, policies inner. */
std::vector<PointSpec>
fastGrid(const std::vector<std::string> &benches,
         const std::vector<std::string> &policies)
{
    SweepRequest grid;
    grid.benchmarks = benches;
    grid.policies = policies;
    grid.warmup_cycles = 1000;
    grid.measure_cycles = 10000;
    return Coordinator::gridPoints(grid);
}

/** Coordinator options tuned for tests: short leases, fast probes. */
CoordinatorOptions
fastCoordOptions(std::vector<std::string> endpoints)
{
    CoordinatorOptions o;
    o.endpoints = std::move(endpoints);
    o.lease_ms = 10000;
    o.connect_timeout_ms = 200;
    o.probe_interval_ms = 50;
    o.quarantine_ms = 200;
    return o;
}

/** Direct single-process reference for one point (the ground truth). */
RunResult
directRun(const PointSpec &p)
{
    RunProtocol proto;
    proto.warmup_cycles = p.warmup_cycles;
    proto.measure_cycles = p.measure_cycles;
    SimConfig config;
    if (!parseDtmPolicyKind(p.policy, config.policy.kind))
        fatal("unknown policy in test grid: ", p.policy);
    return ExperimentRunner(proto).runOne(specProfile(p.benchmark),
                                          config.policy, config);
}

} // namespace

// ------------------------------------------------------------ options

TEST(CoordinatorOptions, ValidateRejectsNonsense)
{
    CoordinatorOptions ok;
    ok.endpoints = {"unix:/tmp/x.sock"};
    EXPECT_NO_THROW(ok.validate());

    CoordinatorOptions bad = ok;
    bad.endpoints.clear();
    EXPECT_THROW(bad.validate(), FatalError);

    bad = ok;
    bad.lease_ms = 0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = ok;
    bad.probe_interval_ms = 0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = ok;
    bad.max_point_attempts = 0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = ok;
    bad.unhealthy_after = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(CoordinatorOptions, HealthNamesArePrintable)
{
    EXPECT_STREQ(workerHealthName(WorkerHealth::Healthy), "healthy");
    EXPECT_STREQ(workerHealthName(WorkerHealth::Unhealthy), "unhealthy");
    EXPECT_STREQ(workerHealthName(WorkerHealth::Quarantined),
                 "quarantined");
}

// --------------------------------------------------------------- grid

TEST(Coordinator, GridPointsExpandBenchmarksOuterPoliciesInner)
{
    SweepRequest grid;
    grid.benchmarks = {"186.crafty", "179.art"};
    grid.policies = {"none", "PI"};
    grid.warmup_cycles = 123;
    grid.measure_cycles = 456;
    grid.num_cores = 2;
    grid.chip_budget = 45.0;
    grid.budget_policy = 1;

    const auto points = Coordinator::gridPoints(grid);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].benchmark, "186.crafty");
    EXPECT_EQ(points[0].policy, "none");
    EXPECT_EQ(points[1].benchmark, "186.crafty");
    EXPECT_EQ(points[1].policy, "PI");
    EXPECT_EQ(points[2].benchmark, "179.art");
    EXPECT_EQ(points[2].policy, "none");
    EXPECT_EQ(points[3].benchmark, "179.art");
    EXPECT_EQ(points[3].policy, "PI");
    for (const PointSpec &p : points) {
        EXPECT_EQ(p.warmup_cycles, 123u);
        EXPECT_EQ(p.measure_cycles, 456u);
        EXPECT_EQ(p.num_cores, 2u);
        EXPECT_EQ(p.chip_budget, 45.0);
        EXPECT_EQ(p.budget_policy, 1u);
    }
}

// ------------------------------------------------------------- report

TEST(CoordinatorReport, CompleteAndMissingKeysAgree)
{
    CoordinatorReport report;
    CoordPointOutcome done;
    done.key = "186.crafty/none";
    done.reply.error = ServeError::None;
    CoordPointOutcome missing;
    missing.key = "179.art/PI";
    missing.reply.error = ServeError::Transport;
    report.outcomes = {done, missing};

    EXPECT_FALSE(report.complete());
    const auto keys = report.missingKeys();
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], "179.art/PI");

    report.outcomes[1].reply.error = ServeError::None;
    EXPECT_TRUE(report.complete());
    EXPECT_TRUE(report.missingKeys().empty());
}

// ------------------------------------------------- sharded execution

TEST(Coordinator, ShardedRunMatchesDirectRunsBitExactly)
{
    Server a(fastServerOptions(1));
    Server b(fastServerOptions(2));
    a.start();
    b.start();

    const auto grid =
        fastGrid({"186.crafty", "179.art"}, {"none", "PI"});
    Coordinator coord(fastCoordOptions(
        {"unix:" + coordSocketPath(1), "unix:" + coordSocketPath(2)}));
    const CoordinatorReport report = coord.run(grid);

    ASSERT_TRUE(report.complete());
    ASSERT_EQ(report.outcomes.size(), grid.size());
    std::uint64_t completed = 0;
    for (const CoordWorkerStats &w : report.workers)
        completed += w.completed;
    EXPECT_GE(completed, grid.size());

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const CoordPointOutcome &out = report.outcomes[i];
        EXPECT_EQ(out.spec.benchmark, grid[i].benchmark);
        EXPECT_EQ(out.spec.policy, grid[i].policy);
        EXPECT_EQ(out.key, grid[i].benchmark + "/" + grid[i].policy);
        EXPECT_FALSE(out.worker.empty());
        // Bit-identical to a direct single-process execution.
        EXPECT_EQ(serializeRunResult(out.reply.result),
                  serializeRunResult(directRun(grid[i])))
            << out.key;
    }

    a.shutdown();
    b.shutdown();
}

TEST(Coordinator, DuplicateGridPointsCoalesceByDigest)
{
    Server server(fastServerOptions(3));
    server.start();

    // The same point three times plus one distinct point: the digest
    // map must collapse the triplicate into one dispatch while the
    // report still answers every requested point, in request order.
    std::vector<PointSpec> grid = fastGrid({"186.crafty"}, {"none"});
    grid.push_back(grid[0]);
    grid.push_back(grid[0]);
    auto extra = fastGrid({"186.crafty"}, {"PI"});
    grid.push_back(extra[0]);

    Coordinator coord(
        fastCoordOptions({"unix:" + coordSocketPath(3)}));
    const CoordinatorReport report = coord.run(grid);

    ASSERT_TRUE(report.complete());
    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.outcomes[0].digest, report.outcomes[1].digest);
    EXPECT_EQ(report.outcomes[0].digest, report.outcomes[2].digest);
    EXPECT_NE(report.outcomes[0].digest, report.outcomes[3].digest);
    EXPECT_EQ(
        serializeRunResult(report.outcomes[0].reply.result),
        serializeRunResult(report.outcomes[1].reply.result));

    // Coalescing means only two distinct digests were ever dispatched.
    std::uint64_t dispatched = 0;
    for (const CoordWorkerStats &w : report.workers)
        dispatched += w.dispatched;
    EXPECT_GE(dispatched, 2u);
    EXPECT_LE(dispatched, 3u); // + at most one end-of-grid shadow

    server.shutdown();
}

TEST(Coordinator, BadPolicyIsTerminalWithoutDispatch)
{
    Server server(fastServerOptions(4));
    server.start();

    auto grid = fastGrid({"186.crafty"}, {"none"});
    auto bogus = fastGrid({"186.crafty"}, {"none"});
    bogus[0].policy = "no-such-policy";
    grid.push_back(bogus[0]);

    Coordinator coord(
        fastCoordOptions({"unix:" + coordSocketPath(4)}));
    const CoordinatorReport report = coord.run(grid);

    EXPECT_FALSE(report.complete());
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].reply.error, ServeError::None);
    EXPECT_EQ(report.outcomes[1].reply.error, ServeError::BadRequest);
    const auto missing = report.missingKeys();
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0], "186.crafty/no-such-policy");

    server.shutdown();
}

// ---------------------------------------------------- fault tolerance

TEST(Coordinator, DeadEndpointsSettleBoundedWithMissingManifest)
{
    // No worker ever listens: every point must still settle as a typed
    // failure after its attempt budget, never hang. This is the
    // all-quarantined corner: dispatch proceeds anyway so the budget
    // keeps burning toward settlement.
    CoordinatorOptions opts = fastCoordOptions(
        {"unix:/tmp/tcoord-dead-a.sock", "unix:/tmp/tcoord-dead-b.sock"});
    opts.max_point_attempts = 2;
    opts.connect_timeout_ms = 50;

    const auto grid = fastGrid({"186.crafty"}, {"none", "PI"});
    Coordinator coord(opts);
    const CoordinatorReport report = coord.run(grid);

    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.missingKeys().size(), grid.size());
    for (const CoordPointOutcome &out : report.outcomes) {
        EXPECT_NE(out.reply.error, ServeError::None);
        EXPECT_GE(out.attempts, 1u);
        EXPECT_LE(out.attempts, opts.max_point_attempts);
        EXPECT_NE(out.reply.message.find("gave up"), std::string::npos)
            << out.reply.message;
    }
    std::uint64_t transport = 0;
    for (const CoordWorkerStats &w : report.workers)
        transport += w.transport_failures;
    EXPECT_GE(transport, grid.size());
}

TEST(Coordinator, DeadWorkerFailsOverToLiveOnes)
{
    Server live(fastServerOptions(5));
    live.start();

    CoordinatorOptions opts = fastCoordOptions(
        {"unix:" + coordSocketPath(5), "unix:/tmp/tcoord-dead-c.sock"});
    opts.connect_timeout_ms = 50;

    const auto grid =
        fastGrid({"186.crafty", "179.art"}, {"none", "PI"});
    Coordinator coord(opts);
    const CoordinatorReport report = coord.run(grid);

    ASSERT_TRUE(report.complete());
    for (const CoordPointOutcome &out : report.outcomes) {
        EXPECT_EQ(out.worker, "unix:" + coordSocketPath(5));
        EXPECT_EQ(serializeRunResult(out.reply.result),
                  serializeRunResult(directRun(out.spec)))
            << out.key;
    }
    ASSERT_EQ(report.workers.size(), 2u);
    EXPECT_EQ(report.workers[0].completed, grid.size());
    EXPECT_EQ(report.workers[1].completed, 0u);
    // The dead worker's share was stolen or reassigned to the live one.
    EXPECT_GE(report.workers[1].transport_failures, 1u);

    live.shutdown();
}

TEST(Coordinator, InjectedDispatchAndCollectFaultsAreRetried)
{
    Server server(fastServerOptions(6));
    server.start();

    // First dispatch aborts before sending, first collect drops the
    // reply after the worker computed it: both force re-dispatch, and
    // the rerun must still land bit-identical (determinism is what the
    // duplicate byte-compare leans on).
    fault::FaultInjector::instance().arm(fault::FaultPlan::parse(
        "seed=7;coord.dispatch=abort:max=1;coord.collect=abort:max=1"));

    const auto grid =
        fastGrid({"186.crafty", "179.art"}, {"none", "PI"});
    Coordinator coord(
        fastCoordOptions({"unix:" + coordSocketPath(6)}));
    const CoordinatorReport report = coord.run(grid);

    const std::uint64_t fired =
        fault::FaultInjector::instance().firedCount();
    fault::FaultInjector::instance().disarm();

    EXPECT_EQ(fired, 2u);
    ASSERT_TRUE(report.complete());
    std::uint64_t dispatched = 0;
    for (const CoordWorkerStats &w : report.workers)
        dispatched += w.dispatched;
    EXPECT_GE(dispatched, grid.size() + 2); // both faults re-dispatched
    for (const CoordPointOutcome &out : report.outcomes)
        EXPECT_EQ(serializeRunResult(out.reply.result),
                  serializeRunResult(directRun(out.spec)))
            << out.key;

    server.shutdown();
}
