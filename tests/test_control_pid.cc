/**
 * @file
 * Tests for the discrete PID controller, with emphasis on the paper's
 * Section 3.3 anti-windup behaviour.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "control/pid.hh"

namespace thermctl
{
namespace
{

PidConfig
baseConfig()
{
    PidConfig cfg;
    cfg.setpoint = 10.0;
    cfg.dt = 1.0;
    cfg.out_min = 0.0;
    cfg.out_max = 1.0;
    return cfg;
}

TEST(Pid, ProportionalOnly)
{
    PidConfig cfg = baseConfig();
    cfg.kp = 0.1;
    PidController pid(cfg);
    // error = 10 - 8 = 2 -> u = 0.2
    EXPECT_NEAR(pid.update(8.0), 0.2, 1e-12);
    // error = 10 - 15 = -5 -> clamped at 0
    EXPECT_DOUBLE_EQ(pid.update(15.0), 0.0);
    // large positive error saturates high
    EXPECT_DOUBLE_EQ(pid.update(-100.0), 1.0);
}

TEST(Pid, IntegralAccumulatesAndHolds)
{
    PidConfig cfg = baseConfig();
    cfg.ki = 0.01;
    PidController pid(cfg);
    double u = 0.0;
    for (int i = 0; i < 30; ++i)
        u = pid.update(9.0); // constant error of 1
    EXPECT_NEAR(u, 0.30, 1e-9);
    // At zero error the integral term holds the output steady.
    const double held = pid.update(10.0);
    EXPECT_NEAR(held, 0.30, 1e-9);
}

TEST(Pid, DerivativeOpposesRapidRise)
{
    PidConfig cfg = baseConfig();
    cfg.kp = 0.05;
    cfg.kd = 0.2;
    PidController pid(cfg);
    pid.update(9.0);
    // Measurement rising fast: derivative (on measurement) is negative,
    // pulling the output down relative to pure P.
    const double u = pid.update(9.9);
    const double p_only = cfg.kp * (10.0 - 9.9);
    EXPECT_LT(u, p_only);
}

TEST(Pid, AntiWindupLimitsIntegralToActuatorRange)
{
    PidConfig cfg = baseConfig();
    cfg.ki = 1.0; // aggressive
    cfg.anti_windup = AntiWindup::Conditional;
    PidController pid(cfg);
    // Long stretch of large positive error: output saturates at 1.
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(pid.update(0.0), 1.0);
    // The integral term is clamped to the actuator range, so when the
    // error flips sign the output unwinds immediately.
    EXPECT_LE(pid.integralTerm(), cfg.out_max + 1e-12);
    pid.update(20.0); // error -10
    const double u = pid.update(20.0);
    EXPECT_LT(u, 1.0);
}

TEST(Pid, WindupWithoutProtectionUnwindsSlowly)
{
    // Contrast case documenting why the paper freezes the integrator:
    // with windup protection the controller reacts to an overshoot
    // within a couple of samples; without it the integral is unbounded
    // and takes far longer to unwind back into the actuator range.
    auto settle_steps = [](AntiWindup mode) {
        PidConfig cfg;
        cfg.setpoint = 10.0;
        cfg.dt = 1.0;
        cfg.ki = 0.05;
        cfg.out_min = 0.0;
        cfg.out_max = 1.0;
        cfg.anti_windup = mode;
        PidController pid(cfg);
        for (int i = 0; i < 500; ++i)
            pid.update(0.0); // wind up
        int steps = 0;
        while (pid.update(12.0) > 0.5 && steps < 1000)
            ++steps;
        return steps;
    };
    EXPECT_LE(settle_steps(AntiWindup::Conditional),
              settle_steps(AntiWindup::None));
}

TEST(Pid, OutputClampedToRange)
{
    PidConfig cfg = baseConfig();
    cfg.kp = 100.0;
    PidController pid(cfg);
    EXPECT_DOUBLE_EQ(pid.update(-1000.0), 1.0);
    EXPECT_DOUBLE_EQ(pid.update(1000.0), 0.0);
}

TEST(Pid, ResetClearsDynamicState)
{
    PidConfig cfg = baseConfig();
    cfg.ki = 0.1;
    PidController pid(cfg);
    for (int i = 0; i < 10; ++i)
        pid.update(5.0);
    EXPECT_GT(pid.integralTerm(), 0.0);
    pid.reset();
    EXPECT_DOUBLE_EQ(pid.integralTerm(), 0.0);
    EXPECT_EQ(pid.steps(), 0u);
    EXPECT_DOUBLE_EQ(pid.output(), cfg.out_max);
}

TEST(Pid, SetpointChangeKeepsIntegral)
{
    PidConfig cfg = baseConfig();
    cfg.ki = 0.05;
    PidController pid(cfg);
    for (int i = 0; i < 10; ++i)
        pid.update(9.0);
    const double integral = pid.integralTerm();
    pid.setSetpoint(11.0);
    EXPECT_DOUBLE_EQ(pid.integralTerm(), integral);
}

TEST(Pid, DerivativeFilterSmooths)
{
    PidConfig raw = baseConfig();
    raw.kd = 1.0;
    raw.out_min = -100.0;
    raw.out_max = 100.0;
    raw.derivative_filter = 1.0;
    PidConfig filtered = raw;
    filtered.derivative_filter = 0.1;

    PidController a(raw), b(filtered);
    a.update(0.0);
    b.update(0.0);
    // A measurement spike produces a much larger derivative kick in the
    // unfiltered controller.
    const double ua = a.update(5.0);
    const double ub = b.update(5.0);
    EXPECT_LT(ua, ub); // spike drives output down harder unfiltered
}

TEST(Pid, RejectsBadConfig)
{
    PidConfig cfg = baseConfig();
    cfg.dt = 0.0;
    EXPECT_THROW(PidController{cfg}, FatalError);
    cfg = baseConfig();
    cfg.out_min = 1.0;
    cfg.out_max = 0.0;
    EXPECT_THROW(PidController{cfg}, FatalError);
    cfg = baseConfig();
    cfg.derivative_filter = 0.0;
    EXPECT_THROW(PidController{cfg}, FatalError);
}

} // namespace
} // namespace thermctl
