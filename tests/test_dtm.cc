/**
 * @file
 * Tests for the DTM layer: sensors, the quantized fetch toggler, the
 * policy implementations, and the manager's sampling/engagement logic.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dtm/actuator.hh"
#include "dtm/manager.hh"
#include "dtm/policy.hh"
#include "dtm/sensor.hh"

namespace thermctl
{
namespace
{

TemperatureVector
uniformTemps(Celsius t)
{
    TemperatureVector v;
    v.value.fill(t);
    return v;
}

// --------------------------------------------------------------- sensors

TEST(Sensors, IdealByDefault)
{
    SensorBank bank;
    auto truth = uniformTemps(100.0);
    truth[StructureId::Lsq] = 111.5;
    auto sensed = bank.read(truth);
    for (std::size_t i = 0; i < kNumStructures; ++i)
        EXPECT_DOUBLE_EQ(sensed.value[i], truth.value[i]);
}

TEST(Sensors, OffsetShiftsAllReadings)
{
    SensorConfig cfg;
    cfg.offset = -0.5;
    SensorBank bank(cfg);
    auto sensed = bank.read(uniformTemps(100.0));
    for (double t : sensed.value)
        EXPECT_DOUBLE_EQ(t, 99.5);
}

TEST(Sensors, QuantizationSnapsToGrid)
{
    SensorConfig cfg;
    cfg.quantum = 0.5;
    SensorBank bank(cfg);
    auto sensed = bank.read(uniformTemps(100.26));
    for (double t : sensed.value)
        EXPECT_DOUBLE_EQ(t, 100.5);
}

TEST(Sensors, NoiseIsZeroMeanAndDeterministic)
{
    SensorConfig cfg;
    cfg.noise_sigma = 0.2;
    SensorBank a(cfg), b(cfg);
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < 1000; ++i) {
        auto sa = a.read(uniformTemps(100.0));
        auto sb = b.read(uniformTemps(100.0));
        for (std::size_t k = 0; k < kNumStructures; ++k) {
            ASSERT_DOUBLE_EQ(sa.value[k], sb.value[k]);
            sum += sa.value[k] - 100.0;
            ++n;
        }
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
}

// -------------------------------------------------------------- actuator

TEST(Toggler, FullSpeedByDefault)
{
    FetchToggler t;
    EXPECT_EQ(t.level(), 7u);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(t.allowFetch());
}

TEST(Toggler, LevelZeroBlocksAll)
{
    FetchToggler t;
    t.setLevel(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(t.allowFetch());
}

TEST(Toggler, DutyQuantizedToEighths)
{
    FetchToggler t;
    t.setDuty(0.5);
    EXPECT_EQ(t.level(), 4u); // round(0.5 * 7) = 4
    EXPECT_NEAR(t.duty(), 4.0 / 7.0, 1e-12);
    t.setDuty(1.1);
    EXPECT_EQ(t.level(), 7u);
    t.setDuty(-0.3);
    EXPECT_EQ(t.level(), 0u);
}

/** Property: each level k allows exactly k fetches per 7-cycle frame. */
class TogglerDuty : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TogglerDuty, ExactCountPerFrame)
{
    const std::uint32_t level = GetParam();
    FetchToggler t;
    t.setLevel(level);
    int allowed = 0;
    const int frames = 1000;
    for (int i = 0; i < 7 * frames; ++i)
        allowed += t.allowFetch();
    EXPECT_EQ(allowed, static_cast<int>(level) * frames);
}

TEST_P(TogglerDuty, SpreadEvenlyNotBursty)
{
    const std::uint32_t level = GetParam();
    if (level == 0)
        return;
    FetchToggler t;
    t.setLevel(level);
    // Maximum gap between allowed fetches is ceil(7/level).
    int gap = 0;
    for (int i = 0; i < 700; ++i) {
        if (t.allowFetch())
            gap = 0;
        else
            ++gap;
        ASSERT_LE(gap, static_cast<int>((7 + level - 1) / level));
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, TogglerDuty,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Toggler, RejectsZeroLevels)
{
    EXPECT_THROW(FetchToggler(0), FatalError);
}

// --------------------------------------------------------------- policies

TEST(Policy, NoDtmAlwaysFullSpeed)
{
    NoDtmPolicy policy;
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(150.0), 0).duty, 1.0);
}

TEST(Policy, FixedToggleEngagesAtTriggerAndHolds)
{
    FixedTogglePolicy policy(0.0, 110.8, 5000, "toggle1");
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(110.0), 0).duty, 1.0);
    // Trigger.
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(111.0), 1000).duty, 0.0);
    // Cooled below trigger but still inside the policy delay.
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(110.0), 3000).duty, 0.0);
    // Delay expired.
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(110.0), 7000).duty, 1.0);
}

TEST(Policy, FixedToggleRetriggersExtendDelay)
{
    FixedTogglePolicy policy(0.5, 110.8, 5000, "toggle2");
    policy.onSample(uniformTemps(111.0), 0);
    policy.onSample(uniformTemps(111.0), 4000); // re-trigger
    // Original delay would expire at 5000; the re-trigger extends it.
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(110.0), 6000).duty, 0.5);
}

TEST(Policy, ManualProportionalMapsLinearly)
{
    ManualProportionalPolicy policy(110.8, 111.8);
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(110.0), 0).duty, 1.0);
    EXPECT_NEAR(policy.onSample(uniformTemps(111.3), 0).duty, 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(112.0), 0).duty, 0.0);
}

TEST(Policy, CtPolicyQuiescentBelowRange)
{
    PidConfig pid;
    pid.kp = 2.0;
    pid.ki = 1e5;
    pid.setpoint = 111.6;
    pid.dt = 667e-9;
    CtPolicy policy(ControllerKind::PI, pid, 111.4);
    // Far below the range floor: full speed, repeatedly.
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(policy.onSample(uniformTemps(109.0), i).duty, 1.0);
    // Above the setpoint the duty must fall.
    double duty = 1.0;
    for (int i = 0; i < 20; ++i)
        duty = policy.onSample(uniformTemps(111.8), 100 + i).duty;
    EXPECT_LT(duty, 0.5);
}

TEST(Policy, CtPolicyUsesHottestStructure)
{
    PidConfig pid;
    pid.kp = 5.0;
    pid.setpoint = 111.6;
    pid.dt = 667e-9;
    CtPolicy policy(ControllerKind::P, pid, 110.8);
    auto temps = uniformTemps(109.0);
    temps[StructureId::FpExec] = 112.0; // one hot structure
    EXPECT_LT(policy.onSample(temps, 0).duty, 1.0);
}

TEST(Policy, CtPolicyRejectsRangeAboveSetpoint)
{
    PidConfig pid;
    pid.setpoint = 111.0;
    pid.dt = 1.0;
    EXPECT_THROW(CtPolicy(ControllerKind::P, pid, 111.5), FatalError);
}

TEST(Policy, NamesAreStable)
{
    EXPECT_EQ(NoDtmPolicy().name(), "none");
    EXPECT_EQ(FixedTogglePolicy(0.0, 110.8, 1, "toggle1").name(),
              "toggle1");
    EXPECT_EQ(ManualProportionalPolicy(110.8, 111.8).name(), "M");
    PidConfig pid;
    pid.setpoint = 111.6;
    pid.dt = 1.0;
    EXPECT_EQ(CtPolicy(ControllerKind::PID, pid, 111.4).name(), "PID");
}

// ---------------------------------------------------------------- manager

TEST(Manager, CountsEmergencyAndStressCycles)
{
    DtmConfig cfg;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal, std::make_unique<NoDtmPolicy>());
    mgr.tick(uniformTemps(112.0), 0); // emergency
    mgr.tick(uniformTemps(111.0), 1); // stress only
    mgr.tick(uniformTemps(109.0), 2); // neither
    const auto &s = mgr.stats();
    EXPECT_EQ(s.cycles, 3u);
    EXPECT_EQ(s.emergency_cycles, 1u);
    EXPECT_EQ(s.stress_cycles, 2u);
    EXPECT_NEAR(s.max_temperature, 112.0, 1e-12);
}

TEST(Manager, SamplesAtConfiguredInterval)
{
    DtmConfig cfg;
    cfg.sample_interval = 100;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal, std::make_unique<NoDtmPolicy>());
    for (Cycle c = 0; c < 1000; ++c)
        mgr.tick(uniformTemps(100.0), c);
    EXPECT_EQ(mgr.stats().samples, 10u);
}

TEST(Manager, DirectEngagementGatesImmediately)
{
    DtmConfig cfg;
    cfg.sample_interval = 10;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal,
                   std::make_unique<FixedTogglePolicy>(0.0, 110.8,
                                                       100000,
                                                       "toggle1"));
    // Hot from the start: the very first sample (cycle 0) engages.
    bool any_fetch = false;
    for (Cycle c = 0; c < 100; ++c)
        any_fetch = mgr.tick(uniformTemps(111.5), c) || any_fetch;
    EXPECT_FALSE(any_fetch);
    EXPECT_GT(mgr.stats().engaged_cycles, 90u);
}

TEST(Manager, InterruptEngagementDelaysChange)
{
    DtmConfig cfg;
    cfg.sample_interval = 10;
    cfg.engagement = EngagementMechanism::Interrupt;
    cfg.interrupt_delay = 50;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal,
                   std::make_unique<FixedTogglePolicy>(0.0, 110.8,
                                                       100000,
                                                       "toggle1"));
    int fetches_before_delay = 0;
    for (Cycle c = 0; c < 50; ++c)
        fetches_before_delay += mgr.tick(uniformTemps(111.5), c);
    // Fetch continues until the interrupt lands.
    EXPECT_GT(fetches_before_delay, 45);
    int fetches_after = 0;
    for (Cycle c = 50; c < 150; ++c)
        fetches_after += mgr.tick(uniformTemps(111.5), c);
    EXPECT_EQ(fetches_after, 0);
}

TEST(Manager, MeanDutyTracksPolicy)
{
    DtmConfig cfg;
    cfg.sample_interval = 10;
    ThermalConfig thermal;
    DtmManager mgr(cfg, thermal,
                   std::make_unique<ManualProportionalPolicy>(110.8,
                                                              111.8));
    for (Cycle c = 0; c < 1000; ++c)
        mgr.tick(uniformTemps(111.3), c);
    const auto &s = mgr.stats();
    EXPECT_NEAR(s.duty_sum / s.samples, 0.5, 1e-9);
}

TEST(Manager, RejectsBadConfig)
{
    DtmConfig cfg;
    ThermalConfig thermal;
    EXPECT_THROW(DtmManager(cfg, thermal, nullptr), FatalError);
    cfg.sample_interval = 0;
    EXPECT_THROW(
        DtmManager(cfg, thermal, std::make_unique<NoDtmPolicy>()),
        FatalError);
}

} // namespace
} // namespace thermctl
