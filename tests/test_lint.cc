/**
 * @file
 * thermctl-lint unit tests: the tokenizer (comment/string stripping,
 * "::" collapsing, line tracking), the include scanner, each project
 * rule against embedded good and bad snippets, and the allowlist path
 * (parsing, suppression, stale-entry reporting).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hh"

using namespace thermctl::lint;

namespace
{

/** Rule ids present in the findings for (path, src). */
std::vector<std::string>
rulesFor(const std::string &path, std::string_view src)
{
    std::vector<std::string> rules;
    for (const Finding &f : lintFile(path, src))
        rules.push_back(f.rule);
    return rules;
}

bool
hasRule(const std::vector<std::string> &rules, std::string_view id)
{
    return std::find(rules.begin(), rules.end(), id) != rules.end();
}

} // namespace

// -------------------------------------------------------------- tokenizer

TEST(LintTokenizer, StripsCommentsAndTracksLines)
{
    const auto toks = tokenize("int a; // trailing mutex\n"
                               "/* std::mutex in a\n   block comment */\n"
                               "int b;\n");
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[3].text, "int");
    EXPECT_EQ(toks[3].line, 4);
    for (const Token &t : toks)
        EXPECT_NE(t.text, "mutex");
}

TEST(LintTokenizer, CollapsesStringAndCharLiterals)
{
    const auto toks =
        tokenize("f(\"std::mutex \\\" quoted\", 'x', \"// not a comment\");");
    std::size_t strings = 0;
    for (const Token &t : toks) {
        if (t.kind == Token::Kind::String) {
            ++strings;
            EXPECT_TRUE(t.text.find("quoted") != std::string::npos
                        || t.text.find("comment") != std::string::npos);
        }
        EXPECT_NE(t.text, "mutex"); // literal contents stay opaque
    }
    EXPECT_EQ(strings, 2u);
}

TEST(LintTokenizer, HandlesRawStrings)
{
    const auto toks = tokenize("auto s = R\"(std::mutex m; \")\" + x;");
    bool saw_plus = false;
    for (const Token &t : toks) {
        EXPECT_NE(t.text, "mutex");
        if (t.text == "+")
            saw_plus = true;
    }
    EXPECT_TRUE(saw_plus); // lexing resumed correctly after the raw string
}

TEST(LintTokenizer, HandlesEncodingPrefixedRawStrings)
{
    // u8R/uR/UR/LR prefixes must take the raw-string branch; treating
    // the '"' after the prefix as an ordinary string opener desyncs the
    // lexer on the embedded quote and swallows the rest of the file.
    const auto toks =
        tokenize("auto a = u8R\"(std::mutex \" half)\"; int after_u8;\n"
                 "auto b = LR\"delim(std::mutex \")delim\"; int after_L;\n");
    bool saw_u8 = false, saw_l = false;
    for (const Token &t : toks) {
        EXPECT_NE(t.text, "mutex");
        if (t.text == "after_u8")
            saw_u8 = true;
        if (t.text == "after_L")
            saw_l = true;
    }
    EXPECT_TRUE(saw_u8);
    EXPECT_TRUE(saw_l);
}

TEST(LintTokenizer, DigitSeparatorsStayInsideOneNumber)
{
    // 1'000'000 is one numeric literal; lexing the ' as a char-literal
    // opener would eat "000'" and desync everything after it.
    const auto toks = tokenize("int n = 1'000'000; int m = 0xFF'FFu;");
    std::size_t numbers = 0;
    for (const Token &t : toks)
        if (t.kind == Token::Kind::Number) {
            ++numbers;
            EXPECT_TRUE(t.text == "1'000'000" || t.text == "0xFF'FFu")
                << t.text;
        }
    EXPECT_EQ(numbers, 2u);
    EXPECT_EQ(toks.back().text, ";");
}

TEST(LintTokenizer, CharLiteralsStillCollapseAfterNumbers)
{
    // The digit-separator rule must not capture a real char literal
    // that merely follows a number.
    const auto toks = tokenize("f(7, 'x'); g('0');");
    std::size_t chars = 0;
    for (const Token &t : toks)
        if (t.kind == Token::Kind::Char)
            ++chars;
    EXPECT_EQ(chars, 2u);
    EXPECT_EQ(toks.back().text, ";");
}

TEST(LintTokenizer, KeepsScopeResolutionWhole)
{
    const auto toks = tokenize("std::mutex m; a ? b : c;");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[1].text, "::");
    int single_colons = 0;
    for (const Token &t : toks)
        if (t.text == ":")
            ++single_colons;
    EXPECT_EQ(single_colons, 1); // the ternary's, not halves of "::"
}

TEST(LintTokenizer, UnterminatedConstructsEndAtEof)
{
    EXPECT_NO_THROW(tokenize("/* never closed"));
    EXPECT_NO_THROW(tokenize("\"never closed"));
    EXPECT_NO_THROW(tokenize("R\"(never closed"));
    const auto toks = tokenize("int a; \"dangling");
    EXPECT_EQ(toks[0].text, "int");
}

TEST(LintIncludes, ScansQuotedAndSystemForms)
{
    const auto incs = scanIncludes("#include <mutex>\n"
                                   "  #  include \"common/mutex.hh\"\n"
                                   "// #include <thread>\n");
    // The //-commented line is skipped: it does not start with '#'.
    ASSERT_EQ(incs.size(), 2u);
    EXPECT_EQ(incs[0].path, "mutex");
    EXPECT_TRUE(incs[0].system);
    EXPECT_EQ(incs[0].line, 1);
    EXPECT_EQ(incs[1].path, "common/mutex.hh");
    EXPECT_FALSE(incs[1].system);
}

// ------------------------------------------------------------------ rules

TEST(LintRules, RawDoubleParamFlagsQuantityParams)
{
    const char *bad = "namespace thermctl {\n"
                      "void setAmbient(double ambient_temp_c);\n"
                      "double step(double power_w, double dt);\n"
                      "}\n";
    const auto rules = rulesFor("src/thermal/model.hh", bad);
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("raw-double-param")),
              2); // ambient_temp_c and power_w; dt is fine
}

TEST(LintRules, RawDoubleParamIgnoresMembersAndOtherDirs)
{
    // Depth 0: a struct member initialiser, not a parameter.
    EXPECT_TRUE(rulesFor("src/control/pid.hh",
                         "struct Gains { double setpoint = 0.0; };")
                    .empty());
    // Same code in a non-physics directory is out of scope.
    EXPECT_TRUE(rulesFor("src/common/stats.hh",
                         "void observe(double power_sample);")
                    .empty());
    // Implementation files are out of scope (the API lives in headers).
    EXPECT_TRUE(rulesFor("src/thermal/model.cc",
                         "void setAmbient(double ambient_temp_c) {}")
                    .empty());
}

TEST(LintRules, UsingNamespaceOnlyFlagsHeaders)
{
    const char *src = "using namespace std;\n";
    EXPECT_TRUE(hasRule(rulesFor("src/sim/config.hh", src),
                        "using-namespace-header"));
    EXPECT_FALSE(hasRule(rulesFor("src/sim/config.cc", src),
                         "using-namespace-header"));
    // Inside a comment: not a finding.
    EXPECT_TRUE(rulesFor("src/sim/config.hh",
                         "// using namespace std; (don't)\n")
                    .empty());
}

TEST(LintRules, ReaderBoundsRequiresFailureStateCheck)
{
    const char *bad = "#include \"common/serialize.hh\"\n"
                      "bool decode(thermctl::ByteReader &r) {\n"
                      "  auto n = r.u64();\n"
                      "  return n != 0;\n"
                      "}\n";
    EXPECT_TRUE(
        hasRule(rulesFor("src/serve/frames.cc", bad), "reader-bounds"));

    const char *good = "#include \"common/serialize.hh\"\n"
                       "bool decode(thermctl::ByteReader &r) {\n"
                       "  auto n = r.u64();\n"
                       "  if (!r.ok() || n > r.remaining() / 8)\n"
                       "    return false;\n"
                       "  return true;\n"
                       "}\n";
    EXPECT_FALSE(
        hasRule(rulesFor("src/serve/frames.cc", good), "reader-bounds"));

    // The rule is scoped to serve/ and serialize code.
    EXPECT_FALSE(
        hasRule(rulesFor("src/sim/other.cc", bad), "reader-bounds"));
}

TEST(LintRules, NakedMutexFlagsStdPrimitivesAndIncludes)
{
    EXPECT_TRUE(hasRule(rulesFor("src/sim/pool.cc", "std::mutex m;"),
                        "naked-mutex"));
    EXPECT_TRUE(hasRule(rulesFor("src/sim/pool.cc",
                                 "std::lock_guard<std::mutex> l(m);"),
                        "naked-mutex"));
    EXPECT_TRUE(hasRule(rulesFor("src/sim/pool.cc",
                                 "std::condition_variable cv;"),
                        "naked-mutex"));
    EXPECT_TRUE(hasRule(rulesFor("src/sim/pool.cc", "#include <mutex>\n"),
                        "naked-mutex"));
    // The wrapper itself is the one sanctioned home.
    EXPECT_FALSE(hasRule(rulesFor("src/common/mutex.hh",
                                  "#include <mutex>\nstd::mutex m_;"),
                         "naked-mutex"));
    // The annotated wrappers don't trip it.
    EXPECT_FALSE(hasRule(rulesFor("src/sim/pool.cc",
                                  "thermctl::Mutex m;\n"
                                  "thermctl::MutexLock lock(m);"),
                         "naked-mutex"));
    // "mutex" inside a string or comment is not a use.
    EXPECT_FALSE(hasRule(rulesFor("src/sim/pool.cc",
                                  "const char *s = \"std::mutex\";\n"
                                  "// std::mutex commentary\n"),
                         "naked-mutex"));
}

TEST(LintRules, ThreadSpawnRequiresAnnotationHeader)
{
    const char *bad = "#include <thread>\n"
                      "void run() { std::thread t([] {}); t.join(); }\n";
    EXPECT_TRUE(hasRule(rulesFor("src/sim/pool.cc", bad),
                        "missing-thread-annotations"));

    const char *good = "#include <thread>\n"
                       "#include \"common/mutex.hh\"\n"
                       "void run() { std::thread t([] {}); t.join(); }\n";
    EXPECT_FALSE(hasRule(rulesFor("src/sim/pool.cc", good),
                         "missing-thread-annotations"));

    const char *good2 = "#include <thread>\n"
                        "#include \"common/thread_annotations.hh\"\n"
                        "void run() { std::thread t([] {}); t.join(); }\n";
    EXPECT_FALSE(hasRule(rulesFor("src/sim/pool.cc", good2),
                         "missing-thread-annotations"));
}

TEST(LintRules, FaultPointScopeFlagsProbesOutsideSrc)
{
    const char *probe =
        "void f() { auto fp = THERMCTL_FAULT_POINT(\"x.y\"); }\n";
    EXPECT_TRUE(hasRule(rulesFor("tests/test_thing.cc", probe),
                        "fault-point-scope"));
    EXPECT_TRUE(hasRule(rulesFor("bench/ablation_x.cc", probe),
                        "fault-point-scope"));
    // Product code is exactly where probes belong.
    EXPECT_FALSE(hasRule(rulesFor("src/serve/protocol.cc", probe),
                         "fault-point-scope"));
    // The token in a comment or string does not count.
    const char *mention =
        "// THERMCTL_FAULT_POINT is product-only\n"
        "const char *s = \"THERMCTL_FAULT_POINT\";\n";
    EXPECT_FALSE(hasRule(rulesFor("tests/test_thing.cc", mention),
                         "fault-point-scope"));
}

// -------------------------------------------------------------- allowlist

TEST(LintAllowlist, ParsesEntriesCommentsAndBlankLines)
{
    Allowlist allow;
    std::string error;
    ASSERT_TRUE(allow.parse("# header comment\n"
                            "\n"
                            "naked-mutex src/sim/pool.cc legacy, tracked\n"
                            "reader-bounds frames.cc\n",
                            error))
        << error;
    EXPECT_EQ(allow.size(), 2u);
}

TEST(LintAllowlist, RejectsUnknownRuleAndMissingSuffix)
{
    Allowlist allow;
    std::string error;
    EXPECT_FALSE(allow.parse("no-such-rule src/foo.cc\n", error));
    EXPECT_NE(error.find("no-such-rule"), std::string::npos);
    error.clear();
    EXPECT_FALSE(allow.parse("naked-mutex\n", error));
    EXPECT_NE(error.find("path suffix"), std::string::npos);
}

TEST(LintAllowlist, SuppressesBySuffixAndReportsStale)
{
    Allowlist allow;
    std::string error;
    ASSERT_TRUE(allow.parse("naked-mutex src/sim/pool.cc grandfathered\n"
                            "reader-bounds src/serve/never.cc stale\n",
                            error));

    Finding hit{"work/src/sim/pool.cc", 3, "naked-mutex", "m"};
    EXPECT_TRUE(allow.allows(hit));
    // Same path, different rule: not suppressed.
    Finding other{"work/src/sim/pool.cc", 3, "reader-bounds", "m"};
    EXPECT_FALSE(allow.allows(other));
    // Different file: not suppressed.
    Finding elsewhere{"src/sim/queue.cc", 3, "naked-mutex", "m"};
    EXPECT_FALSE(allow.allows(elsewhere));

    const auto stale = allow.unusedEntries();
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_NE(stale[0].find("never.cc"), std::string::npos);
}

// ----------------------------------------------------------------- output

TEST(LintOutput, TextAndJsonFormats)
{
    std::vector<Finding> findings{
        {"src/a.hh", 7, "naked-mutex", "msg with \"quotes\""}};
    EXPECT_EQ(formatText(findings),
              "src/a.hh:7: [naked-mutex] msg with \"quotes\"\n");
    const std::string json = formatJson(findings);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_EQ(formatJson({}), "[]\n");
}

TEST(LintOutput, RuleIdsAreStable)
{
    const auto &ids = ruleIds();
    EXPECT_EQ(ids.size(), 6u);
    EXPECT_TRUE(hasRule(ids, "raw-double-param"));
    EXPECT_TRUE(hasRule(ids, "using-namespace-header"));
    EXPECT_TRUE(hasRule(ids, "reader-bounds"));
    EXPECT_TRUE(hasRule(ids, "naked-mutex"));
    EXPECT_TRUE(hasRule(ids, "missing-thread-annotations"));
    EXPECT_TRUE(hasRule(ids, "fault-point-scope"));
}
