/**
 * @file
 * Tests for the synthetic workload generator: determinism, control-flow
 * integrity (the invariant the trace-driven fetch engine depends on),
 * instruction-mix fidelity, memory-region behaviour, and phases.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"

namespace thermctl
{
namespace
{

WorkloadProfile
simpleProfile()
{
    WorkloadProfile p;
    p.name = "test";
    p.seed = 99;
    return p;
}

TEST(SyntheticWorkload, DeterministicFromSeed)
{
    SyntheticWorkload a(simpleProfile());
    SyntheticWorkload b(simpleProfile());
    for (int i = 0; i < 5000; ++i) {
        MicroOp x = a.next();
        MicroOp y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.mem_addr, y.mem_addr);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(SyntheticWorkload, DifferentSeedsDiffer)
{
    auto p1 = simpleProfile();
    auto p2 = simpleProfile();
    p2.seed = 100;
    SyntheticWorkload a(p1), b(p2);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a.next().pc == b.next().pc;
    EXPECT_LT(same, 150);
}

/**
 * The invariant the trace-driven fetch engine relies on: each op's pc
 * equals the previous op's actualNextPc().
 */
class PcContinuity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PcContinuity, HoldsForManyInstructions)
{
    SyntheticWorkload wl(specProfile(GetParam()));
    MicroOp prev = wl.next();
    for (int i = 0; i < 100000; ++i) {
        MicroOp cur = wl.next();
        ASSERT_EQ(cur.pc, prev.actualNextPc())
            << "discontinuity after " << prev.toString() << " at op " << i;
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, PcContinuity,
                         ::testing::ValuesIn(specProfileNames()));

TEST(SyntheticWorkload, BranchesCarryTargets)
{
    SyntheticWorkload wl(simpleProfile());
    int taken_branches = 0;
    for (int i = 0; i < 20000; ++i) {
        MicroOp op = wl.next();
        if (op.is_branch && op.taken) {
            ++taken_branches;
            ASSERT_NE(op.target, 0u);
        }
    }
    EXPECT_GT(taken_branches, 100);
}

TEST(SyntheticWorkload, CallsAndReturnsPair)
{
    auto p = simpleProfile();
    p.call_prob = 0.2;
    SyntheticWorkload wl(p);
    int calls = 0, returns = 0;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = wl.next();
        calls += op.is_call;
        returns += op.is_return;
    }
    EXPECT_GT(calls, 100);
    // Every call returns (modulo the one possibly in flight).
    EXPECT_NEAR(calls, returns, 2);
}

TEST(SyntheticWorkload, MemoryAddressesStayInRegions)
{
    auto p = simpleProfile();
    p.hot_bytes = 4096;
    p.warm_frac = 0.3;
    p.cold_frac = 0.1;
    SyntheticWorkload wl(p);
    int hot = 0, warm = 0, cold = 0, total = 0;
    for (int i = 0; i < 100000; ++i) {
        MicroOp op = wl.next();
        if (!isMemOp(op.op))
            continue;
        ++total;
        if (op.mem_addr >= 0x4000'0000)
            ++cold;
        else if (op.mem_addr >= 0x2000'0000)
            ++warm;
        else if (op.mem_addr >= 0x1000'0000) {
            ++hot;
            ASSERT_LT(op.mem_addr, 0x1000'0000 + p.hot_bytes);
        } else {
            FAIL() << "address outside any region";
        }
    }
    EXPECT_GT(total, 1000);
    EXPECT_NEAR(warm / double(total), 0.3, 0.03);
    EXPECT_NEAR(cold / double(total), 0.1, 0.02);
    EXPECT_NEAR(hot / double(total), 0.6, 0.04);
}

TEST(SyntheticWorkload, MixApproximatelyHonored)
{
    auto p = simpleProfile();
    p.mix = {.int_alu = 0.5, .int_mult = 0.0, .int_div = 0.0,
             .fp_alu = 0.2, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.2, .store = 0.1, .branch = 0.0};
    p.mean_block_len = 10.0;
    SyntheticWorkload wl(p);
    std::map<OpClass, int> counts;
    int non_branch = 0;
    for (int i = 0; i < 100000; ++i) {
        MicroOp op = wl.next();
        if (op.is_branch)
            continue;
        ++non_branch;
        ++counts[op.op];
    }
    EXPECT_NEAR(counts[OpClass::IntAlu] / double(non_branch), 0.5, 0.03);
    EXPECT_NEAR(counts[OpClass::FpAlu] / double(non_branch), 0.2, 0.03);
    EXPECT_NEAR(counts[OpClass::Load] / double(non_branch), 0.2, 0.03);
    EXPECT_NEAR(counts[OpClass::Store] / double(non_branch), 0.1, 0.03);
}

TEST(SyntheticWorkload, BranchFrequencyTracksBlockLength)
{
    // Block lengths are sampled around the mean, so the branch rate is
    // E[1/len] (Jensen: somewhat above 1/mean). Check the plausible
    // band and the monotonic relationship between profiles.
    auto rate = [](double mean_len) {
        WorkloadProfile p;
        p.name = "test";
        p.seed = 99;
        p.mean_block_len = mean_len;
        SyntheticWorkload wl(p);
        int branches = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            branches += wl.next().is_branch;
        return branches / double(n);
    };
    const double short_blocks = rate(5.0);
    const double long_blocks = rate(12.0);
    EXPECT_GT(short_blocks, 0.15);
    EXPECT_LT(short_blocks, 0.35);
    EXPECT_GT(long_blocks, 0.06);
    EXPECT_LT(long_blocks, 0.16);
    EXPECT_GT(short_blocks, 1.5 * long_blocks);
}

TEST(SyntheticWorkload, PhasesCycle)
{
    auto p = simpleProfile();
    p.phases = {
        {.length_insts = 1000, .fp_scale = 1.0},
        {.length_insts = 2000, .fp_scale = 1.0},
    };
    SyntheticWorkload wl(p);
    EXPECT_EQ(wl.currentPhase(), 0u);
    for (int i = 0; i < 1000; ++i)
        wl.next();
    EXPECT_EQ(wl.currentPhase(), 1u);
    for (int i = 0; i < 2000; ++i)
        wl.next();
    EXPECT_EQ(wl.currentPhase(), 0u);
}

TEST(SyntheticWorkload, PhaseFpScaleShiftsMix)
{
    auto p = simpleProfile();
    p.mix.fp_alu = 0.2;
    p.phases = {
        {.length_insts = 50000, .fp_scale = 3.0},
        {.length_insts = 50000, .fp_scale = 0.1},
    };
    SyntheticWorkload wl(p);
    auto fp_fraction = [&](int n) {
        int fp = 0, total = 0;
        for (int i = 0; i < n; ++i) {
            MicroOp op = wl.next();
            if (op.is_branch)
                continue;
            ++total;
            fp += isFpOp(op.op);
        }
        return fp / double(total);
    };
    const double hot = fp_fraction(50000);
    const double cold = fp_fraction(50000);
    EXPECT_GT(hot, 2.0 * cold);
}

TEST(SyntheticWorkload, WrongPathOpsAreWellFormed)
{
    SyntheticWorkload wl(simpleProfile());
    for (int i = 0; i < 10000; ++i) {
        MicroOp op = wl.synthesizeAt(0x500000 + 4 * i);
        ASSERT_EQ(op.pc, 0x500000u + 4 * i);
        ASSERT_FALSE(op.is_branch);
        if (isMemOp(op.op)) {
            ASSERT_GE(op.mem_addr, 0x1000'0000u);
        }
    }
}

TEST(SyntheticWorkload, NeverDone)
{
    SyntheticWorkload wl(simpleProfile());
    EXPECT_FALSE(wl.done());
}

TEST(SyntheticWorkload, RejectsInvalidProfiles)
{
    auto p = simpleProfile();
    p.num_blocks = 0;
    EXPECT_THROW(SyntheticWorkload{p}, FatalError);

    p = simpleProfile();
    p.dep_p = 0.0;
    EXPECT_THROW(SyntheticWorkload{p}, FatalError);

    p = simpleProfile();
    p.mean_block_len = 1.0;
    EXPECT_THROW(SyntheticWorkload{p}, FatalError);

    p = simpleProfile();
    p.hot_bytes = 8;
    EXPECT_THROW(SyntheticWorkload{p}, FatalError);
}

TEST(SpecProfiles, Exactly18InTable4Order)
{
    auto all = allSpecProfiles();
    ASSERT_EQ(all.size(), 18u);
    EXPECT_EQ(all.front().name, "164.gzip");
    EXPECT_EQ(all.back().name, "301.apsi");
    std::set<std::string> names;
    for (const auto &p : all)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 18u);
}

TEST(SpecProfiles, LookupByShortName)
{
    EXPECT_EQ(specProfile("gcc").name, "176.gcc");
    EXPECT_EQ(specProfile("176.gcc").name, "176.gcc");
    EXPECT_THROW(specProfile("nonexistent"), FatalError);
}

TEST(SpecProfiles, CategoryCountsMatchPaperShape)
{
    int extreme = 0, high = 0, medium = 0, low = 0;
    for (const auto &p : allSpecProfiles()) {
        switch (p.category) {
          case ThermalCategory::Extreme: ++extreme; break;
          case ThermalCategory::High: ++high; break;
          case ThermalCategory::Medium: ++medium; break;
          case ThermalCategory::Low: ++low; break;
        }
    }
    // The paper reports eight benchmarks with actual emergencies.
    EXPECT_EQ(extreme, 8);
    EXPECT_GE(high, 4);
    EXPECT_GE(medium, 2);
    EXPECT_GE(low, 2);
}

} // namespace
} // namespace thermctl
