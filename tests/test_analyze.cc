/**
 * @file
 * thermctl-deepcheck unit tests: the project model (include resolution,
 * symbol index, discard detection), each cross-file pass against the
 * committed fixture trees under tests/analyze/fixtures/, and the CLI
 * exit-code contract (findings, allowlist suppression, --ci stale-entry
 * hard failure — for thermctl_analyze and thermctl_lint both).
 *
 * The fixture trees are real files on disk (not embedded snippets) so
 * the PR-5 ignored-writeFrame regression stays reproducible byte for
 * byte; THERMCTL_ANALYZE_FIXTURES points at them at compile time.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "analyze/analysis.hh"
#include "analyze/dataflow.hh"
#include "lint/lint.hh"

using namespace thermctl::analysis;
using thermctl::lint::Allowlist;
using thermctl::lint::Finding;

namespace fs = std::filesystem;

namespace
{

std::string
fixtureRoot()
{
    return THERMCTL_ANALYZE_FIXTURES;
}

std::string
readFileOrDie(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open fixture " << p;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** Load fixture files as (relative-path, content) pairs. */
std::vector<std::pair<std::string, std::string>>
loadFixtures(const std::vector<std::string> &relative)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const std::string &rel : relative)
        out.emplace_back(rel,
                         readFileOrDie(fs::path(fixtureRoot()) / rel));
    return out;
}

/** Run a shell command, returning its exit status (-1 on signal). */
int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** RAII temp directory for CLI allowlist tests. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        std::string tmpl = (fs::temp_directory_path()
                            / "thermctl_analyze_test.XXXXXX")
                               .string();
        char *made = mkdtemp(tmpl.data());
        EXPECT_NE(made, nullptr);
        path = tmpl;
    }
    ~TempDir() { fs::remove_all(path); }
};

void
writeText(const fs::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
}

} // namespace

// ---------------------------------------------------------- project model

TEST(AnalyzeModel, ResolvesIncludesOwnDirThenRoots)
{
    BuildOptions opts;
    opts.roots = {""};
    const ProjectModel model = ProjectModel::build(
        {{"pkg/a.hh", "#include \"b.hh\"\n#include \"other/c.hh\"\n"
                      "#include <vector>\n"},
         {"pkg/b.hh", "struct B {};\n"},
         {"other/c.hh", "struct C {};\n"}},
        opts);
    ASSERT_EQ(model.files().size(), 3u);
    const SourceFile &a = model.files()[0];
    // b.hh via the including file's own directory, c.hh via the root;
    // <vector> is external and produces no edge.
    ASSERT_EQ(a.edges.size(), 2u);
    EXPECT_EQ(model.files()[a.edges[0]].path, "pkg/b.hh");
    EXPECT_EQ(model.files()[a.edges[1]].path, "other/c.hh");
}

TEST(AnalyzeModel, IndexesDefinitionsDeclarationsAndQualifiedMembers)
{
    const ProjectModel model = ProjectModel::build(
        {{"m.cc", "struct W { void f64(double v); };\n"
                  "void W::f64(double v) { (void)v; }\n"
                  "int pickCore();\n"
                  "bool readPoint(int fd) { return fd >= 0; }\n"}});
    bool saw_decl = false, saw_qualified = false, saw_def = false;
    for (const FunctionInfo &fn : model.functions()) {
        if (fn.name == "f64" && fn.return_type == "void")
            (fn.line == 2 ? saw_qualified : saw_decl) = true;
        if (fn.name == "pickCore" && fn.return_type == "int")
            saw_decl = true;
        if (fn.name == "readPoint" && fn.return_type == "bool")
            saw_def = true;
    }
    EXPECT_TRUE(saw_decl);
    EXPECT_TRUE(saw_qualified);
    EXPECT_TRUE(saw_def);
}

TEST(AnalyzeModel, HarvestsNodiscardNames)
{
    const ProjectModel model = ProjectModel::build(
        {{"api.hh", "[[nodiscard]] int fetchValue();\n"
                    "void plainHelper();\n"}});
    EXPECT_EQ(model.nodiscardNames().count("fetchValue"), 1u);
    EXPECT_EQ(model.nodiscardNames().count("plainHelper"), 0u);
}

// ------------------------------------------------------------- layer spec

TEST(AnalyzeLayers, ParsesSpecAndMatchesLongestPrefix)
{
    LayerSpec spec;
    std::string error;
    ASSERT_TRUE(spec.parse("# comment\n"
                           "layer base src/common\n"
                           "layer app src tools\n",
                           error))
        << error;
    ASSERT_EQ(spec.layers().size(), 2u);
    // src/common/x.hh matches both prefixes; the longer one wins even
    // though its layer comes first.
    EXPECT_EQ(spec.layerOf("src/common/logging.hh"), 0);
    EXPECT_EQ(spec.layerOf("src/sim/simulator.hh"), 1);
    EXPECT_EQ(spec.layerOf("tools/thermctl_run.cc"), 1);
    EXPECT_EQ(spec.layerOf("bench/fig.cc"), -1);
    // Prefixes are component-wise: src/commonX is not under src/common.
    EXPECT_EQ(spec.layerOf("src/commonX/x.hh"), 1);
}

TEST(AnalyzeLayers, RejectsMalformedAndDuplicateLines)
{
    LayerSpec spec;
    std::string error;
    EXPECT_FALSE(spec.parse("layer\n", error));
    EXPECT_FALSE(spec.parse("tier base src\n", error));
    EXPECT_FALSE(
        spec.parse("layer base src\nlayer base tools\n", error));
}

// --------------------------------------------------- layering + cycles

TEST(AnalyzePasses, FlagsUpwardIncludeAcrossLayers)
{
    BuildOptions opts;
    opts.roots = {""};
    // Model paths are relative to the layering/ subtree so they line
    // up with the low/high prefixes in layers.conf.
    std::vector<std::pair<std::string, std::string>> files;
    for (const std::string rel : {"low/util.hh", "high/app.hh"})
        files.emplace_back(rel, readFileOrDie(fs::path(fixtureRoot())
                                              / "layering" / rel));
    const ProjectModel model = ProjectModel::build(files, opts);

    LayerSpec spec;
    std::string error;
    ASSERT_TRUE(spec.parse(
        readFileOrDie(fs::path(fixtureRoot()) / "layering/layers.conf"),
        error))
        << error;

    const std::vector<Finding> findings = checkLayering(model, spec);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
    EXPECT_EQ(findings[0].file, "low/util.hh");
    EXPECT_NE(findings[0].message.find("high"), std::string::npos);
}

TEST(AnalyzePasses, DownwardIncludeIsClean)
{
    BuildOptions opts;
    opts.roots = {""};
    const ProjectModel model = ProjectModel::build(
        {{"high/app.hh", "#include \"low/util.hh\"\n"},
         {"low/util.hh", "inline int utilValue() { return 1; }\n"}},
        opts);
    LayerSpec spec;
    std::string error;
    ASSERT_TRUE(spec.parse("layer low low\nlayer high high\n", error));
    EXPECT_TRUE(checkLayering(model, spec).empty());
}

TEST(AnalyzePasses, ReportsPlantedIncludeCycleOnce)
{
    BuildOptions opts;
    opts.roots = {""};
    const ProjectModel model = ProjectModel::build(
        loadFixtures({"cycle/a.hh", "cycle/b.hh"}), opts);
    const std::vector<Finding> findings = checkIncludeCycles(model);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "include-cycle");
    EXPECT_NE(findings[0].message.find("a.hh"), std::string::npos);
    EXPECT_NE(findings[0].message.find("b.hh"), std::string::npos);
}

// ------------------------------------------------------ unchecked-return

TEST(AnalyzePasses, FlagsTheIgnoredWriteFrameRegression)
{
    // The PR-5 serve bug, frozen as a fixture: a connection loop that
    // drops writeFrame's result hung clients on half-written replies.
    const ProjectModel model = ProjectModel::build(
        loadFixtures({"unchecked/bad/server_loop.cc"}));
    const std::vector<Finding> findings =
        checkUncheckedReturns(model, MustCheckSet::defaults());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unchecked-return");
    EXPECT_EQ(findings[0].file, "unchecked/bad/server_loop.cc");
    EXPECT_NE(findings[0].message.find("writeFrame"), std::string::npos);
}

TEST(AnalyzePasses, FixedServerLoopIsClean)
{
    const ProjectModel model = ProjectModel::build(
        loadFixtures({"unchecked/good/server_loop.cc"}));
    EXPECT_TRUE(
        checkUncheckedReturns(model, MustCheckSet::defaults()).empty());
}

TEST(AnalyzePasses, AcceptsHandledAndVoidCastCalls)
{
    const ProjectModel model = ProjectModel::build(
        {{"ok.cc", "bool writeFrame(int fd);\n"
                   "bool relay(int fd) {\n"
                   "    if (!writeFrame(fd)) return false;\n"
                   "    bool sent = writeFrame(fd);\n"
                   "    (void)writeFrame(fd);\n"
                   "    return sent && writeFrame(fd);\n"
                   "}\n"}});
    EXPECT_TRUE(
        checkUncheckedReturns(model, MustCheckSet::defaults()).empty());
}

TEST(AnalyzePasses, VoidOnlyMustCheckNamesAreExempt)
{
    // encodePoint matches the encode* must-check prefix, but every
    // definition returns void (the writer carries the state), so a bare
    // call is not a dropped result.
    const ProjectModel model = ProjectModel::build(
        {{"proto.cc", "struct W {};\n"
                      "void encodePoint(W &w);\n"
                      "void fill(W &w) { encodePoint(w); }\n"}});
    EXPECT_TRUE(
        checkUncheckedReturns(model, MustCheckSet::defaults()).empty());
}

TEST(AnalyzePasses, ProjectNodiscardNamesExtendTheMustCheckSet)
{
    const ProjectModel model = ProjectModel::build(
        {{"api.hh", "[[nodiscard]] int fetchValue();\n"},
         {"use.cc", "#include \"api.hh\"\n"
                    "void poll() { fetchValue(); }\n"}});
    const std::vector<Finding> findings =
        checkUncheckedReturns(model, MustCheckSet::defaults());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("fetchValue"), std::string::npos);
}

TEST(AnalyzePasses, NodiscardNameWithVoidOverloadDropsOut)
{
    // ByteWriter::str vs the [[nodiscard]] ByteReader::str: a
    // token-level pass cannot tell the call sites apart, so the name
    // is left to the compiler's per-overload -Wunused-result.
    const ProjectModel model = ProjectModel::build(
        {{"rw.hh", "struct R { [[nodiscard]] int str(); };\n"
                   "struct W { void str(int v); };\n"},
         {"use.cc", "#include \"rw.hh\"\n"
                    "void fill(W &w) { w.str(7); }\n"}});
    EXPECT_TRUE(
        checkUncheckedReturns(model, MustCheckSet::defaults()).empty());
}

TEST(AnalyzeMustCheck, WildcardAndExactEntries)
{
    MustCheckSet must;
    must.add("publishEntry");
    must.add("encode*");
    EXPECT_TRUE(must.matches("publishEntry"));
    EXPECT_TRUE(must.matches("encodeFrame"));
    EXPECT_FALSE(must.matches("publish"));
    EXPECT_FALSE(must.matches("reencode"));
}

// ------------------------------------------------------------ lock order

TEST(AnalyzePasses, FlagsAbBaLockInversion)
{
    const ProjectModel model =
        ProjectModel::build(loadFixtures({"lockorder/bad.cc"}));
    const std::vector<Finding> findings = checkLockOrder(model);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "lock-order");
    EXPECT_NE(findings[0].message.find("g_state_mu"), std::string::npos);
    EXPECT_NE(findings[0].message.find("g_cache_mu"), std::string::npos);
}

TEST(AnalyzePasses, ConsistentLockOrderIsClean)
{
    const ProjectModel model =
        ProjectModel::build(loadFixtures({"lockorder/good.cc"}));
    EXPECT_TRUE(checkLockOrder(model).empty());
}

TEST(AnalyzePasses, RequiresAnnotationSeedsHeldSet)
{
    // refill() never acquires g_a itself, but THERMCTL_REQUIRES says
    // every caller holds it — so its acquisition of g_b is an a->b
    // edge, and drain() closes the cycle.
    const ProjectModel model = ProjectModel::build(
        {{"req.cc",
          "void refill() THERMCTL_REQUIRES(g_a) { MutexLock b(g_b); }\n"
          "void drain() { MutexLock b(g_b); MutexLock a(g_a); }\n"}});
    const std::vector<Finding> findings = checkLockOrder(model);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "lock-order");
}

// ------------------------------------------------------ CFG + dominators

namespace
{

/** Index of the (unique) block whose statements mention `name`. */
std::size_t
blockMentioning(const Cfg &cfg,
                const std::vector<thermctl::lint::Token> &toks,
                std::string_view name)
{
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (const CfgStmt &s : cfg.blocks[b].stmts)
            for (std::size_t k = s.begin; k < s.end; ++k)
                if (toks[k].text == name)
                    return b;
    ADD_FAILURE() << "no block mentions " << name;
    return 0;
}

/** Build the CFG of the single function definition in `src`. */
Cfg
cfgOfOnlyFunction(const std::vector<thermctl::lint::Token> &toks)
{
    const std::vector<FuncDef> fns = indexFunctions(toks);
    EXPECT_EQ(fns.size(), 1u);
    if (fns.size() != 1)
        return {};
    return buildCfg(toks, fns[0].body_begin + 1, fns[0].body_end);
}

} // namespace

TEST(DataflowCfg, IfElseBranchesDoNotDominateTheJoin)
{
    const auto toks = thermctl::lint::tokenize("void f(int n) {\n"
                                               "    if (n > 0) {\n"
                                               "        first();\n"
                                               "    } else {\n"
                                               "        second();\n"
                                               "    }\n"
                                               "    joined();\n"
                                               "}\n");
    const Cfg cfg = cfgOfOnlyFunction(toks);
    EXPECT_FALSE(cfg.straight_line);
    const auto dom = dominators(cfg);
    const std::size_t then_b = blockMentioning(cfg, toks, "first");
    const std::size_t else_b = blockMentioning(cfg, toks, "second");
    const std::size_t join_b = blockMentioning(cfg, toks, "joined");
    // The entry (which holds the condition) dominates the join; the
    // branch arms do not — either one can be skipped.
    EXPECT_TRUE(dom[join_b][0]);
    EXPECT_FALSE(dom[join_b][then_b]);
    EXPECT_FALSE(dom[join_b][else_b]);
}

TEST(DataflowCfg, NestedIfInnerArmDoesNotDominateOuterTail)
{
    const auto toks = thermctl::lint::tokenize("void f(int a, int b) {\n"
                                               "    if (a) {\n"
                                               "        if (b) {\n"
                                               "            inner();\n"
                                               "        }\n"
                                               "        mid();\n"
                                               "    }\n"
                                               "    joined();\n"
                                               "}\n");
    const Cfg cfg = cfgOfOnlyFunction(toks);
    EXPECT_FALSE(cfg.straight_line);
    const auto dom = dominators(cfg);
    const std::size_t inner_b = blockMentioning(cfg, toks, "inner");
    const std::size_t mid_b = blockMentioning(cfg, toks, "mid");
    const std::size_t join_b = blockMentioning(cfg, toks, "joined");
    EXPECT_FALSE(dom[mid_b][inner_b]); // b may be false
    EXPECT_FALSE(dom[join_b][mid_b]);  // a may be false
    EXPECT_TRUE(dom[mid_b][0]);
    EXPECT_TRUE(dom[join_b][0]);
}

TEST(DataflowCfg, EarlyReturnGuardBlockDominatesTheAllocation)
{
    // The PR-4 decodeStrings shape: the guard condition lives in the
    // entry block, the early return in its own arm, and the reserve in
    // a block every path to which crosses the guard.
    const auto toks = thermctl::lint::tokenize(
        "bool decodeStrings(ByteReader &r, std::vector<std::string> &v)\n"
        "{\n"
        "    const std::uint64_t n = r.u64();\n"
        "    if (!r.ok() || n > r.remaining() / 8) {\n"
        "        return fail;\n"
        "    }\n"
        "    v.reserve(n);\n"
        "    return done;\n"
        "}\n");
    const Cfg cfg = cfgOfOnlyFunction(toks);
    EXPECT_FALSE(cfg.straight_line);
    const auto dom = dominators(cfg);
    const std::size_t guard_b = blockMentioning(cfg, toks, "remaining");
    const std::size_t ret_b = blockMentioning(cfg, toks, "fail");
    const std::size_t alloc_b = blockMentioning(cfg, toks, "reserve");
    EXPECT_TRUE(dom[alloc_b][guard_b]);
    EXPECT_FALSE(dom[alloc_b][ret_b]);
}

TEST(DataflowCfg, SwitchCasesDoNotDominateTheFollowingStatement)
{
    const auto toks = thermctl::lint::tokenize("void f(int mode) {\n"
                                               "    switch (mode) {\n"
                                               "    case 0:\n"
                                               "        caseA();\n"
                                               "        break;\n"
                                               "    default:\n"
                                               "        caseB();\n"
                                               "        break;\n"
                                               "    }\n"
                                               "    after();\n"
                                               "}\n");
    const Cfg cfg = cfgOfOnlyFunction(toks);
    EXPECT_FALSE(cfg.straight_line);
    const auto dom = dominators(cfg);
    const std::size_t a_b = blockMentioning(cfg, toks, "caseA");
    const std::size_t b_b = blockMentioning(cfg, toks, "caseB");
    const std::size_t after_b = blockMentioning(cfg, toks, "after");
    EXPECT_FALSE(dom[after_b][a_b]);
    EXPECT_FALSE(dom[after_b][b_b]);
    EXPECT_TRUE(dom[after_b][0]); // the switch head still dominates
}

TEST(DataflowCfg, MalformedBodyFallsBackToOrderedStraightLine)
{
    // A stray `else` is structurally inconsistent; the builder must
    // fall back to one block of ';'-split statements, order intact.
    const auto toks =
        thermctl::lint::tokenize("first(); else second(); third();");
    const Cfg cfg = buildCfg(toks, 0, toks.size());
    EXPECT_TRUE(cfg.straight_line);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    ASSERT_EQ(cfg.blocks[0].stmts.size(), 3u);
    EXPECT_EQ(toks[cfg.blocks[0].stmts.front().begin].text, "first");
    EXPECT_EQ(toks[cfg.blocks[0].stmts.back().begin].text, "third");
}

TEST(DataflowStructs, IndexesFieldsSkippingMethodsAndNestedTypes)
{
    const auto toks = thermctl::lint::tokenize(
        "struct Outer {\n"
        "    using Clock = int;\n"
        "    static int shared;\n"
        "    std::uint32_t count = 1'000;\n"
        "    double rate = 0.5, scale = 2.0;\n"
        "    std::vector<int> slots;\n"
        "    struct Inner { int depth; };\n"
        "    Inner inner;\n"
        "    void tick();\n"
        "    bool empty() const { return slots.empty(); }\n"
        "};\n");
    const std::vector<StructDef> structs = indexStructs(toks, "s.hh");
    const StructDef *outer = nullptr, *inner = nullptr;
    for (const StructDef &s : structs) {
        if (s.name == "Outer")
            outer = &s;
        if (s.name == "Inner")
            inner = &s;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    std::vector<std::string> names;
    for (const FieldDef &f : outer->fields)
        names.push_back(f.name);
    EXPECT_EQ(names, (std::vector<std::string>{"count", "rate", "scale",
                                               "slots", "inner"}));
    ASSERT_EQ(inner->fields.size(), 1u);
    EXPECT_EQ(inner->fields[0].name, "depth");
}

// ------------------------------------------------------------ alloc-bound

TEST(AnalyzePasses, AllocBoundFlagsUnguardedDecoders)
{
    const ProjectModel model = ProjectModel::build(loadFixtures(
        {"allocbound/bad/decoder.cc", "allocbound/bad/trace_decode.cc"}));
    const std::vector<Finding> findings = checkAllocBound(model);
    ASSERT_EQ(findings.size(), 4u);
    std::set<std::pair<std::string, int>> where;
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "alloc-bound");
        where.insert({f.file, f.line});
    }
    // The unguarded count-prefix reserve, the direct reader-read
    // reserve, the untested decode out-param resize, and the trusted
    // trace-header reserve.
    EXPECT_EQ(where.count({"allocbound/bad/decoder.cc", 32}), 1u);
    EXPECT_EQ(where.count({"allocbound/bad/decoder.cc", 42}), 1u);
    EXPECT_EQ(where.count({"allocbound/bad/decoder.cc", 70}), 1u);
    EXPECT_EQ(where.count({"allocbound/bad/trace_decode.cc", 37}), 1u);
}

TEST(AnalyzePasses, FixedDecoderShapesParseAsGuarded)
{
    // Regression for the PR-4 decoder fixes: the guarded shapes from
    // protocol.cc and trace.cc, mirrored byte for byte in the good
    // fixtures, must be recognized as guarded rather than re-flagged.
    const ProjectModel model = ProjectModel::build(
        loadFixtures({"allocbound/good/decoder.cc",
                      "allocbound/good/trace_decode.cc"}));
    EXPECT_TRUE(checkAllocBound(model).empty());
}

// --------------------------------------------------------- field-coverage

TEST(AnalyzePasses, FieldCoverageFlagsMissingDigestAndDecodeFields)
{
    const ProjectModel model =
        ProjectModel::build(loadFixtures({"fieldcov/bad/config.cc"}));
    const std::vector<Finding> findings = checkFieldCoverage(model, {});
    ASSERT_EQ(findings.size(), 2u);
    bool saw_digest = false, saw_decode = false;
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "field-coverage");
        if (f.message.find("KnobConfig::epoch_samples")
                != std::string::npos
            && f.message.find("fed to the digest") != std::string::npos)
            saw_digest = true;
        if (f.message.find("WireMsg::setpoint") != std::string::npos
            && f.message.find("decoded") != std::string::npos)
            saw_decode = true;
    }
    EXPECT_TRUE(saw_digest);
    EXPECT_TRUE(saw_decode);
}

TEST(AnalyzePasses, FieldCoverageCompleteConfigIsClean)
{
    const ProjectModel model =
        ProjectModel::build(loadFixtures({"fieldcov/good/config.cc"}));
    EXPECT_TRUE(checkFieldCoverage(model, {}).empty());
}

TEST(AnalyzePasses, FieldCoverageAllowedFieldsSuppressFindings)
{
    const ProjectModel model =
        ProjectModel::build(loadFixtures({"fieldcov/bad/config.cc"}));
    EXPECT_TRUE(checkFieldCoverage(model, {"KnobConfig::epoch_samples",
                                           "WireMsg::setpoint"})
                    .empty());
}

// ----------------------------------------------- real-source regressions

namespace
{

std::string
repoSource(const std::string &rel)
{
    return readFileOrDie(fs::path(THERMCTL_SOURCE_DIR) / rel);
}

} // namespace

TEST(DataflowRegression, RealDecodersAreGuarded)
{
    // The live PR-4 fixes themselves — not just their fixture mirrors —
    // must parse as guarded.
    const ProjectModel model = ProjectModel::build(
        {{"src/serve/protocol.hh", repoSource("src/serve/protocol.hh")},
         {"src/serve/protocol.cc", repoSource("src/serve/protocol.cc")},
         {"src/workload/trace.cc", repoSource("src/workload/trace.cc")}});
    EXPECT_TRUE(checkAllocBound(model).empty());
}

TEST(DataflowRegression, DroppingADigestFeedLineFailsFieldCoverage)
{
    // The acceptance probe for the sweep-cache contract: remove one
    // field feed from the real feed(HashStream&, const MulticoreConfig&)
    // and field-coverage must fail — demonstrated on an in-memory copy,
    // never by breaking the tree.
    const std::string config = repoSource("src/sim/config.hh");
    std::string sweep = repoSource("src/sim/sweep.cc");

    const ProjectModel clean = ProjectModel::build(
        {{"src/sim/config.hh", config}, {"src/sim/sweep.cc", sweep}});
    EXPECT_TRUE(checkFieldCoverage(clean, {}).empty());

    const std::string feed_line = "h.u64(m.budget_epoch_samples);";
    const std::size_t at = sweep.find(feed_line);
    ASSERT_NE(at, std::string::npos);
    sweep.erase(at, feed_line.size());

    const ProjectModel broken = ProjectModel::build(
        {{"src/sim/config.hh", config}, {"src/sim/sweep.cc", sweep}});
    const std::vector<Finding> findings = checkFieldCoverage(broken, {});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "field-coverage");
    EXPECT_NE(findings[0].message.find(
                  "MulticoreConfig::budget_epoch_samples"),
              std::string::npos);
}

// ------------------------------------------------------------ aggregate

TEST(AnalyzeProject, CleanTreeHasNoFindings)
{
    BuildOptions opts;
    opts.roots = {""};
    const ProjectModel model = ProjectModel::build(
        loadFixtures({"unchecked/good/server_loop.cc",
                      "lockorder/good.cc", "layering/high/app.hh"}),
        opts);
    LayerSpec spec;
    std::string error;
    ASSERT_TRUE(spec.parse("layer base layering\n"
                           "layer apps unchecked lockorder\n",
                           error));
    EXPECT_TRUE(
        analyzeProject(model, spec, MustCheckSet::defaults()).empty());
}

TEST(AnalyzeProject, RuleIdsAreStable)
{
    const std::vector<std::string> ids = analysisRuleIds();
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_NE(std::find(ids.begin(), ids.end(), "alloc-bound"),
              ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "field-coverage"),
              ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "layering"), ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "include-cycle"),
              ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "unchecked-return"),
              ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "lock-order"), ids.end());
}

TEST(AnalyzeAllowlist, ParsesAgainstAnalysisRuleIds)
{
    Allowlist allow;
    std::string error;
    EXPECT_TRUE(allow.parse("lock-order src/sim/sweep.cc justified\n",
                            analysisRuleIds(), error))
        << error;
    // Lint-only ids are invalid here, and vice versa.
    EXPECT_FALSE(
        allow.parse("naked-mutex src/x.cc nope\n", analysisRuleIds(),
                    error));
}

// ------------------------------------------------------------------- CLI

TEST(AnalyzeCli, ExitCodesAndCiStaleHardFailure)
{
    const std::string bad =
        fixtureRoot() + std::string("/unchecked/bad/server_loop.cc");
    const std::string good =
        fixtureRoot() + std::string("/unchecked/good/server_loop.cc");

    TempDir tmp;
    // Pin an empty layers spec: the CLI otherwise auto-loads
    // .thermctl-layers from the working directory, whose prefixes can
    // never match the fixtures' absolute paths.
    writeText(tmp.path / "layers", "");
    const std::string bin = std::string(THERMCTL_ANALYZE_BIN)
                            + " --layers "
                            + (tmp.path / "layers").string();

    // Findings exit 1; a clean file exits 0.
    EXPECT_EQ(runCommand(bin + " " + bad + " >/dev/null 2>&1"), 1);
    EXPECT_EQ(runCommand(bin + " " + good + " >/dev/null 2>&1"), 0);

    // An allowlist entry suppresses the finding.
    writeText(tmp.path / "allow",
              "unchecked-return unchecked/bad/server_loop.cc frozen "
              "regression fixture\n");
    EXPECT_EQ(runCommand(bin + " --allowlist "
                         + (tmp.path / "allow").string() + " " + bad
                         + " >/dev/null 2>&1"),
              0);

    // The same entry against the *fixed* file is stale: tolerated by
    // default, a hard failure under --ci.
    EXPECT_EQ(runCommand(bin + " --allowlist "
                         + (tmp.path / "allow").string() + " " + good
                         + " >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(bin + " --ci --allowlist "
                         + (tmp.path / "allow").string() + " " + good
                         + " >/dev/null 2>&1"),
              1);

    // Unknown rule ids in the allowlist are a usage error.
    writeText(tmp.path / "badallow", "no-such-rule x.cc\n");
    EXPECT_EQ(runCommand(bin + " --allowlist "
                         + (tmp.path / "badallow").string() + " " + good
                         + " >/dev/null 2>&1"),
              2);
}

TEST(AnalyzeCli, PassFilterRunsOnlySelectedPasses)
{
    TempDir tmp;
    writeText(tmp.path / "layers", "");
    const std::string bin = std::string(THERMCTL_ANALYZE_BIN)
                            + " --layers "
                            + (tmp.path / "layers").string();
    const std::string fieldbad =
        fixtureRoot() + std::string("/fieldcov/bad");
    const std::string allocbad =
        fixtureRoot() + std::string("/allocbound/bad");

    // Each bad tree only trips its own pass: the mismatched filter is
    // clean, the matching one fails.
    EXPECT_EQ(runCommand(bin + " --pass alloc-bound " + fieldbad
                         + " >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(bin + " --pass field-coverage " + fieldbad
                         + " >/dev/null 2>&1"),
              1);
    EXPECT_EQ(runCommand(bin + " --pass field-coverage " + allocbad
                         + " >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(bin + " --pass alloc-bound " + allocbad
                         + " >/dev/null 2>&1"),
              1);

    // Unknown pass names are usage errors, not silent no-ops.
    EXPECT_EQ(runCommand(bin + " --pass no-such-pass " + fieldbad
                         + " >/dev/null 2>&1"),
              2);
}

TEST(AnalyzeCli, AllowFieldSuppressesNamedFields)
{
    TempDir tmp;
    writeText(tmp.path / "layers", "");
    const std::string bin = std::string(THERMCTL_ANALYZE_BIN)
                            + " --layers "
                            + (tmp.path / "layers").string();
    const std::string fieldbad =
        fixtureRoot() + std::string("/fieldcov/bad");

    EXPECT_EQ(runCommand(bin
                         + " --pass field-coverage"
                           " --allow-field KnobConfig::epoch_samples"
                           " --allow-field WireMsg::setpoint "
                         + fieldbad + " >/dev/null 2>&1"),
              0);
    // Excluding only one of the two leaves the other finding live.
    EXPECT_EQ(runCommand(bin
                         + " --pass field-coverage"
                           " --allow-field KnobConfig::epoch_samples "
                         + fieldbad + " >/dev/null 2>&1"),
              1);
    // An exclusion without the Struct:: qualifier is a usage error.
    EXPECT_EQ(runCommand(bin + " --allow-field epoch_samples " + fieldbad
                         + " >/dev/null 2>&1"),
              2);
}

TEST(LintCli, CiMakesStaleAllowlistEntriesFatal)
{
    const std::string bin = THERMCTL_LINT_BIN;
    const std::string clean =
        fixtureRoot() + std::string("/unchecked/good/server_loop.cc");

    TempDir tmp;
    writeText(tmp.path / "allow",
              "naked-mutex src/never/matches.cc long gone\n");

    // Stale entries alone: exit 0 without --ci, exit 1 with it.
    EXPECT_EQ(runCommand(bin + " --allowlist "
                         + (tmp.path / "allow").string() + " " + clean
                         + " >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(bin + " --ci --allowlist "
                         + (tmp.path / "allow").string() + " " + clean
                         + " >/dev/null 2>&1"),
              1);
}
