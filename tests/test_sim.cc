/**
 * @file
 * Tests for the composed simulator, policy factory, and experiment
 * runner.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/policy_factory.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

namespace thermctl
{
namespace
{

SimConfig
quickConfig(const std::string &bench = "186.crafty")
{
    SimConfig cfg;
    cfg.workload = specProfile(bench);
    return cfg;
}

TEST(PolicyFactory, NamesMatchKinds)
{
    EXPECT_STREQ(dtmPolicyKindName(DtmPolicyKind::None), "none");
    EXPECT_STREQ(dtmPolicyKindName(DtmPolicyKind::Toggle1), "toggle1");
    EXPECT_STREQ(dtmPolicyKindName(DtmPolicyKind::PID), "PID");
}

TEST(PolicyFactory, PlantDerivedFromHotspotBlocks)
{
    Floorplan fp;
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    DtmConfig dtm;
    const double cycle_s = PowerConfig{}.tech.cycleSeconds();
    FopdtPlant plant = deriveDtmPlant(fp, pm, dtm, cycle_s);

    double max_rc = 0.0;
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
        max_rc = std::max(max_rc, fp.blocks()[i].rc().value());
    EXPECT_DOUBLE_EQ(plant.tau, max_rc);
    EXPECT_GT(plant.gain, 1.0);
    EXPECT_NEAR(plant.dead_time, 500.0 * cycle_s, 1e-15);
}

TEST(PolicyFactory, BuildsEveryPolicyKind)
{
    Floorplan fp;
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    DtmConfig dtm;
    const double cycle_s = PowerConfig{}.tech.cycleSeconds();
    FopdtPlant plant = deriveDtmPlant(fp, pm, dtm, cycle_s);
    for (DtmPolicyKind kind : kAllPolicies) {
        DtmPolicySettings settings;
        settings.kind = kind;
        auto policy = makeDtmPolicy(settings, plant, dtm, cycle_s);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), dtmPolicyKindName(kind));
    }
}

TEST(Simulator, RunsAndAccumulatesSaneStats)
{
    Simulator sim(quickConfig());
    sim.run(20000);
    EXPECT_EQ(sim.now(), 20000u);
    EXPECT_EQ(sim.stats().cycles, 20000u);
    EXPECT_GT(sim.measuredIpc(), 0.1);
    EXPECT_GT(sim.stats().avgPower(), 5.0);
    EXPECT_LT(sim.stats().avgPower(), 80.0);
    for (StructureId id : kAllStructures) {
        EXPECT_GE(sim.stats().avgTemperature(id),
                  sim.config().thermal.t_base - 1e-9)
            << structureName(id);
    }
}

TEST(Simulator, DeterministicAcrossInstances)
{
    auto run = [] {
        Simulator sim(quickConfig());
        sim.run(30000);
        return std::make_tuple(sim.core().stats().committed,
                               sim.stats().avgPower(),
                               sim.thermal().temperatures().maxHotspot());
    };
    EXPECT_EQ(run(), run());
}

TEST(Simulator, WarmUpResetsMeasurementButKeepsHeat)
{
    Simulator sim(quickConfig());
    sim.warmUp(60000);
    EXPECT_EQ(sim.stats().cycles, 0u);
    EXPECT_EQ(sim.core().stats().cycles, 0u);
    // Thermal state persists: crafty heats well above base.
    EXPECT_GT(sim.thermal().temperatures().maxHotspot(),
              sim.config().thermal.t_base + 1.0);
}

TEST(Simulator, ProbeFiresAtInterval)
{
    Simulator sim(quickConfig());
    int calls = 0;
    sim.setProbe([&](const Simulator &, Cycle) { ++calls; }, 1000);
    sim.run(10000);
    EXPECT_EQ(calls, 10);
}

TEST(Simulator, FetchTogglingReducesPowerUnderDtm)
{
    SimConfig none_cfg = quickConfig();
    none_cfg.policy.kind = DtmPolicyKind::None;
    SimConfig t1_cfg = quickConfig();
    t1_cfg.policy.kind = DtmPolicyKind::Toggle1;

    Simulator none(none_cfg), t1(t1_cfg);
    none.warmUp(300000);
    t1.warmUp(300000);
    none.run(300000);
    t1.run(300000);

    EXPECT_LT(t1.measuredIpc(), none.measuredIpc());
    EXPECT_LT(t1.stats().avgPower(), none.stats().avgPower());
    EXPECT_LT(t1.dtm().stats().emergencyFraction(), 1e-9);
    EXPECT_GT(none.dtm().stats().emergencyFraction(), 0.01);
}

TEST(Experiment, RunOneFillsAllFields)
{
    RunProtocol proto;
    proto.warmup_cycles = 40000;
    proto.measure_cycles = 80000;
    ExperimentRunner runner(proto);
    DtmPolicySettings policy;
    policy.kind = DtmPolicyKind::None;
    auto r = runner.runOne(specProfile("177.mesa"), policy);
    EXPECT_EQ(r.benchmark, "177.mesa");
    EXPECT_EQ(r.policy, "none");
    EXPECT_EQ(r.category, ThermalCategory::High);
    EXPECT_GT(r.ipc, 0.3);
    EXPECT_GT(r.avg_power, 10.0);
    EXPECT_GT(r.max_temperature, 108.0);
    EXPECT_DOUBLE_EQ(r.mean_duty, 1.0);
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        EXPECT_GT(r.structures[i].avg_temp, 100.0);
        EXPECT_GE(r.structures[i].max_temp, r.structures[i].avg_temp);
    }
}

TEST(Experiment, ClassifierBoundaries)
{
    RunResult r;
    r.emergency_fraction = 0.01;
    r.stress_fraction = 0.5;
    EXPECT_EQ(classifyThermalBehaviour(r), ThermalCategory::Extreme);
    r.emergency_fraction = 0.0;
    r.stress_fraction = 0.99;
    EXPECT_EQ(classifyThermalBehaviour(r), ThermalCategory::High);
    r.stress_fraction = 0.5;
    EXPECT_EQ(classifyThermalBehaviour(r), ThermalCategory::Medium);
    r.stress_fraction = 0.01;
    EXPECT_EQ(classifyThermalBehaviour(r), ThermalCategory::Low);
}

TEST(Experiment, RunAllPreservesOrder)
{
    RunProtocol proto;
    proto.warmup_cycles = 10000;
    proto.measure_cycles = 20000;
    ExperimentRunner runner(proto);
    DtmPolicySettings policy;
    std::vector<WorkloadProfile> profiles = {specProfile("164.gzip"),
                                             specProfile("175.vpr")};
    auto results = runner.runAll(profiles, policy);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].benchmark, "164.gzip");
    EXPECT_EQ(results[1].benchmark, "175.vpr");
}

} // namespace
} // namespace thermctl
