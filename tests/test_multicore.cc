/**
 * @file
 * Tests for the multicore subsystem (src/multicore; DESIGN.md §15):
 * the N-core thermal network, the per-core controllers, the DVFS
 * ladder actuator, the budget coordinator, and the assembled engine.
 *
 * The load-bearing regressions:
 *  - a 1-core ChipModel is bit-identical to FullRCModel (the multicore
 *    network is a strict generalization, not a reimplementation);
 *  - lateral coupling is symmetric (mirrored workloads produce
 *    mirrored temperatures) and conservative (it moves heat, it does
 *    not create it);
 *  - the energy-balance audit provably fires on a seeded violation;
 *  - budget splits sum to the chip budget exactly, for every policy;
 *  - the adjustable-gain integral controller holds the setpoint within
 *    +-1 C through a plant-gain mismatch and a load step that makes
 *    the fixed-gain PID overshoot.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "control/tuning.hh"
#include "dtm/actuator.hh"
#include "fault/fault.hh"
#include "multicore/budget_coordinator.hh"
#include "multicore/chip_model.hh"
#include "multicore/core_controller.hh"
#include "multicore/multicore_sim.hh"
#include "sim/policy_factory.hh"
#include "thermal/rc_model.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;
using namespace thermctl::multicore;

namespace
{

constexpr Seconds kDt = 1.0 / 1.5e9;

/** Disarm on scope exit so tests never leak an armed fault plan. */
struct ScopedDisarm
{
    ~ScopedDisarm() { fault::FaultInjector::instance().disarm(); }
};

PowerVector
rampPower(double base)
{
    PowerVector p;
    for (std::size_t i = 0; i < kNumStructures; ++i)
        p.value[i] = base + 0.07 * static_cast<double>(i);
    return p;
}

} // namespace

// -------------------------------------------- single-core degeneration

TEST(ChipModel, SingleCoreStepsBitIdenticalToFullRCModel)
{
    Floorplan fp;
    ThermalConfig tc;
    MulticoreConfig mc;
    mc.num_cores = 1;

    FullRCModel full(fp, tc, kDt);
    ChipModel chip(fp, tc, kDt, mc);

    // Per-cycle stepping under a time-varying power input.
    for (int k = 0; k < 2000; ++k) {
        const PowerVector p =
            rampPower(0.4 + 0.3 * std::sin(0.01 * k));
        full.step(p);
        chip.step({p});
        ASSERT_EQ(full.heatsinkTemperature().value(),
                  chip.heatsinkTemperature().value());
    }
    for (StructureId id : kAllStructures) {
        EXPECT_EQ(full.temperatures()[id].value(),
                  chip.temperatures(0)[id].value())
            << structureName(id);
    }

    // Span stepping uses the same chunking policy, so parity must
    // survive it too.
    const PowerVector p = rampPower(1.2);
    full.stepSpan(p, 300000);
    chip.stepSpan({p}, 300000);
    for (StructureId id : kAllStructures) {
        EXPECT_EQ(full.temperatures()[id].value(),
                  chip.temperatures(0)[id].value())
            << structureName(id);
    }
    EXPECT_EQ(full.heatsinkTemperature().value(),
              chip.heatsinkTemperature().value());
}

TEST(ChipModel, CouplingListEmptyWhenDisabledOrSingleCore)
{
    Floorplan fp;
    ThermalConfig tc;

    MulticoreConfig one;
    one.num_cores = 1;
    EXPECT_TRUE(ChipModel(fp, tc, kDt, one).couplingPaths().empty());

    MulticoreConfig uncoupled;
    uncoupled.num_cores = 4;
    uncoupled.coupling_resistance = 0.0;
    EXPECT_TRUE(
        ChipModel(fp, tc, kDt, uncoupled).couplingPaths().empty());

    MulticoreConfig coupled;
    coupled.num_cores = 4;
    coupled.coupling_resistance = 4.0;
    const ChipModel chip(fp, tc, kDt, coupled);
    EXPECT_FALSE(chip.couplingPaths().empty());
    for (const CouplingPath &cp : chip.couplingPaths()) {
        EXPECT_LT(cp.block, kNumStructures);
        EXPECT_GT(cp.conductance, 0.0);
    }
}

// ----------------------------------------------------- coupling physics

TEST(ChipModel, CouplingIsSymmetricUnderMirroredWorkloads)
{
    Floorplan fp;
    ThermalConfig tc;
    MulticoreConfig mc;
    mc.num_cores = 2;
    mc.coupling_resistance = 2.0;

    const PowerVector hot = rampPower(2.0);
    const PowerVector cold{}; // zeros

    ChipModel a(fp, tc, kDt, mc); // core 0 hot
    ChipModel b(fp, tc, kDt, mc); // core 1 hot (mirror image)
    for (int k = 0; k < 5000; ++k) {
        a.step({hot, cold});
        b.step({cold, hot});
    }

    // The network is symmetric under core exchange, so the mirrored
    // drive must produce mirrored temperatures (tolerance only for the
    // sink-flow summation order, which differs between the two runs).
    for (StructureId id : kAllStructures) {
        EXPECT_NEAR(a.temperatures(0)[id].value(),
                    b.temperatures(1)[id].value(), 1e-9)
            << structureName(id);
        EXPECT_NEAR(a.temperatures(1)[id].value(),
                    b.temperatures(0)[id].value(), 1e-9)
            << structureName(id);
    }
    EXPECT_NEAR(a.heatsinkTemperature().value(),
                b.heatsinkTemperature().value(), 1e-9);

    // Heat flowed from the hot core to the cold one: the driven core is
    // hotter everywhere, and the idle core's coupled boundary blocks
    // rose above their start.
    for (const CouplingPath &cp : a.couplingPaths()) {
        const auto id = static_cast<StructureId>(cp.block);
        EXPECT_GT(a.temperatures(0)[id].value(),
                  a.temperatures(1)[id].value());
        EXPECT_GT(a.temperatures(1)[id].value(), tc.t_base.value());
    }
}

TEST(ChipModel, CouplingWarmsTheIdleNeighbour)
{
    Floorplan fp;
    ThermalConfig tc;
    const PowerVector hot = rampPower(2.0);
    const PowerVector cold{};

    MulticoreConfig coupled;
    coupled.num_cores = 2;
    coupled.coupling_resistance = 2.0;
    MulticoreConfig isolated = coupled;
    isolated.coupling_resistance = 0.0;

    ChipModel with(fp, tc, kDt, coupled);
    ChipModel without(fp, tc, kDt, isolated);
    with.stepSpan({hot, cold}, 1500000);    // 1 ms
    without.stepSpan({hot, cold}, 1500000);

    // The idle core's boundary blocks end hotter when coupled to a hot
    // neighbour; the hot core sheds a little into them.
    ASSERT_FALSE(with.couplingPaths().empty());
    for (const CouplingPath &cp : with.couplingPaths()) {
        const auto id = static_cast<StructureId>(cp.block);
        EXPECT_GT(with.temperatures(1)[id].value(),
                  without.temperatures(1)[id].value());
        EXPECT_LT(with.temperatures(0)[id].value(),
                  without.temperatures(0)[id].value());
    }
}

TEST(ChipModel, WarmStartLeavesTheQuasiStaticSinkAlone)
{
    Floorplan fp;
    ThermalConfig tc;
    MulticoreConfig mc;
    mc.num_cores = 2;

    ChipModel chip(fp, tc, kDt, mc);
    const Celsius sink_before = chip.heatsinkTemperature();
    const PowerVector p = rampPower(1.0);
    chip.warmStart({p, p});

    // The sink's time constant (~20 s) dwarfs any simulated span, so a
    // warm start must not move it; blocks jump to their own P*R above.
    EXPECT_EQ(chip.heatsinkTemperature().value(), sink_before.value());
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        EXPECT_DOUBLE_EQ(
            chip.temperatures(0)[id].value(),
            sink_before.value()
                + p.value[i] * fp.block(id).resistance.value());
    }
}

// ------------------------------------------------- energy-balance audit

#if THERMCTL_INVARIANTS_ENABLED && THERMCTL_FAULTS_ENABLED
TEST(ChipModel, EnergyAuditFiresOnSeededViolation)
{
    ScopedDisarm disarm;
    Floorplan fp;
    ThermalConfig tc;
    MulticoreConfig mc;
    mc.num_cores = 2;

    const PowerVector p = rampPower(1.0);

    // Clean span: the audit holds.
    {
        ChipModel chip(fp, tc, kDt, mc);
        EXPECT_NO_THROW(chip.stepSpan({p, p}, 150000));
    }

    // Seed unaccounted stored energy inside the audited span: the
    // balance invariant must fire.
    fault::FaultInjector::instance().arm(
        fault::FaultPlan::parse("multicore.energy=abort"));
    ChipModel chip(fp, tc, kDt, mc);
    EXPECT_THROW(chip.stepSpan({p, p}, 150000), PanicError);
}
#endif

// ------------------------------------------------------------ validation

TEST(ChipModel, RejectsNonsenseConfigs)
{
    Floorplan fp;
    ThermalConfig tc;

    MulticoreConfig zero;
    zero.num_cores = 0;
    EXPECT_THROW(ChipModel(fp, tc, kDt, zero), FatalError);

    MulticoreConfig too_many;
    too_many.num_cores = kMaxCores + 1;
    EXPECT_THROW(ChipModel(fp, tc, kDt, too_many), FatalError);

    MulticoreConfig ok;
    ok.num_cores = 2;
    EXPECT_THROW(ChipModel(fp, tc, 0.0, ok), FatalError);
}

TEST(CoreController, AdjustableIntegralRejectsBadConfigs)
{
    AdjustableIntegralConfig bad_gain;
    bad_gain.loop_gain = 0.0;
    EXPECT_THROW(AdjustableIntegralController{bad_gain}, FatalError);

    AdjustableIntegralConfig bad_band;
    bad_band.sensitivity_min = 10.0;
    bad_band.sensitivity_max = 1.0;
    EXPECT_THROW(AdjustableIntegralController{bad_band}, FatalError);

    AdjustableIntegralConfig bad_init;
    bad_init.initial_sensitivity = 1000.0;
    EXPECT_THROW(AdjustableIntegralController{bad_init}, FatalError);

    AdjustableIntegralConfig bad_filter;
    bad_filter.sensitivity_filter = 0.0;
    EXPECT_THROW(AdjustableIntegralController{bad_filter}, FatalError);
}

TEST(DvfsLadder, RejectsBadConfigs)
{
    EXPECT_THROW(DvfsLadder(0), FatalError);
    EXPECT_THROW(DvfsLadder(7, 0.0), FatalError);
    EXPECT_THROW(DvfsLadder(7, 1.0), FatalError);
}

// ----------------------------------------------------------- DVFS ladder

TEST(DvfsLadder, LevelMapsLinearlyBetweenFloorAndNominal)
{
    DvfsLadder ladder(7, 0.3);
    EXPECT_EQ(ladder.level(), 7u); // starts at nominal
    EXPECT_DOUBLE_EQ(ladder.freqScale(7), 1.0);
    EXPECT_DOUBLE_EQ(ladder.freqScale(0), 0.3);
    EXPECT_DOUBLE_EQ(ladder.freqScale(4), 0.3 + 0.7 * 4.0 / 7.0);
    // Out-of-range levels clamp.
    EXPECT_DOUBLE_EQ(ladder.freqScale(99), 1.0);

    // Duty quantizes to the nearest level.
    ladder.setDuty(0.5);
    EXPECT_EQ(ladder.level(), 4u); // round(3.5)
    ladder.setDuty(0.0);
    EXPECT_EQ(ladder.level(), 0u);
    ladder.setDuty(2.0); // clamped
    EXPECT_EQ(ladder.level(), 7u);
}

TEST(DvfsLadder, PowerScaleFollowsFV2)
{
    DvfsLadder ladder(7, 0.3);
    ladder.setLevel(3);
    const double f = ladder.freqScale();
    const double alpha = 0.3;
    const double v = alpha + (1.0 - alpha) * f;
    EXPECT_DOUBLE_EQ(ladder.voltageRatio(alpha), v);
    EXPECT_DOUBLE_EQ(ladder.powerScale(alpha), f * v * v);
}

TEST(DvfsLadder, ClockGateExecutesTheScaledFractionEvenly)
{
    for (std::uint32_t level : {0u, 2u, 5u, 7u}) {
        DvfsLadder ladder(7, 0.3);
        ladder.setLevel(level);
        const double s = ladder.freqScale();

        const int n = 70000;
        int edges = 0;
        int window_edges = 0;
        for (int i = 0; i < n; ++i) {
            if (ladder.clockGate()) {
                ++edges;
                ++window_edges;
            }
            // Evenness: every 100-cycle window carries its share.
            if ((i + 1) % 100 == 0) {
                EXPECT_NEAR(window_edges, 100.0 * s, 2.0);
                window_edges = 0;
            }
        }
        EXPECT_NEAR(static_cast<double>(edges) / n, s, 1e-3);
    }
}

// ------------------------------------------------------ budget coordinator

TEST(BudgetCoordinator, EverySplitPolicyConservesTheBudget)
{
    const std::vector<Watts> demand = {31.0, 0.0, 18.5, 7.25};
    const std::vector<Celsius> hottest = {104.0, 111.9, 96.5, 108.0};
    const Watts budget = 55.0;

    for (BudgetPolicy policy :
         {BudgetPolicy::Uniform, BudgetPolicy::DemandProportional,
          BudgetPolicy::ThermalHeadroom}) {
        const BudgetCoordinator coord(budget, policy, 111.8);
        const std::vector<Watts> share = coord.split(demand, hottest);
        ASSERT_EQ(share.size(), demand.size());
        double sum = 0.0;
        for (Watts w : share) {
            EXPECT_GE(w.value(), 0.0) << budgetPolicyName(policy);
            sum += w.value();
        }
        EXPECT_DOUBLE_EQ(sum, budget.value())
            << budgetPolicyName(policy);
    }

    // Degenerate single-core chip: the whole budget, exactly.
    const BudgetCoordinator one(budget, BudgetPolicy::Uniform, 111.8);
    const std::vector<Watts> solo = one.split({12.0}, {100.0});
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_EQ(solo[0].value(), budget.value());
}

TEST(BudgetCoordinator, PoliciesRouteWattsAsDocumented)
{
    const std::vector<Watts> demand = {30.0, 5.0, 20.0, 10.0};
    const std::vector<Celsius> hottest = {100.0, 111.0, 95.0, 108.0};
    const Watts budget = 40.0;

    const auto uniform =
        BudgetCoordinator(budget, BudgetPolicy::Uniform, 111.8)
            .split(demand, hottest);
    for (Watts w : uniform)
        EXPECT_DOUBLE_EQ(w.value(), 10.0);

    // Demand-proportional: the hungriest core gets the biggest share.
    const auto by_demand =
        BudgetCoordinator(budget, BudgetPolicy::DemandProportional,
                          111.8)
            .split(demand, hottest);
    EXPECT_GT(by_demand[0].value(), by_demand[3].value());
    EXPECT_GT(by_demand[3].value(), by_demand[1].value());

    // Thermal headroom: the coolest core gets the biggest share, the
    // nearly-critical core is starved.
    const auto by_headroom =
        BudgetCoordinator(budget, BudgetPolicy::ThermalHeadroom, 111.8)
            .split(demand, hottest);
    EXPECT_GT(by_headroom[2].value(), by_headroom[0].value());
    EXPECT_GT(by_headroom[0].value(), by_headroom[1].value());
}

TEST(BudgetCoordinator, RejectsNonsense)
{
    EXPECT_THROW(
        BudgetCoordinator(0.0, BudgetPolicy::Uniform, 111.8),
        FatalError);
    const BudgetCoordinator coord(10.0, BudgetPolicy::Uniform, 111.8);
    EXPECT_THROW(coord.split({}, {}), PanicError);
    EXPECT_THROW(coord.split({1.0, 2.0}, {100.0}), PanicError);
}

// ------------------------------------- adjustable vs fixed gain control

namespace
{

/**
 * A discrete first-order thermal plant T' = (T_amb + gain * u - T) / tau
 * whose true gain the controller under test does NOT know. T_amb models
 * the uncontrolled load (neighbour heating, ambient): stepping it is
 * the "step-power workload".
 */
struct FirstOrderPlant
{
    double t_amb;
    double gain;
    double tau;
    double dt;
    double temp;

    double
    step(double u)
    {
        temp += (dt / tau) * (t_amb + gain * u - temp);
        return temp;
    }
};

/** Drive `update` against the plant for `samples` steps, carrying the
 *  duty in `u`; return max |T - setpoint| over the samples after
 *  `skip`. */
template <typename Controller>
double
runLoop(FirstOrderPlant &plant, Controller &ctrl, double &u,
        double setpoint, int samples, int skip)
{
    double worst = 0.0;
    for (int k = 0; k < samples; ++k) {
        const double t = plant.step(u);
        u = ctrl.update(Celsius(t));
        if (k >= skip)
            worst = std::max(worst, std::abs(t - setpoint));
    }
    return worst;
}

PidConfig
tunedPid(double plant_gain, double tau, double dt, double setpoint)
{
    const FopdtPlant nominal{plant_gain, tau, dt / 2.0};
    PidConfig pc = tuneLoopShaping(ControllerKind::PID, nominal);
    pc.setpoint = setpoint;
    pc.dt = dt;
    pc.out_min = 0.0;
    pc.out_max = 1.0;
    pc.integral_init = pc.out_max;
    return pc;
}

} // namespace

TEST(CoreController, AdjustableGainHoldsWhereFixedPidOvershoots)
{
    // The Rao et al. scenario: the fixed PID's gains were tuned against
    // a nominal plant whose gain is 4x below the truth (the same tuning
    // deployed on a corner of the chip where the thermal sensitivity is
    // far from nominal), so its loop reacts 4x too hard. The adjustable
    // integral loop estimates the true sensitivity online and
    // re-normalizes its gain every sample.
    const double dt = 1e-3;
    const double tau = 12.0 * dt;
    const double g_true = 50.0;
    const double setpoint = 100.0;

    FixedPidCoreController fixed(
        tunedPid(g_true / 4.0, tau, dt, setpoint));
    FixedPidCoreController nominal(
        tunedPid(g_true, tau, dt, setpoint));

    AdjustableIntegralConfig ac;
    ac.setpoint = setpoint;
    ac.initial_sensitivity = 10.0; // ~2.4x off: must adapt down
    AdjustableIntegralController adaptive(ac);

    // Phase 1: pull the hot plant (steady state 110 at full duty) down
    // onto the setpoint and settle. Phase 2: a step-power workload
    // change (the plant runs 20 degrees hotter at any given duty).
    FirstOrderPlant start{60.0, g_true, tau, dt, 110.0};
    FirstOrderPlant plant_fixed = start;
    FirstOrderPlant plant_nom = start;
    FirstOrderPlant plant_adj = start;
    double u_fixed = 1.0, u_nom = 1.0, u_adj = 1.0;

    const double settle_fixed =
        runLoop(plant_fixed, fixed, u_fixed, setpoint, 2000, 500);
    const double settle_nom =
        runLoop(plant_nom, nominal, u_nom, setpoint, 2000, 500);
    const double settle_adj =
        runLoop(plant_adj, adaptive, u_adj, setpoint, 2000, 500);

    plant_fixed.t_amb = 80.0;
    plant_adj.t_amb = 80.0;
    const double step_fixed =
        runLoop(plant_fixed, fixed, u_fixed, setpoint, 2000, 200);
    const double step_adj =
        runLoop(plant_adj, adaptive, u_adj, setpoint, 2000, 200);

    // The adaptive loop holds the band through both the settle and the
    // load step; the mismatched fixed loop oscillates past it in both.
    EXPECT_LE(settle_adj, 1.0);
    EXPECT_LE(step_adj, 1.0);
    EXPECT_GT(settle_fixed, 1.0);
    EXPECT_GT(step_fixed, 1.0);

    // The failure is the mismatch, not the PID: the same tuning recipe
    // fed the true gain holds the band where the mismatched one leaves
    // it by degrees.
    EXPECT_LE(settle_nom, 1.0);
    EXPECT_GT(settle_fixed, 2.0 * settle_nom);

    // The sensitivity estimate moved from its wrong prior toward the
    // plant's true per-sample sensitivity (dt/tau * gain ~ 4.2).
    EXPECT_LT(adaptive.sensitivity(), 6.0);
    EXPECT_GT(adaptive.sensitivity(), 1.0);
}

// ------------------------------------------------------ assembled engine

TEST(MulticoreSimulator, RunsAndAggregatesSaneChipStats)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::PerCorePid;
    cfg.multicore.num_cores = 2;

    MulticoreSimulator sim(cfg);
    EXPECT_EQ(sim.numCores(), 2u);
    sim.warmUp(20000);
    sim.run(60000);

    const ChipStats &s = sim.stats();
    EXPECT_EQ(s.nominal_cycles, 60000u);
    EXPECT_GT(s.samples, 0u);
    EXPECT_GT(s.committed, 0u);
    // Each core executes at most one cycle per nominal cycle.
    EXPECT_LE(s.executed_cycles, 2u * 60000u);
    EXPECT_GT(s.executed_cycles, 0u);
    // Temperatures live in the physical band around the paper's base.
    EXPECT_GT(s.max_temperature.value(), 100.0);
    EXPECT_LT(s.max_temperature.value(), 125.0);
    for (std::size_t c = 0; c < sim.numCores(); ++c) {
        EXPECT_GE(sim.freqScale(c), 0.3);
        EXPECT_LE(sim.freqScale(c), 1.0);
    }
}

TEST(MulticoreSimulator, BudgetCapReducesChipPower)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::None;
    cfg.multicore.num_cores = 4;

    SimConfig capped = cfg;
    capped.multicore.chip_budget = 40.0;
    capped.multicore.budget_policy = BudgetPolicy::DemandProportional;

    const auto chipPower = [](const SimConfig &c) {
        MulticoreSimulator sim(c);
        sim.warmUp(20000);
        sim.run(60000);
        double watt_cycles = 0.0;
        for (const auto &st : sim.stats().structures)
            watt_cycles += st.power_sum;
        return watt_cycles
            / static_cast<double>(sim.stats().nominal_cycles);
    };

    const double uncapped_w = chipPower(cfg);
    const double capped_w = chipPower(capped);
    EXPECT_GT(uncapped_w, 80.0); // 4 hot cores, ~26 W each
    EXPECT_LT(capped_w, 0.75 * uncapped_w);
}

TEST(MulticoreSimulator, RejectsSingleCorePolicies)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    cfg.policy.kind = DtmPolicyKind::Toggle1;
    cfg.multicore.num_cores = 2;
    EXPECT_THROW(MulticoreSimulator{cfg}, FatalError);
}

TEST(PolicyFactory, MulticoreNamesRoundTrip)
{
    EXPECT_TRUE(isMulticorePolicy(DtmPolicyKind::PerCorePid));
    EXPECT_TRUE(isMulticorePolicy(DtmPolicyKind::AdjIntegral));
    EXPECT_FALSE(isMulticorePolicy(DtmPolicyKind::PID));
    EXPECT_FALSE(isMulticorePolicy(DtmPolicyKind::None));

    for (BudgetPolicy p :
         {BudgetPolicy::Uniform, BudgetPolicy::DemandProportional,
          BudgetPolicy::ThermalHeadroom}) {
        BudgetPolicy out;
        ASSERT_TRUE(parseBudgetPolicy(budgetPolicyName(p), out));
        EXPECT_EQ(out, p);
    }
    BudgetPolicy out;
    EXPECT_FALSE(parseBudgetPolicy("round-robin", out));
}
