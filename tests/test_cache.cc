/**
 * @file
 * Tests for the cache, TLB and memory-hierarchy models.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/tlb.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace thermctl
{
namespace
{

CacheConfig
smallCache()
{
    return CacheConfig{.name = "test", .size_bytes = 1024, .assoc = 2,
                       .block_bytes = 32, .hit_latency = 1};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x11f, false).hit); // same 32B block
    EXPECT_FALSE(c.access(0x120, false).hit); // next block
    EXPECT_EQ(c.stats().reads, 4u);
    EXPECT_EQ(c.stats().read_misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    Cache c(smallCache()); // 16 sets, stride to same set = 16*32 = 512
    const Addr a = 0x0, b = 0x200, d = 0x400;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);       // a most recent
    c.access(d, false);       // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallCache());
    const Addr a = 0x0, b = 0x200, d = 0x400;
    c.access(a, true);  // dirty
    c.access(b, false); // clean
    auto r = c.access(d, false); // evicts a (LRU, dirty)
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, a);
    EXPECT_EQ(c.stats().writebacks, 1u);

    // Clean eviction produces no writeback.
    c.flush();
    c.access(a, false);
    c.access(b, false);
    r = c.access(d, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache c(smallCache());
    const Addr a = 0x0, b = 0x200, d = 0x400;
    c.access(a, false);
    c.access(a, true); // now dirty
    c.access(b, false);
    auto r = c.access(d, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallCache());
    c.access(0x100, true);
    c.flush();
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.access(0x100, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig cfg = smallCache();
    cfg.block_bytes = 24;
    EXPECT_THROW(Cache{cfg}, FatalError);
    cfg = smallCache();
    cfg.assoc = 0;
    EXPECT_THROW(Cache{cfg}, FatalError);
    cfg = smallCache();
    cfg.size_bytes = 1000;
    EXPECT_THROW(Cache{cfg}, FatalError);
}

/** Property: footprint vs capacity determines the steady-state miss rate. */
class CacheFootprint : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheFootprint, SteadyStateMissRate)
{
    const std::uint64_t footprint = GetParam();
    Cache c(CacheConfig{.name = "fp", .size_bytes = 64 * 1024, .assoc = 2,
                        .block_bytes = 32, .hit_latency = 1});
    Rng rng(footprint);
    // Warm up.
    for (int i = 0; i < 50000; ++i)
        c.access(rng.below(footprint) & ~Addr{7}, false);
    const auto warm = c.stats();
    for (int i = 0; i < 50000; ++i)
        c.access(rng.below(footprint) & ~Addr{7}, false);
    const auto final = c.stats();
    const double misses = double(final.misses() - warm.misses());
    const double accesses = double(final.accesses() - warm.accesses());
    const double miss_rate = misses / accesses;
    if (footprint <= 32 * 1024) {
        EXPECT_LT(miss_rate, 0.01) << "footprint " << footprint;
    } else if (footprint >= 1024 * 1024) {
        EXPECT_GT(miss_rate, 0.5) << "footprint " << footprint;
    }
}

INSTANTIATE_TEST_SUITE_P(Footprints, CacheFootprint,
                         ::testing::Values(16 * 1024, 32 * 1024,
                                           1024 * 1024, 4096 * 1024));

// -------------------------------------------------------------------- TLB

TEST(Tlb, HitAfterFill)
{
    Tlb tlb;
    EXPECT_EQ(tlb.access(0x10000), 30u); // cold miss
    EXPECT_EQ(tlb.access(0x10000), 0u);  // hit
    EXPECT_EQ(tlb.access(0x10000 + 8191), 0u); // same 8K page
    EXPECT_EQ(tlb.access(0x10000 + 8192), 30u); // next page
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb tlb(TlbConfig{.entries = 2, .page_bytes = 8192,
                      .miss_penalty = 30});
    tlb.access(0 << 13);
    tlb.access(1 << 13);
    tlb.access(0 << 13);      // refresh page 0
    tlb.access(2 << 13);      // evicts page 1
    EXPECT_EQ(tlb.access(0 << 13), 0u);
    EXPECT_EQ(tlb.access(1 << 13), 30u);
}

TEST(Tlb, StatsAndFlush)
{
    Tlb tlb;
    tlb.access(0x1000);
    tlb.access(0x1000);
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(tlb.stats().missRate(), 0.5);
    tlb.flush();
    EXPECT_EQ(tlb.access(0x1000), 30u);
}

TEST(Tlb, RejectsBadConfig)
{
    EXPECT_THROW(Tlb(TlbConfig{.entries = 0}), FatalError);
    EXPECT_THROW(Tlb(TlbConfig{.entries = 4, .page_bytes = 1000}),
                 FatalError);
}

// -------------------------------------------------------------- hierarchy

TEST(Hierarchy, LatenciesPerLevel)
{
    MemoryHierarchy mem;
    // Cold access: TLB miss (30) + L1 miss + L2 miss -> memory (100).
    EXPECT_EQ(mem.dataAccess(0x5000, false), 130u);
    // Now TLB and caches are warm.
    EXPECT_EQ(mem.dataAccess(0x5000, false), 1u);
    // Same page, different block: L1 miss -> L2 hit (filled by L1 fill).
    // The first fill put the block in both L1 and L2.
    EXPECT_EQ(mem.dataAccess(0x5020, false), 100u); // L2 also cold
    EXPECT_EQ(mem.dataAccess(0x5020, false), 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy mem;
    mem.dataAccess(0x5000, false); // fills L1+L2
    // Evict 0x5000 from L1 by filling its set (L1: 64KB 2-way,
    // 1024 sets, stride 32KB).
    mem.dataAccess(0x5000 + 32 * 1024, false);
    mem.dataAccess(0x5000 + 64 * 1024, false);
    // 0x5000 now out of L1 but still in L2 (2MB).
    EXPECT_EQ(mem.dataAccess(0x5000, false), 11u);
}

TEST(Hierarchy, InstFetchLatency)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.instFetch(0x400000), 100u);
    EXPECT_EQ(mem.instFetch(0x400000), 1u);
}

TEST(Hierarchy, ActivityCountersAccumulateAndReset)
{
    MemoryHierarchy mem;
    mem.dataAccess(0x5000, false);
    mem.instFetch(0x400000);
    const auto &act = mem.activity();
    EXPECT_EQ(act.l1d_accesses, 1u);
    EXPECT_EQ(act.l1i_accesses, 1u);
    EXPECT_EQ(act.tlb_accesses, 1u);
    EXPECT_GE(act.l2_accesses, 2u);
    mem.resetActivity();
    EXPECT_EQ(mem.activity().l1d_accesses, 0u);
}

TEST(Hierarchy, DirtyL1VictimWritesBackToL2)
{
    MemoryHierarchy mem;
    mem.dataAccess(0x5000, true); // dirty in L1
    mem.resetActivity();
    // Force eviction of 0x5000 from L1.
    mem.dataAccess(0x5000 + 32 * 1024, false);
    mem.dataAccess(0x5000 + 64 * 1024, false);
    // One of those misses evicted the dirty line: writeback = extra L2
    // access beyond the two fills.
    EXPECT_GE(mem.activity().l2_accesses, 3u);
    EXPECT_GE(mem.l2().stats().writes, 1u);
}

} // namespace
} // namespace thermctl
