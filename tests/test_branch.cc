/**
 * @file
 * Tests for the branch-prediction stack: 2-bit counters, bimodal, GAg,
 * BTB, RAS, and the hybrid predictor with speculative-history repair.
 */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gag.hh"
#include "branch/hybrid.hh"
#include "branch/ras.hh"
#include "common/logging.hh"

namespace thermctl
{
namespace
{

TEST(Counter2, SaturatesBothEnds)
{
    Counter2 c(0);
    for (int i = 0; i < 10; ++i)
        c.train(false);
    EXPECT_EQ(c.raw(), 0);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.train(true);
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.taken());
}

TEST(Counter2, HysteresisNeedsTwoFlips)
{
    Counter2 c(3);
    c.train(false);
    EXPECT_TRUE(c.taken()); // 2: still predicts taken
    c.train(false);
    EXPECT_FALSE(c.taken()); // 1
}

TEST(Bimodal, LearnsPerPcBias)
{
    BimodalPredictor pred(1024);
    // Adjacent PCs: guaranteed distinct table entries.
    const Addr pc_t = 0x1000, pc_n = 0x1004;
    for (int i = 0; i < 10; ++i) {
        pred.update(pc_t, true);
        pred.update(pc_n, false);
    }
    EXPECT_TRUE(pred.predict(pc_t));
    EXPECT_FALSE(pred.predict(pc_n));
}

TEST(Bimodal, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BimodalPredictor(1000), FatalError);
    EXPECT_THROW(BimodalPredictor(0), FatalError);
}

TEST(GAg, LearnsHistoryPattern)
{
    GAgPredictor pred(4096, 12);
    // Alternating pattern: history distinguishes the two contexts.
    std::uint32_t history = 0;
    auto mask = pred.historyMask();
    for (int i = 0; i < 200; ++i) {
        const bool taken = i % 2 == 0;
        pred.updateWith(history, taken);
        history = ((history << 1) | taken) & mask;
    }
    // After training, prediction under each history is correct.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool taken = i % 2 == 0;
        correct += pred.predictWith(history) == taken;
        pred.updateWith(history, taken);
        history = ((history << 1) | taken) & mask;
    }
    EXPECT_GT(correct, 95);
}

TEST(GAg, RejectsBadGeometry)
{
    EXPECT_THROW(GAgPredictor(1000, 12), FatalError);
    EXPECT_THROW(GAgPredictor(4096, 0), FatalError);
    EXPECT_THROW(GAgPredictor(4096, 40), FatalError);
}

TEST(Btb, StoresAndRefreshesTargets)
{
    BranchTargetBuffer btb(64, 2);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(*btb.lookup(0x1000), 0x2000u);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    BranchTargetBuffer btb(8, 2); // 4 sets
    // Three PCs mapping to the same set (stride = sets * 4 = 16).
    const Addr a = 0x1000, b = 0x1000 + 16, c = 0x1000 + 32;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a); // refresh a
    btb.update(c, 3); // evicts b (LRU)
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.top(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, WrapsWhenFull)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Ras, CheckpointRestore)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    const auto tos = ras.tosIndex();
    const auto top = ras.top();
    ras.push(0x200);
    ras.pop();
    ras.pop();
    ras.restore(tos, top);
    EXPECT_EQ(ras.top(), 0x100u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

// --------------------------------------------------------------- hybrid

MicroOp
condBranch(Addr pc, bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Branch;
    op.is_branch = true;
    op.is_conditional = true;
    op.taken = taken;
    op.target = taken ? target : 0;
    if (taken)
        op.target = target;
    return op;
}

TEST(Hybrid, LearnsBiasedBranch)
{
    HybridPredictor pred;
    MicroOp op = condBranch(0x1000, true, 0x2000);
    // Train.
    for (int i = 0; i < 20; ++i) {
        auto p = pred.predict(op);
        pred.resolve(op, p);
        if (p.taken != op.taken)
            pred.repairAfterMispredict(op, p);
    }
    auto p = pred.predict(op);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.btb_hit);
    EXPECT_EQ(p.target, 0x2000u);
}

TEST(Hybrid, SpeculativeHistoryUpdatedAtPredict)
{
    HybridPredictor pred;
    MicroOp op = condBranch(0x1000, true, 0x2000);
    const auto before = pred.history();
    auto p = pred.predict(op);
    EXPECT_EQ(p.history_checkpoint, before);
    EXPECT_EQ(pred.history(),
              ((before << 1) | (p.taken ? 1u : 0u)) & 0xfffu);
}

TEST(Hybrid, RepairRebuildsHistoryWithActualOutcome)
{
    HybridPredictor pred;
    MicroOp op = condBranch(0x1000, true, 0x2000);
    auto p = pred.predict(op);
    pred.repairAfterMispredict(op, p);
    EXPECT_EQ(pred.history(),
              ((p.history_checkpoint << 1) | 1u) & 0xfffu);
}

TEST(Hybrid, ReturnUsesRas)
{
    HybridPredictor pred;
    MicroOp call;
    call.pc = 0x1000;
    call.op = OpClass::Branch;
    call.is_branch = true;
    call.is_call = true;
    call.taken = true;
    call.target = 0x5000;
    pred.predict(call);

    MicroOp ret;
    ret.pc = 0x5010;
    ret.op = OpClass::Branch;
    ret.is_branch = true;
    ret.is_return = true;
    ret.taken = true;
    ret.target = 0x1004;
    auto p = pred.predict(ret);
    EXPECT_TRUE(p.used_ras);
    EXPECT_EQ(p.target, 0x1004u);
}

TEST(Hybrid, StatsTrackAccuracy)
{
    HybridPredictor pred;
    MicroOp op = condBranch(0x1000, true, 0x2000);
    for (int i = 0; i < 50; ++i) {
        auto p = pred.predict(op);
        pred.resolve(op, p);
        if (p.taken != op.taken)
            pred.repairAfterMispredict(op, p);
    }
    const auto &s = pred.stats();
    EXPECT_EQ(s.cond_lookups, 50u);
    EXPECT_EQ(s.dir_correct + s.dir_wrong, 50u);
    EXPECT_GT(s.accuracy(), 0.9);
}

/**
 * Property: on a loop with trip count N, a trained hybrid predictor
 * approaches the theoretical 1 - 1/N accuracy (one exit misprediction
 * per traversal; the 2-bit counters absorb the re-entry).
 */
class LoopAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(LoopAccuracy, ApproachesTheoreticalBound)
{
    const int trip = GetParam();
    HybridPredictor pred;
    int correct = 0, total = 0;
    for (int iter = 0; iter < 400; ++iter) {
        for (int i = 0; i < trip; ++i) {
            MicroOp op = condBranch(0x1000, i + 1 < trip, 0x0800);
            auto p = pred.predict(op);
            if (iter >= 50) { // skip warm-up
                ++total;
                correct += p.taken == op.taken;
            }
            pred.resolve(op, p);
            if (p.taken != op.taken)
                pred.repairAfterMispredict(op, p);
        }
    }
    const double accuracy = double(correct) / total;
    const double bound = 1.0 - 1.2 / trip; // small slack over 1 - 1/N
    EXPECT_GT(accuracy, bound) << "trip=" << trip;
}

INSTANTIATE_TEST_SUITE_P(TripCounts, LoopAccuracy,
                         ::testing::Values(4, 8, 16, 32, 64));

} // namespace
} // namespace thermctl
