/**
 * @file
 * Tests for the physics-invariant checking layer (src/check) and the
 * dimensional strong types behind it.
 *
 * The check:: primitives are always available, so every invariant class
 * (finiteness, forward-Euler stability, energy balance, PID contract) is
 * proven to fire regardless of whether the build compiles the
 * instrumentation in. The instrumented library paths are additionally
 * exercised when THERMCTL_INVARIANTS_ENABLED is set (scripts/check.sh
 * runs the suite in that configuration).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/invariants.hh"
#include "common/logging.hh"
#include "control/pid.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_model.hh"

using namespace thermctl;

namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr Seconds kDt = 1.0 / 1.5e9;

// ------------------------------------------------- dimensional algebra

// The Table 1 duality algebra is enforced at compile time; these are the
// shapes the checker leans on at runtime.
static_assert(std::is_same_v<decltype(Watts{} * KelvinPerWatt{}), Kelvin>);
static_assert(std::is_same_v<decltype(KelvinPerWatt{} * JoulePerKelvin{}),
                             Seconds>);
static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>);
static_assert(std::is_same_v<decltype(Joules{} / JoulePerKelvin{}), Kelvin>);
static_assert(std::is_same_v<decltype(Seconds{} / Seconds{}), units::Ratio>);

TEST(Units, QuantityArithmeticCarriesDimensions)
{
    const Watts p = 10.0;
    const KelvinPerWatt r = 0.5;
    const JoulePerKelvin c = 2.0;
    const Kelvin dt_rise = p * r;
    EXPECT_DOUBLE_EQ(dt_rise.value(), 5.0);
    const Seconds tau = r * c;
    EXPECT_DOUBLE_EQ(tau.value(), 1.0);
    const Joules e = p * Seconds(3.0);
    EXPECT_DOUBLE_EQ(e.value(), 30.0);
    EXPECT_DOUBLE_EQ((e / c).value(), 15.0);
}

TEST(Units, HelpersMatchStrongTypes)
{
    EXPECT_DOUBLE_EQ(units::mm2ToM2(10.0), 1e-5);
    EXPECT_DOUBLE_EQ(units::sToUs(Seconds(2.5e-4)), 250.0);
}

// ------------------------------------------------------- NaN injection

TEST(CheckFinite, PassesOnCleanState)
{
    TemperatureVector temps;
    temps.value.fill(100.0);
    EXPECT_NO_THROW(check::verifyFinite(temps, "test"));

    PowerVector power;
    power.value.fill(1.5);
    EXPECT_NO_THROW(check::verifyFinite(power, "test"));
    EXPECT_NO_THROW(check::verifyFinite(42.0, "scalar", "test"));
}

TEST(CheckFinite, FiresOnNanTemperature)
{
    TemperatureVector temps;
    temps.value.fill(100.0);
    temps[StructureId::Regfile] = kNan;
    EXPECT_THROW(check::verifyFinite(temps, "test"), PanicError);
}

TEST(CheckFinite, FiresOnInfinitePower)
{
    PowerVector power;
    power.value.fill(1.5);
    power[StructureId::IntExec] = kInf;
    EXPECT_THROW(check::verifyFinite(power, "test"), PanicError);
    EXPECT_THROW(check::verifyFinite(kNan, "scalar", "test"), PanicError);
}

// ----------------------------------------------- forward-Euler stability

TEST(CheckEuler, AcceptsStableRatio)
{
    EXPECT_NO_THROW(check::verifyEulerStable(0.01, 1.0, "test", "blk"));
}

TEST(CheckEuler, FiresOnUnstableRatio)
{
    EXPECT_THROW(check::verifyEulerStable(1.0, 1.0, "test", "blk"),
                 PanicError);
    EXPECT_THROW(check::verifyEulerStable(2.5, 1.0, "test", "blk"),
                 PanicError);
    EXPECT_THROW(check::verifyEulerStable(-0.1, 1.0, "test", "blk"),
                 PanicError);
}

TEST(CheckEuler, UnstableDtRejectedAtConstruction)
{
    Floorplan fp;
    ThermalConfig cfg;
    // 1 ms per step is far beyond every block's tens-of-microseconds
    // time constant: both models must refuse to integrate Eq. 5.
    EXPECT_THROW(SimplifiedRCModel(fp, cfg, 1e-3), FatalError);
    EXPECT_THROW(FullRCModel(fp, cfg, 1e-3), FatalError);
}

// ----------------------------------------------------------- PID contract

TEST(CheckPid, AcceptsOutputWithinActuatorRange)
{
    EXPECT_NO_THROW(
        check::verifyPidContract(0.5, 0.7, 0.0, 1.0, true, "test"));
}

TEST(CheckPid, FiresOnSaturationEscape)
{
    EXPECT_THROW(
        check::verifyPidContract(1.2, 0.7, 0.0, 1.0, true, "test"),
        PanicError);
    EXPECT_THROW(
        check::verifyPidContract(-0.1, 0.7, 0.0, 1.0, true, "test"),
        PanicError);
}

TEST(CheckPid, FiresOnIntegralWindupPastClamp)
{
    // With the conditional anti-windup active the integral term alone
    // must never exceed the actuator range (paper Section 3.3).
    EXPECT_THROW(
        check::verifyPidContract(1.0, 3.5, 0.0, 1.0, true, "test"),
        PanicError);
    // Without the clamp (AntiWindup::None) windup is expected behaviour.
    EXPECT_NO_THROW(
        check::verifyPidContract(1.0, 3.5, 0.0, 1.0, false, "test"));
}

TEST(CheckPid, FiresOnNonFiniteControllerState)
{
    EXPECT_THROW(
        check::verifyPidContract(kNan, 0.5, 0.0, 1.0, true, "test"),
        PanicError);
}

// --------------------------------------------------------- energy balance

TEST(CheckEnergy, BalancedAuditPasses)
{
    check::EnergyAudit audit;
    audit.setStoredBefore(100.0);
    audit.addInput(5.0);
    audit.addAmbientLoss(2.0);
    audit.setStoredAfter(103.0);
    EXPECT_NO_THROW(audit.verify("test"));
}

TEST(CheckEnergy, FiresOnMissingEnergy)
{
    check::EnergyAudit audit;
    audit.setStoredBefore(100.0);
    audit.addInput(5.0);
    audit.addAmbientLoss(2.0);
    audit.setStoredAfter(104.0); // 1 J appeared from nowhere
    EXPECT_THROW(audit.verify("test"), PanicError);
}

// ------------------------------------- instrumented library paths
// Compiled only when the build carries the instrumentation; the default
// build proves the invariant classes via the direct calls above.
#if THERMCTL_INVARIANTS_ENABLED

TEST(Instrumented, SimplifiedStepRejectsNanPower)
{
    Floorplan fp;
    SimplifiedRCModel model(fp, ThermalConfig{}, kDt);
    PowerVector p;
    p.value.fill(1.5);
    p[StructureId::Lsq] = kNan;
    EXPECT_THROW(model.step(p), PanicError);
}

TEST(Instrumented, StepScaledRejectsDestabilizingMultiplier)
{
    Floorplan fp;
    SimplifiedRCModel model(fp, ThermalConfig{}, kDt);
    PowerVector p;
    p.value.fill(1.5);
    EXPECT_NO_THROW(model.stepScaled(p, 4.0)); // V/f scaling range: fine
    EXPECT_THROW(model.stepScaled(p, 1e9), PanicError);
}

TEST(Instrumented, FullModelSpanAuditsEnergyBalance)
{
    Floorplan fp;
    FullRCModel model(fp, ThermalConfig{}, kDt);
    PowerVector p;
    p.value.fill(2.0);
    // A long span (heavily chunked) must close the energy balance.
    EXPECT_NO_THROW(model.stepSpan(p, 3'000'000));
    EXPECT_GT(model.temperatures().maxHotspot().value(),
              ThermalConfig{}.t_base.value());
}

TEST(Instrumented, PidUpdateContractHoldsUnderSaturation)
{
    PidConfig cfg;
    cfg.kp = 50.0;
    cfg.ki = 1e4;
    cfg.dt = 1e-6;
    cfg.setpoint = 111.6;
    cfg.out_min = 0.0;
    cfg.out_max = 1.0;
    cfg.integral_init = 1.0;
    PidController pid(cfg);
    // Drive deep into both saturation rails; the contract check runs on
    // every update.
    for (int i = 0; i < 1000; ++i)
        pid.update(130.0);
    EXPECT_DOUBLE_EQ(pid.output(), 0.0);
    for (int i = 0; i < 1000; ++i)
        pid.update(90.0);
    EXPECT_DOUBLE_EQ(pid.output(), 1.0);
}

TEST(Instrumented, EnabledFlagReportsOn)
{
    EXPECT_TRUE(check::instrumentationEnabled());
}

#endif // THERMCTL_INVARIANTS_ENABLED

} // namespace
