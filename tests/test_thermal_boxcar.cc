/**
 * @file
 * Tests for the boxcar power-average proxies (paper Section 6) and the
 * missed-emergency / false-trigger accounting of Tables 9 and 10.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "thermal/boxcar.hh"

namespace thermctl
{
namespace
{

TEST(StructureBoxcar, TriggerPowerFollowsThermalLaw)
{
    Floorplan fp;
    ThermalConfig cfg;
    StructureBoxcarProxy proxy(fp, cfg, 1000, cfg.t_emergency);
    for (StructureId id : kAllStructures) {
        const double expected = (cfg.t_emergency - cfg.t_base)
            / fp.block(id).resistance;
        EXPECT_NEAR(proxy.triggerPower(id), expected, 1e-12)
            << structureName(id);
    }
}

TEST(StructureBoxcar, TriggersOnSustainedPower)
{
    Floorplan fp;
    ThermalConfig cfg;
    StructureBoxcarProxy proxy(fp, cfg, 100, cfg.t_emergency);
    const double p_trig = proxy.triggerPower(StructureId::IntExec);

    PowerVector hot;
    hot[StructureId::IntExec] = 1.2 * p_trig;
    for (int i = 0; i < 100; ++i)
        proxy.add(hot);
    EXPECT_TRUE(proxy.triggered(StructureId::IntExec));
    EXPECT_FALSE(proxy.triggered(StructureId::FpExec));
}

TEST(StructureBoxcar, LargeWindowMissesShortBurst)
{
    // The paper's core criticism: a burst much shorter than the window
    // barely moves the average although the RC temperature spikes.
    Floorplan fp;
    ThermalConfig cfg;
    StructureBoxcarProxy proxy(fp, cfg, 500000, cfg.t_emergency);
    const double p_trig = proxy.triggerPower(StructureId::FpExec);

    PowerVector idle;
    PowerVector burst;
    burst[StructureId::FpExec] = 3.0 * p_trig;
    for (int i = 0; i < 400000; ++i)
        proxy.add(idle);
    for (int i = 0; i < 20000; ++i) // intense but short burst
        proxy.add(burst);
    EXPECT_FALSE(proxy.triggered(StructureId::FpExec));
    EXPECT_LT(proxy.averagePower(StructureId::FpExec), p_trig);
}

TEST(StructureBoxcar, RejectsZeroWindow)
{
    Floorplan fp;
    ThermalConfig cfg;
    EXPECT_THROW(StructureBoxcarProxy(fp, cfg, 0, cfg.t_emergency),
                 FatalError);
}

TEST(ChipBoxcar, FixedWattageTrigger)
{
    ChipBoxcarProxy proxy(10, 47.0);
    for (int i = 0; i < 10; ++i)
        proxy.add(40.0);
    EXPECT_FALSE(proxy.triggered());
    for (int i = 0; i < 10; ++i)
        proxy.add(50.0);
    EXPECT_TRUE(proxy.triggered());
    EXPECT_DOUBLE_EQ(proxy.triggerWatts(), 47.0);
}

TEST(ChipBoxcar, RejectsNonPositiveTrigger)
{
    EXPECT_THROW(ChipBoxcarProxy(10, 0.0), FatalError);
}

TEST(ProxyComparison, CountsAllFourOutcomes)
{
    ProxyComparison cmp;
    cmp.record(true, true);   // agree hot
    cmp.record(true, false);  // missed
    cmp.record(false, true);  // false trigger
    cmp.record(false, false); // agree cool
    EXPECT_EQ(cmp.cycles, 4u);
    EXPECT_EQ(cmp.reference_emergencies, 2u);
    EXPECT_EQ(cmp.proxy_triggers, 2u);
    EXPECT_EQ(cmp.missed, 1u);
    EXPECT_EQ(cmp.false_triggers, 1u);
    EXPECT_DOUBLE_EQ(cmp.missRate(), 0.5);
    EXPECT_DOUBLE_EQ(cmp.falseTriggerRate(), 0.25);
}

TEST(ProxyComparison, EmptyRatesAreZero)
{
    ProxyComparison cmp;
    EXPECT_DOUBLE_EQ(cmp.missRate(), 0.0);
    EXPECT_DOUBLE_EQ(cmp.falseTriggerRate(), 0.0);
}

TEST(ProxyComparison, BoxcarVsRcOnBurstyTrace)
{
    // End-to-end miniature of the paper's Table 9 experiment: a bursty
    // power trace evaluated by the RC model (reference) and a 10 K-cycle
    // boxcar proxy. The proxy must miss a substantial share of the RC
    // model's emergency cycles.
    Floorplan fp;
    ThermalConfig cfg;
    const double dt = 1.0 / 1.5e9;
    SimplifiedRCModel rc(fp, cfg, dt);
    StructureBoxcarProxy proxy(fp, cfg, 10000, cfg.t_emergency);
    ProxyComparison cmp;

    const auto id = StructureId::IntExec;
    const double p_trig = proxy.triggerPower(id);
    // Pre-heat near the threshold so bursts cross quickly.
    PowerVector warm;
    warm[id] = 0.95 * p_trig;
    rc.warmStart(warm);

    std::uint64_t t = 0;
    for (int burst = 0; burst < 5; ++burst) {
        for (int i = 0; i < 60000; ++i, ++t) {
            PowerVector p;
            p[id] = (i < 30000) ? 1.3 * p_trig : 0.6 * p_trig;
            rc.step(p);
            proxy.add(p);
            cmp.record(rc.temperatures()[id] > cfg.t_emergency,
                       proxy.triggered(id));
        }
    }
    EXPECT_GT(cmp.reference_emergencies, 10000u);
    EXPECT_GT(cmp.missed, 0u);
    EXPECT_GT(cmp.missRate(), 0.05);
}

} // namespace
} // namespace thermctl
