/**
 * @file
 * Tests for the error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace thermctl
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
    try {
        fatal("value was ", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value was 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, QuietModeToggles)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("this should not appear");
    inform("nor this");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

} // namespace
} // namespace thermctl
