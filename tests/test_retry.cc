/**
 * @file
 * Tests for the client retry/backoff policy (serve/retry.hh): the
 * backoff sequence is deterministic per seed, sleeps respect base/cap
 * and the decorrelated-jitter growth bound, the server retry-after hint
 * floors the sleep, and an exhausted deadline budget answers
 * immediately — no final pointless sleep. RetryingClient end-to-end
 * behaviour against an unreachable server is covered here; behaviour
 * under live injected faults is the chaos harness's job (tests/chaos).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/retry.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

/** Drain a policy: every granted sleep until it refuses. */
std::vector<std::uint32_t>
drainSleeps(const BackoffConfig &config, std::uint32_t hint = 0)
{
    BackoffPolicy policy(config);
    std::vector<std::uint32_t> sleeps;
    for (;;) {
        const auto d = policy.next(/*elapsed_ms=*/0, hint);
        if (!d.retry)
            break;
        sleeps.push_back(d.sleep_ms);
    }
    return sleeps;
}

/**
 * A TCP listener whose accept backlog is pre-filled and never drained:
 * further connects stay pending until the dialer's own timeout fires.
 * Reproduces a worker whose accept queue hung (flapping restart, SYN
 * backlog full) without any server code.
 */
struct HungListener
{
    int fd = -1;
    int port = 0;
    std::vector<int> fillers;

    HungListener()
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
                != 0
            || ::listen(fd, /*backlog=*/1) != 0)
            return;
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len)
            != 0)
            return;
        port = ntohs(addr.sin_port);

        // Fill the accept backlog so further connects stay pending.
        for (int i = 0; i < 4; ++i) {
            const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (cfd < 0)
                continue;
            const int flags = ::fcntl(cfd, F_GETFL, 0);
            ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
            (void)::connect(cfd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr));
            fillers.push_back(cfd);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    ~HungListener()
    {
        for (int cfd : fillers)
            ::close(cfd);
        if (fd >= 0)
            ::close(fd);
    }

    std::string
    endpoint() const
    {
        return "tcp:127.0.0.1:" + std::to_string(port);
    }
};

} // namespace

TEST(BackoffPolicy, DeterministicPerSeedAndDivergentAcrossSeeds)
{
    BackoffConfig config;
    config.max_attempts = 8;

    const auto a = drainSleeps(config);
    const auto b = drainSleeps(config);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 7u); // max_attempts - 1 retries granted

    BackoffConfig other = config;
    other.seed = config.seed + 1;
    EXPECT_NE(drainSleeps(other), a);
}

TEST(BackoffPolicy, SleepsRespectBaseCapAndGrowthBound)
{
    BackoffConfig config;
    config.base_ms = 50;
    config.cap_ms = 400;
    config.max_attempts = 32;

    std::uint32_t prev = 0;
    for (std::uint32_t sleep : drainSleeps(config)) {
        EXPECT_GE(sleep, config.base_ms);
        EXPECT_LE(sleep, config.cap_ms);
        // Decorrelated jitter: each sleep < 3 * previous (first draw
        // is bounded by 3 * base).
        const std::uint32_t bound = prev > 0 ? prev : config.base_ms;
        EXPECT_LT(sleep, std::max(bound * 3, config.base_ms + 1));
        prev = sleep;
    }
}

TEST(BackoffPolicy, ServerHintFloorsSleepButCapStillWins)
{
    BackoffConfig config;
    config.base_ms = 10;
    config.cap_ms = 500;
    config.max_attempts = 6;

    // Every sleep must be at least the server's retry-after hint.
    for (std::uint32_t sleep : drainSleeps(config, /*hint=*/200))
        EXPECT_GE(sleep, 200u);

    // ... unless the hint exceeds the cap; then the cap wins.
    for (std::uint32_t sleep : drainSleeps(config, /*hint=*/9000))
        EXPECT_EQ(sleep, config.cap_ms);
}

TEST(BackoffPolicy, MaxAttemptsOneMeansNoRetries)
{
    BackoffConfig config;
    config.max_attempts = 1;
    BackoffPolicy policy(config);
    const auto d = policy.next(0);
    EXPECT_FALSE(d.retry);
    EXPECT_EQ(d.sleep_ms, 0u);
    EXPECT_EQ(policy.attempts(), 1u);

    // max_attempts=0 is treated as 1, not as unlimited.
    config.max_attempts = 0;
    BackoffPolicy zero(config);
    EXPECT_FALSE(zero.next(0).retry);
}

TEST(BackoffPolicy, DeadlineExhaustionRefusesWithoutFinalSleep)
{
    BackoffConfig config;
    config.base_ms = 100;
    config.cap_ms = 100; // deterministic sleep of exactly 100
    config.max_attempts = 100;
    config.deadline_ms = 450;

    BackoffPolicy policy(config);
    std::uint64_t elapsed = 0;
    int granted = 0;
    for (;;) {
        const auto d = policy.next(elapsed);
        if (!d.retry) {
            // Refusal must be immediate: a sleep that would land on or
            // past the deadline is never handed out.
            EXPECT_EQ(d.sleep_ms, 0u);
            break;
        }
        EXPECT_LT(elapsed + d.sleep_ms, config.deadline_ms);
        elapsed += d.sleep_ms;
        ++granted;
    }
    // 100ms sleeps under a 450ms budget: granted at 100, 200, 300;
    // the 4th (elapsed 300 + 100 >= 450? no, 400 < 450) — granted;
    // the 5th (500 >= 450) refused. So exactly 4 grants.
    EXPECT_EQ(granted, 4);
}

TEST(BackoffPolicy, ElapsedTimeAloneExhaustsBudget)
{
    BackoffConfig config;
    config.deadline_ms = 50;
    config.max_attempts = 10;
    BackoffPolicy policy(config);
    // The attempt itself burned the whole budget: no retry, no sleep.
    const auto d = policy.next(/*elapsed_ms=*/60);
    EXPECT_FALSE(d.retry);
    EXPECT_EQ(d.sleep_ms, 0u);
}

// ------------------------------------------------------ RetryingClient

TEST(RetryingClient, NoRetriesSurfacesTypedTransportError)
{
    // max_attempts=1 must behave exactly like the plain client: the
    // typed Transport error comes back unchanged, not wrapped.
    BackoffConfig config;
    config.max_attempts = 1;
    RetryingClient client("unix:/nonexistent/thermctl-test.sock", config);

    RunRequest req;
    req.point.benchmark = "186.crafty";
    req.point.policy = "none";
    const PointReply reply = client.run(req);
    EXPECT_EQ(reply.error, ServeError::Transport);
    EXPECT_EQ(client.attemptsTotal(), 1u);
}

TEST(RetryingClient, ExhaustedRetriesWrapInDeadlineExceeded)
{
    BackoffConfig config;
    config.base_ms = 1;
    config.cap_ms = 2;
    config.max_attempts = 3;
    RetryingClient client("unix:/nonexistent/thermctl-test.sock", config);

    RunRequest req;
    req.point.benchmark = "186.crafty";
    req.point.policy = "none";
    const PointReply reply = client.run(req);
    EXPECT_EQ(reply.error, ServeError::DeadlineExceeded);
    EXPECT_NE(reply.message.find("transport"), std::string::npos);
    EXPECT_EQ(client.attemptsTotal(), 3u);

    // A sweep against a dead server retries as a unit and reports the
    // same exhaustion shape: one typed point.
    SweepRequest sweep;
    sweep.benchmarks = {"186.crafty"};
    sweep.policies = {"none"};
    const SweepReply sr = client.sweep(sweep);
    ASSERT_EQ(sr.points.size(), 1u);
    EXPECT_EQ(sr.points[0].error, ServeError::DeadlineExceeded);
    EXPECT_EQ(client.attemptsTotal(), 6u);
}

TEST(RetryingClient, DeadlineBudgetBoundsTotalWallTime)
{
    BackoffConfig config;
    config.base_ms = 20;
    config.cap_ms = 40;
    config.max_attempts = 1000;
    config.deadline_ms = 120;
    RetryingClient client("unix:/nonexistent/thermctl-test.sock", config);

    RunRequest req;
    req.point.benchmark = "186.crafty";
    req.point.policy = "none";
    const auto started = std::chrono::steady_clock::now();
    const PointReply reply = client.run(req);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    EXPECT_EQ(reply.error, ServeError::DeadlineExceeded);
    // Budget 120ms + one last (sleepless) attempt; give generous slack
    // for slow CI but catch unbounded retrying outright.
    EXPECT_LT(wall.count(), 2000);
    EXPECT_GT(client.attemptsTotal(), 1u);
}

TEST(RetryingClient, ReconnectTimeIsChargedAgainstTheDeadline)
{
    // Regression: ensureConnected() used to dial with an unbounded
    // blocking connect, and the deadline was only consulted *after*
    // each attempt — a worker whose accept queue hung could stretch
    // one request far past its budget. Demand the deadline holds.
    HungListener listener;
    ASSERT_GT(listener.port, 0);

    BackoffConfig config;
    config.base_ms = 10;
    config.cap_ms = 20;
    config.max_attempts = 1000;
    config.deadline_ms = 300;
    config.connect_timeout_ms = 100; // each dial bounded well below
    RetryingClient client(listener.endpoint(), config);

    RunRequest req;
    req.point.benchmark = "186.crafty";
    req.point.policy = "none";
    const auto started = std::chrono::steady_clock::now();
    const PointReply reply = client.run(req);
    const auto wall =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started);

    // Typed failure, and the whole call (connect hangs included) fits
    // the budget with slack — not one unbounded connect per retry.
    EXPECT_TRUE(reply.error == ServeError::DeadlineExceeded
                || reply.error == ServeError::Transport)
        << serveErrorName(reply.error);
    EXPECT_LT(wall.count(), 3000);
    EXPECT_GT(client.attemptsTotal(), 1u);
}

TEST(RetryingClient, DialTimeoutIsCappedByRemainingDeadline)
{
    // A connect_timeout_ms far above the deadline must not win: the
    // dial is bounded by min(connect_timeout, remaining budget), so a
    // 100ms deadline caps a nominal 5-second dial at ~100ms.
    HungListener listener;
    ASSERT_GT(listener.port, 0);

    BackoffConfig config;
    config.max_attempts = 1;
    config.deadline_ms = 100;
    config.connect_timeout_ms = 5000;
    RetryingClient client(listener.endpoint(), config);

    RunRequest req;
    req.point.benchmark = "186.crafty";
    req.point.policy = "none";
    const auto started = std::chrono::steady_clock::now();
    const PointReply reply = client.run(req);
    const auto wall =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started);
    EXPECT_EQ(reply.error, ServeError::Transport);
    EXPECT_NE(reply.message.find("timed out"), std::string::npos)
        << reply.message;
    // Far below the nominal 5s connect timeout; generous CI slack.
    EXPECT_LT(wall.count(), 2000);
}
