/**
 * @file
 * Tests for the lumped thermal-RC models: the paper's Eq. 5 difference
 * equation vs. the closed-form exponential, steady states, warm starts,
 * the full tangential network, and the chip-level model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{
namespace
{

constexpr double kDt = 1.0 / 1.5e9; // one 1.5 GHz cycle

PowerVector
uniformPower(double watts)
{
    PowerVector p;
    p.value.fill(watts);
    return p;
}

TEST(SimplifiedRC, StartsAtBaseTemperature)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    for (double t : model.temperatures().value)
        EXPECT_DOUBLE_EQ(t, cfg.t_base);
}

TEST(SimplifiedRC, HeatsTowardSteadyState)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    const PowerVector p = uniformPower(2.0);
    // Step well past several time constants using the exact update.
    model.stepExact(p, 5'000'000); // ~3.3 ms >> all block RCs
    for (StructureId id : kAllStructures) {
        EXPECT_NEAR(model.temperatures()[id], model.steadyState(id, 2.0),
                    1e-6)
            << structureName(id);
    }
}

TEST(SimplifiedRC, SteadyStateIsBasePlusPR)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    const double r = fp.block(StructureId::Lsq).resistance;
    EXPECT_NEAR(model.steadyState(StructureId::Lsq, 3.0),
                cfg.t_base + 3.0 * r, 1e-12);
}

/** Property: Euler per-cycle integration tracks the exact solution. */
class EulerVsExact : public ::testing::TestWithParam<double>
{
};

TEST_P(EulerVsExact, AgreeOverOneTimeConstant)
{
    const double watts = GetParam();
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel euler(fp, cfg, kDt);
    SimplifiedRCModel exact(fp, cfg, kDt);
    const PowerVector p = uniformPower(watts);

    const std::uint64_t chunk = 10000;
    for (int i = 0; i < 20; ++i) {
        for (std::uint64_t c = 0; c < chunk; ++c)
            euler.step(p);
        exact.stepExact(p, chunk);
        for (StructureId id : kAllStructures) {
            ASSERT_NEAR(euler.temperatures()[id],
                        exact.temperatures()[id], 5e-5)
                << structureName(id) << " at " << watts << " W";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PowerLevels, EulerVsExact,
                         ::testing::Values(0.0, 0.5, 2.0, 8.0));

TEST(SimplifiedRC, CoolsExponentially)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    model.setUniform(cfg.t_base + 4.0);
    const auto &blk = fp.block(StructureId::Window);
    // After exactly one RC with zero power the excess decays to 1/e.
    const auto cycles = static_cast<std::uint64_t>(blk.rc() / kDt);
    model.stepExact(uniformPower(0.0), cycles);
    const double excess =
        model.temperatures()[StructureId::Window] - cfg.t_base;
    EXPECT_NEAR(excess, 4.0 / M_E, 0.01);
}

TEST(SimplifiedRC, WarmStartJumpsToSteadyState)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    PowerVector p;
    p[StructureId::FpExec] = 3.0;
    model.warmStart(p);
    EXPECT_NEAR(model.temperatures()[StructureId::FpExec],
                model.steadyState(StructureId::FpExec, 3.0), 1e-12);
    EXPECT_NEAR(model.temperatures()[StructureId::Lsq], cfg.t_base,
                1e-12);
}

TEST(SimplifiedRC, HottestAndMaxHotspotHelpers)
{
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel model(fp, cfg, kDt);
    PowerVector p;
    p[StructureId::Bpred] = 2.0;
    // RestOfChip heat must not be reported as a hot-spot.
    p[StructureId::RestOfChip] = 50.0;
    model.warmStart(p);
    EXPECT_EQ(model.temperatures().hottest(), StructureId::Bpred);
    EXPECT_NEAR(model.temperatures().maxHotspot(),
                model.steadyState(StructureId::Bpred, 2.0), 1e-12);
}

TEST(SimplifiedRC, RejectsUnstableTimestep)
{
    Floorplan fp;
    ThermalConfig cfg;
    EXPECT_THROW(SimplifiedRCModel(fp, cfg, 1.0), FatalError);
    EXPECT_THROW(SimplifiedRCModel(fp, cfg, 0.0), FatalError);
}

// ------------------------------------------------------------ FullRCModel

TEST(FullRC, MatchesSimplifiedWhenIsolated)
{
    // With tangential coupling present but all blocks at the same
    // temperature, the full model's steady state for a single heated
    // block is close to (slightly below) the simplified model's: the
    // lateral paths only bleed a little heat because R_tan >> R_norm.
    Floorplan fp;
    ThermalConfig cfg;
    SimplifiedRCModel simple(fp, cfg, kDt);
    FullRCModel full(fp, cfg, kDt);

    PowerVector p;
    p[StructureId::IntExec] = 3.0;
    simple.stepExact(p, 3'000'000);
    full.stepSpan(p, 3'000'000);

    const double t_simple = simple.temperatures()[StructureId::IntExec];
    const double t_full = full.temperatures()[StructureId::IntExec];
    EXPECT_LT(t_full, t_simple + 1e-9);
    EXPECT_NEAR(t_full, t_simple, 0.15 * (t_simple - cfg.t_base));
}

TEST(FullRC, NeighboursWarmSlightly)
{
    Floorplan fp;
    ThermalConfig cfg;
    FullRCModel full(fp, cfg, kDt);
    PowerVector p;
    p[StructureId::DCache] = 5.0;
    full.stepSpan(p, 3'000'000);
    // The LSQ (adjacent) picks up some lateral heat; far blocks less.
    const double lsq = full.temperatures()[StructureId::Lsq];
    const double bpred = full.temperatures()[StructureId::Bpred];
    EXPECT_GT(lsq, cfg.t_base);
    EXPECT_GT(lsq, bpred);
}

TEST(FullRC, HeatsinkMovesOnlySlowly)
{
    Floorplan fp;
    ThermalConfig cfg;
    FullRCModel full(fp, cfg, kDt);
    const double t0 = full.heatsinkTemperature();
    full.stepSpan(uniformPower(5.0), 1'000'000); // ~0.7 ms
    // Block temperatures move by degrees; the heatsink by millidegrees.
    EXPECT_LT(std::abs(full.heatsinkTemperature() - t0), 0.05);
    EXPECT_GT(full.temperatures()[StructureId::Lsq], cfg.t_base + 1.0);
}

// --------------------------------------------------------- ChipLevelModel

TEST(ChipLevel, TimeConstantIsSeconds)
{
    FloorplanConfig cfg;
    ChipLevelModel chip(cfg, 70.0, kDt);
    EXPECT_NEAR(chip.timeConstant(), 0.34 * 60.0, 1e-9);
}

TEST(ChipLevel, SteadyStateFromAmbient)
{
    FloorplanConfig cfg;
    ChipLevelModel chip(cfg, cfg.ambient, kDt);
    // Exact update across many chip time constants.
    chip.stepExact(25.0, static_cast<std::uint64_t>(200.0 / kDt));
    EXPECT_NEAR(chip.temperature(), cfg.ambient + 25.0 * 0.34, 0.01);
}

TEST(ChipLevel, BarelyMovesWithinABlockTimescale)
{
    // The paper's core observation: localized heating is orders of
    // magnitude faster than chip-wide heating.
    FloorplanConfig cfg;
    ChipLevelModel chip(cfg, 70.0, kDt);
    chip.stepExact(50.0, 1'000'000); // ~0.7 ms of full-bore power
    EXPECT_LT(std::abs(chip.temperature() - 70.0), 0.01);
}

TEST(ChipLevel, RejectsBadConfig)
{
    FloorplanConfig cfg;
    cfg.chip_capacitance = 0.0;
    EXPECT_THROW(ChipLevelModel(cfg, 27.0, kDt), FatalError);
}

} // namespace
} // namespace thermctl
