/**
 * @file
 * Tests for the deterministic PRNG: reproducibility, stream separation,
 * and distribution sanity.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"

namespace thermctl
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkDivergesByTag)
{
    Rng parent(77);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng p1(55), p2(55);
    Rng a = p1.fork(9);
    Rng b = p2.fork(9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.range(2, 1), PanicError);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng rng(8);
    for (double p : {0.1, 0.35, 0.8}) {
        double sum = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.geometric(p));
        const double expected = (1.0 - p) / p;
        EXPECT_NEAR(sum / n, expected, 0.05 * (expected + 1.0))
            << "p=" << p;
    }
    EXPECT_EQ(rng.geometric(1.0), 0u);
    EXPECT_THROW(rng.geometric(0.0), PanicError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(9);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(2.0, 3.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, WeightedFollowsWeights)
{
    Rng rng(10);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.25, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.75, 0.01);
    EXPECT_THROW(rng.weighted({0.0, 0.0}), PanicError);
    EXPECT_THROW(rng.weighted({-1.0, 2.0}), PanicError);
}

} // namespace
} // namespace thermctl
