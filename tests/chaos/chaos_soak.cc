/**
 * @file
 * Chaos soak harness for thermctl-serve under deterministic fault
 * injection (src/fault). It arms a seeded FaultPlan across the
 * transport, scheduler, and cache layers, drives an in-process server
 * with concurrent retrying clients, and asserts the resilience
 * invariant end to end:
 *
 *   every admitted request yields exactly one reply that is either
 *   bit-identical to a fault-free run of the same spec or a typed
 *   ServeError — never a hang, never silent corruption.
 *
 * After the soak it disarms the plan and re-verifies every point
 * through the same server, proving the stack (including the on-disk
 * cache, which saw torn publishes) healed rather than wedged.
 *
 * Failures print the seed so the exact fault sequence replays:
 *
 *   chaos_soak --seed=N [--clients=N] [--requests=N] [--plan=SPEC]
 *              [--max-wall=SECONDS]
 *
 * --cluster switches to the distributed soak: a coordinator shards a
 * sweep grid across several worker *processes* while a seeded
 * supervisor SIGKILLs one mid-sweep and respawns it, and one worker
 * runs under a stall-injecting fault plan. The invariant hardens to:
 * the merged report is complete and every point is bit-identical to a
 * single-process fault-free run, the injected crash was actually
 * observed, and every surviving worker drains cleanly on SIGTERM.
 *
 *   chaos_soak --cluster [--seed=N] [--workers=N] [--max-wall=SECONDS]
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "fault/fault.hh"
#include "multicore/multicore_sim.hh"
#include "serve/client.hh"
#include "serve/connect.hh"
#include "serve/coordinator.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/policy_factory.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

struct SoakFlags
{
    std::uint64_t seed = 1;
    int clients = 4;
    int requests = 16; ///< per client
    int max_wall_s = 240;
    std::string plan;    ///< empty = built-in plan derived from seed
    bool cluster = false; ///< distributed soak (see runCluster)
    int workers = 3;      ///< worker processes in cluster mode
};

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

SoakFlags
parseFlags(int argc, char **argv)
{
    SoakFlags flags;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (flagValue(argv[i], "--seed", value))
            flags.seed = std::strtoull(value.c_str(), nullptr, 10);
        else if (flagValue(argv[i], "--clients", value))
            flags.clients = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--requests", value))
            flags.requests = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--max-wall", value))
            flags.max_wall_s = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--plan", value))
            flags.plan = value;
        else if (flagValue(argv[i], "--workers", value))
            flags.workers = std::atoi(value.c_str());
        else if (std::strcmp(argv[i], "--cluster") == 0)
            flags.cluster = true;
        else
            fatal("chaos_soak: unknown flag '", argv[i],
                  "' (want --seed/--clients/--requests/--plan/--max-wall/"
                  "--cluster/--workers)");
    }
    if (flags.clients < 1 || flags.requests < 1 || flags.max_wall_s < 1)
        fatal("chaos_soak: --clients/--requests/--max-wall must be >= 1");
    if (flags.cluster && flags.workers < 2)
        fatal("chaos_soak: --cluster needs --workers >= 2");
    return flags;
}

/**
 * The built-in plan covers every injectable layer: short and aborted
 * socket I/O on both sides, EINTR storms, dropped accepts, scheduler
 * stalls (including two long enough to trip the watchdog), torn cache
 * publishes, and cache-load failures. Rates are tuned so a small soak
 * sees every site fire while most requests still succeed.
 */
std::string
builtinPlan(std::uint64_t seed)
{
    return "seed=" + std::to_string(seed)
           + ";serve.sock.write=short@0.2"
             ";serve.sock.write=abort@0.04"
             ";serve.sock.read=eintr@0.1"
             ";serve.sock.read=abort@0.04"
             ";serve.accept=abort@0.1:max=3"
             ";sched.batch=stall@0.2:ms=30"
             ";sched.batch=stall@0.04:ms=1500:max=2"
             ";cache.publish=torn@0.3"
             ";cache.load=abort@0.1";
}

/** The point grid the soak requests (small enough to precompute). */
struct SoakPoint
{
    std::string benchmark;
    std::string policy;
    std::uint32_t num_cores = 0; ///< 0 = server default (single core)
    std::string expected;        ///< serialized fault-free RunResult
};

constexpr std::uint64_t kWarmup = 1000;
constexpr std::uint64_t kMeasure = 10000;

std::vector<SoakPoint>
precomputeExpected()
{
    RunProtocol proto;
    proto.warmup_cycles = kWarmup;
    proto.measure_cycles = kMeasure;
    const ExperimentRunner runner(proto);

    std::vector<SoakPoint> points;
    for (const char *bench : {"186.crafty", "179.art"}) {
        for (const char *policy : {"none", "PI", "PID"}) {
            SimConfig cfg;
            if (!parseDtmPolicyKind(policy, cfg.policy.kind))
                fatal("chaos_soak: unknown policy ", policy);
            const RunResult result =
                runner.runOne(specProfile(bench), cfg.policy, cfg);
            points.push_back(
                {bench, policy, 0, serializeRunResult(result)});
        }
    }

    // Multicore points so the soak covers the wire-v3 knobs and the
    // multicore engine backend end to end (faulted transport, cache,
    // scheduler). Direct runs dispatch through the same backend the
    // server uses.
    multicore::ensureBackendRegistered();
    for (const char *policy : {"percore-PID", "adj-integral"}) {
        SimConfig cfg;
        if (!parseDtmPolicyKind(policy, cfg.policy.kind))
            fatal("chaos_soak: unknown policy ", policy);
        cfg.multicore.num_cores = 2;
        const RunResult result =
            runner.runOne(specProfile("186.crafty"), cfg.policy, cfg);
        points.push_back(
            {"186.crafty", policy, 2, serializeRunResult(result)});
    }
    return points;
}

struct ClientTally
{
    std::uint64_t ok = 0;          ///< bit-identical result replies
    std::uint64_t typed_errors = 0;
    std::uint64_t mismatches = 0;  ///< the invariant violation
    std::map<int, std::uint64_t> by_error;
};

ClientTally
runClient(const std::string &endpoint, const SoakFlags &flags,
          int client_id, const std::vector<SoakPoint> &points)
{
    BackoffConfig backoff;
    backoff.base_ms = 5;
    backoff.cap_ms = 100;
    backoff.max_attempts = 6;
    backoff.deadline_ms = 20000;
    backoff.seed = Rng(flags.seed).fork(0x10000u + unsigned(client_id))
                       .next();
    ClientOptions copts;
    copts.endpoint = endpoint;
    copts.retry = true;
    copts.backoff = backoff;
    const std::unique_ptr<Client> client = serve::connect(copts);

    Rng pick(Rng(flags.seed).fork(unsigned(client_id)).next());
    ClientTally tally;
    for (int i = 0; i < flags.requests; ++i) {
        const SoakPoint &point =
            points[pick.below(std::uint64_t(points.size()))];
        RunRequest req;
        req.point.benchmark = point.benchmark;
        req.point.policy = point.policy;
        req.point.num_cores = point.num_cores;
        req.point.warmup_cycles = kWarmup;
        req.point.measure_cycles = kMeasure;
        const PointReply reply = client->run(req);
        if (reply.error == ServeError::None) {
            if (serializeRunResult(reply.result) == point.expected) {
                tally.ok++;
            } else {
                tally.mismatches++;
                std::fprintf(stderr,
                             "MISMATCH client %d req %d %s/%s: reply "
                             "differs from fault-free run\n",
                             client_id, i, point.benchmark.c_str(),
                             point.policy.c_str());
            }
        } else {
            tally.typed_errors++;
            tally.by_error[int(reply.error)]++;
        }
    }
    return tally;
}

// ------------------------------------------------------------ cluster

volatile sig_atomic_t g_worker_term = 0;

void
onWorkerTerm(int)
{
    g_worker_term = 1;
}

/**
 * A worker process: one thermctl-serve instance on a Unix socket,
 * draining cleanly on SIGTERM (exit 0) and dying instantly on SIGKILL
 * like any crashed daemon. One designated worker arms a stall plan so
 * the coordinator sees a chronically slow node, not just a dead one.
 */
[[noreturn]] void
runWorkerProcess(const std::string &socket_path, std::uint64_t seed,
                 bool stall)
{
    struct sigaction sa = {};
    sa.sa_handler = onWorkerTerm;
    ::sigaction(SIGTERM, &sa, nullptr);

    if (stall) {
        fault::FaultInjector::instance().arm(fault::FaultPlan::parse(
            "seed=" + std::to_string(seed)
            + ";sched.batch=stall@0.3:ms=300"));
    }

    ServerOptions opts;
    opts.unix_path = socket_path;
    opts.sweep.use_cache = false;
    opts.sweep.jobs = 2;
    opts.dispatchers = 1;
    opts.workers = 4;
    opts.watchdog_ms = 200;
    opts.drain_flush_ms = 200;
    Server server(opts);
    server.start();
    while (!g_worker_term)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.beginDrain();
    server.shutdown();
    std::_Exit(0);
}

/**
 * The supervisor process (single-threaded, forked before the parent
 * spawns any threads — fork()+threads don't mix under ASan). It forks
 * the workers, then runs a seeded fault schedule synchronized to the
 * sweep via a one-byte command pipe: on 'S' it SIGKILLs a seeded
 * victim mid-sweep, respawns it after a seeded downtime, and on 'Q'
 * (or parent death = EOF) SIGTERMs every survivor and reports how many
 * failed to drain cleanly on the status pipe.
 */
[[noreturn]] void
runSupervisor(const std::vector<std::string> &sockets,
              std::uint64_t seed, int cmd_fd, int status_fd)
{
    const int n = static_cast<int>(sockets.size());
    Rng rng(seed);
    const int victim = static_cast<int>(rng.below(std::uint64_t(n)));
    const int stall_worker = (victim + 1) % n;
    const unsigned kill_delay_ms = 30 + unsigned(rng.below(120));
    const unsigned down_ms = 150 + unsigned(rng.below(350));

    std::vector<pid_t> pids(std::size_t(n), -1);
    const auto spawn = [&](int i) {
        const pid_t pid = ::fork();
        if (pid == 0)
            runWorkerProcess(sockets[std::size_t(i)],
                             seed + std::uint64_t(i),
                             i == stall_worker);
        pids[std::size_t(i)] = pid;
    };
    for (int i = 0; i < n; ++i)
        spawn(i);
    std::fprintf(stderr,
                 "cluster supervisor: %d workers up; victim %d, "
                 "staller %d, kill at +%u ms, down %u ms\n",
                 n, victim, stall_worker, kill_delay_ms, down_ms);

    char cmd = 0;
    if (::read(cmd_fd, &cmd, 1) == 1 && cmd == 'S') {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kill_delay_ms));
        std::fprintf(stderr,
                     "cluster supervisor: SIGKILL worker %d (%s)\n",
                     victim, sockets[std::size_t(victim)].c_str());
        ::kill(pids[std::size_t(victim)], SIGKILL);
        ::waitpid(pids[std::size_t(victim)], nullptr, 0);
        pids[std::size_t(victim)] = -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(down_ms));
        std::fprintf(stderr,
                     "cluster supervisor: respawning worker %d\n",
                     victim);
        spawn(victim);
        (void)::read(cmd_fd, &cmd, 1); // 'Q' or EOF: tear down
    }

    unsigned char unclean = 0;
    for (int i = 0; i < n; ++i) {
        const pid_t pid = pids[std::size_t(i)];
        if (pid < 0)
            continue;
        ::kill(pid, SIGTERM);
        // Bounded reap: a worker that ignores SIGTERM is a drain bug.
        int status = 0;
        bool reaped = false;
        for (int t = 0; t < 500 && !reaped; ++t) {
            if (::waitpid(pid, &status, WNOHANG) == pid)
                reaped = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (!reaped) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
        }
        if (!reaped || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "cluster supervisor: worker %d did not drain "
                         "cleanly (status %d)\n",
                         i, status);
            unclean++;
        }
    }
    (void)::write(status_fd, &unclean, 1);
    std::_Exit(0);
}

/** Expected bytes per key for the cluster grid, fault-free. */
std::map<std::string, std::string>
clusterExpected(const SweepRequest &grid)
{
    RunProtocol proto;
    proto.warmup_cycles = grid.warmup_cycles;
    proto.measure_cycles = grid.measure_cycles;
    const ExperimentRunner runner(proto);
    std::map<std::string, std::string> expected;
    for (const auto &bench : grid.benchmarks) {
        for (const auto &policy : grid.policies) {
            SimConfig cfg;
            if (!parseDtmPolicyKind(policy, cfg.policy.kind))
                fatal("chaos_soak: unknown policy ", policy);
            const RunResult result =
                runner.runOne(specProfile(bench), cfg.policy, cfg);
            expected[bench + "/" + policy] = serializeRunResult(result);
        }
    }
    return expected;
}

/**
 * The distributed soak. Fork order matters: the supervisor (and
 * through it every worker) forks while this process is still
 * single-threaded; only then do the watchdog thread and the
 * coordinator's agents start.
 */
int
runCluster(const SoakFlags &flags)
{
    int cmd_pipe[2];
    int status_pipe[2];
    if (::pipe(cmd_pipe) != 0 || ::pipe(status_pipe) != 0)
        fatal("chaos_soak: pipe() failed");

    std::vector<std::string> sockets;
    for (int i = 0; i < flags.workers; ++i)
        sockets.push_back("/tmp/tchaos-cl-" + std::to_string(::getpid())
                          + "-" + std::to_string(i) + ".sock");

    const pid_t sup = ::fork();
    if (sup == 0) {
        ::close(cmd_pipe[1]);
        ::close(status_pipe[0]);
        runSupervisor(sockets, flags.seed, cmd_pipe[0], status_pipe[1]);
    }
    if (sup < 0)
        fatal("chaos_soak: fork() failed");
    ::close(cmd_pipe[0]);
    ::close(status_pipe[1]);

    // Hang watchdog. On _Exit the command pipe closes, the supervisor
    // reads EOF and tears the workers down itself — no orphans.
    std::atomic<bool> done{false};
    std::thread hang_guard([&done, &flags] {
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(flags.max_wall_s);
        while (!done.load()) {
            if (std::chrono::steady_clock::now() >= deadline) {
                std::fprintf(stderr,
                             "HANG: cluster soak exceeded %d s (replay "
                             "with --cluster --seed=%llu)\n",
                             flags.max_wall_s,
                             static_cast<unsigned long long>(flags.seed));
                std::_Exit(2);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });

    // Wait until every worker answers a ping.
    for (const std::string &sock : sockets) {
        bool up = false;
        for (int t = 0; t < 500 && !up; ++t) {
            std::string err;
            ServeClient probe =
                ServeClient::tryConnect("unix:" + sock, 200, err);
            if (probe.connected()) {
                PingReply pong;
                up = probe.ping(pong, err);
            }
            if (!up)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
        }
        if (!up)
            fatal("chaos_soak: worker ", sock, " never came up");
    }

    SweepRequest grid;
    grid.benchmarks = {"186.crafty", "179.art", "164.gzip", "301.apsi"};
    grid.policies = {"none", "toggle1", "toggle2", "P",
                     "PI",   "PID",     "throttle", "vf-scaling"};
    grid.warmup_cycles = kWarmup;
    grid.measure_cycles = kMeasure;

    std::printf("chaos_soak: precomputing %zu fault-free points...\n",
                grid.benchmarks.size() * grid.policies.size());
    const std::map<std::string, std::string> expected =
        clusterExpected(grid);

    CoordinatorOptions copts;
    for (const std::string &sock : sockets)
        copts.endpoints.push_back("unix:" + sock);
    copts.lease_ms = 10000;
    copts.connect_timeout_ms = 300;
    copts.probe_interval_ms = 50;
    copts.quarantine_ms = 300;
    copts.max_point_attempts = 10;
    copts.seed = flags.seed;

    (void)::write(cmd_pipe[1], "S", 1);
    Coordinator coord(copts);
    const CoordinatorReport report =
        coord.run(Coordinator::gridPoints(grid));
    (void)::write(cmd_pipe[1], "Q", 1);

    unsigned char unclean = 0xff;
    const ssize_t got = ::read(status_pipe[0], &unclean, 1);
    int sup_status = 0;
    ::waitpid(sup, &sup_status, 0);
    ::close(cmd_pipe[1]);
    ::close(status_pipe[0]);

    bool failed = false;
    if (!report.complete()) {
        for (const std::string &key : report.missingKeys())
            std::fprintf(stderr, "MISSING: %s\n", key.c_str());
        std::fprintf(stderr,
                     "BUG: sweep incomplete despite retries (%zu "
                     "missing)\n",
                     report.missingKeys().size());
        failed = true;
    }
    std::uint64_t mismatches = 0;
    for (const CoordPointOutcome &out : report.outcomes) {
        if (out.reply.error != ServeError::None)
            continue;
        const auto it = expected.find(out.key);
        if (it == expected.end()
            || serializeRunResult(out.reply.result) != it->second) {
            mismatches++;
            std::fprintf(stderr,
                         "MISMATCH %s: merged result differs from "
                         "single-process run\n",
                         out.key.c_str());
        }
    }
    if (mismatches > 0)
        failed = true;

    std::uint64_t disturbances = 0;
    for (const CoordWorkerStats &w : report.workers) {
        disturbances += w.transport_failures + w.lease_expiries
                        + w.stalls + w.quarantines;
        std::printf("chaos_soak: worker %s: %llu dispatched, %llu "
                    "completed, %llu stolen, %llu shadowed, %llu "
                    "transport, %llu lease, %llu stalls, %llu "
                    "quarantines, %s\n",
                    w.endpoint.c_str(),
                    (unsigned long long)w.dispatched,
                    (unsigned long long)w.completed,
                    (unsigned long long)w.stolen,
                    (unsigned long long)w.shadowed,
                    (unsigned long long)w.transport_failures,
                    (unsigned long long)w.lease_expiries,
                    (unsigned long long)w.stalls,
                    (unsigned long long)w.quarantines,
                    workerHealthName(w.health));
    }
    if (disturbances == 0) {
        std::fprintf(stderr,
                     "BUG: the injected kill/stall left no trace — the "
                     "soak exercised nothing\n");
        failed = true;
    }
    if (got != 1 || unclean != 0) {
        std::fprintf(stderr,
                     "BUG: %d worker(s) did not drain cleanly on "
                     "SIGTERM\n",
                     got == 1 ? int(unclean) : -1);
        failed = true;
    }
    if (!WIFEXITED(sup_status) || WEXITSTATUS(sup_status) != 0) {
        std::fprintf(stderr, "BUG: supervisor exited abnormally\n");
        failed = true;
    }

    done.store(true);
    hang_guard.join();
    if (failed) {
        std::fprintf(stderr,
                     "chaos_soak: CLUSTER FAILED (replay with --cluster "
                     "--seed=%llu)\n",
                     static_cast<unsigned long long>(flags.seed));
        return 1;
    }
    std::printf("chaos_soak: CLUSTER PASS (seed %llu, %zu points, %llu "
                "disturbances)\n",
                static_cast<unsigned long long>(flags.seed),
                report.outcomes.size(),
                (unsigned long long)disturbances);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const SoakFlags flags = parseFlags(argc, argv);
    if (flags.cluster)
        return runCluster(flags);

    // Hang watchdog: a chaos bug that wedges a future or a drain would
    // otherwise look like a ctest timeout with no diagnostics. _exit,
    // not exit: wedged threads cannot run destructors.
    std::atomic<bool> done{false};
    std::thread hang_guard([&done, &flags] {
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(flags.max_wall_s);
        while (!done.load()) {
            if (std::chrono::steady_clock::now() >= deadline) {
                std::fprintf(stderr,
                             "HANG: soak exceeded %d s (replay with "
                             "--seed=%llu)\n",
                             flags.max_wall_s,
                             static_cast<unsigned long long>(flags.seed));
                std::_Exit(2);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });

    const std::string plan_spec =
        flags.plan.empty() ? builtinPlan(flags.seed) : flags.plan;
    const fault::FaultPlan plan = fault::FaultPlan::parse(plan_spec);
    std::printf("chaos_soak: plan %s\n", plan.describe().c_str());

    std::printf("chaos_soak: precomputing fault-free expectations...\n");
    const std::vector<SoakPoint> points = precomputeExpected();

    const std::string socket_path =
        "/tmp/tchaos-" + std::to_string(::getpid()) + ".sock";
    const std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path()
        / ("thermctl-chaos-cache-" + std::to_string(::getpid()));
    std::filesystem::remove_all(cache_dir);

    ServerOptions opts;
    opts.unix_path = socket_path;
    opts.sweep.use_cache = true;
    opts.sweep.cache_dir = cache_dir.string();
    opts.sweep.jobs = 2;
    opts.dispatchers = 2;
    opts.batch_window_ms = 5;
    opts.watchdog_ms = 1000;
    opts.workers = unsigned(flags.clients); // one in-flight frame each
    Server server(opts);
    server.start();

    fault::FaultInjector::instance().arm(plan);

    std::vector<ClientTally> tallies(std::size_t(flags.clients));
    std::vector<std::thread> threads;
    threads.reserve(std::size_t(flags.clients));
    for (int c = 0; c < flags.clients; ++c) {
        threads.emplace_back([&, c] {
            tallies[std::size_t(c)] =
                runClient("unix:" + socket_path, flags, c, points);
        });
    }
    for (auto &t : threads)
        t.join();

    const std::uint64_t fired =
        fault::FaultInjector::instance().firedCount();
    fault::FaultInjector::instance().disarm();

    // Recovery phase: with faults off, the same server must answer
    // every point fault-free and bit-identical — torn cache entries
    // must have been quarantined, not wedged into permanent errors.
    std::uint64_t recovery_failures = 0;
    {
        ServeClient verify = ServeClient::connect("unix:" + socket_path);
        for (const SoakPoint &point : points) {
            RunRequest req;
            req.point.benchmark = point.benchmark;
            req.point.policy = point.policy;
            req.point.num_cores = point.num_cores;
            req.point.warmup_cycles = kWarmup;
            req.point.measure_cycles = kMeasure;
            const PointReply reply = verify.run(req);
            if (reply.error != ServeError::None
                || serializeRunResult(reply.result) != point.expected) {
                recovery_failures++;
                std::fprintf(stderr,
                             "RECOVERY FAILURE %s/%s: %s %s\n",
                             point.benchmark.c_str(),
                             point.policy.c_str(),
                             std::string(serveErrorName(reply.error))
                                 .c_str(),
                             reply.message.c_str());
            }
        }
    }

    const StatsReply stats = server.statsSnapshot();
    server.beginDrain();
    server.shutdown();

    const CacheRecoveryStats cache_recovery =
        sweepCacheRecover(cache_dir.string());
    std::filesystem::remove_all(cache_dir);

    ClientTally total;
    for (const ClientTally &t : tallies) {
        total.ok += t.ok;
        total.typed_errors += t.typed_errors;
        total.mismatches += t.mismatches;
        for (const auto &[code, n] : t.by_error)
            total.by_error[code] += n;
    }

    std::printf("chaos_soak: %llu ok, %llu typed errors, %llu "
                "mismatches over %d requests\n",
                (unsigned long long)total.ok,
                (unsigned long long)total.typed_errors,
                (unsigned long long)total.mismatches,
                flags.clients * flags.requests);
    for (const auto &[code, n] : total.by_error) {
        std::printf("chaos_soak:   error %s: %llu\n",
                    std::string(serveErrorName(ServeError(code))).c_str(),
                    (unsigned long long)n);
    }
    std::printf("chaos_soak: %llu faults fired; server simulated %llu, "
                "cache hits %llu, stalled %llu\n",
                (unsigned long long)fired,
                (unsigned long long)stats.points_simulated,
                (unsigned long long)stats.cache_hits,
                (unsigned long long)stats.stalled);
    std::printf("chaos_soak: cache recovery scanned %llu, quarantined "
                "%llu, tmp removed %llu\n",
                (unsigned long long)cache_recovery.scanned,
                (unsigned long long)cache_recovery.quarantined,
                (unsigned long long)cache_recovery.tmp_removed);

    bool failed = false;
    if (total.mismatches > 0 || recovery_failures > 0)
        failed = true;
    const std::uint64_t answered = total.ok + total.typed_errors;
    if (answered
        != std::uint64_t(flags.clients) * std::uint64_t(flags.requests)) {
        std::fprintf(stderr, "BUG: %llu replies for %d requests\n",
                     (unsigned long long)answered,
                     flags.clients * flags.requests);
        failed = true;
    }
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
    if (fired == 0) {
        std::fprintf(stderr,
                     "BUG: fault injection armed but nothing fired — "
                     "the soak exercised nothing\n");
        failed = true;
    }
#else
    std::printf("chaos_soak: THERMCTL_FAULTS is OFF — ran as a plain "
                "stress test\n");
#endif

    done.store(true);
    hang_guard.join();
    if (failed) {
        std::fprintf(stderr, "chaos_soak: FAILED (replay with --seed=%llu)\n",
                     static_cast<unsigned long long>(flags.seed));
        return 1;
    }
    std::printf("chaos_soak: PASS (seed %llu)\n",
                static_cast<unsigned long long>(flags.seed));
    return 0;
}
