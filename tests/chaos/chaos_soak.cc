/**
 * @file
 * Chaos soak harness for thermctl-serve under deterministic fault
 * injection (src/fault). It arms a seeded FaultPlan across the
 * transport, scheduler, and cache layers, drives an in-process server
 * with concurrent retrying clients, and asserts the resilience
 * invariant end to end:
 *
 *   every admitted request yields exactly one reply that is either
 *   bit-identical to a fault-free run of the same spec or a typed
 *   ServeError — never a hang, never silent corruption.
 *
 * After the soak it disarms the plan and re-verifies every point
 * through the same server, proving the stack (including the on-disk
 * cache, which saw torn publishes) healed rather than wedged.
 *
 * Failures print the seed so the exact fault sequence replays:
 *
 *   chaos_soak --seed=N [--clients=N] [--requests=N] [--plan=SPEC]
 *              [--max-wall=SECONDS]
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "fault/fault.hh"
#include "multicore/multicore_sim.hh"
#include "serve/client.hh"
#include "serve/connect.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/policy_factory.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

struct SoakFlags
{
    std::uint64_t seed = 1;
    int clients = 4;
    int requests = 16; ///< per client
    int max_wall_s = 240;
    std::string plan; ///< empty = built-in plan derived from seed
};

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

SoakFlags
parseFlags(int argc, char **argv)
{
    SoakFlags flags;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (flagValue(argv[i], "--seed", value))
            flags.seed = std::strtoull(value.c_str(), nullptr, 10);
        else if (flagValue(argv[i], "--clients", value))
            flags.clients = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--requests", value))
            flags.requests = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--max-wall", value))
            flags.max_wall_s = std::atoi(value.c_str());
        else if (flagValue(argv[i], "--plan", value))
            flags.plan = value;
        else
            fatal("chaos_soak: unknown flag '", argv[i],
                  "' (want --seed/--clients/--requests/--plan/--max-wall)");
    }
    if (flags.clients < 1 || flags.requests < 1 || flags.max_wall_s < 1)
        fatal("chaos_soak: --clients/--requests/--max-wall must be >= 1");
    return flags;
}

/**
 * The built-in plan covers every injectable layer: short and aborted
 * socket I/O on both sides, EINTR storms, dropped accepts, scheduler
 * stalls (including two long enough to trip the watchdog), torn cache
 * publishes, and cache-load failures. Rates are tuned so a small soak
 * sees every site fire while most requests still succeed.
 */
std::string
builtinPlan(std::uint64_t seed)
{
    return "seed=" + std::to_string(seed)
           + ";serve.sock.write=short@0.2"
             ";serve.sock.write=abort@0.04"
             ";serve.sock.read=eintr@0.1"
             ";serve.sock.read=abort@0.04"
             ";serve.accept=abort@0.1:max=3"
             ";sched.batch=stall@0.2:ms=30"
             ";sched.batch=stall@0.04:ms=1500:max=2"
             ";cache.publish=torn@0.3"
             ";cache.load=abort@0.1";
}

/** The point grid the soak requests (small enough to precompute). */
struct SoakPoint
{
    std::string benchmark;
    std::string policy;
    std::uint32_t num_cores = 0; ///< 0 = server default (single core)
    std::string expected;        ///< serialized fault-free RunResult
};

constexpr std::uint64_t kWarmup = 1000;
constexpr std::uint64_t kMeasure = 10000;

std::vector<SoakPoint>
precomputeExpected()
{
    RunProtocol proto;
    proto.warmup_cycles = kWarmup;
    proto.measure_cycles = kMeasure;
    const ExperimentRunner runner(proto);

    std::vector<SoakPoint> points;
    for (const char *bench : {"186.crafty", "179.art"}) {
        for (const char *policy : {"none", "PI", "PID"}) {
            SimConfig cfg;
            if (!parseDtmPolicyKind(policy, cfg.policy.kind))
                fatal("chaos_soak: unknown policy ", policy);
            const RunResult result =
                runner.runOne(specProfile(bench), cfg.policy, cfg);
            points.push_back(
                {bench, policy, 0, serializeRunResult(result)});
        }
    }

    // Multicore points so the soak covers the wire-v3 knobs and the
    // multicore engine backend end to end (faulted transport, cache,
    // scheduler). Direct runs dispatch through the same backend the
    // server uses.
    multicore::ensureBackendRegistered();
    for (const char *policy : {"percore-PID", "adj-integral"}) {
        SimConfig cfg;
        if (!parseDtmPolicyKind(policy, cfg.policy.kind))
            fatal("chaos_soak: unknown policy ", policy);
        cfg.multicore.num_cores = 2;
        const RunResult result =
            runner.runOne(specProfile("186.crafty"), cfg.policy, cfg);
        points.push_back(
            {"186.crafty", policy, 2, serializeRunResult(result)});
    }
    return points;
}

struct ClientTally
{
    std::uint64_t ok = 0;          ///< bit-identical result replies
    std::uint64_t typed_errors = 0;
    std::uint64_t mismatches = 0;  ///< the invariant violation
    std::map<int, std::uint64_t> by_error;
};

ClientTally
runClient(const std::string &endpoint, const SoakFlags &flags,
          int client_id, const std::vector<SoakPoint> &points)
{
    BackoffConfig backoff;
    backoff.base_ms = 5;
    backoff.cap_ms = 100;
    backoff.max_attempts = 6;
    backoff.deadline_ms = 20000;
    backoff.seed = Rng(flags.seed).fork(0x10000u + unsigned(client_id))
                       .next();
    ClientOptions copts;
    copts.endpoint = endpoint;
    copts.retry = true;
    copts.backoff = backoff;
    const std::unique_ptr<Client> client = serve::connect(copts);

    Rng pick(Rng(flags.seed).fork(unsigned(client_id)).next());
    ClientTally tally;
    for (int i = 0; i < flags.requests; ++i) {
        const SoakPoint &point =
            points[pick.below(std::uint64_t(points.size()))];
        RunRequest req;
        req.point.benchmark = point.benchmark;
        req.point.policy = point.policy;
        req.point.num_cores = point.num_cores;
        req.point.warmup_cycles = kWarmup;
        req.point.measure_cycles = kMeasure;
        const PointReply reply = client->run(req);
        if (reply.error == ServeError::None) {
            if (serializeRunResult(reply.result) == point.expected) {
                tally.ok++;
            } else {
                tally.mismatches++;
                std::fprintf(stderr,
                             "MISMATCH client %d req %d %s/%s: reply "
                             "differs from fault-free run\n",
                             client_id, i, point.benchmark.c_str(),
                             point.policy.c_str());
            }
        } else {
            tally.typed_errors++;
            tally.by_error[int(reply.error)]++;
        }
    }
    return tally;
}

} // namespace

int
main(int argc, char **argv)
{
    const SoakFlags flags = parseFlags(argc, argv);

    // Hang watchdog: a chaos bug that wedges a future or a drain would
    // otherwise look like a ctest timeout with no diagnostics. _exit,
    // not exit: wedged threads cannot run destructors.
    std::atomic<bool> done{false};
    std::thread hang_guard([&done, &flags] {
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(flags.max_wall_s);
        while (!done.load()) {
            if (std::chrono::steady_clock::now() >= deadline) {
                std::fprintf(stderr,
                             "HANG: soak exceeded %d s (replay with "
                             "--seed=%llu)\n",
                             flags.max_wall_s,
                             static_cast<unsigned long long>(flags.seed));
                std::_Exit(2);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });

    const std::string plan_spec =
        flags.plan.empty() ? builtinPlan(flags.seed) : flags.plan;
    const fault::FaultPlan plan = fault::FaultPlan::parse(plan_spec);
    std::printf("chaos_soak: plan %s\n", plan.describe().c_str());

    std::printf("chaos_soak: precomputing fault-free expectations...\n");
    const std::vector<SoakPoint> points = precomputeExpected();

    const std::string socket_path =
        "/tmp/tchaos-" + std::to_string(::getpid()) + ".sock";
    const std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path()
        / ("thermctl-chaos-cache-" + std::to_string(::getpid()));
    std::filesystem::remove_all(cache_dir);

    ServerOptions opts;
    opts.unix_path = socket_path;
    opts.sweep.use_cache = true;
    opts.sweep.cache_dir = cache_dir.string();
    opts.sweep.jobs = 2;
    opts.dispatchers = 2;
    opts.batch_window_ms = 5;
    opts.watchdog_ms = 1000;
    opts.workers = unsigned(flags.clients); // one in-flight frame each
    Server server(opts);
    server.start();

    fault::FaultInjector::instance().arm(plan);

    std::vector<ClientTally> tallies(std::size_t(flags.clients));
    std::vector<std::thread> threads;
    threads.reserve(std::size_t(flags.clients));
    for (int c = 0; c < flags.clients; ++c) {
        threads.emplace_back([&, c] {
            tallies[std::size_t(c)] =
                runClient("unix:" + socket_path, flags, c, points);
        });
    }
    for (auto &t : threads)
        t.join();

    const std::uint64_t fired =
        fault::FaultInjector::instance().firedCount();
    fault::FaultInjector::instance().disarm();

    // Recovery phase: with faults off, the same server must answer
    // every point fault-free and bit-identical — torn cache entries
    // must have been quarantined, not wedged into permanent errors.
    std::uint64_t recovery_failures = 0;
    {
        ServeClient verify = ServeClient::connect("unix:" + socket_path);
        for (const SoakPoint &point : points) {
            RunRequest req;
            req.point.benchmark = point.benchmark;
            req.point.policy = point.policy;
            req.point.num_cores = point.num_cores;
            req.point.warmup_cycles = kWarmup;
            req.point.measure_cycles = kMeasure;
            const PointReply reply = verify.run(req);
            if (reply.error != ServeError::None
                || serializeRunResult(reply.result) != point.expected) {
                recovery_failures++;
                std::fprintf(stderr,
                             "RECOVERY FAILURE %s/%s: %s %s\n",
                             point.benchmark.c_str(),
                             point.policy.c_str(),
                             std::string(serveErrorName(reply.error))
                                 .c_str(),
                             reply.message.c_str());
            }
        }
    }

    const StatsReply stats = server.statsSnapshot();
    server.beginDrain();
    server.shutdown();

    const CacheRecoveryStats cache_recovery =
        sweepCacheRecover(cache_dir.string());
    std::filesystem::remove_all(cache_dir);

    ClientTally total;
    for (const ClientTally &t : tallies) {
        total.ok += t.ok;
        total.typed_errors += t.typed_errors;
        total.mismatches += t.mismatches;
        for (const auto &[code, n] : t.by_error)
            total.by_error[code] += n;
    }

    std::printf("chaos_soak: %llu ok, %llu typed errors, %llu "
                "mismatches over %d requests\n",
                (unsigned long long)total.ok,
                (unsigned long long)total.typed_errors,
                (unsigned long long)total.mismatches,
                flags.clients * flags.requests);
    for (const auto &[code, n] : total.by_error) {
        std::printf("chaos_soak:   error %s: %llu\n",
                    std::string(serveErrorName(ServeError(code))).c_str(),
                    (unsigned long long)n);
    }
    std::printf("chaos_soak: %llu faults fired; server simulated %llu, "
                "cache hits %llu, stalled %llu\n",
                (unsigned long long)fired,
                (unsigned long long)stats.points_simulated,
                (unsigned long long)stats.cache_hits,
                (unsigned long long)stats.stalled);
    std::printf("chaos_soak: cache recovery scanned %llu, quarantined "
                "%llu, tmp removed %llu\n",
                (unsigned long long)cache_recovery.scanned,
                (unsigned long long)cache_recovery.quarantined,
                (unsigned long long)cache_recovery.tmp_removed);

    bool failed = false;
    if (total.mismatches > 0 || recovery_failures > 0)
        failed = true;
    const std::uint64_t answered = total.ok + total.typed_errors;
    if (answered
        != std::uint64_t(flags.clients) * std::uint64_t(flags.requests)) {
        std::fprintf(stderr, "BUG: %llu replies for %d requests\n",
                     (unsigned long long)answered,
                     flags.clients * flags.requests);
        failed = true;
    }
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
    if (fired == 0) {
        std::fprintf(stderr,
                     "BUG: fault injection armed but nothing fired — "
                     "the soak exercised nothing\n");
        failed = true;
    }
#else
    std::printf("chaos_soak: THERMCTL_FAULTS is OFF — ran as a plain "
                "stress test\n");
#endif

    done.store(true);
    hang_guard.join();
    if (failed) {
        std::fprintf(stderr, "chaos_soak: FAILED (replay with --seed=%llu)\n",
                     static_cast<unsigned long long>(flags.seed));
        return 1;
    }
    std::printf("chaos_soak: PASS (seed %llu)\n",
                static_cast<unsigned long long>(flags.seed));
    return 0;
}
