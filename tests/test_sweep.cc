/**
 * @file
 * Tests for the sweep engine (sim/sweep.hh): grid resolution, key/seed
 * stability, result serialization, cache-key digests, parallel
 * determinism, and the on-disk result cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

/** Short protocol so grid tests stay fast. */
RunProtocol
shortProtocol()
{
    RunProtocol proto;
    proto.warmup_cycles = 4000;
    proto.measure_cycles = 12000;
    return proto;
}

/** A 3x3 grid of real profiles x policies. */
SweepSpec
smallGrid()
{
    SweepSpec spec;
    spec.protocol(shortProtocol());
    for (const char *name : {"186.crafty", "301.apsi", "164.gzip"})
        spec.workload(specProfile(name));
    for (auto kind : {DtmPolicyKind::None, DtmPolicyKind::Toggle1,
                      DtmPolicyKind::PID}) {
        DtmPolicySettings s;
        s.kind = kind;
        spec.policy(s);
    }
    return spec;
}

std::vector<std::string>
resultBytes(const SweepResults &res)
{
    std::vector<std::string> bytes;
    for (const auto &oc : res.outcomes())
        bytes.push_back(serializeRunResult(oc.result));
    return bytes;
}

/** Scoped temporary directory for cache tests. */
class TempDir
{
  public:
    TempDir()
    {
        path_ = std::filesystem::temp_directory_path()
            / ("thermctl_sweep_test_" + std::to_string(::getpid()) + "_"
               + std::to_string(counter_++));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::filesystem::path &path() const { return path_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path path_;
};

} // namespace

TEST(SweepKey, FormatAndStability)
{
    EXPECT_EQ(sweepKey("186.crafty", "PID"), "186.crafty/PID");
    EXPECT_EQ(sweepKey("186.crafty", "PID", "direct"),
              "186.crafty/PID/direct");
}

TEST(SweepSpec, GridResolutionOrderAndSeeds)
{
    SweepSpec spec = smallGrid();
    spec.variant("a", [](SimConfig &) {});
    spec.variant("b", [](SimConfig &cfg) { cfg.dtm.sample_interval = 500; });

    const auto points = spec.points();
    ASSERT_EQ(points.size(), 18u);
    EXPECT_EQ(spec.size(), 18u);

    // workloads outer, policies middle, variants inner.
    EXPECT_EQ(points[0].key, "186.crafty/none/a");
    EXPECT_EQ(points[1].key, "186.crafty/none/b");
    EXPECT_EQ(points[2].key, "186.crafty/toggle1/a");
    EXPECT_EQ(points[6].key, "301.apsi/none/a");

    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        // Seeds are a pure function of the key.
        EXPECT_EQ(points[i].seed, hashString(points[i].key));
    }

    // The variant override resolved into the point's config.
    EXPECT_EQ(points[1].config.dtm.sample_interval, 500u);
    EXPECT_NE(points[0].config.dtm.sample_interval, 500u);
}

TEST(SweepSpec, EmptyAxesDefaultToNeutralElements)
{
    SweepSpec spec;
    spec.protocol(shortProtocol());
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].config.policy.kind, SimConfig{}.policy.kind);
}

TEST(SweepSpec, DuplicateKeysAreFatal)
{
    SweepSpec spec;
    spec.protocol(shortProtocol());
    DtmPolicySettings s;
    s.kind = DtmPolicyKind::PID;
    spec.policy(s);
    s.ct_setpoint = 111.2;
    spec.policy(s); // same default label "PID"
    EXPECT_THROW(spec.points(), FatalError);
}

TEST(SweepSpec, ReseedWorkloadsFoldsKeySeed)
{
    SweepSpec plain = smallGrid();
    SweepSpec reseeded = smallGrid();
    reseeded.reseedWorkloads();
    const auto p = plain.points();
    const auto r = reseeded.points();
    ASSERT_EQ(p.size(), r.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(r[i].config.workload.seed, r[i].seed);
        EXPECT_NE(r[i].config.workload.seed, p[i].config.workload.seed);
    }
}

TEST(SweepSerialization, RoundTripsEveryField)
{
    RunResult r;
    r.benchmark = "186.crafty";
    r.policy = "PID";
    r.category = ThermalCategory::High;
    r.ipc = 1.25;
    r.raw_ipc = 1.5;
    r.avg_power = 42.5;
    r.emergency_fraction = 0.001;
    r.stress_fraction = 0.25;
    r.max_temperature = 111.75;
    r.mean_duty = 0.875;
    for (std::size_t i = 0; i < r.structures.size(); ++i) {
        r.structures[i].avg_temp = 100.0 + double(i);
        r.structures[i].max_temp = 110.0 + double(i);
        r.structures[i].emergency_fraction = 0.01 * double(i);
        r.structures[i].stress_fraction = 0.02 * double(i);
        r.structures[i].avg_power = 1.5 * double(i);
    }

    const std::string bytes = serializeRunResult(r);
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]),
              kRunResultFormatVersion);
    RunResult out;
    ASSERT_EQ(deserializeRunResult(bytes, out), RunResultDecodeStatus::Ok);
    EXPECT_EQ(serializeRunResult(out), bytes);
    EXPECT_EQ(out.benchmark, r.benchmark);
    EXPECT_EQ(out.policy, r.policy);
    EXPECT_EQ(out.category, r.category);
    EXPECT_EQ(out.raw_ipc, r.raw_ipc);
    EXPECT_EQ(out.mean_duty, r.mean_duty);
    EXPECT_EQ(double(out.structures[5].max_temp),
              double(r.structures[5].max_temp));
}

TEST(SweepSerialization, RejectsMalformedBuffers)
{
    RunResult r;
    r.benchmark = "x";
    const std::string bytes = serializeRunResult(r);

    RunResult out;
    EXPECT_EQ(deserializeRunResult("", out),
              RunResultDecodeStatus::Malformed);
    EXPECT_EQ(
        deserializeRunResult(std::string_view(bytes).substr(0, 10), out),
        RunResultDecodeStatus::Malformed);
    std::string trailing = bytes + "junk";
    EXPECT_EQ(deserializeRunResult(trailing, out),
              RunResultDecodeStatus::Malformed);

    // An old/foreign format version is a typed rejection, not garbage:
    // rewrite the version byte and repair the trailing checksum so only
    // the version mismatch can be the cause.
    std::string old = bytes;
    old[0] = static_cast<char>(kRunResultFormatVersion + 1);
    {
        ByteWriter fix;
        fix.u64(hashString(
            std::string_view(old).substr(0, old.size() - 8)));
        old.replace(old.size() - 8, 8, fix.buffer());
    }
    EXPECT_EQ(deserializeRunResult(old, out),
              RunResultDecodeStatus::BadVersion);
}

TEST(SweepDigest, SensitiveToEveryAxisItCovers)
{
    const SimConfig base;
    const RunProtocol proto = shortProtocol();
    const std::uint64_t d0 = sweepConfigDigest(base, proto);

    // Pure function of its inputs.
    EXPECT_EQ(sweepConfigDigest(base, proto), d0);

    SimConfig c1 = base;
    c1.dtm.sample_interval = base.dtm.sample_interval + 1;
    EXPECT_NE(sweepConfigDigest(c1, proto), d0);

    SimConfig c2 = base;
    c2.thermal.t_emergency = double(base.thermal.t_emergency) + 0.1;
    EXPECT_NE(sweepConfigDigest(c2, proto), d0);

    SimConfig c3 = base;
    c3.policy.ct_setpoint = double(base.policy.ct_setpoint) - 0.4;
    EXPECT_NE(sweepConfigDigest(c3, proto), d0);

    SimConfig c4 = base;
    c4.workload.seed += 1;
    EXPECT_NE(sweepConfigDigest(c4, proto), d0);

    RunProtocol p2 = proto;
    p2.measure_cycles += 1;
    EXPECT_NE(sweepConfigDigest(base, p2), d0);
}

TEST(SweepEngine, ParallelResultsBitIdenticalToSerial)
{
    const SweepSpec spec = smallGrid();

    SweepOptions serial;
    serial.jobs = 1;
    const SweepResults r1 = SweepEngine(serial).run(spec);

    SweepOptions parallel;
    parallel.jobs = 8;
    const SweepResults r8 = SweepEngine(parallel).run(spec);

    ASSERT_EQ(r1.size(), 9u);
    ASSERT_EQ(r8.size(), 9u);
    EXPECT_EQ(r1.simulated(), 9u);
    EXPECT_EQ(r8.simulated(), 9u);

    const auto b1 = resultBytes(r1);
    const auto b8 = resultBytes(r8);
    for (std::size_t i = 0; i < b1.size(); ++i) {
        EXPECT_EQ(b1[i], b8[i]) << "point " << r1.outcomes()[i].point.key;
        EXPECT_EQ(r1.outcomes()[i].point.key, r8.outcomes()[i].point.key);
    }
}

TEST(SweepEngine, WarmCacheServesBitIdenticalResults)
{
    TempDir cache;
    const SweepSpec spec = smallGrid();

    SweepOptions opts;
    opts.jobs = 4;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();

    const SweepResults cold = SweepEngine(opts).run(spec);
    EXPECT_EQ(cold.simulated(), 9u);
    EXPECT_EQ(cold.cacheHits(), 0u);

    const SweepResults warm = SweepEngine(opts).run(spec);
    EXPECT_EQ(warm.simulated(), 0u); // nothing re-simulated
    EXPECT_EQ(warm.cacheHits(), 9u);

    EXPECT_EQ(resultBytes(cold), resultBytes(warm));
}

TEST(SweepEngine, CacheInvalidatesWhenAConfigFieldChanges)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 2;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("186.crafty"));
    DtmPolicySettings pid;
    pid.kind = DtmPolicyKind::PID;
    spec.policy(pid);

    EXPECT_EQ(engine.run(spec).simulated(), 1u);
    EXPECT_EQ(engine.run(spec).cacheHits(), 1u);

    // Any changed field must miss: same key, different digest.
    SimConfig tweaked;
    tweaked.dtm.sample_interval = 2000;
    spec.base(tweaked);
    const SweepResults changed = engine.run(spec);
    EXPECT_EQ(changed.simulated(), 1u);
    EXPECT_EQ(changed.cacheHits(), 0u);
}

TEST(SweepEngine, CorruptCacheEntriesDegradeToMisses)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("164.gzip"));

    const SweepResults first = engine.run(spec);
    ASSERT_EQ(first.simulated(), 1u);

    // Truncate every cache file to garbage.
    for (const auto &entry :
         std::filesystem::directory_iterator(cache.path())) {
        FILE *f = std::fopen(entry.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a cache entry", f);
        std::fclose(f);
    }

    const SweepResults second = engine.run(spec);
    EXPECT_EQ(second.simulated(), 1u);
    EXPECT_EQ(second.cacheHits(), 0u);
    EXPECT_EQ(resultBytes(first), resultBytes(second));
}

TEST(SweepEngine, CorruptEntriesQuarantineAndSelfHeal)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("186.crafty"));

    ASSERT_EQ(engine.run(spec).simulated(), 1u);

    // Corrupt the published entry in place (flip one payload byte).
    std::filesystem::path entry;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        if (it.path().extension() == ".run")
            entry = it.path();
    }
    ASSERT_FALSE(entry.empty());
    std::filesystem::resize_file(
        entry, std::filesystem::file_size(entry) - 1);

    // The engine's read path must quarantine (not just miss): the bad
    // file moves aside as *.corrupt and a fresh entry is republished,
    // so the third run is a clean hit instead of a miss-loop.
    const SweepResults healed = engine.run(spec);
    EXPECT_EQ(healed.simulated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(entry.string() + ".corrupt")));
    EXPECT_TRUE(std::filesystem::exists(entry)); // republished
    EXPECT_EQ(engine.run(spec).cacheHits(), 1u);
}

TEST(SweepCacheRecover, QuarantinesTornEntriesAndRemovesTemps)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 2;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);
    ASSERT_EQ(engine.run(smallGrid()).simulated(), 9u);

    // Tear one entry (truncate to half) and abandon a writer temp file.
    std::vector<std::filesystem::path> entries;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        if (it.path().extension() == ".run")
            entries.push_back(it.path());
    }
    ASSERT_EQ(entries.size(), 9u);
    std::sort(entries.begin(), entries.end());
    const auto torn_size = std::filesystem::file_size(entries[0]) / 2;
    std::filesystem::resize_file(entries[0], torn_size);
    {
        std::ofstream tmp(cache.path()
                          / "0123456789abcdef.run.tmp.deadbeef");
        tmp << "abandoned";
    }
    // A file whose name is not a digest is quarantined too.
    {
        std::ofstream stray(cache.path() / "not-a-digest.run");
        stray << "stray";
    }

    const CacheRecoveryStats stats =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(stats.scanned, 10u);
    EXPECT_EQ(stats.quarantined, 2u);
    EXPECT_EQ(stats.tmp_removed, 1u);

    // Valid entries were untouched; a second sweep finds nothing.
    const CacheRecoveryStats again =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(again.scanned, 8u);
    EXPECT_EQ(again.quarantined, 0u);
    EXPECT_EQ(again.tmp_removed, 0u);

    // And the grid re-runs from the surviving entries: 8 hits, 1
    // honest re-simulation of the quarantined point.
    const SweepResults after = engine.run(smallGrid());
    EXPECT_EQ(after.cacheHits(), 8u);
    EXPECT_EQ(after.simulated(), 1u);

    // A missing directory is a no-op, not an error.
    const CacheRecoveryStats none =
        sweepCacheRecover((cache.path() / "nope").string());
    EXPECT_EQ(none.scanned, 0u);
}

TEST(SweepCacheRecover, OrphanedTempsFromKilledPublisherAreSwept)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("186.crafty"));
    ASSERT_EQ(engine.run(spec).simulated(), 1u);

    std::filesystem::path entry;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        if (it.path().extension() == ".run")
            entry = it.path();
    }
    ASSERT_FALSE(entry.empty());

    // A publisher killed between write and rename leaves a temp with
    // COMPLETE valid bytes next to the live entry. It must still be
    // removed — a temp is never a source of truth — and the published
    // entry it shadows must be left alone.
    std::filesystem::copy_file(
        entry, std::filesystem::path(entry.string() + ".tmp.cafe1234"));
    // A publisher killed mid-write for a digest that never published.
    {
        std::ofstream tmp(cache.path()
                          / "fedcba9876543210.run.tmp.00000001");
        tmp << "torn mid-wri";
    }
    // ".tmp." anywhere in the name marks a temp, extension or not.
    {
        std::ofstream tmp(cache.path() / "stray.tmp.1");
        tmp << "x";
    }

    const CacheRecoveryStats stats =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(stats.tmp_removed, 3u);
    EXPECT_EQ(stats.scanned, 1u);
    EXPECT_EQ(stats.quarantined, 0u);

    // Only the published entry remains, and it still serves a hit.
    std::size_t remaining = 0;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        (void)it;
        ++remaining;
    }
    EXPECT_EQ(remaining, 1u);
    EXPECT_EQ(engine.run(spec).cacheHits(), 1u);
}

TEST(SweepCacheRecover, ConcurrentPublishersRacingSameKeysStayUntorn)
{
    // Two engines (standing in for two separate processes) publish the
    // same 3x3 grid into one cache directory at the same time. The
    // write-to-temp + rename discipline must never expose a torn
    // entry: whoever loses each rename race overwrites an identical
    // file. Afterwards the recovery scan finds nothing to heal and the
    // cache serves every point bit-identical to an uncached run.
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 4;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();

    SweepResults a, b;
    std::thread ta([&] { a = SweepEngine(opts).run(smallGrid()); });
    std::thread tb([&] { b = SweepEngine(opts).run(smallGrid()); });
    ta.join();
    tb.join();
    ASSERT_EQ(a.size(), 9u);
    ASSERT_EQ(b.size(), 9u);
    EXPECT_EQ(resultBytes(a), resultBytes(b));

    const CacheRecoveryStats stats =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(stats.scanned, 9u);
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.tmp_removed, 0u);

    const SweepResults warm = SweepEngine(opts).run(smallGrid());
    EXPECT_EQ(warm.cacheHits(), 9u);
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(resultBytes(warm), resultBytes(a));

    SweepOptions uncached;
    uncached.jobs = 1;
    EXPECT_EQ(resultBytes(SweepEngine(uncached).run(smallGrid())),
              resultBytes(a));
}

TEST(SweepCacheRecover, SecondStartupRescanLeavesQuarantineAlone)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("164.gzip"));
    ASSERT_EQ(engine.run(spec).simulated(), 1u);

    std::filesystem::path entry;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        if (it.path().extension() == ".run")
            entry = it.path();
    }
    ASSERT_FALSE(entry.empty());
    const std::filesystem::path aside(entry.string() + ".corrupt");

    // First startup: a torn entry is moved aside for post-mortem.
    std::filesystem::resize_file(
        entry, std::filesystem::file_size(entry) / 2);
    const auto torn_size = std::filesystem::file_size(entry);
    const CacheRecoveryStats first =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(first.quarantined, 1u);
    ASSERT_TRUE(std::filesystem::exists(aside));
    EXPECT_FALSE(std::filesystem::exists(entry));

    // Second startup: the .corrupt file is retained evidence, not a
    // cache entry — it is neither re-scanned nor re-quarantined nor
    // deleted, and its bytes are untouched.
    const CacheRecoveryStats second =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(second.scanned, 0u);
    EXPECT_EQ(second.quarantined, 0u);
    EXPECT_EQ(second.tmp_removed, 0u);
    ASSERT_TRUE(std::filesystem::exists(aside));
    EXPECT_EQ(std::filesystem::file_size(aside), torn_size);

    // Re-simulation republishes; tearing the fresh entry and
    // recovering again re-quarantines onto the same .corrupt name
    // (latest evidence wins) without tripping over the old file.
    ASSERT_EQ(engine.run(spec).simulated(), 1u);
    ASSERT_TRUE(std::filesystem::exists(entry));
    std::filesystem::resize_file(entry, 3);
    const CacheRecoveryStats third =
        sweepCacheRecover(cache.path().string());
    EXPECT_EQ(third.scanned, 1u);
    EXPECT_EQ(third.quarantined, 1u);
    ASSERT_TRUE(std::filesystem::exists(aside));
    EXPECT_EQ(std::filesystem::file_size(aside), 3u);
    EXPECT_FALSE(std::filesystem::exists(entry));
}

TEST(SweepCacheLookup, ReadOnlyProbeDoesNotQuarantine)
{
    TempDir cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    opts.cache_dir = cache.path().string();
    const SweepEngine engine(opts);

    SweepSpec spec;
    spec.protocol(shortProtocol());
    spec.workload(specProfile("164.gzip"));
    ASSERT_EQ(engine.run(spec).simulated(), 1u);

    std::filesystem::path entry;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        if (it.path().extension() == ".run")
            entry = it.path();
    }
    ASSERT_FALSE(entry.empty());
    std::uint64_t digest = 0;
    {
        std::stringstream ss;
        ss << std::hex << entry.stem().string();
        ss >> digest;
    }

    RunResult out;
    EXPECT_TRUE(sweepCacheLookup(cache.path().string(), digest, out));

    std::filesystem::resize_file(
        entry, std::filesystem::file_size(entry) / 2);
    EXPECT_FALSE(sweepCacheLookup(cache.path().string(), digest, out));
    // The probe is read-only: the torn entry is still in place.
    EXPECT_TRUE(std::filesystem::exists(entry));
}

TEST(SweepEngine, LookupByKeyAndTriple)
{
    const SweepSpec spec = smallGrid();
    SweepOptions opts;
    opts.jobs = 4;
    const SweepResults res = SweepEngine(opts).run(spec);

    EXPECT_NE(res.find("301.apsi/PID"), nullptr);
    EXPECT_EQ(res.find("301.apsi/nope"), nullptr);
    const RunResult &r = res.at("301.apsi", "PID");
    EXPECT_EQ(r.benchmark, "301.apsi");
    EXPECT_THROW(res.at("no/such/point"), FatalError);
}
