/**
 * @file
 * Property/fuzz tests pitting model implementations against independent
 * reference implementations under randomized inputs.
 */

#include <list>
#include <map>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/random.hh"
#include "control/pid.hh"
#include "dtm/actuator.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{
namespace
{

// ------------------------------------------------ cache vs reference LRU

/** Geometry parameter: {size_kb, assoc, block_bytes}. */
struct CacheGeom
{
    std::uint64_t size_kb;
    std::uint32_t assoc;
    std::uint32_t block;
};

class CacheVsReference : public ::testing::TestWithParam<CacheGeom>
{
};

/**
 * Oracle: per-set LRU lists over block addresses, implemented the naive
 * way. Every access decision (hit/miss, victim writeback) must match
 * the production cache exactly.
 */
TEST_P(CacheVsReference, ExactHitMissAgreement)
{
    const auto geom = GetParam();
    CacheConfig cfg{.name = "fuzz",
                    .size_bytes = geom.size_kb * 1024,
                    .assoc = geom.assoc,
                    .block_bytes = geom.block,
                    .hit_latency = 1};
    Cache cache(cfg);

    const std::uint32_t num_sets = static_cast<std::uint32_t>(
        cfg.size_bytes / cfg.block_bytes / cfg.assoc);
    struct RefLine
    {
        Addr block_addr;
        bool dirty;
    };
    std::vector<std::list<RefLine>> ref(num_sets); // front = MRU

    Rng rng(geom.size_kb * 131 + geom.assoc * 17 + geom.block);
    for (int i = 0; i < 50000; ++i) {
        // Addresses concentrated enough to generate plenty of evictions.
        const Addr addr = rng.below(4 * cfg.size_bytes);
        const bool is_write = rng.chance(0.3);
        const Addr blk = addr / cfg.block_bytes * cfg.block_bytes;
        const std::uint32_t set =
            static_cast<std::uint32_t>((addr / cfg.block_bytes)
                                       % num_sets);

        // Reference decision.
        auto &lines = ref[set];
        auto it = std::find_if(lines.begin(), lines.end(),
                               [&](const RefLine &l) {
                                   return l.block_addr == blk;
                               });
        bool ref_hit = it != lines.end();
        bool ref_writeback = false;
        Addr ref_victim = 0;
        if (ref_hit) {
            it->dirty = it->dirty || is_write;
            lines.splice(lines.begin(), lines, it); // move to MRU
        } else {
            if (lines.size() == cfg.assoc) {
                const RefLine &victim = lines.back();
                if (victim.dirty) {
                    ref_writeback = true;
                    ref_victim = victim.block_addr;
                }
                lines.pop_back();
            }
            lines.push_front(RefLine{blk, is_write});
        }

        const auto result = cache.access(addr, is_write);
        ASSERT_EQ(result.hit, ref_hit) << "access " << i;
        ASSERT_EQ(result.writeback, ref_writeback) << "access " << i;
        if (ref_writeback) {
            ASSERT_EQ(result.victim_addr, ref_victim) << "access " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(CacheGeom{1, 1, 32}, CacheGeom{1, 2, 32},
                      CacheGeom{4, 4, 32}, CacheGeom{4, 2, 64},
                      CacheGeom{8, 8, 16}, CacheGeom{64, 2, 32}));

// ----------------------------------------------------------- PID fuzzing

TEST(PidFuzz, OutputAlwaysWithinLimitsUnderRandomInputs)
{
    Rng rng(777);
    for (int trial = 0; trial < 50; ++trial) {
        PidConfig cfg;
        cfg.kp = rng.uniform(0.0, 50.0);
        cfg.ki = rng.uniform(0.0, 1e6);
        cfg.kd = rng.uniform(0.0, 1e-3);
        cfg.setpoint = rng.uniform(-100.0, 200.0);
        cfg.dt = rng.uniform(1e-7, 1e-3);
        cfg.out_min = 0.0;
        cfg.out_max = 1.0;
        cfg.anti_windup = rng.chance(0.5) ? AntiWindup::Conditional
                                          : AntiWindup::None;
        cfg.integral_init = rng.uniform(0.0, 1.0);
        PidController pid(cfg);
        for (int i = 0; i < 2000; ++i) {
            const double u = pid.update(rng.uniform(-200.0, 400.0));
            ASSERT_GE(u, 0.0);
            ASSERT_LE(u, 1.0);
            ASSERT_EQ(u, pid.output());
        }
    }
}

TEST(PidFuzz, ConditionalIntegralStaysInActuatorRange)
{
    Rng rng(778);
    PidConfig cfg;
    cfg.ki = 1e4;
    cfg.setpoint = 10.0;
    cfg.dt = 1e-3;
    cfg.anti_windup = AntiWindup::Conditional;
    PidController pid(cfg);
    for (int i = 0; i < 20000; ++i) {
        pid.update(rng.uniform(-100.0, 120.0));
        ASSERT_GE(pid.integralTerm(), cfg.out_min - 1e-12);
        ASSERT_LE(pid.integralTerm(), cfg.out_max + 1e-12);
    }
}

// ------------------------------------------------------ actuator fuzzing

TEST(TogglerFuzz, LongRunDutyMatchesLevelUnderChanges)
{
    // Even with the level changing arbitrarily, over any window where
    // the level is constant the realized duty converges to level/7.
    Rng rng(42);
    FetchToggler toggler;
    for (int episode = 0; episode < 200; ++episode) {
        const auto level =
            static_cast<std::uint32_t>(rng.below(8));
        toggler.setLevel(level);
        int allowed = 0;
        const int n = 7 * 100;
        for (int i = 0; i < n; ++i)
            allowed += toggler.allowFetch();
        // Up to one frame of slack from the accumulator's carry-in.
        ASSERT_NEAR(allowed, n * level / 7.0, 7.0)
            << "level " << level;
    }
}

// --------------------------------------------------- thermal monotonicity

class ThermalMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(ThermalMonotonicity, MorePowerNeverCoolsAnyBlock)
{
    const double base_watts = GetParam();
    Floorplan fp;
    ThermalConfig cfg;
    const double dt = 1.0 / 1.5e9;
    SimplifiedRCModel lo(fp, cfg, dt);
    SimplifiedRCModel hi(fp, cfg, dt);
    PowerVector p_lo, p_hi;
    p_lo.value.fill(base_watts);
    p_hi.value.fill(base_watts * 1.5 + 0.1);
    Rng rng(9);
    for (int chunk = 0; chunk < 50; ++chunk) {
        const auto cycles = 1000 + rng.below(50000);
        lo.stepExact(p_lo, cycles);
        hi.stepExact(p_hi, cycles);
        for (std::size_t i = 0; i < kNumStructures; ++i) {
            ASSERT_GE(hi.temperatures().value[i] + 1e-12,
                      lo.temperatures().value[i]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PowerLevels, ThermalMonotonicity,
                         ::testing::Values(0.0, 0.5, 1.5, 4.0));

TEST(ThermalFuzz, RandomPowerTraceStaysPhysical)
{
    // Temperatures must stay within [t_base, steady-state of the peak
    // power ever applied] for any random power trace.
    Floorplan fp;
    ThermalConfig cfg;
    const double dt = 1.0 / 1.5e9;
    SimplifiedRCModel model(fp, cfg, dt);
    Rng rng(11);
    std::array<double, kNumStructures> max_power{};
    for (int i = 0; i < 200000; ++i) {
        PowerVector p;
        for (std::size_t b = 0; b < kNumStructures; ++b) {
            p.value[b] = rng.uniform(0.0, 6.0);
            max_power[b] = std::max(max_power[b], p.value[b]);
        }
        model.step(p);
    }
    for (StructureId id : kAllStructures) {
        const std::size_t b = static_cast<std::size_t>(id);
        ASSERT_GE(model.temperatures()[id], cfg.t_base - 1e-9);
        ASSERT_LE(model.temperatures()[id],
                  model.steadyState(id, max_power[b]) + 1e-9);
    }
}

} // namespace
} // namespace thermctl
