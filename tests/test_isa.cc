/**
 * @file
 * Tests for the micro-op format and classification helpers.
 */

#include <gtest/gtest.h>

#include "isa/micro_op.hh"

namespace thermctl
{
namespace
{

TEST(OpClass, Names)
{
    EXPECT_STREQ(opClassName(OpClass::IntAlu), "ialu");
    EXPECT_STREQ(opClassName(OpClass::Load), "load");
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "fdiv");
    EXPECT_STREQ(opClassName(OpClass::Branch), "branch");
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpMult));
    EXPECT_TRUE(isFpOp(OpClass::FpDiv));
    EXPECT_FALSE(isFpOp(OpClass::Load));
}

TEST(MicroOp, NextPcFollowsFixedEncoding)
{
    MicroOp op;
    op.pc = 0x1000;
    EXPECT_EQ(op.nextPc(), 0x1004u);
}

TEST(MicroOp, ActualNextPcForBranches)
{
    MicroOp op;
    op.pc = 0x1000;
    op.op = OpClass::Branch;
    op.is_branch = true;
    op.target = 0x2000;

    op.taken = true;
    EXPECT_EQ(op.actualNextPc(), 0x2000u);
    op.taken = false;
    EXPECT_EQ(op.actualNextPc(), 0x1004u);
}

TEST(MicroOp, DestDetection)
{
    MicroOp op;
    EXPECT_FALSE(op.hasDest());
    op.dest = 5;
    EXPECT_TRUE(op.hasDest());
}

TEST(MicroOp, ToStringMentionsKeyFields)
{
    MicroOp op;
    op.pc = 0x400000;
    op.op = OpClass::Load;
    op.dest = 3;
    op.num_srcs = 1;
    op.srcs[0] = 1;
    op.mem_addr = 0xdead0;
    const std::string s = op.toString();
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("400000"), std::string::npos);
    EXPECT_NE(s.find("dead0"), std::string::npos);
}

TEST(Registers, FpRegsFollowIntRegs)
{
    EXPECT_EQ(kFirstFpReg, 32);
    EXPECT_EQ(kNumArchRegs, 64);
}

} // namespace
} // namespace thermctl
