/**
 * @file
 * Unit and property tests for the streaming statistics primitives.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace thermctl
{
namespace
{

TEST(Accumulator, EmptyStateIsZeroed)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    Rng rng(7);
    Accumulator all, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BoxcarAverage, RejectsZeroWindow)
{
    EXPECT_THROW(BoxcarAverage(0), FatalError);
}

TEST(BoxcarAverage, PartialWindowAveragesSeenSamples)
{
    BoxcarAverage box(4);
    EXPECT_DOUBLE_EQ(box.average(), 0.0);
    box.add(2.0);
    EXPECT_DOUBLE_EQ(box.average(), 2.0);
    box.add(4.0);
    EXPECT_DOUBLE_EQ(box.average(), 3.0);
    EXPECT_FALSE(box.full());
}

TEST(BoxcarAverage, EvictsOldestOnceFull)
{
    BoxcarAverage box(3);
    box.add(1.0);
    box.add(2.0);
    box.add(3.0);
    EXPECT_TRUE(box.full());
    EXPECT_DOUBLE_EQ(box.average(), 2.0);
    box.add(10.0); // evicts 1.0
    EXPECT_DOUBLE_EQ(box.average(), 5.0);
    box.add(10.0); // evicts 2.0
    EXPECT_NEAR(box.average(), 23.0 / 3.0, 1e-12);
}

TEST(BoxcarAverage, ResetClears)
{
    BoxcarAverage box(2);
    box.add(5.0);
    box.reset();
    EXPECT_EQ(box.size(), 0u);
    EXPECT_DOUBLE_EQ(box.average(), 0.0);
}

/** Property: the incremental boxcar equals a naive recomputation. */
class BoxcarProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BoxcarProperty, MatchesNaiveRecomputation)
{
    const std::size_t window = GetParam();
    BoxcarAverage box(window);
    Rng rng(window * 977);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform(-5.0, 50.0);
        samples.push_back(x);
        box.add(x);

        double naive = 0.0;
        const std::size_t n = std::min(samples.size(), window);
        for (std::size_t k = samples.size() - n; k < samples.size(); ++k)
            naive += samples[k];
        naive /= static_cast<double>(n);
        ASSERT_NEAR(box.average(), naive, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, BoxcarProperty,
                         ::testing::Values(1, 2, 3, 7, 64, 1000));

TEST(EwmaAverage, ConvergesToConstantInput)
{
    EwmaAverage ewma(0.2);
    EXPECT_TRUE(ewma.empty());
    for (int i = 0; i < 200; ++i)
        ewma.add(7.0);
    EXPECT_NEAR(ewma.average(), 7.0, 1e-9);
}

TEST(EwmaAverage, FirstSampleSeedsValue)
{
    EwmaAverage ewma(0.5);
    ewma.add(10.0);
    EXPECT_DOUBLE_EQ(ewma.average(), 10.0);
    ewma.add(0.0);
    EXPECT_DOUBLE_EQ(ewma.average(), 5.0);
}

TEST(EwmaAverage, RejectsBadAlpha)
{
    EXPECT_THROW(EwmaAverage(0.0), FatalError);
    EXPECT_THROW(EwmaAverage(1.5), FatalError);
}

TEST(Histogram, BinBoundariesAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(9.999);
    h.add(10.0);
    h.add(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.binHigh(5), 6.0);
}

TEST(Histogram, QuantileOfUniformData)
{
    Histogram h(0.0, 1.0, 100);
    Rng rng(42);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, RejectsBadConfig)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 10), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

} // namespace
} // namespace thermctl
