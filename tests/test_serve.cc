/**
 * @file
 * thermctl-serve tests: wire protocol round-trips and rejection paths,
 * scheduler admission/coalescing/deadline semantics, and socket-level
 * end-to-end runs checked bit-identical against direct
 * ExperimentRunner executions.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "serve/client.hh"
#include "serve/connect.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/policy_factory.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

RunResult
sampleResult(const std::string &bench, const std::string &policy)
{
    RunResult r;
    r.benchmark = bench;
    r.policy = policy;
    r.category = ThermalCategory::High;
    r.ipc = 1.25;
    r.raw_ipc = 1.5;
    r.avg_power = 34.5;
    r.emergency_fraction = 0.125;
    r.stress_fraction = 0.5;
    r.max_temperature = 112.75;
    r.mean_duty = 0.875;
    for (std::size_t i = 0; i < r.structures.size(); ++i) {
        r.structures[i].avg_temp = 80.0 + double(i);
        r.structures[i].max_temp = 90.0 + double(i);
        r.structures[i].emergency_fraction = 0.01 * double(i);
        r.structures[i].stress_fraction = 0.02 * double(i);
        r.structures[i].avg_power = 1.0 + 0.5 * double(i);
    }
    return r;
}

PointSpec
fastPoint(const std::string &bench = "186.crafty",
          const std::string &policy = "none")
{
    PointSpec p;
    p.benchmark = bench;
    p.policy = policy;
    p.warmup_cycles = 1000;
    p.measure_cycles = 10000;
    return p;
}

/** Poll `pred` for up to `ms` milliseconds. */
bool
waitFor(const std::function<bool()> &pred, int ms = 5000)
{
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
}

/** Unique short Unix socket path (sun_path is tiny). */
std::string
testSocketPath(int idx)
{
    return "/tmp/tserve-" + std::to_string(::getpid()) + "-"
           + std::to_string(idx) + ".sock";
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.raw_ipc, b.raw_ipc);
    EXPECT_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.emergency_fraction, b.emergency_fraction);
    EXPECT_EQ(a.stress_fraction, b.stress_fraction);
    EXPECT_EQ(a.max_temperature, b.max_temperature);
    EXPECT_EQ(a.mean_duty, b.mean_duty);
    for (std::size_t i = 0; i < a.structures.size(); ++i) {
        EXPECT_EQ(a.structures[i].avg_temp, b.structures[i].avg_temp);
        EXPECT_EQ(a.structures[i].max_temp, b.structures[i].max_temp);
        EXPECT_EQ(a.structures[i].avg_power, b.structures[i].avg_power);
    }
}

} // namespace

// ----------------------------------------------------------- framing

TEST(ServeProtocol, FrameRoundTrips)
{
    const std::string frame = encodeFrame(MsgType::RunRequest, "payload");
    ASSERT_GE(frame.size(), kFrameHeaderBytes);
    FrameHeader hdr;
    ASSERT_EQ(decodeFrameHeader(
                  std::string_view(frame).substr(0, kFrameHeaderBytes),
                  hdr),
              FrameStatus::Ok);
    EXPECT_EQ(hdr.version, kWireVersion);
    EXPECT_EQ(hdr.type, MsgType::RunRequest);
    EXPECT_EQ(hdr.payload_len, 7u);
    EXPECT_EQ(frame.substr(kFrameHeaderBytes), "payload");
}

TEST(ServeProtocol, FrameHeaderRejectsCorruption)
{
    std::string frame = encodeFrame(MsgType::StatsRequest, "");
    FrameHeader hdr;

    std::string bad_magic = frame;
    bad_magic[0] = 'X';
    EXPECT_EQ(decodeFrameHeader(
                  std::string_view(bad_magic).substr(0, kFrameHeaderBytes),
                  hdr),
              FrameStatus::BadMagic);

    std::string bad_version = frame;
    bad_version[4] = char(kWireVersion + 7);
    EXPECT_EQ(decodeFrameHeader(std::string_view(bad_version)
                                    .substr(0, kFrameHeaderBytes),
                                hdr),
              FrameStatus::BadVersion);
    EXPECT_EQ(hdr.version, kWireVersion + 7);

    std::string bad_type = frame;
    bad_type[5] = char(200);
    EXPECT_EQ(decodeFrameHeader(
                  std::string_view(bad_type).substr(0, kFrameHeaderBytes),
                  hdr),
              FrameStatus::BadType);

    std::string bad_len = frame;
    for (int i = 6; i < 10; ++i)
        bad_len[i] = char(0xff);
    EXPECT_EQ(decodeFrameHeader(
                  std::string_view(bad_len).substr(0, kFrameHeaderBytes),
                  hdr),
              FrameStatus::BadLength);
}

TEST(ServeProtocol, MsgTypeValidation)
{
    EXPECT_TRUE(msgTypeValid(std::uint8_t(MsgType::RunRequest)));
    EXPECT_TRUE(msgTypeValid(std::uint8_t(MsgType::ErrorReply)));
    EXPECT_FALSE(msgTypeValid(0));
    EXPECT_FALSE(msgTypeValid(42));
    EXPECT_FALSE(msgTypeValid(255));
}

// ------------------------------------------------- payload round-trips

TEST(ServeProtocol, RunRequestRoundTrips)
{
    RunRequest in;
    in.point.benchmark = "179.art";
    in.point.policy = "PI";
    in.point.warmup_cycles = 123;
    in.point.measure_cycles = 456789;
    in.point.ct_setpoint = 110.5;
    in.point.sample_interval = 2500;
    in.point.num_cores = 4;
    in.point.coupling_r = 3.5;
    in.point.chip_budget = 62.5;
    in.point.budget_policy = 2;
    in.deadline_ms = 4000;

    RunRequest out;
    ASSERT_TRUE(RunRequest::decode(in.encode(), out));
    EXPECT_EQ(out.point.benchmark, in.point.benchmark);
    EXPECT_EQ(out.point.policy, in.point.policy);
    EXPECT_EQ(out.point.warmup_cycles, in.point.warmup_cycles);
    EXPECT_EQ(out.point.measure_cycles, in.point.measure_cycles);
    EXPECT_EQ(out.point.ct_setpoint, in.point.ct_setpoint);
    EXPECT_EQ(out.point.sample_interval, in.point.sample_interval);
    EXPECT_EQ(out.point.num_cores, in.point.num_cores);
    EXPECT_EQ(out.point.coupling_r, in.point.coupling_r);
    EXPECT_EQ(out.point.chip_budget, in.point.chip_budget);
    EXPECT_EQ(out.point.budget_policy, in.point.budget_policy);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
}

TEST(ServeProtocol, DecodersRejectHostileMulticoreKnobs)
{
    // The knobs are validated at decode, before any core-count-sized
    // allocation: counts beyond kMaxCores, non-finite or negative
    // doubles, and unknown budget policies all fail the whole message.
    RunRequest base;
    base.point.benchmark = "186.crafty";
    base.point.policy = "percore-PID";

    RunRequest out;
    ASSERT_TRUE(RunRequest::decode(base.encode(), out));

    RunRequest hostile = base;
    hostile.point.num_cores = 0xffffffffu;
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));
    hostile = base;
    hostile.point.num_cores = kMaxCores + 1;
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));
    hostile = base;
    hostile.point.coupling_r = -4.0;
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));
    hostile = base;
    hostile.point.chip_budget =
        -std::numeric_limits<double>::infinity();
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));
    hostile = base;
    hostile.point.coupling_r =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));
    hostile = base;
    hostile.point.budget_policy = 3;
    EXPECT_FALSE(RunRequest::decode(hostile.encode(), out));

    SweepRequest sweep;
    sweep.benchmarks = {"186.crafty"};
    sweep.policies = {"none"};
    sweep.num_cores = 0xffffffffu;
    SweepRequest sweep_out;
    EXPECT_FALSE(SweepRequest::decode(sweep.encode(), sweep_out));
    sweep.num_cores = 4;
    sweep.budget_policy = 0xff;
    EXPECT_FALSE(SweepRequest::decode(sweep.encode(), sweep_out));
    sweep.budget_policy = 0;
    EXPECT_TRUE(SweepRequest::decode(sweep.encode(), sweep_out));
    EXPECT_EQ(sweep_out.num_cores, 4u);
}

TEST(ServeProtocol, SweepRequestRoundTrips)
{
    SweepRequest in;
    in.benchmarks = {"186.crafty", "179.art", "164.gzip"};
    in.policies = {"none", "PID"};
    in.warmup_cycles = 11;
    in.measure_cycles = 22;
    in.ct_setpoint = 109.0;
    in.sample_interval = 500;
    in.deadline_ms = 9;

    SweepRequest out;
    ASSERT_TRUE(SweepRequest::decode(in.encode(), out));
    EXPECT_EQ(out.benchmarks, in.benchmarks);
    EXPECT_EQ(out.policies, in.policies);
    EXPECT_EQ(out.warmup_cycles, in.warmup_cycles);
    EXPECT_EQ(out.measure_cycles, in.measure_cycles);
    EXPECT_EQ(out.ct_setpoint, in.ct_setpoint);
    EXPECT_EQ(out.sample_interval, in.sample_interval);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
}

TEST(ServeProtocol, CacheStatsDrainRequestsRoundTrip)
{
    CacheQueryRequest cq;
    cq.point = fastPoint("300.twolf", "throttle");
    CacheQueryRequest cq_out;
    ASSERT_TRUE(CacheQueryRequest::decode(cq.encode(), cq_out));
    EXPECT_EQ(cq_out.point.benchmark, "300.twolf");
    EXPECT_EQ(cq_out.point.policy, "throttle");

    StatsRequest st_out;
    EXPECT_TRUE(StatsRequest::decode(StatsRequest{}.encode(), st_out));
    DrainRequest dr_out;
    EXPECT_TRUE(DrainRequest::decode(DrainRequest{}.encode(), dr_out));
}

TEST(ServeProtocol, RunReplyRoundTripsResultExactly)
{
    RunReply in;
    in.point.result = sampleResult("183.equake", "PID");
    in.point.cache_hit = true;
    in.point.coalesced = true;
    in.point.server_ms = 12.5;

    RunReply out;
    ASSERT_TRUE(RunReply::decode(in.encode(), out));
    EXPECT_EQ(out.point.error, ServeError::None);
    EXPECT_TRUE(out.point.cache_hit);
    EXPECT_TRUE(out.point.coalesced);
    EXPECT_EQ(out.point.server_ms, 12.5);
    expectSameResult(out.point.result, in.point.result);
}

TEST(ServeProtocol, SweepReplyCarriesMixedOutcomes)
{
    SweepReply in;
    PointReply ok;
    ok.result = sampleResult("186.crafty", "none");
    in.points.push_back(ok);
    PointReply err;
    err.error = ServeError::Overloaded;
    err.message = "queue full";
    in.points.push_back(err);

    SweepReply out;
    ASSERT_TRUE(SweepReply::decode(in.encode(), out));
    ASSERT_EQ(out.points.size(), 2u);
    EXPECT_EQ(out.points[0].error, ServeError::None);
    expectSameResult(out.points[0].result, ok.result);
    EXPECT_EQ(out.points[1].error, ServeError::Overloaded);
    EXPECT_EQ(out.points[1].message, "queue full");
}

TEST(ServeProtocol, StatsCacheDrainErrorRepliesRoundTrip)
{
    StatsReply st;
    st.requests_total = 1;
    st.run_requests = 2;
    st.sweep_requests = 3;
    st.cache_queries = 4;
    st.points_submitted = 5;
    st.points_simulated = 6;
    st.cache_hits = 7;
    st.coalesced = 8;
    st.rejected_overload = 9;
    st.rejected_deadline = 10;
    st.failed = 11;
    st.queue_depth = 12;
    st.queue_high_water = 13;
    st.connections_accepted = 14;
    st.active_connections = 15;
    st.uptime_seconds = 16.5;
    st.latency_count = 17;
    st.latency_mean_ms = 18.5;
    st.latency_p50_ms = 19.5;
    st.latency_p90_ms = 20.5;
    st.latency_p99_ms = 21.5;
    StatsReply st_out;
    ASSERT_TRUE(StatsReply::decode(st.encode(), st_out));
    EXPECT_EQ(st_out.requests_total, 1u);
    EXPECT_EQ(st_out.coalesced, 8u);
    EXPECT_EQ(st_out.queue_high_water, 13u);
    EXPECT_EQ(st_out.uptime_seconds, 16.5);
    EXPECT_EQ(st_out.latency_p99_ms, 21.5);

    CacheQueryReply cq;
    cq.cached = true;
    cq.digest = 0xdeadbeefcafef00dULL;
    CacheQueryReply cq_out;
    ASSERT_TRUE(CacheQueryReply::decode(cq.encode(), cq_out));
    EXPECT_TRUE(cq_out.cached);
    EXPECT_EQ(cq_out.digest, cq.digest);

    DrainReply dr;
    dr.was_draining = true;
    DrainReply dr_out;
    ASSERT_TRUE(DrainReply::decode(dr.encode(), dr_out));
    EXPECT_TRUE(dr_out.was_draining);

    ErrorReply er;
    er.code = ServeError::VersionMismatch;
    er.message = "speak v1";
    ErrorReply er_out;
    ASSERT_TRUE(ErrorReply::decode(er.encode(), er_out));
    EXPECT_EQ(er_out.code, ServeError::VersionMismatch);
    EXPECT_EQ(er_out.message, "speak v1");
}

TEST(ServeProtocol, DecodersRejectEveryTruncation)
{
    RunRequest rr;
    rr.point = fastPoint("179.art", "PI");
    const std::string run_bytes = rr.encode();
    for (std::size_t n = 0; n < run_bytes.size(); ++n) {
        RunRequest out;
        EXPECT_FALSE(
            RunRequest::decode(run_bytes.substr(0, n), out))
            << "accepted truncated RunRequest of " << n << " bytes";
    }

    RunReply reply;
    reply.point.result = sampleResult("186.crafty", "none");
    const std::string reply_bytes = reply.encode();
    for (std::size_t n = 0; n < reply_bytes.size(); ++n) {
        RunReply out;
        EXPECT_FALSE(RunReply::decode(reply_bytes.substr(0, n), out))
            << "accepted truncated RunReply of " << n << " bytes";
    }
}

// ----------------------------------------------------------- scheduler

namespace
{

Scheduler::Options
fastSchedOptions()
{
    Scheduler::Options o;
    o.sweep.use_cache = false;
    o.sweep.jobs = 4;
    o.dispatchers = 1;
    return o;
}

} // namespace

TEST(ServeScheduler, ResolvePointNamesDigest)
{
    const SimConfig base;
    const ResolvedPoint a = resolvePoint(fastPoint(), base);
    const ResolvedPoint b = resolvePoint(fastPoint(), base);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.key, "186.crafty/none");

    const ResolvedPoint other_bench =
        resolvePoint(fastPoint("179.art"), base);
    EXPECT_NE(other_bench.digest, a.digest);

    PointSpec tuned = fastPoint();
    tuned.ct_setpoint = 108.0;
    EXPECT_NE(resolvePoint(tuned, base).digest, a.digest);

    EXPECT_THROW(resolvePoint(fastPoint("186.crafty", "nope"), base),
                 FatalError);
    EXPECT_THROW(resolvePoint(fastPoint("999.missing"), base),
                 FatalError);
}

TEST(ServeScheduler, CoalescesIdenticalInflightRequests)
{
    Scheduler sched(fastSchedOptions());
    const ResolvedPoint pt = resolvePoint(fastPoint(), SimConfig{});

    sched.pauseDispatch();
    Scheduler::Ticket first = sched.submit(pt, 0);
    EXPECT_FALSE(first.coalesced);
    EXPECT_FALSE(first.rejected);

    std::vector<Scheduler::Ticket> dups;
    for (int i = 0; i < 3; ++i)
        dups.push_back(sched.submit(pt, 0));
    for (const auto &t : dups) {
        EXPECT_TRUE(t.coalesced);
        EXPECT_FALSE(t.rejected);
    }
    sched.resumeDispatch();

    const Scheduler::OutcomePtr base = first.future.get();
    ASSERT_TRUE(base);
    EXPECT_EQ(base->error, ServeError::None);
    EXPECT_EQ(base->result.benchmark, "186.crafty");
    for (auto &t : dups)
        EXPECT_EQ(t.future.get(), base); // same shared outcome object

    sched.awaitIdle();
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.submitted, 4u);
    EXPECT_EQ(s.coalesced, 3u);
    EXPECT_EQ(s.simulated, 1u); // fewer simulations than requests
}

TEST(ServeScheduler, FullQueueRejectsWithOverloaded)
{
    Scheduler::Options opts = fastSchedOptions();
    opts.max_queue = 2;
    Scheduler sched(opts);

    sched.pauseDispatch();
    Scheduler::Ticket a =
        sched.submit(resolvePoint(fastPoint("186.crafty"), {}), 0);
    Scheduler::Ticket b =
        sched.submit(resolvePoint(fastPoint("179.art"), {}), 0);
    EXPECT_FALSE(a.rejected);
    EXPECT_FALSE(b.rejected);

    Scheduler::Ticket c =
        sched.submit(resolvePoint(fastPoint("164.gzip"), {}), 0);
    EXPECT_TRUE(c.rejected);
    const Scheduler::OutcomePtr oc = c.future.get();
    EXPECT_EQ(oc->error, ServeError::Overloaded);

    // A duplicate of a queued point still coalesces past a full queue.
    Scheduler::Ticket dup =
        sched.submit(resolvePoint(fastPoint("179.art"), {}), 0);
    EXPECT_TRUE(dup.coalesced);

    sched.resumeDispatch();
    EXPECT_EQ(a.future.get()->error, ServeError::None);
    EXPECT_EQ(b.future.get()->error, ServeError::None);
    sched.awaitIdle();
    EXPECT_EQ(sched.stats().rejected_overload, 1u);
}

TEST(ServeScheduler, ExpiredDeadlineFailsWithoutSimulating)
{
    Scheduler sched(fastSchedOptions());
    sched.pauseDispatch();
    Scheduler::Ticket t =
        sched.submit(resolvePoint(fastPoint(), {}), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sched.resumeDispatch();

    const Scheduler::OutcomePtr oc = t.future.get();
    EXPECT_EQ(oc->error, ServeError::DeadlineExceeded);
    sched.awaitIdle();
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.rejected_deadline, 1u);
    EXPECT_EQ(s.simulated, 0u);
}

TEST(ServeScheduler, DrainFinishesQueuedWorkAndRefusesNew)
{
    Scheduler sched(fastSchedOptions());
    sched.pauseDispatch();
    Scheduler::Ticket queued =
        sched.submit(resolvePoint(fastPoint(), {}), 0);
    sched.beginDrain(); // overrides the pause; queued work must finish

    Scheduler::Ticket refused =
        sched.submit(resolvePoint(fastPoint("179.art"), {}), 0);
    EXPECT_TRUE(refused.rejected);
    EXPECT_EQ(refused.future.get()->error, ServeError::Draining);

    EXPECT_EQ(queued.future.get()->error, ServeError::None);
    sched.awaitIdle();
}

TEST(ServeScheduler, BatchesDistinctBenchmarksInOneDispatch)
{
    Scheduler sched(fastSchedOptions());
    sched.pauseDispatch();
    Scheduler::Ticket a =
        sched.submit(resolvePoint(fastPoint("186.crafty"), {}), 0);
    Scheduler::Ticket b =
        sched.submit(resolvePoint(fastPoint("179.art"), {}), 0);
    sched.resumeDispatch();

    EXPECT_EQ(a.future.get()->result.benchmark, "186.crafty");
    EXPECT_EQ(b.future.get()->result.benchmark, "179.art");
    sched.awaitIdle();
    EXPECT_EQ(sched.stats().simulated, 2u);
}

// ------------------------------------------------------------- server

namespace
{

ServerOptions
fastServerOptions(int sock_idx)
{
    ServerOptions o;
    o.unix_path = testSocketPath(sock_idx);
    o.sweep.use_cache = false;
    o.sweep.jobs = 8;
    o.dispatchers = 1;
    // Tests park requests on a paused scheduler while more arrive;
    // every concurrent request needs a worker to block in.
    o.workers = 8;
    return o;
}

/** Raw blocking client socket for protocol-level misbehavior tests. */
int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

TEST(ServeServer, ConcurrentClientsMatchDirectRunsBitExactly)
{
    const ServerOptions opts = fastServerOptions(1);
    Server server(opts);
    server.start();

    const std::vector<std::string> policies = {
        "none", "toggle1", "toggle2", "P",
        "PI",   "PID",     "throttle", "vf-scaling",
    };
    std::vector<PointReply> replies(policies.size());
    std::vector<std::thread> clients;
    clients.reserve(policies.size());
    for (std::size_t i = 0; i < policies.size(); ++i) {
        clients.emplace_back([&, i] {
            ServeClient c = ServeClient::connectUnix(opts.unix_path);
            RunRequest req;
            req.point = fastPoint("186.crafty", policies[i]);
            replies[i] = c.run(req);
        });
    }
    for (auto &t : clients)
        t.join();

    RunProtocol proto;
    proto.warmup_cycles = 1000;
    proto.measure_cycles = 10000;
    const ExperimentRunner runner(proto);
    for (std::size_t i = 0; i < policies.size(); ++i) {
        ASSERT_EQ(replies[i].error, ServeError::None)
            << policies[i] << ": " << replies[i].message;
        SimConfig direct;
        ASSERT_TRUE(
            parseDtmPolicyKind(policies[i], direct.policy.kind));
        const RunResult expect = runner.runOne(
            specProfile("186.crafty"), direct.policy, direct);
        expectSameResult(replies[i].result, expect);
    }

    const StatsReply stats = server.statsSnapshot();
    EXPECT_EQ(stats.run_requests, policies.size());
    EXPECT_EQ(stats.points_simulated, policies.size());
    server.shutdown();
}

TEST(ServeServer, DuplicateConcurrentRequestsCoalesce)
{
    const ServerOptions opts = fastServerOptions(2);
    Server server(opts);
    server.start();

    server.scheduler().pauseDispatch();
    constexpr int kDup = 4;
    std::vector<PointReply> replies(kDup);
    std::vector<std::thread> clients;
    for (int i = 0; i < kDup; ++i) {
        clients.emplace_back([&, i] {
            ServeClient c = ServeClient::connectUnix(opts.unix_path);
            RunRequest req;
            req.point = fastPoint("179.art", "PI");
            replies[i] = c.run(req);
        });
    }
    ASSERT_TRUE(waitFor([&] {
        return server.scheduler().stats().submitted >= kDup;
    }));
    server.scheduler().resumeDispatch();
    for (auto &t : clients)
        t.join();

    for (const auto &r : replies) {
        ASSERT_EQ(r.error, ServeError::None) << r.message;
        EXPECT_EQ(r.result.benchmark, "179.art");
    }
    const StatsReply stats = server.statsSnapshot();
    EXPECT_EQ(stats.points_submitted, std::uint64_t(kDup));
    EXPECT_EQ(stats.coalesced, std::uint64_t(kDup - 1));
    EXPECT_EQ(stats.points_simulated, 1u); // sims < requests
    server.shutdown();
}

TEST(ServeServer, FullQueueAnswersOverloadedImmediately)
{
    ServerOptions opts = fastServerOptions(3);
    opts.max_queue = 1;
    Server server(opts);
    server.start();

    server.scheduler().pauseDispatch();
    PointReply queued_reply;
    std::thread queued([&] {
        ServeClient c = ServeClient::connectUnix(opts.unix_path);
        RunRequest req;
        req.point = fastPoint("186.crafty");
        queued_reply = c.run(req);
    });
    ASSERT_TRUE(waitFor(
        [&] { return server.scheduler().stats().submitted >= 1; }));

    // The queue slot is taken: a distinct point must bounce, not hang.
    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest req;
    req.point = fastPoint("179.art");
    const PointReply rejected = c.run(req);
    EXPECT_EQ(rejected.error, ServeError::Overloaded);

    server.scheduler().resumeDispatch();
    queued.join();
    EXPECT_EQ(queued_reply.error, ServeError::None);
    server.shutdown();
}

TEST(ServeServer, SweepBatchesAndAnswersInGridOrder)
{
    std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path()
        / ("tserve-cache-" + std::to_string(::getpid()));
    std::filesystem::remove_all(cache_dir);

    ServerOptions opts = fastServerOptions(4);
    opts.sweep.use_cache = true;
    opts.sweep.cache_dir = cache_dir.string();
    Server server(opts);
    server.start();

    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    SweepRequest req;
    req.benchmarks = {"186.crafty", "179.art"};
    req.policies = {"none", "PI"};
    req.warmup_cycles = 1000;
    req.measure_cycles = 10000;
    const SweepReply reply = c.sweep(req);

    ASSERT_EQ(reply.points.size(), 4u);
    const char *expect_bench[] = {"186.crafty", "186.crafty", "179.art",
                                  "179.art"};
    const char *expect_policy[] = {"none", "PI", "none", "PI"};
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(reply.points[i].error, ServeError::None)
            << reply.points[i].message;
        EXPECT_EQ(reply.points[i].result.benchmark, expect_bench[i]);
        EXPECT_EQ(reply.points[i].result.policy, expect_policy[i]);
        EXPECT_FALSE(reply.points[i].cache_hit);
    }

    // Read-through cache: the same grid again is served without
    // simulation, and a cache probe confirms the entries exist.
    const SweepReply again = c.sweep(req);
    for (const auto &p : again.points)
        EXPECT_TRUE(p.cache_hit);

    CacheQueryRequest probe;
    probe.point = fastPoint("186.crafty", "PI");
    const CacheQueryReply probed = c.cacheQuery(probe);
    EXPECT_TRUE(probed.cached);
    EXPECT_NE(probed.digest, 0u);

    CacheQueryRequest miss;
    miss.point = fastPoint("300.twolf", "PID");
    EXPECT_FALSE(c.cacheQuery(miss).cached);

    server.shutdown();
    std::filesystem::remove_all(cache_dir);
}

TEST(ServeServer, UnknownNamesComeBackAsBadRequest)
{
    const ServerOptions opts = fastServerOptions(5);
    Server server(opts);
    server.start();

    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest req;
    req.point = fastPoint("186.crafty", "warp-drive");
    const PointReply reply = c.run(req);
    EXPECT_EQ(reply.error, ServeError::BadRequest);
    EXPECT_NE(reply.message.find("warp-drive"), std::string::npos);
    server.shutdown();
}

TEST(ServeServer, ForeignWireVersionGetsTypedRejection)
{
    const ServerOptions opts = fastServerOptions(6);
    Server server(opts);
    server.start();

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    std::string frame = encodeFrame(MsgType::StatsRequest, "");
    frame[4] = char(kWireVersion + 1); // a future protocol revision
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              ssize_t(frame.size()));

    MsgType type;
    std::string payload;
    ASSERT_EQ(readFrame(fd, type, payload), ReadStatus::Ok);
    ASSERT_EQ(type, MsgType::ErrorReply);
    ErrorReply err;
    ASSERT_TRUE(ErrorReply::decode(payload, err));
    EXPECT_EQ(err.code, ServeError::VersionMismatch);
    ::close(fd);
    server.shutdown();
}

TEST(ServeServer, MalformedBytesGetTypedErrorThenCloseAndServerSurvives)
{
    const ServerOptions opts = fastServerOptions(14);
    Server server(opts);
    server.start();

    // Regression: flushing the courtesy error reply inline used to
    // destroy the Conn while readReady/eventLoop still held a
    // reference to it (use-after-free on any malformed client).
    const int fd = rawConnect(opts.unix_path);
    ASSERT_GE(fd, 0);
    const std::string garbage = "definitely not a TSRV frame";
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              ssize_t(garbage.size()));

    MsgType type;
    std::string payload;
    ASSERT_EQ(readFrame(fd, type, payload), ReadStatus::Ok);
    ASSERT_EQ(type, MsgType::ErrorReply);
    ErrorReply err;
    ASSERT_TRUE(ErrorReply::decode(payload, err));
    EXPECT_EQ(err.code, ServeError::BadRequest);

    // Framing is unrecoverable: the server closes after the reply.
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);
    ASSERT_TRUE(waitFor([&] {
        return server.statsSnapshot().active_connections == 0;
    }));

    // The event loop survived; a fresh connection is fully served.
    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest req;
    req.point = fastPoint();
    EXPECT_EQ(c.run(req).error, ServeError::None);
    server.shutdown();
}

TEST(ServeServer, PeerHangupDuringExecutionDropsReplyAndCloses)
{
    const ServerOptions opts = fastServerOptions(15);
    Server server(opts);
    server.start();

    // Regression: POLLHUP on a busy connection (event mask 0) was
    // reported on every poll round and never consumed, so the loop
    // busy-spun until the completion arrived.
    server.scheduler().pauseDispatch();
    const int fd = rawConnect(opts.unix_path);
    ASSERT_GE(fd, 0);
    RunRequest req;
    req.point = fastPoint();
    const std::string frame =
        encodeFrame(MsgType::RunRequest, req.encode());
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              ssize_t(frame.size()));
    ASSERT_TRUE(waitFor(
        [&] { return server.scheduler().stats().submitted >= 1; }));
    ASSERT_EQ(server.statsSnapshot().active_connections, 1u);

    ::close(fd); // hang up while the request executes

    // The loop must park the fd, not spin on the perpetual POLLHUP:
    // ~300 ms hung-up-while-busy should cost ~0 process CPU (every
    // other thread is blocked on a condvar or future here).
    rusage before{};
    ASSERT_EQ(::getrusage(RUSAGE_SELF, &before), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    rusage after{};
    ASSERT_EQ(::getrusage(RUSAGE_SELF, &after), 0);
    auto cpuMs = [](const rusage &r) {
        return double(r.ru_utime.tv_sec + r.ru_stime.tv_sec) * 1000.0
               + double(r.ru_utime.tv_usec + r.ru_stime.tv_usec)
                     / 1000.0;
    };
    EXPECT_LT(cpuMs(after) - cpuMs(before), 150.0);

    server.scheduler().resumeDispatch();

    // The late completion is dropped and the connection reaped.
    ASSERT_TRUE(waitFor([&] {
        return server.statsSnapshot().active_connections == 0;
    }));

    // The server stays healthy for new clients.
    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest ok;
    ok.point = fastPoint("179.art");
    EXPECT_EQ(c.run(ok).error, ServeError::None);
    server.shutdown();
}

TEST(ServeScheduler, OverloadedRepliesCarryRetryAfterHint)
{
    Scheduler::Options opts = fastSchedOptions();
    opts.max_queue = 1;
    Scheduler sched(opts);

    sched.pauseDispatch();
    Scheduler::Ticket queued =
        sched.submit(resolvePoint(fastPoint("186.crafty"), {}), 0);
    Scheduler::Ticket rejected =
        sched.submit(resolvePoint(fastPoint("179.art"), {}), 0);
    ASSERT_TRUE(rejected.rejected);

    const Scheduler::OutcomePtr oc = rejected.future.get();
    EXPECT_EQ(oc->error, ServeError::Overloaded);
    // The server-computed backoff hint is present and sane; the retry
    // policy (serve/retry.hh) floors its next sleep on it.
    EXPECT_GE(oc->retry_after_ms, 25u);
    EXPECT_LE(oc->retry_after_ms, 5000u);

    sched.resumeDispatch();
    EXPECT_EQ(queued.future.get()->error, ServeError::None);
    sched.awaitIdle();
}

#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED

namespace
{

/** Disarm on scope exit so a failing test never poisons the rest. */
struct ScopedDisarm
{
    ~ScopedDisarm() { fault::FaultInjector::instance().disarm(); }
};

} // namespace

TEST(ServeScheduler, WatchdogFailsStalledDispatchWithTypedError)
{
    ScopedDisarm guard;
    Scheduler::Options opts = fastSchedOptions();
    opts.watchdog_ms = 50;
    Scheduler sched(opts);

    fault::FaultInjector::instance().arm(
        fault::FaultPlan::parse("sched.batch=stall:ms=800:max=1"));

    Scheduler::Ticket t = sched.submit(resolvePoint(fastPoint(), {}), 0);
    const Scheduler::OutcomePtr oc = t.future.get();
    EXPECT_EQ(oc->error, ServeError::Stalled);
    EXPECT_NE(oc->message.find("no progress"), std::string::npos);

    // The injected stall is finite: the batch completes underneath,
    // its late result is dropped (the client already has the typed
    // error), and idle/drain do not hang.
    sched.awaitIdle();
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.stalled, 1u);
    EXPECT_EQ(s.simulated, 0u); // late result never counted as success
}

TEST(ServeServer, ShortWritesAndInterruptedReadsStillDeliverExactly)
{
    ScopedDisarm guard;
    const ServerOptions opts = fastServerOptions(8);
    Server server(opts);
    server.start();

    // Every socket write trickles out one byte per send(); every third
    // read attempt is interrupted first. The framing layer must absorb
    // both without corrupting a single bit of the reply.
    fault::FaultInjector::instance().arm(fault::FaultPlan::parse(
        "serve.sock.write=short;serve.sock.read=eintr:every=3"));

    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest req;
    req.point = fastPoint("186.crafty", "PI");
    const PointReply reply = c.run(req);
    fault::FaultInjector::instance().disarm();

    ASSERT_EQ(reply.error, ServeError::None) << reply.message;
    RunProtocol proto;
    proto.warmup_cycles = 1000;
    proto.measure_cycles = 10000;
    SimConfig direct;
    ASSERT_TRUE(parseDtmPolicyKind("PI", direct.policy.kind));
    const RunResult expect = ExperimentRunner(proto).runOne(
        specProfile("186.crafty"), direct.policy, direct);
    expectSameResult(reply.result, expect);
    server.shutdown();
}

TEST(ServeServer, AbortedConnectionComesBackAsTypedTransport)
{
    ScopedDisarm guard;
    const ServerOptions opts = fastServerOptions(9);
    Server server(opts);
    server.start();

    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    // The server aborts its first read of the request: the client sees
    // a broken connection — a typed Transport reply, not process death.
    fault::FaultInjector::instance().arm(
        fault::FaultPlan::parse("serve.sock.read=abort:max=1"));
    RunRequest req;
    req.point = fastPoint("186.crafty", "none");
    const PointReply broken = c.run(req);
    fault::FaultInjector::instance().disarm();
    EXPECT_EQ(broken.error, ServeError::Transport);

    // A fresh connection works again (the server survived the abort).
    ServeClient c2 = ServeClient::connectUnix(opts.unix_path);
    EXPECT_EQ(c2.run(req).error, ServeError::None);
    server.shutdown();
}

#endif // THERMCTL_FAULTS_ENABLED

TEST(ServeServer, DrainCompletesInflightThenRefusesNewWork)
{
    const ServerOptions opts = fastServerOptions(7);
    Server server(opts);
    server.start();

    server.scheduler().pauseDispatch();
    PointReply inflight_reply;
    std::thread inflight([&] {
        ServeClient c = ServeClient::connectUnix(opts.unix_path);
        RunRequest req;
        req.point = fastPoint("186.crafty", "PI");
        inflight_reply = c.run(req);
    });
    ASSERT_TRUE(waitFor(
        [&] { return server.scheduler().stats().submitted >= 1; }));

    {
        ServeClient c = ServeClient::connectUnix(opts.unix_path);
        EXPECT_FALSE(c.drain()); // first drain request
    }
    ASSERT_TRUE(waitFor([&] { return server.drainRequested(); }));

    // The admitted request still completes with a real result.
    inflight.join();
    EXPECT_EQ(inflight_reply.error, ServeError::None)
        << inflight_reply.message;
    EXPECT_EQ(inflight_reply.result.benchmark, "186.crafty");

    // New work is refused with the typed Draining error.
    Scheduler::Ticket late = server.scheduler().submit(
        resolvePoint(fastPoint("179.art"), {}), 0);
    EXPECT_TRUE(late.rejected);
    EXPECT_EQ(late.future.get()->error, ServeError::Draining);

    server.shutdown();
}

// ----------------------------------------------- incremental framing

TEST(FrameAssembler, ByteAtATimeFeedYieldsTheFrameOnce)
{
    const std::string frame = encodeFrame(MsgType::StatsRequest, "");
    FrameAssembler fa;
    MsgType type;
    std::string payload;
    for (char b : frame) {
        ASSERT_EQ(fa.next(type, payload), FrameAssembler::Next::NeedMore);
        fa.feed(std::string_view(&b, 1));
    }
    ASSERT_EQ(fa.next(type, payload), FrameAssembler::Next::Frame);
    EXPECT_EQ(type, MsgType::StatsRequest);
    EXPECT_TRUE(payload.empty());
    EXPECT_EQ(fa.next(type, payload), FrameAssembler::Next::NeedMore);
    EXPECT_EQ(fa.buffered(), 0u);
}

TEST(FrameAssembler, OneBurstCanCarryManyFrames)
{
    RunRequest req;
    req.point = fastPoint();
    std::string burst = encodeFrame(MsgType::RunRequest, req.encode());
    burst += encodeFrame(MsgType::StatsRequest, "");
    burst += encodeFrame(MsgType::DrainRequest, "");

    FrameAssembler fa;
    fa.feed(burst);
    MsgType type;
    std::string payload;
    ASSERT_EQ(fa.next(type, payload), FrameAssembler::Next::Frame);
    EXPECT_EQ(type, MsgType::RunRequest);
    RunRequest round;
    ASSERT_TRUE(RunRequest::decode(payload, round));
    EXPECT_EQ(round.point.benchmark, req.point.benchmark);
    ASSERT_EQ(fa.next(type, payload), FrameAssembler::Next::Frame);
    EXPECT_EQ(type, MsgType::StatsRequest);
    ASSERT_EQ(fa.next(type, payload), FrameAssembler::Next::Frame);
    EXPECT_EQ(type, MsgType::DrainRequest);
    EXPECT_EQ(fa.next(type, payload), FrameAssembler::Next::NeedMore);
}

TEST(FrameAssembler, BadMagicIsSticky)
{
    FrameAssembler fa;
    fa.feed("XXXXXXXXXXXX");
    MsgType type;
    std::string payload;
    FrameStatus why = FrameStatus::Ok;
    ASSERT_EQ(fa.next(type, payload, &why), FrameAssembler::Next::Bad);
    EXPECT_EQ(why, FrameStatus::BadMagic);
    // Even valid bytes afterwards cannot resynchronize the stream.
    fa.feed(encodeFrame(MsgType::StatsRequest, ""));
    EXPECT_EQ(fa.next(type, payload, &why), FrameAssembler::Next::Bad);
}

// --------------------------------------------- event-core edge cases

TEST(ServeServer, SlowReaderTricklingOneByteGetsAnIntactReply)
{
    ServerOptions opts = fastServerOptions(10);
    opts.sndbuf = 1; // kernel clamps to its minimum: forces EAGAIN
    Server server(opts);
    server.start();

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    // Shrink the receive window too so the reply cannot fit in kernel
    // buffers and the server must take the POLLOUT partial-write path.
    const int tiny = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

    // A 12-point grid makes the encoded reply far larger than the
    // minimum kernel send buffer, so it cannot flush in one send().
    SweepRequest req;
    req.benchmarks = {"186.crafty", "179.art"};
    req.policies = {"none", "toggle1", "toggle2", "P", "PI", "PID"};
    req.warmup_cycles = 1000;
    req.measure_cycles = 10000;
    const std::string frame =
        encodeFrame(MsgType::SweepRequest, req.encode());
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              ssize_t(frame.size()));

    // Read the reply one byte at a time, pausing every so often, so the
    // server's write buffer drains in dribbles across many loop turns.
    FrameAssembler fa;
    MsgType type = MsgType::ErrorReply;
    std::string payload;
    FrameAssembler::Next what = FrameAssembler::Next::NeedMore;
    std::size_t reads = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (what == FrameAssembler::Next::NeedMore) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        char b;
        const ssize_t n = ::recv(fd, &b, 1, 0);
        ASSERT_GT(n, 0) << "connection broke mid-reply";
        fa.feed(std::string_view(&b, 1));
        if (++reads % 512 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        what = fa.next(type, payload);
    }
    ASSERT_EQ(what, FrameAssembler::Next::Frame);
    ASSERT_EQ(type, MsgType::SweepReply);
    SweepReply reply;
    ASSERT_TRUE(SweepReply::decode(payload, reply));
    ASSERT_EQ(reply.points.size(), 12u);
    for (const auto &p : reply.points)
        EXPECT_EQ(p.error, ServeError::None) << p.message;
    ::close(fd);
    server.shutdown();
}

TEST(ServeServer, WriteBufferBackpressureParksANonReadingPeer)
{
    ServerOptions opts = fastServerOptions(11);
    opts.sndbuf = 1;            // minimal kernel-side reply buffering
    opts.max_write_buffer = 1024; // tiny high water: trip it early
    Server server(opts);
    server.start();

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // Pipeline a burst of requests and read NOTHING: replies must pile
    // up against the high water, not into unbounded server memory.
    constexpr std::uint64_t kBurst = 25;
    RunRequest req;
    req.point = fastPoint("186.crafty", "none");
    const std::string frame =
        encodeFrame(MsgType::RunRequest, req.encode());
    std::string burst;
    for (std::uint64_t i = 0; i < kBurst; ++i)
        burst += frame;
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              ssize_t(burst.size()));

    // Execution stalls once the unread replies cross the high water.
    // Requests run serially (one outstanding per connection), so the
    // counter also holds still *between* executions — only a sustained
    // quiet period, much longer than one simulation, is a real park.
    std::uint64_t plateau = 0;
    auto changed_at = std::chrono::steady_clock::now();
    ASSERT_TRUE(waitFor([&] {
        const std::uint64_t now = server.statsSnapshot().requests_total;
        if (now != plateau) {
            plateau = now;
            changed_at = std::chrono::steady_clock::now();
            return false;
        }
        return now > 0
               && std::chrono::steady_clock::now() - changed_at
                      > std::chrono::milliseconds(1500);
    }, 30000));
    EXPECT_EQ(server.statsSnapshot().requests_total, plateau);
    EXPECT_LT(plateau, kBurst);

    // Start reading: the backlog drains and every reply arrives intact.
    FrameAssembler fa;
    std::uint64_t got = 0;
    char buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (got < kBurst) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "connection broke mid-drain";
        fa.feed(std::string_view(buf, std::size_t(n)));
        for (;;) {
            MsgType type;
            std::string payload;
            if (fa.next(type, payload) != FrameAssembler::Next::Frame)
                break;
            ASSERT_EQ(type, MsgType::RunReply);
            RunReply reply;
            ASSERT_TRUE(RunReply::decode(payload, reply));
            EXPECT_EQ(reply.point.error, ServeError::None)
                << reply.point.message;
            got++;
        }
    }
    EXPECT_EQ(got, kBurst);
    EXPECT_EQ(server.statsSnapshot().requests_total, kBurst);
    ::close(fd);
    server.shutdown();
}

TEST(ServeServer, IdleConnectionsAreEvictedOnTimeout)
{
    ServerOptions opts = fastServerOptions(12);
    opts.idle_timeout_ms = 150;
    Server server(opts);
    server.start();

    ServeClient c = ServeClient::connectUnix(opts.unix_path);
    RunRequest req;
    req.point = fastPoint("186.crafty", "none");
    ASSERT_EQ(c.run(req).error, ServeError::None);

    // Go quiet: the loop must evict us without any traffic.
    ASSERT_TRUE(waitFor([&] { return server.idleEvicted() >= 1; }));
    ASSERT_TRUE(waitFor(
        [&] { return server.statsSnapshot().active_connections == 0; }));

    // The evicted socket is dead for the client...
    EXPECT_EQ(c.run(req).error, ServeError::Transport);
    // ...and a fresh connection works (eviction, not shutdown).
    ServeClient c2 = ServeClient::connectUnix(opts.unix_path);
    EXPECT_EQ(c2.run(req).error, ServeError::None);
    server.shutdown();
}

// ------------------------------------------------ redesigned surface

TEST(ServeOptions, SchedulerSliceCarriesEveryKnob)
{
    ServerOptions opts;
    opts.sweep.use_cache = true;
    opts.sweep.cache_dir = "/tmp/cache";
    opts.sweep.jobs = 3;
    opts.max_queue = 99;
    opts.dispatchers = 5;
    opts.batch_window_ms = 11;
    opts.watchdog_ms = 2200;

    const Scheduler::Options sched = opts.schedulerOptions();
    EXPECT_EQ(sched.max_queue, 99u);
    EXPECT_EQ(sched.dispatchers, 5u);
    EXPECT_EQ(sched.batch_window_ms, 11u);
    EXPECT_EQ(sched.watchdog_ms, 2200u);
    EXPECT_TRUE(sched.sweep.use_cache);
    EXPECT_EQ(sched.sweep.cache_dir, "/tmp/cache");
    EXPECT_EQ(sched.sweep.jobs, 3u);
}

TEST(ServeConnect, FactoryServesDataAndControlPlanesAlike)
{
    const ServerOptions opts = fastServerOptions(13);
    Server server(opts);
    server.start();

    ClientOptions copts;
    copts.endpoint = "unix:" + opts.unix_path;
    copts.retry = false;
    const std::unique_ptr<Client> client = serve::connect(copts);

    RunRequest req;
    req.point = fastPoint("186.crafty", "PI");
    const PointReply viaFactory = client->run(req);
    ASSERT_EQ(viaFactory.error, ServeError::None) << viaFactory.message;

    ServeClient direct = ServeClient::connectUnix(opts.unix_path);
    const PointReply viaDirect = direct.run(req);
    ASSERT_EQ(viaDirect.error, ServeError::None);
    expectSameResult(viaFactory.result, viaDirect.result);

    const StatsReply stats = client->stats();
    EXPECT_GE(stats.run_requests, 2u);
    EXPECT_EQ(client->attemptsTotal(), 1u);
    server.shutdown();
}

TEST(ServeConnect, NoRetryFactoryReportsTransportWithoutSleeping)
{
    ClientOptions copts;
    copts.endpoint = "unix:/nonexistent/thermctl-test.sock";
    copts.retry = false;
    const std::unique_ptr<Client> client = serve::connect(copts);

    const auto t0 = std::chrono::steady_clock::now();
    RunRequest req;
    req.point = fastPoint();
    const PointReply reply = client->run(req);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(reply.error, ServeError::Transport);
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
    EXPECT_EQ(client->attemptsTotal(), 1u);
}

// ------------------------------------------------------- ping (wire v4)

TEST(ServeProtocol, PingFramesRoundTrip)
{
    EXPECT_TRUE(msgTypeValid(
        static_cast<std::uint8_t>(MsgType::PingRequest)));
    EXPECT_TRUE(
        msgTypeValid(static_cast<std::uint8_t>(MsgType::PingReply)));

    PingRequest req;
    PingRequest req_out;
    EXPECT_TRUE(req.encode().empty());
    EXPECT_TRUE(PingRequest::decode(req.encode(), req_out));

    PingReply pong;
    pong.draining = true;
    pong.queue_depth = 42;
    pong.stalled = 3;
    PingReply out;
    ASSERT_TRUE(PingReply::decode(pong.encode(), out));
    EXPECT_EQ(out.version, kWireVersion);
    EXPECT_TRUE(out.draining);
    EXPECT_EQ(out.queue_depth, 42u);
    EXPECT_EQ(out.stalled, 3u);
    // Canonical form: decode -> encode is bit-stable.
    EXPECT_EQ(out.encode(), pong.encode());
}

TEST(ServeProtocol, PingDecodersRejectHostileBytes)
{
    // A PingRequest carries no payload; trailing bytes are an error,
    // not ignorable slack (strict decoders keep the fuzz surface flat).
    PingRequest req_out;
    EXPECT_FALSE(PingRequest::decode(std::string_view("\x00", 1),
                                     req_out));
    EXPECT_FALSE(PingRequest::decode("garbage", req_out));

    PingReply pong;
    pong.queue_depth = 7;
    const std::string bytes = pong.encode();
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        PingReply out;
        EXPECT_FALSE(PingReply::decode(bytes.substr(0, n), out))
            << "accepted truncated PingReply of " << n << " bytes";
    }
    // Non-boolean draining byte must be rejected outright.
    std::string bad = bytes;
    bad[1] = '\x02';
    PingReply out;
    EXPECT_FALSE(PingReply::decode(bad, out));
    // Trailing garbage after a well-formed reply is rejected too.
    PingReply trail_out;
    EXPECT_FALSE(PingReply::decode(bytes + "x", trail_out));
}

TEST(ServeServer, PingReportsVersionDrainAndQueueDepth)
{
    const ServerOptions opts = fastServerOptions(16);
    Server server(opts);
    server.start();

    ServeClient client = ServeClient::connectUnix(opts.unix_path);
    PingReply pong;
    std::string error;
    ASSERT_TRUE(client.ping(pong, error)) << error;
    EXPECT_EQ(pong.version, kWireVersion);
    EXPECT_FALSE(pong.draining);
    EXPECT_EQ(pong.stalled, 0u);

    // Park a request on a paused scheduler: the probe must see the
    // queue depth without getting stuck behind the parked work (pings
    // answer from connection threads, not scheduler workers).
    server.scheduler().pauseDispatch();
    std::thread parked([&] {
        ServeClient c = ServeClient::connectUnix(opts.unix_path);
        RunRequest req;
        req.point = fastPoint("179.art", "PI");
        (void)c.run(req);
    });
    ASSERT_TRUE(waitFor(
        [&] { return server.scheduler().stats().queue_depth > 0; }));
    ASSERT_TRUE(client.ping(pong, error)) << error;
    EXPECT_GE(pong.queue_depth, 1u);
    server.scheduler().resumeDispatch();
    parked.join();

    // Once drain starts the server stops reading and closes idle
    // connections, so a probe fails fast with a transport error rather
    // than hanging — exactly the signal a coordinator quarantines on.
    {
        ServeClient c = ServeClient::connectUnix(opts.unix_path);
        (void)c.drain();
    }
    ASSERT_TRUE(waitFor([&] { return server.drainRequested(); }));
    EXPECT_FALSE(client.ping(pong, error));
    EXPECT_FALSE(error.empty());
    server.shutdown();
}

TEST(ServeServer, SweepCarriesMulticoreKnobsToEveryPoint)
{
    // Regression: the server's SweepRequest fan-out dropped the
    // multicore knobs (num_cores/coupling_r/chip_budget/budget_policy),
    // silently simulating single-core points. The sweep path and the
    // run path must agree bit-for-bit on a multicore spec.
    const ServerOptions opts = fastServerOptions(17);
    Server server(opts);
    server.start();

    PointSpec spec = fastPoint("186.crafty", "PI");
    spec.num_cores = 2;
    spec.chip_budget = 45.0;
    spec.budget_policy = 1; // demand-proportional

    ServeClient client = ServeClient::connectUnix(opts.unix_path);
    RunRequest run_req;
    run_req.point = spec;
    const PointReply via_run = client.run(run_req);
    ASSERT_EQ(via_run.error, ServeError::None) << via_run.message;

    SweepRequest sweep_req;
    sweep_req.benchmarks = {spec.benchmark};
    sweep_req.policies = {spec.policy};
    sweep_req.warmup_cycles = spec.warmup_cycles;
    sweep_req.measure_cycles = spec.measure_cycles;
    sweep_req.num_cores = spec.num_cores;
    sweep_req.coupling_r = spec.coupling_r;
    sweep_req.chip_budget = spec.chip_budget;
    sweep_req.budget_policy = spec.budget_policy;
    const SweepReply via_sweep = client.sweep(sweep_req);
    ASSERT_EQ(via_sweep.points.size(), 1u);
    ASSERT_EQ(via_sweep.points[0].error, ServeError::None)
        << via_sweep.points[0].message;

    EXPECT_EQ(serializeRunResult(via_sweep.points[0].result),
              serializeRunResult(via_run.result));
    server.shutdown();
}
