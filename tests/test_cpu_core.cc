/**
 * @file
 * Tests for the out-of-order core using small hand-built instruction
 * loops with known ILP characteristics.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/core.hh"

namespace thermctl
{
namespace
{

/** A looping stream over a fixed body of micro-ops. */
class LoopStream : public InstructionStream
{
  public:
    explicit LoopStream(std::vector<MicroOp> body)
        : body_(std::move(body))
    {
        // Assign consecutive PCs and close the loop with the final op.
        Addr pc = 0x1000;
        for (auto &op : body_) {
            op.pc = pc;
            pc += 4;
        }
        MicroOp &last = body_.back();
        last.op = OpClass::Branch;
        last.is_branch = true;
        last.is_conditional = false;
        last.taken = true;
        last.target = body_.front().pc;
    }

    MicroOp
    next() override
    {
        MicroOp op = body_[pos_];
        pos_ = (pos_ + 1) % body_.size();
        ++served_;
        return op;
    }

    MicroOp
    synthesizeAt(Addr pc) override
    {
        MicroOp op;
        op.pc = pc;
        op.op = OpClass::IntAlu;
        op.dest = 31;
        return op;
    }

    std::uint64_t served() const { return served_; }

  private:
    std::vector<MicroOp> body_;
    std::size_t pos_ = 0;
    std::uint64_t served_ = 0;
};

MicroOp
alu(RegId dest = kNoReg, RegId src = kNoReg)
{
    MicroOp op;
    op.op = OpClass::IntAlu;
    op.dest = dest;
    if (src != kNoReg) {
        op.srcs[0] = src;
        op.num_srcs = 1;
    }
    return op;
}

std::vector<MicroOp>
independentBody(int n)
{
    std::vector<MicroOp> body;
    for (int i = 0; i < n; ++i)
        body.push_back(alu());
    body.push_back(alu()); // becomes the loop branch
    return body;
}

TEST(Core, IndependentOpsApproachCommitWidth)
{
    LoopStream stream(independentBody(63));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 50000; ++i)
        core.tick();
    // Commit width is 4; the loop branch costs a fetch-group break.
    EXPECT_GT(core.stats().ipc(), 3.0);
    EXPECT_LE(core.stats().ipc(), 4.0);
}

TEST(Core, DependentChainSerializes)
{
    // op[i] reads the register written by op[i-1].
    std::vector<MicroOp> body;
    for (int i = 0; i < 32; ++i) {
        const RegId dst = static_cast<RegId>(1 + (i % 2));
        const RegId src = static_cast<RegId>(1 + ((i + 1) % 2));
        body.push_back(alu(dst, src));
    }
    body.push_back(alu());
    LoopStream stream(std::move(body));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 50000; ++i)
        core.tick();
    EXPECT_GT(core.stats().ipc(), 0.8);
    EXPECT_LT(core.stats().ipc(), 1.3);
}

TEST(Core, UnpipelinedDivideThrottles)
{
    std::vector<MicroOp> body;
    for (int i = 0; i < 8; ++i) {
        MicroOp op = alu(static_cast<RegId>(1), static_cast<RegId>(1));
        op.op = OpClass::IntDiv;
        body.push_back(op);
    }
    body.push_back(alu());
    LoopStream stream(std::move(body));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 50000; ++i)
        core.tick();
    // A dependent chain of 20-cycle unpipelined divides: ~1/20 IPC.
    EXPECT_LT(core.stats().ipc(), 0.1);
    EXPECT_GT(core.stats().ipc(), 0.03);
}

TEST(Core, IndependentLoadsBeatDependentLoads)
{
    auto make_load = [](Addr addr, RegId dest, RegId addr_src) {
        MicroOp op;
        op.op = OpClass::Load;
        op.mem_addr = addr;
        op.dest = dest;
        if (addr_src != kNoReg) {
            op.srcs[0] = addr_src;
            op.num_srcs = 1;
        }
        return op;
    };

    std::vector<MicroOp> indep;
    for (int i = 0; i < 16; ++i)
        indep.push_back(make_load(0x2000 + 8 * i, kNoReg, kNoReg));
    indep.push_back(alu());

    std::vector<MicroOp> chained;
    for (int i = 0; i < 16; ++i) {
        chained.push_back(
            make_load(0x2000 + 8 * i, static_cast<RegId>(1),
                      static_cast<RegId>(1)));
    }
    chained.push_back(alu());

    auto run_ipc = [](std::vector<MicroOp> body) {
        LoopStream stream(std::move(body));
        MemoryHierarchy mem;
        Core core(CpuConfig{}, stream, mem);
        for (int i = 0; i < 30000; ++i)
            core.tick();
        return core.stats().ipc();
    };

    const double ipc_indep = run_ipc(std::move(indep));
    const double ipc_chained = run_ipc(std::move(chained));
    EXPECT_GT(ipc_indep, 1.5 * ipc_chained);
}

TEST(Core, FetchGatingStopsAndResumesProgress)
{
    LoopStream stream(independentBody(31));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 10000; ++i)
        core.tick();
    const auto committed_before = core.stats().committed;
    EXPECT_GT(committed_before, 0u);

    core.setFetchEnabled(false);
    for (int i = 0; i < 1000; ++i)
        core.tick();
    const auto committed_gated = core.stats().committed;
    // The pipeline drains: far fewer than 1000 cycles of commits.
    EXPECT_LT(committed_gated - committed_before, 200u);
    EXPECT_EQ(core.stats().fetch_gated_cycles, 1000u);

    core.setFetchEnabled(true);
    for (int i = 0; i < 2000; ++i)
        core.tick();
    EXPECT_GT(core.stats().committed, committed_gated + 1000u);
}

/**
 * A loop whose terminating conditional branch follows an LCG direction
 * pattern the predictor cannot learn: taken repeats the loop body,
 * not-taken runs a short trailer that jumps back unconditionally.
 * PC continuity holds on both paths, as the fetch engine requires.
 */
class RandomBranchStream : public InstructionStream
{
  public:
    MicroOp
    next() override
    {
        MicroOp op;
        switch (pos_) {
          case 0: case 1: case 2: case 3: case 4:
            op.pc = 0x1000 + 4 * pos_;
            op.op = OpClass::IntAlu;
            ++pos_;
            return op;
          case 5: { // conditional branch at 0x1014, taken -> 0x1000
            op.pc = 0x1014;
            op.op = OpClass::Branch;
            op.is_branch = true;
            op.is_conditional = true;
            op.target = 0x1000;
            state_ = state_ * 6364136223846793005ULL
                + 1442695040888963407ULL;
            op.taken = (state_ >> 62) & 1;
            pos_ = op.taken ? 0 : 6;
            return op;
          }
          case 6: // trailer op at 0x1018
            op.pc = 0x1018;
            op.op = OpClass::IntAlu;
            pos_ = 7;
            return op;
          default: // unconditional jump at 0x101c back to 0x1000
            op.pc = 0x101c;
            op.op = OpClass::Branch;
            op.is_branch = true;
            op.taken = true;
            op.target = 0x1000;
            pos_ = 0;
            return op;
        }
    }

    MicroOp
    synthesizeAt(Addr pc) override
    {
        MicroOp op;
        op.pc = pc;
        op.op = OpClass::IntAlu;
        return op;
    }

  private:
    int pos_ = 0;
    std::uint64_t state_ = 7;
};

TEST(Core, MispredictsSquashWrongPathAndRecover)
{
    RandomBranchStream stream;
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 30000; ++i)
        core.tick();
    // Roughly half the branch executions mispredict.
    EXPECT_GT(core.stats().squashes, 200u);
    EXPECT_GT(core.stats().wrong_path_ops, 500u);
    EXPECT_GT(core.stats().committed, 1000u);
    // Mispredictions cost cycles: IPC well below the 4-wide peak.
    EXPECT_LT(core.stats().ipc(), 3.0);
    const auto &bp = core.predictor().stats();
    EXPECT_GT(bp.dir_wrong, 200u);
}

TEST(Core, StoreLoadForwardingCompletes)
{
    std::vector<MicroOp> body;
    for (int i = 0; i < 8; ++i) {
        MicroOp st;
        st.op = OpClass::Store;
        st.mem_addr = 0x3000 + 8 * i;
        st.srcs[0] = 1;
        st.srcs[1] = 2;
        st.num_srcs = 2;
        body.push_back(st);

        MicroOp ld;
        ld.op = OpClass::Load;
        ld.mem_addr = 0x3000 + 8 * i;
        ld.dest = static_cast<RegId>(3 + (i % 4));
        body.push_back(ld);
    }
    body.push_back(alu());
    LoopStream stream(std::move(body));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 30000; ++i)
        core.tick();
    // Forwarded loads never touch the D-cache; with 16 of 17 body ops
    // being memory ops the pair pattern must still flow at a healthy
    // rate through 2 memory ports.
    EXPECT_GT(core.stats().ipc(), 1.0);
}

TEST(Core, OccupancyBoundsRespected)
{
    LoopStream stream(independentBody(63));
    MemoryHierarchy mem;
    CpuConfig cfg;
    Core core(cfg, stream, mem);
    for (int i = 0; i < 20000; ++i) {
        core.tick();
        ASSERT_LE(core.windowOccupancy(), cfg.window_size);
        ASSERT_LE(core.lsqOccupancy(), cfg.lsq_size);
    }
}

TEST(Core, DeterministicAcrossInstances)
{
    auto run = [] {
        LoopStream stream(independentBody(31));
        MemoryHierarchy mem;
        Core core(CpuConfig{}, stream, mem);
        for (int i = 0; i < 20000; ++i)
            core.tick();
        return core.stats().committed;
    };
    EXPECT_EQ(run(), run());
}

TEST(Core, RejectsBadConfig)
{
    LoopStream stream(independentBody(7));
    MemoryHierarchy mem;
    CpuConfig cfg;
    cfg.fetch_width = 0;
    EXPECT_THROW(Core(cfg, stream, mem), FatalError);
    cfg = CpuConfig{};
    cfg.window_size = 0;
    EXPECT_THROW(Core(cfg, stream, mem), FatalError);
}

TEST(Core, ResetStatsClearsCounters)
{
    LoopStream stream(independentBody(15));
    MemoryHierarchy mem;
    Core core(CpuConfig{}, stream, mem);
    for (int i = 0; i < 1000; ++i)
        core.tick();
    EXPECT_GT(core.stats().cycles, 0u);
    core.resetStats();
    EXPECT_EQ(core.stats().cycles, 0u);
    EXPECT_EQ(core.stats().committed, 0u);
}

} // namespace
} // namespace thermctl
