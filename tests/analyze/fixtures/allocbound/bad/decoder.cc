// Bad fixture: hand-broken variants of the PR-4 decoder fixes. The
// count prefix is trusted before any bound check — a 13-byte hostile
// payload forces a multi-hundred-MB reserve — and the frame path
// resizes from an out-param whose decode status is never tested.
// alloc-bound must flag all three sinks.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

struct ByteReader
{
    explicit ByteReader(std::string_view buf);
    std::uint64_t u64();
    std::string str();
    bool ok() const;
    std::size_t remaining() const;
};

struct PointReply
{
    double server_ms = 0.0;
};

bool decodePointReply(ByteReader &r, PointReply &p);

bool
decodeStrings(ByteReader &r, std::vector<std::string> &v)
{
    const std::uint64_t n = r.u64();
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        v.push_back(r.str());
    return r.ok();
}

bool
decodeSweepReply(std::string_view payload, std::vector<PointReply> &points)
{
    ByteReader r(payload);
    points.reserve(r.u64());
    while (r.ok() && r.remaining() > 0) {
        PointReply p;
        if (!decodePointReply(r, p))
            return false;
        points.push_back(p);
    }
    return r.ok();
}

struct FrameHeader
{
    std::uint32_t payload_len = 0;
};

enum class FrameStatus
{
    Ok,
    BadLength,
};

FrameStatus decodeFrameHeader(std::string_view header, FrameHeader &out);

bool
readFramePayload(std::string_view header, std::string &payload)
{
    FrameHeader h;
    (void)decodeFrameHeader(header, h);
    payload.resize(h.payload_len);
    return true;
}
