// Bad fixture: the classic trace header bomb. The count is memcpy'd
// from the file bytes and trusted as-is — a 16-byte file declaring
// 2^60 records drives the reserve. alloc-bound must flag it.
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

struct TraceHeader
{
    std::uint32_t magic = 0;
    std::uint64_t count = 0;
};

struct MicroOp
{
    std::uint8_t op = 0;
};

inline constexpr std::uint32_t kTraceMagic = 0x54435254;

bool
decodeTrace(std::string_view data, std::vector<MicroOp> &ops,
            std::string &error)
{
    if (data.size() < sizeof(TraceHeader)) {
        error = "shorter than a trace header";
        return false;
    }
    TraceHeader hdr{};
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    if (hdr.magic != kTraceMagic) {
        error = "bad magic";
        return false;
    }
    ops.reserve(hdr.count);
    return true;
}
