// Good fixture: the PR-4 decoder fixes from src/serve/protocol.cc.
// Every ByteReader-sourced count passes a dominating guard before it
// reaches reserve(): the byte-length cross-check (remaining()/8 and
// remaining()/kMinPointReplyBytes) and, for the frame path, the status
// test of the decodeFrameHeader out-param. alloc-bound must stay
// silent here.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

struct ByteReader
{
    explicit ByteReader(std::string_view buf);
    std::uint64_t u64();
    std::string str();
    bool ok() const;
    std::size_t remaining() const;
};

inline constexpr std::size_t kMinPointReplyBytes = 19;

struct PointReply
{
    double server_ms = 0.0;
};

bool decodePointReply(ByteReader &r, PointReply &p);

bool
decodeStrings(ByteReader &r, std::vector<std::string> &v)
{
    const std::uint64_t n = r.u64();
    // Every encoded string occupies at least its 8-byte length prefix,
    // so a count beyond remaining()/8 is provably corrupt.
    if (!r.ok() || n > r.remaining() / 8)
        return false;
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        v.push_back(r.str());
    return r.ok();
}

bool
decodeSweepReply(std::string_view payload, std::vector<PointReply> &points)
{
    ByteReader r(payload);
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() / kMinPointReplyBytes)
        return false;
    points.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        PointReply p;
        if (!decodePointReply(r, p))
            return false;
        points.push_back(p);
    }
    return r.ok();
}

struct FrameHeader
{
    std::uint32_t payload_len = 0;
};

enum class FrameStatus
{
    Ok,
    BadLength,
};

FrameStatus decodeFrameHeader(std::string_view header, FrameHeader &out);

bool
readFramePayload(std::string_view header, std::string &payload)
{
    FrameHeader h;
    const FrameStatus fs = decodeFrameHeader(header, h);
    if (fs != FrameStatus::Ok)
        return false;
    payload.resize(h.payload_len);
    return true;
}
