// Good fixture: the PR-4 trace-decoder shape from src/workload/trace.cc.
// The header count is memcpy'd straight out of the file bytes (tainted),
// but the byte-length cross-check against sizeof(TraceRecord) dominates
// the reserve, so alloc-bound must stay silent.
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

struct TraceHeader
{
    std::uint32_t magic = 0;
    std::uint64_t count = 0;
};

struct TraceRecord
{
    std::uint8_t op = 0;
};

struct MicroOp
{
    std::uint8_t op = 0;
};

inline constexpr std::uint32_t kTraceMagic = 0x54435254;

bool
decodeTrace(std::string_view data, std::vector<MicroOp> &ops,
            std::string &error)
{
    if (data.size() < sizeof(TraceHeader)) {
        error = "shorter than a trace header";
        return false;
    }
    TraceHeader hdr{};
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    if (hdr.magic != kTraceMagic) {
        error = "bad magic";
        return false;
    }
    // The byte count is ground truth; the header count merely claims.
    const std::size_t body = data.size() - sizeof(TraceHeader);
    if (hdr.count != body / sizeof(TraceRecord)) {
        error = "record count disagrees with file size";
        return false;
    }
    ops.reserve(hdr.count);
    return true;
}
