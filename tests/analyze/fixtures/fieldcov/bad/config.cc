// Bad fixture: one field missing from the digest feed (a silent
// sweep-cache key corruption) and one missing from the decode side of
// a wire pair (a silent wire truncation). field-coverage must flag
// both.
#include <cstdint>
#include <string>
#include <string_view>

class HashStream
{
  public:
    HashStream &u64(std::uint64_t v);
    HashStream &f64(double v);
};

struct ByteWriter
{
    void u64(std::uint64_t v);
    void f64(double v);
    std::string take();
};

struct ByteReader
{
    explicit ByteReader(std::string_view buf);
    std::uint64_t u64();
    double f64();
    bool ok() const;
};

struct KnobConfig
{
    std::uint32_t num_cores = 1;
    double coupling_resistance = 0.0;
    std::uint64_t epoch_samples = 50;
};

void
feed(HashStream &h, const KnobConfig &k)
{
    h.u64(k.num_cores).f64(k.coupling_resistance);
}

struct WireMsg
{
    std::uint64_t deadline_ms = 0;
    double setpoint = 0.0;

    std::string encode() const;
    static bool decode(std::string_view payload, WireMsg &out);
};

std::string
WireMsg::encode() const
{
    ByteWriter w;
    w.u64(deadline_ms);
    w.f64(setpoint);
    return w.take();
}

bool
WireMsg::decode(std::string_view payload, WireMsg &out)
{
    ByteReader r(payload);
    out.deadline_ms = r.u64();
    return r.ok();
}
