// The fixed twin of ../bad/server_loop.cc: every writeFrame result is
// either handled or explicitly acknowledged with a (void) cast.
// test_analyze asserts this file produces no unchecked-return finding.

#include <string>

namespace fixture
{

bool writeFrame(int fd, int type, const std::string &payload);
std::string encodeError(const std::string &message);
void closeConnection(int fd);

void
connectionLoop(int fd)
{
    const std::string reply = encodeError("malformed frame header");
    if (!writeFrame(fd, 7, reply)) {
        closeConnection(fd);
        return;
    }
    // Best-effort farewell: the connection closes either way, so the
    // result is deliberately dropped.
    (void)writeFrame(fd, 8, reply);
}

} // namespace fixture
