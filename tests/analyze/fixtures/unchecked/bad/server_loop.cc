// Regression fixture: the serve-daemon bug this pass exists to catch.
//
// The connection loop once called writeFrame() as a bare statement and
// dropped the result; a reply that failed mid-frame left the peer
// waiting forever on a frame that would never complete. test_analyze
// asserts that checkUncheckedReturns flags the discarded call below
// (and that the fixed twin in ../good/ is clean).

#include <string>

namespace fixture
{

bool writeFrame(int fd, int type, const std::string &payload);
std::string encodeError(const std::string &message);

void
connectionLoop(int fd)
{
    const std::string reply = encodeError("malformed frame header");
    // BAD: a failed write leaves the stream mid-frame, but the loop
    // keeps serving the connection as if the reply arrived.
    writeFrame(fd, 7, reply);
}

} // namespace fixture
