// Include-cycle fixture: a.hh -> b.hh -> a.hh. test_analyze asserts
// checkIncludeCycles reports the cycle exactly once.

#ifndef FIXTURE_CYCLE_A_HH
#define FIXTURE_CYCLE_A_HH

#include "b.hh"

struct A
{
    B *peer = nullptr;
};

#endif // FIXTURE_CYCLE_A_HH
