// Second half of the planted a.hh <-> b.hh include cycle.

#ifndef FIXTURE_CYCLE_B_HH
#define FIXTURE_CYCLE_B_HH

#include "a.hh"

struct B
{
    A *peer = nullptr;
};

#endif // FIXTURE_CYCLE_B_HH
