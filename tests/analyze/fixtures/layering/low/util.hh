// Layering-violation fixture: a foundation-layer header reaching *up*
// into the application layer. test_analyze asserts checkLayering
// reports exactly this edge under layers.conf.

#ifndef FIXTURE_LAYERING_LOW_UTIL_HH
#define FIXTURE_LAYERING_LOW_UTIL_HH

#include "high/app.hh"

inline int
utilValue()
{
    return appValue() + 1;
}

#endif // FIXTURE_LAYERING_LOW_UTIL_HH
