// The upper layer of the layering fixture; including *this* from low/
// is the planted violation. Including low/ from here would be fine.

#ifndef FIXTURE_LAYERING_HIGH_APP_HH
#define FIXTURE_LAYERING_HIGH_APP_HH

inline int
appValue()
{
    return 42;
}

#endif // FIXTURE_LAYERING_HIGH_APP_HH
