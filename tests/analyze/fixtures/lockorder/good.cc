// The fixed twin of bad.cc: every path acquires g_state_mu before
// g_cache_mu, so the acquisition graph has one edge and no cycle.
// test_analyze asserts this file produces no lock-order finding.

namespace fixture
{

struct Mutex
{
};

struct MutexLock
{
    explicit MutexLock(Mutex &m);
    ~MutexLock();
};

Mutex g_state_mu;
Mutex g_cache_mu;

void
updateBoth()
{
    MutexLock state(g_state_mu);
    MutexLock cache(g_cache_mu);
}

void
evictBoth()
{
    MutexLock state(g_state_mu);
    MutexLock cache(g_cache_mu);
}

} // namespace fixture
