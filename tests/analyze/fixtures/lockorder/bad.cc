// Lock-order fixture: the classic AB/BA inversion. updateBoth()
// acquires state then cache; evictBoth() acquires cache then state.
// Run concurrently they can deadlock. test_analyze asserts
// checkLockOrder reports the cycle (and that ../good.cc, which keeps
// one order everywhere, is clean).

namespace fixture
{

struct Mutex
{
};

struct MutexLock
{
    explicit MutexLock(Mutex &m);
    ~MutexLock();
};

Mutex g_state_mu;
Mutex g_cache_mu;

void
updateBoth()
{
    MutexLock state(g_state_mu);
    MutexLock cache(g_cache_mu);
}

void
evictBoth()
{
    MutexLock cache(g_cache_mu);
    MutexLock state(g_state_mu);
}

} // namespace fixture
