/**
 * @file
 * Cross-module tests: the core driven by a recorded trace, long-run
 * numerical stability of the boxcar window, and the quantized CT-DTM
 * control loop end to end.
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "dtm/actuator.hh"
#include "sim/policy_factory.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace thermctl
{
namespace
{

TEST(CrossModule, CoreRunsFromRecordedTrace)
{
    const auto path = std::filesystem::temp_directory_path()
        / "thermctl_core_trace.bin";

    // Record a committed-path trace from the generator.
    {
        SyntheticWorkload wl(specProfile("186.crafty"));
        TraceWriter writer(path.string());
        for (int i = 0; i < 300000; ++i)
            writer.append(wl.next());
    }

    // Replay it through the core (looping, so the core never starves).
    TraceReader reader(path.string(), /*loop=*/true);
    MemoryHierarchy mem;
    Core core(CpuConfig{}, reader, mem);
    for (int i = 0; i < 100000; ++i)
        core.tick();

    EXPECT_GT(core.stats().committed, 50000u);
    EXPECT_GT(core.stats().ipc(), 0.5);
    std::filesystem::remove(path);
}

TEST(CrossModule, TraceReplayIsDeterministic)
{
    const auto path = std::filesystem::temp_directory_path()
        / "thermctl_replay.bin";
    {
        SyntheticWorkload wl(specProfile("177.mesa"));
        TraceWriter writer(path.string());
        for (int i = 0; i < 100000; ++i)
            writer.append(wl.next());
    }
    auto run = [&] {
        TraceReader reader(path.string(), true);
        MemoryHierarchy mem;
        Core core(CpuConfig{}, reader, mem);
        for (int i = 0; i < 50000; ++i)
            core.tick();
        return core.stats().committed;
    };
    EXPECT_EQ(run(), run());
    std::filesystem::remove(path);
}

TEST(CrossModule, BoxcarSurvivesMillionsOfAdds)
{
    // The incremental sum is periodically recomputed to bound float
    // drift; after millions of adds the window must still be exact.
    BoxcarAverage box(7);
    Rng rng(3);
    std::array<double, 7> last{};
    std::size_t head = 0;
    for (int i = 0; i < 2'200'000; ++i) {
        const double x = rng.uniform(-1000.0, 1000.0);
        box.add(x);
        last[head] = x;
        head = (head + 1) % 7;
    }
    double expect = 0.0;
    for (double v : last)
        expect += v;
    expect /= 7.0;
    EXPECT_NEAR(box.average(), expect, 1e-6);
}

TEST(CrossModule, QuantizedCtLoopHoldsPlantAtSetpoint)
{
    // Close the loop analytically: tuned PI + 8-level toggler + FOPDT
    // plant, mimicking the DTM path without the full simulator. The
    // quantized actuator produces a limit cycle whose mean sits at the
    // setpoint and whose amplitude stays well inside the 0.2 C margin.
    FopdtPlant plant{.gain = 9.0, .tau = 130e-6, .dead_time = 333e-9};
    PidConfig cfg = tuneLoopShaping(ControllerKind::PI, plant);
    cfg.setpoint = 3.6; // degrees above base, like 111.6 vs 108.0
    cfg.dt = 667e-9;
    cfg.out_min = 0.0;
    cfg.out_max = 1.0;
    cfg.integral_init = 1.0;
    PidController pid(cfg);
    FetchToggler toggler;

    double y = 3.0; // start warm
    Accumulator tail;
    const int steps = 40000;
    for (int i = 0; i < steps; ++i) {
        const double duty = pid.update(y);
        toggler.setDuty(duty);
        // Realize the duty over one sampling period of plant time.
        const double u = toggler.duty();
        for (int k = 0; k < 4; ++k)
            y = plant.stepState(y, u, cfg.dt / 4.0);
        if (i > steps / 2)
            tail.add(y);
    }
    EXPECT_NEAR(tail.mean(), cfg.setpoint, 0.1);
    EXPECT_LT(tail.max(), cfg.setpoint + 0.2);
}

TEST(CrossModule, PolicyFactoryGainsAreUsableDuties)
{
    // The tuned controllers must produce duty changes the 8-level
    // actuator can express: a 0.05 C error near the setpoint should
    // move the output by at least one quantization level but not rail
    // it instantly.
    Floorplan fp;
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    DtmConfig dtm;
    const double cycle_s = PowerConfig{}.tech.cycleSeconds();
    FopdtPlant plant = deriveDtmPlant(fp, pm, dtm, cycle_s);
    PidConfig cfg = tuneLoopShaping(ControllerKind::PID, plant);
    // Proportional response to a 0.05 C error:
    const double delta = cfg.kp * 0.05;
    EXPECT_GT(delta, 1.0 / 14.0); // at least half a level
}

} // namespace
} // namespace thermctl
