/**
 * @file
 * ByteReader defence tests: truncated buffers, oversized length
 * prefixes, and a randomized corruption loop over a serialized
 * RunResult. The contract under test: malformed input flips the reader
 * into a failed state (or yields a typed decode error) — it never
 * crashes, never throws, and never mis-decodes.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "common/hash.hh"
#include "common/serialize.hh"
#include "sim/sweep.hh"

using namespace thermctl;

namespace
{

RunResult
sampleResult()
{
    RunResult r;
    r.benchmark = "183.equake";
    r.policy = "PI";
    r.category = ThermalCategory::High;
    r.ipc = 1.375;
    r.raw_ipc = 1.4375;
    r.avg_power = 41.25;
    r.emergency_fraction = 0.0625;
    r.stress_fraction = 0.25;
    r.max_temperature = 113.5;
    r.mean_duty = 0.9375;
    for (std::size_t i = 0; i < r.structures.size(); ++i) {
        r.structures[i].avg_temp = 70.0 + double(i);
        r.structures[i].max_temp = 95.0 + double(i);
        r.structures[i].emergency_fraction = 0.001 * double(i);
        r.structures[i].stress_fraction = 0.002 * double(i);
        r.structures[i].avg_power = 2.0 + 0.25 * double(i);
    }
    return r;
}

} // namespace

TEST(ByteReader, EmptyBufferFailsEveryRead)
{
    {
        ByteReader r("");
        EXPECT_EQ(r.u8(), 0u);
        EXPECT_FALSE(r.ok());
    }
    {
        ByteReader r("");
        EXPECT_EQ(r.u32(), 0u);
        EXPECT_FALSE(r.ok());
    }
    {
        ByteReader r("");
        EXPECT_EQ(r.u64(), 0u);
        EXPECT_FALSE(r.ok());
    }
    {
        ByteReader r("");
        EXPECT_EQ(r.f64(), 0.0);
        EXPECT_FALSE(r.ok());
    }
    {
        ByteReader r("");
        EXPECT_EQ(r.str(), "");
        EXPECT_FALSE(r.ok());
    }
}

TEST(ByteReader, TruncatedFixedWidthReadsFail)
{
    ByteWriter w;
    w.u64(0x1122334455667788ULL);
    const std::string full = w.buffer();
    for (std::size_t n = 0; n < full.size(); ++n) {
        ByteReader r(std::string_view(full).substr(0, n));
        (void)r.u64();
        EXPECT_FALSE(r.ok()) << "u64 succeeded on " << n << " bytes";
    }

    ByteWriter wf;
    wf.f64(3.14159);
    const std::string fbytes = wf.buffer();
    for (std::size_t n = 0; n < fbytes.size(); ++n) {
        ByteReader r(std::string_view(fbytes).substr(0, n));
        (void)r.f64();
        EXPECT_FALSE(r.ok()) << "f64 succeeded on " << n << " bytes";
    }
}

TEST(ByteReader, FailureIsStickyAndReadsKeepReturningZero)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.buffer());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(r.u32(), 0u); // past the end
    EXPECT_FALSE(r.ok());
    // Once failed, every further read fails too, even if bytes remain.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.atEnd());
}

TEST(ByteReader, OversizedStringLengthPrefixFails)
{
    // A length prefix far beyond the buffer must fail cleanly without
    // attempting the corresponding allocation.
    ByteWriter w;
    w.u64(std::uint64_t(1) << 62);
    w.u8('x');
    ByteReader r(w.buffer());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());

    // Length prefix that overruns by exactly one byte.
    ByteWriter w2;
    w2.u64(4);
    w2.u8('a');
    w2.u8('b');
    w2.u8('c');
    ByteReader r2(w2.buffer());
    EXPECT_EQ(r2.str(), "");
    EXPECT_FALSE(r2.ok());
}

TEST(ByteReader, MixedStreamRoundTripsAndStopsAtEnd)
{
    ByteWriter w;
    w.u8(9);
    w.u32(123456);
    w.i64(-42);
    w.f64(-2.5);
    w.str("hello");
    w.str("");

    ByteReader r(w.buffer());
    EXPECT_EQ(r.u8(), 9u);
    EXPECT_EQ(r.u32(), 123456u);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), -2.5);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteReader, RemainingTracksConsumptionExactly)
{
    ByteWriter w;
    w.u8(1);
    w.u32(2);
    w.u64(3);
    ByteReader r(w.buffer());
    EXPECT_EQ(r.remaining(), 13u);
    (void)r.u8();
    EXPECT_EQ(r.remaining(), 12u);
    (void)r.u32();
    EXPECT_EQ(r.remaining(), 8u);
    (void)r.u64();
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteReader, RemainingIsZeroOnceFailed)
{
    // A failed read must zero remaining(): decoders divide by a
    // minimum element size to bound untrusted counts, and a stale
    // nonzero remainder would let a poisoned reader admit a count.
    ByteWriter w;
    w.u8(0xff);
    ByteReader r(w.buffer());
    (void)r.u32(); // runs past the end: 1 byte available, 4 wanted
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_FALSE(r.atEnd());
}

TEST(ByteReader, RemainingBoundsHostileCountPrefix)
{
    // The allocation-bomb guard pattern used by the protocol decoders:
    // a count prefix claiming more elements than the remaining bytes
    // could possibly encode must be rejected before any reserve.
    ByteWriter w;
    w.u64(1u << 20); // claims 2^20 strings...
    w.str("only");   // ...but carries 12 bytes of actual payload
    ByteReader r(w.buffer());
    const std::uint64_t n = r.u64();
    ASSERT_TRUE(r.ok());
    // Each length-prefixed string needs at least 8 bytes (its u64
    // length), so the honest maximum is remaining()/8.
    EXPECT_GT(n, r.remaining() / 8);
}

TEST(ByteReader, StringReadLeavesExactRemainder)
{
    ByteWriter w;
    w.str("abc");
    w.u8(7);
    ByteReader r(w.buffer());
    EXPECT_EQ(r.str(), "abc");
    EXPECT_EQ(r.remaining(), 1u);
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_TRUE(r.atEnd());
}

TEST(RunResultCodec, EveryTruncationIsRejected)
{
    const std::string bytes = serializeRunResult(sampleResult());
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        RunResult out;
        EXPECT_NE(deserializeRunResult(bytes.substr(0, n), out),
                  RunResultDecodeStatus::Ok)
            << "accepted a " << n << "-byte prefix of " << bytes.size();
    }
}

TEST(RunResultCodec, TrailingGarbageIsRejected)
{
    std::string bytes = serializeRunResult(sampleResult());
    bytes.push_back('\0');
    RunResult out;
    EXPECT_EQ(deserializeRunResult(bytes, out),
              RunResultDecodeStatus::Malformed);
}

TEST(RunResultCodec, RandomizedCorruptionNeverDecodes)
{
    const std::string clean = serializeRunResult(sampleResult());
    std::mt19937 rng(0xc0ffee);
    std::uniform_int_distribution<std::size_t> pos_dist(
        0, clean.size() - 1);
    std::uniform_int_distribution<int> xor_dist(1, 255);
    std::uniform_int_distribution<int> count_dist(1, 4);

    for (int iter = 0; iter < 2000; ++iter) {
        std::string bytes = clean;
        const int flips = count_dist(rng);
        for (int f = 0; f < flips; ++f)
            bytes[pos_dist(rng)] ^= char(xor_dist(rng));
        if (bytes == clean)
            continue; // flips cancelled out
        RunResult out;
        // The trailing checksum covers every body byte and the version
        // byte, so any surviving change must be detected.
        EXPECT_NE(deserializeRunResult(bytes, out),
                  RunResultDecodeStatus::Ok)
            << "iteration " << iter << " decoded corrupted bytes";
    }
}

TEST(RunResultCodec, ForeignFormatVersionIsTyped)
{
    std::string bytes = serializeRunResult(sampleResult());
    ASSERT_FALSE(bytes.empty());
    bytes[0] = char(kRunResultFormatVersion + 1);
    // Repair the checksum so only the version byte differs.
    std::string repaired = bytes.substr(0, bytes.size() - 8);
    ByteWriter check;
    check.u64(hashString(repaired));
    repaired += check.buffer();
    RunResult out;
    EXPECT_EQ(deserializeRunResult(repaired, out),
              RunResultDecodeStatus::BadVersion);
}
