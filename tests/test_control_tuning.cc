/**
 * @file
 * Tests for the Laplace-domain tuning methods and closed-loop analysis:
 * every tuning must stabilize its plant, the PID must satisfy the
 * paper's Kp^2 = 4*Ki*Kd constraint, and achieved phase margins must
 * track the design spec.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "control/analysis.hh"
#include "control/plant.hh"
#include "control/tuning.hh"

namespace thermctl
{
namespace
{

FopdtPlant
thermalPlant()
{
    // Representative DTM plant: gain ~9 K per unit duty, tau ~130 us,
    // dead time half the 1000-cycle sampling period.
    return FopdtPlant{.gain = 9.0, .tau = 130e-6, .dead_time = 333e-9};
}

TEST(Plant, FrequencyResponseBasics)
{
    FopdtPlant plant{.gain = 2.0, .tau = 1.0, .dead_time = 0.0};
    EXPECT_NEAR(plant.magnitude(0.0001), 2.0, 1e-3);
    EXPECT_NEAR(plant.magnitude(1.0), 2.0 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(plant.phase(1.0), -M_PI / 4.0, 1e-9);
    // Dead time adds linear phase lag.
    FopdtPlant delayed{.gain = 2.0, .tau = 1.0, .dead_time = 0.5};
    EXPECT_NEAR(delayed.phase(1.0), -M_PI / 4.0 - 0.5, 1e-9);
    EXPECT_NEAR(delayed.magnitude(1.0), plant.magnitude(1.0), 1e-12);
}

TEST(Plant, StepStateConverges)
{
    FopdtPlant plant{.gain = 3.0, .tau = 1.0, .dead_time = 0.0};
    double y = 0.0;
    for (int i = 0; i < 100000; ++i)
        y = plant.stepState(y, 1.0, 1e-3);
    EXPECT_NEAR(y, 3.0, 1e-3);
}

TEST(Tuning, PidSatisfiesCriticalDampingConstraint)
{
    const auto cfg = tuneLoopShaping(ControllerKind::PID, thermalPlant());
    EXPECT_GT(cfg.kp, 0.0);
    EXPECT_GT(cfg.ki, 0.0);
    EXPECT_GT(cfg.kd, 0.0);
    // The paper's closing constraint: Kp^2 = 4 Ki Kd.
    EXPECT_NEAR(cfg.kp * cfg.kp, 4.0 * cfg.ki * cfg.kd,
                1e-9 * cfg.kp * cfg.kp);
}

TEST(Tuning, FamiliesHaveExpectedTerms)
{
    const auto p = tuneLoopShaping(ControllerKind::P, thermalPlant());
    EXPECT_GT(p.kp, 0.0);
    EXPECT_DOUBLE_EQ(p.ki, 0.0);
    EXPECT_DOUBLE_EQ(p.kd, 0.0);

    const auto pi = tuneLoopShaping(ControllerKind::PI, thermalPlant());
    EXPECT_GT(pi.kp, 0.0);
    EXPECT_GT(pi.ki, 0.0);
    EXPECT_DOUBLE_EQ(pi.kd, 0.0);
}

TEST(Tuning, RejectsBadInputs)
{
    FopdtPlant bad = thermalPlant();
    bad.gain = 0.0;
    EXPECT_THROW(tuneLoopShaping(ControllerKind::PI, bad), FatalError);

    LoopShapingSpec spec;
    spec.phase_margin_deg = 95.0;
    EXPECT_THROW(tuneLoopShaping(ControllerKind::PI, thermalPlant(), spec),
                 FatalError);

    EXPECT_THROW(
        tuneZieglerNichols(ControllerKind::PID,
                           FopdtPlant{.gain = 1, .tau = 1,
                                      .dead_time = 0.0}),
        FatalError);
}

/**
 * Property: every tuning method stabilizes every plant in a broad
 * family, for every controller kind — the robustness claim the paper
 * makes for its methodology.
 */
struct TuningCase
{
    double gain;
    double tau_over_l; ///< plant time constant / dead time ratio
    ControllerKind kind;
};

class TuningStability : public ::testing::TestWithParam<TuningCase>
{
};

TEST_P(TuningStability, LoopShapingStabilizes)
{
    const auto &tc = GetParam();
    FopdtPlant plant{.gain = tc.gain, .tau = 1e-4,
                     .dead_time = 1e-4 / tc.tau_over_l};
    PidConfig cfg = tuneLoopShaping(tc.kind, plant);
    cfg.setpoint = 1.0;
    cfg.dt = 2.0 * plant.dead_time;
    EXPECT_TRUE(isClosedLoopStable(cfg, plant))
        << "gain=" << tc.gain << " tau/L=" << tc.tau_over_l << " "
        << controllerKindName(tc.kind);
}

TEST_P(TuningStability, ImcStabilizes)
{
    const auto &tc = GetParam();
    FopdtPlant plant{.gain = tc.gain, .tau = 1e-4,
                     .dead_time = 1e-4 / tc.tau_over_l};
    PidConfig cfg = tuneImc(tc.kind, plant);
    cfg.setpoint = 1.0;
    cfg.dt = 2.0 * plant.dead_time;
    EXPECT_TRUE(isClosedLoopStable(cfg, plant));
}

INSTANTIATE_TEST_SUITE_P(
    PlantFamily, TuningStability,
    ::testing::Values(
        TuningCase{1.0, 500.0, ControllerKind::P},
        TuningCase{1.0, 500.0, ControllerKind::PI},
        TuningCase{1.0, 500.0, ControllerKind::PID},
        TuningCase{9.0, 400.0, ControllerKind::PI},
        TuningCase{9.0, 400.0, ControllerKind::PID},
        TuningCase{30.0, 100.0, ControllerKind::PI},
        TuningCase{30.0, 100.0, ControllerKind::PID},
        TuningCase{0.5, 50.0, ControllerKind::PID},
        TuningCase{3.0, 20.0, ControllerKind::PI}));

TEST(Tuning, PiAndPidTrackZeroSteadyStateError)
{
    const FopdtPlant plant = thermalPlant();
    for (auto kind : {ControllerKind::PI, ControllerKind::PID}) {
        PidConfig cfg = tuneLoopShaping(kind, plant);
        cfg.setpoint = 1.0;
        cfg.dt = 2.0 * plant.dead_time;
        cfg.out_min = -1e12;
        cfg.out_max = 1e12;
        auto resp = simulateClosedLoop(cfg, plant);
        EXPECT_FALSE(resp.diverged);
        EXPECT_LT(std::abs(resp.steady_state_error), 0.02)
            << controllerKindName(kind);
    }
}

TEST(Tuning, PureProportionalLeavesOffset)
{
    const FopdtPlant plant = thermalPlant();
    PidConfig cfg = tuneLoopShaping(ControllerKind::P, plant);
    cfg.setpoint = 1.0;
    cfg.dt = 2.0 * plant.dead_time;
    cfg.out_min = -1e12;
    cfg.out_max = 1e12;
    auto resp = simulateClosedLoop(cfg, plant);
    EXPECT_FALSE(resp.diverged);
    // A P controller on a self-regulating plant leaves a steady-state
    // offset — the reason the paper's P design needs a wider margin
    // below the emergency threshold than PI/PID.
    EXPECT_GT(std::abs(resp.steady_state_error), 0.01);
}

TEST(Analysis, PhaseMarginTracksDesignSpec)
{
    const FopdtPlant plant = thermalPlant();
    LoopShapingSpec spec;
    spec.phase_margin_deg = 60.0;
    const auto cfg = tuneLoopShaping(ControllerKind::PID, plant, spec);
    const double pm = phaseMarginDeg(cfg, plant);
    EXPECT_NEAR(pm, 60.0, 12.0);
}

TEST(Analysis, GainMarginPositiveForStableLoop)
{
    const FopdtPlant plant = thermalPlant();
    const auto cfg = tuneLoopShaping(ControllerKind::PI, plant);
    EXPECT_GT(gainMarginDb(cfg, plant), 3.0);
}

TEST(Analysis, DetectsUnstableLoop)
{
    // An absurdly high-gain PI on a delayed plant oscillates/diverges.
    FopdtPlant plant{.gain = 10.0, .tau = 1e-4, .dead_time = 2e-5};
    PidConfig cfg;
    cfg.kp = 1000.0;
    cfg.ki = 5e8;
    cfg.setpoint = 1.0;
    cfg.dt = 4e-5;
    cfg.out_min = -1e12;
    cfg.out_max = 1e12;
    EXPECT_FALSE(isClosedLoopStable(cfg, plant));
}

TEST(Analysis, StepResponseMetrics)
{
    // First-order plant, gentle PI: settles monotonically.
    FopdtPlant plant{.gain = 1.0, .tau = 1.0, .dead_time = 0.0};
    PidConfig cfg;
    cfg.kp = 2.0;
    cfg.ki = 1.0;
    cfg.setpoint = 5.0;
    cfg.dt = 0.01;
    cfg.out_min = -1e12;
    cfg.out_max = 1e12;
    auto resp = simulateClosedLoop(cfg, plant);
    EXPECT_TRUE(resp.settled);
    EXPECT_LT(resp.overshoot, 0.25);
    EXPECT_NEAR(resp.final_value, 5.0, 0.1);
    EXPECT_GT(resp.settling_time, 0.0);
}

TEST(Analysis, RequiresNonZeroSetpoint)
{
    FopdtPlant plant{.gain = 1.0, .tau = 1.0, .dead_time = 0.0};
    PidConfig cfg;
    cfg.kp = 1.0;
    EXPECT_THROW(simulateClosedLoop(cfg, plant), FatalError);
}

TEST(Analysis, DisturbanceResidualShrinksWithIntegralAction)
{
    const FopdtPlant plant = thermalPlant();
    auto p = tuneLoopShaping(ControllerKind::P, plant);
    auto pi = tuneLoopShaping(ControllerKind::PI, plant);
    p.dt = pi.dt = 2.0 * plant.dead_time;
    // Integral action buys at least 3x better low-frequency rejection.
    EXPECT_GT(disturbanceResidual(p, plant),
              3.0 * disturbanceResidual(pi, plant));
    EXPECT_GT(disturbanceResidual(p, plant), 0.0);
}

TEST(Analysis, SafeSetpointOrderingMatchesPaper)
{
    // The paper hand-picks 111.2 for P but 111.6 for PI/PID; the
    // analytic rule must reproduce the ordering: P needs more margin
    // below the 111.8 emergency level than PI/PID, and all setpoints
    // sit strictly between the base and emergency levels.
    const FopdtPlant plant = thermalPlant();
    auto tune = [&](ControllerKind kind) {
        PidConfig cfg = tuneLoopShaping(kind, plant);
        cfg.dt = 2.0 * plant.dead_time;
        return chooseSafeSetpoint(cfg, plant, 108.0, 111.8, 0.05, 0.2);
    };
    const Celsius sp_p = tune(ControllerKind::P);
    const Celsius sp_pi = tune(ControllerKind::PI);
    const Celsius sp_pid = tune(ControllerKind::PID);
    EXPECT_LT(sp_p, sp_pi);
    EXPECT_NEAR(sp_pi, sp_pid, 0.1);
    for (Celsius sp : {sp_p, sp_pi, sp_pid}) {
        EXPECT_GT(sp, 108.0);
        EXPECT_LT(sp, 111.8);
    }
    // PI/PID admit a setpoint within ~0.3 of the emergency level — the
    // paper's "trigger threshold within 0.2 of the maximum".
    EXPECT_GT(sp_pid, 111.5);
}

TEST(Analysis, SafeSetpointRespectsMargin)
{
    const FopdtPlant plant = thermalPlant();
    PidConfig cfg = tuneLoopShaping(ControllerKind::PID, plant);
    cfg.dt = 2.0 * plant.dead_time;
    const Celsius tight =
        chooseSafeSetpoint(cfg, plant, 108.0, 111.8, 0.05);
    const Celsius loose =
        chooseSafeSetpoint(cfg, plant, 108.0, 111.8, 0.50);
    EXPECT_NEAR(tight - loose, 0.45, 1e-9);
    EXPECT_THROW(chooseSafeSetpoint(cfg, plant, 111.8, 108.0),
                 FatalError);
}

TEST(Analysis, SafeSetpointNeverBelowBase)
{
    // A hopelessly sluggish controller cannot push the setpoint below
    // the base temperature.
    FopdtPlant plant{.gain = 50.0, .tau = 1e-5, .dead_time = 5e-6};
    PidConfig cfg;
    cfg.kp = 1e-6;
    cfg.dt = 1e-5;
    EXPECT_DOUBLE_EQ(chooseSafeSetpoint(cfg, plant, 108.0, 111.8),
                     108.0);
}

TEST(Tuning, ZieglerNicholsClassicRatios)
{
    FopdtPlant plant{.gain = 2.0, .tau = 10.0, .dead_time = 1.0};
    const auto pid = tuneZieglerNichols(ControllerKind::PID, plant);
    EXPECT_NEAR(pid.kp, 1.2 * 10.0 / (2.0 * 1.0), 1e-9);
    EXPECT_NEAR(pid.ki, pid.kp / 2.0, 1e-9);
    EXPECT_NEAR(pid.kd, pid.kp * 0.5, 1e-9);
}

} // namespace
} // namespace thermctl
