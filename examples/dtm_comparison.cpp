/**
 * @file
 * DTM technique shoot-out on one benchmark: run every policy the paper
 * evaluates and print the performance/safety trade-off — the practical
 * decision a thermal architect makes with this library.
 *
 *   ./build/examples/dtm_comparison [benchmark]
 */

#include <iomanip>
#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "301.apsi";

    RunProtocol proto;
    proto.warmup_cycles = 300000;
    proto.measure_cycles = 800000;
    ExperimentRunner runner(proto);
    auto profile = specProfile(bench);

    DtmPolicySettings s;
    s.kind = DtmPolicyKind::None;
    const auto base = runner.runOne(profile, s);

    std::cout << "=== DTM comparison on " << bench << " ("
              << thermalCategoryName(base.category) << " thermal "
              << "behaviour, base IPC " << std::setprecision(3)
              << base.ipc << ") ===\n\n";

    TextTable t;
    t.setHeader({"policy", "IPC", "% of base", "emerg %", "stress %",
                 "max T (C)", "mean duty"});
    t.addRow({"none", formatDouble(base.ipc, 3), "100.0%",
              formatPercent(base.emergency_fraction, 2),
              formatPercent(base.stress_fraction, 1),
              formatDouble(base.max_temperature, 2), "1.00"});
    t.addRule();

    for (DtmPolicyKind kind :
         {DtmPolicyKind::Toggle1, DtmPolicyKind::Toggle2,
          DtmPolicyKind::Manual, DtmPolicyKind::P, DtmPolicyKind::PI,
          DtmPolicyKind::PID}) {
        s.kind = kind;
        const auto r = runner.runOne(profile, s);
        t.addRow({r.policy, formatDouble(r.ipc, 3),
                  formatPercent(r.ipc / base.ipc, 1),
                  formatPercent(r.emergency_fraction, 2),
                  formatPercent(r.stress_fraction, 1),
                  formatDouble(r.max_temperature, 2),
                  formatDouble(r.mean_duty, 2)});
    }
    t.print(std::cout);

    std::cout << "\nReading guide: a good DTM technique shows 0.00% "
                 "emergencies at the highest\npossible % of base IPC. "
                 "The control-theoretic PI/PID, with their trigger "
                 "only\n0.2 C below the emergency threshold, should "
                 "dominate the fixed-response\ntechniques (paper "
                 "Section 7).\n";
    return 0;
}
