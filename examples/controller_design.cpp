/**
 * @file
 * Controller-design walkthrough: derive P, PI and PID gains for the
 * thermal plant exactly as the paper's Section 3.2 does (Laplace-domain
 * loop shaping against a first-order-plus-dead-time model), then verify
 * each design with frequency-domain margins and a closed-loop step
 * response rendered as an ASCII plot.
 *
 *   ./build/examples/controller_design
 */

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "control/analysis.hh"
#include "control/tuning.hh"
#include "power/model.hh"
#include "sim/policy_factory.hh"
#include "thermal/floorplan.hh"

using namespace thermctl;

namespace
{

void
plotResponse(const StepResponse &resp, double setpoint)
{
    const int rows = 12, cols = 64;
    const double y_max = setpoint * 1.5;
    std::vector<std::string> canvas(rows, std::string(cols, ' '));
    const std::size_t n = resp.output.size();
    for (int x = 0; x < cols; ++x) {
        const std::size_t idx = n * x / cols;
        const double y = resp.output[idx];
        int row = rows - 1
            - static_cast<int>(y / y_max * (rows - 1));
        row = std::clamp(row, 0, rows - 1);
        canvas[row][x] = '*';
    }
    const int sp_row = rows - 1
        - static_cast<int>(setpoint / y_max * (rows - 1));
    for (int x = 0; x < cols; ++x)
        if (canvas[sp_row][x] == ' ')
            canvas[sp_row][x] = '-';
    for (const auto &row : canvas)
        std::cout << "  |" << row << "\n";
    std::cout << "  +" << std::string(cols, '-') << "> t\n";
}

} // namespace

int
main()
{
    // The plant the DTM controller sees, derived from the floorplan
    // and the power model (paper: thermal R as the gain, the longest
    // block RC as the time constant, half the sampling period as the
    // dead time).
    Floorplan fp;
    PowerModel pm(PowerConfig{}, CpuConfig{}, MemoryHierarchyConfig{});
    DtmConfig dtm;
    const double cycle_s = PowerConfig{}.tech.cycleSeconds();
    const FopdtPlant plant = deriveDtmPlant(fp, pm, dtm, cycle_s);

    std::cout << "thermal plant (FOPDT):\n"
              << "  gain K     = " << plant.gain << " C per unit duty\n"
              << "  tau        = " << plant.tau * 1e6 << " us\n"
              << "  dead time  = " << plant.dead_time * 1e9 << " ns\n\n";

    for (auto kind :
         {ControllerKind::P, ControllerKind::PI, ControllerKind::PID}) {
        PidConfig cfg = tuneLoopShaping(kind, plant);
        std::cout << "=== " << controllerKindName(kind)
                  << " controller ===\n"
                  << std::scientific << std::setprecision(3)
                  << "  Kp = " << cfg.kp << "  Ki = " << cfg.ki
                  << "  Kd = " << cfg.kd << "\n"
                  << std::defaultfloat;
        if (kind == ControllerKind::PID) {
            std::cout << "  (Kp^2 = " << cfg.kp * cfg.kp
                      << " vs 4*Ki*Kd = " << 4.0 * cfg.ki * cfg.kd
                      << " — the paper's critically damped zeros)\n";
        }
        std::cout << "  phase margin = " << phaseMarginDeg(cfg, plant)
                  << " deg, gain margin = " << gainMarginDb(cfg, plant)
                  << " dB\n";

        // Closed-loop unit step (temperature units, unconstrained
        // actuator so the linear behaviour is visible).
        cfg.setpoint = 1.0;
        cfg.dt = 2.0 * plant.dead_time;
        cfg.out_min = -1e12;
        cfg.out_max = 1e12;
        auto resp = simulateClosedLoop(cfg, plant);
        std::cout << "  step response: overshoot "
                  << resp.overshoot * 100.0 << "%, settling "
                  << resp.settling_time * 1e6 << " us, ss-error "
                  << resp.steady_state_error << "\n";
        plotResponse(resp, cfg.setpoint);
        std::cout << "\n";
    }

    // Paper Section 2.2: "controllers can be designed with guaranteed
    // settling times".
    std::cout << "settling-time-constrained designs (PI):\n";
    for (double target_us : {2000.0, 500.0, 100.0}) {
        PidConfig cfg = tuneForSettlingTime(
            ControllerKind::PI, plant, target_us * 1e-6,
            2.0 * plant.dead_time);
        cfg.setpoint = 1.0;
        cfg.out_min = -1e12;
        cfg.out_max = 1e12;
        auto resp = simulateClosedLoop(cfg, plant);
        std::cout << "  target " << std::setw(6) << target_us
                  << " us -> Kp " << cfg.kp << ", Ki " << cfg.ki
                  << ", settles in " << resp.settling_time * 1e6
                  << " us\n";
    }
    std::cout << "\n";

    std::cout << "comparison tunings for the same plant (PID):\n";
    for (auto [label, cfg] :
         {std::pair{"loop shaping (paper-style)",
                    tuneLoopShaping(ControllerKind::PID, plant)},
          std::pair{"Ziegler-Nichols",
                    tuneZieglerNichols(ControllerKind::PID, plant)},
          std::pair{"IMC (lambda)",
                    tuneImc(ControllerKind::PID, plant)}}) {
        cfg.setpoint = 1.0;
        cfg.dt = 2.0 * plant.dead_time;
        cfg.out_min = -1e12;
        cfg.out_max = 1e12;
        auto resp = simulateClosedLoop(cfg, plant);
        std::cout << "  " << std::left << std::setw(28) << label
                  << " overshoot " << std::setw(8)
                  << resp.overshoot * 100.0 << "% settling "
                  << resp.settling_time * 1e6 << " us\n";
    }
    return 0;
}
