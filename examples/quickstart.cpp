/**
 * @file
 * Quickstart: simulate one hot SPEC2000-like benchmark on the paper's
 * Alpha-21264-class machine with PID-controlled dynamic thermal
 * management, and print the headline numbers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark]
 */

#include <iostream>

#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace thermctl;

    const std::string bench = argc > 1 ? argv[1] : "186.crafty";

    // 1. Configure: the defaults are the paper's machine (Table 2),
    //    power model, floorplan (Table 3) and thresholds.
    SimConfig cfg;
    cfg.workload = specProfile(bench);
    cfg.policy.kind = DtmPolicyKind::PID;

    // 2. Simulate: warm up past the thermal transient, then measure.
    Simulator sim(cfg);
    sim.warmUp(300000);
    sim.run(1000000);

    // 3. Report.
    const auto &dtm = sim.dtm().stats();
    std::cout << "benchmark            : " << bench << "\n"
              << "policy               : PID (setpoint "
              << cfg.policy.ct_setpoint << " C, emergency "
              << cfg.thermal.t_emergency << " C)\n"
              << "IPC                  : " << sim.measuredIpc() << "\n"
              << "avg chip power       : " << sim.stats().avgPower()
              << " W\n"
              << "hottest structure    : "
              << structureName(sim.thermal().temperatures().hottest())
              << "\n"
              << "max temperature      : " << dtm.max_temperature
              << " C\n"
              << "cycles in emergency  : "
              << dtm.emergencyFraction() * 100.0 << " %\n"
              << "mean fetch duty      : "
              << dtm.duty_sum / static_cast<double>(dtm.samples) << "\n";

    return dtm.emergency_cycles == 0 ? 0 : 1;
}
