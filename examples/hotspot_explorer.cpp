/**
 * @file
 * Hot-spot explorer: run any benchmark without DTM and render the die
 * as an ASCII heat map, showing where it heats and how fast.
 *
 * This is the scenario the paper's introduction motivates: different
 * programs create different localized hot spots — FP codes cook the FP
 * unit, integer codes the integer core, branchy codes the predictor —
 * which chip-wide metrics cannot see.
 *
 *   ./build/examples/hotspot_explorer 191.fma3d
 */

#include <iomanip>
#include <iostream>

#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

char
heatChar(Celsius t, const ThermalConfig &cfg)
{
    if (t > cfg.t_emergency)
        return '#';
    if (t > cfg.stressLevel())
        return '*';
    if (t > cfg.t_base + 1.5)
        return '+';
    if (t > cfg.t_base + 0.5)
        return '.';
    return ' ';
}

void
renderFloorplan(const Simulator &sim)
{
    const auto &fp = sim.floorplan();
    const auto &temps = sim.thermal().temperatures();
    const auto &cfg = sim.config().thermal;

    // 40 x 20 character canvas over the 10 x 10 mm die.
    const int w = 40, h = 20;
    std::vector<std::string> canvas(h, std::string(w, ' '));
    for (StructureId id : kAllStructures) {
        const auto &r = fp.rect(id);
        const char fill = heatChar(temps[id], cfg);
        const int x0 = static_cast<int>(r.x_mm / 10.0 * w);
        const int x1 = static_cast<int>((r.x_mm + r.w_mm) / 10.0 * w);
        const int y0 = static_cast<int>(r.y_mm / 10.0 * h);
        const int y1 = static_cast<int>((r.y_mm + r.h_mm) / 10.0 * h);
        for (int y = y0; y < y1 && y < h; ++y)
            for (int x = x0; x < x1 && x < w; ++x)
                canvas[y][x] = fill;
        // Label.
        const std::string label = structureName(id);
        for (std::size_t k = 0;
             k < label.size() && x0 + static_cast<int>(k) < x1 - 1; ++k)
            canvas[y0][x0 + 1 + k] = label[k];
    }
    std::cout << "+" << std::string(w, '-') << "+\n";
    for (const auto &row : canvas)
        std::cout << "|" << row << "|\n";
    std::cout << "+" << std::string(w, '-') << "+\n"
              << "legend: ' ' cool  '.' warm  '+' hot  '*' stress (>"
              << cfg.stressLevel() << ")  '#' EMERGENCY (>"
              << cfg.t_emergency << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "191.fma3d";

    SimConfig cfg;
    cfg.workload = specProfile(bench);
    cfg.policy.kind = DtmPolicyKind::None;
    Simulator sim(cfg);

    std::cout << "=== " << bench << " (no DTM) ===\n\n";
    std::cout << "heating from a cold (base-temperature) start:\n";
    const std::uint64_t step = 150000;
    for (int i = 1; i <= 6; ++i) {
        sim.run(step);
        std::cout << "\nafter " << i * step << " cycles ("
                  << std::fixed << std::setprecision(0)
                  << i * step / 1.5e3 << " us):\n";
        renderFloorplan(sim);
    }

    std::cout << "\nper-structure temperatures:\n";
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        std::cout << "  " << std::left << std::setw(10)
                  << structureName(id) << std::setprecision(2)
                  << std::fixed << sim.thermal().temperatures()[id]
                  << " C  (steady power "
                  << sim.stats().avgStructurePower(id) << " W, R "
                  << sim.floorplan().block(id).resistance << " K/W, RC "
                  << sim.floorplan().block(id).rc() * 1e6 << " us)\n";
    }
    return 0;
}
