#!/usr/bin/env bash
# Format the C++ sources with clang-format, or verify they are already
# formatted with --check. Exits 0 (and says so) when clang-format is not
# installed, so the check matrix degrades gracefully on lean toolchains.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

mode="apply"
if [[ "${1:-}" == "--check" ]]; then
    mode="check"
elif [[ -n "${1:-}" ]]; then
    echo "usage: $0 [--check]" >&2
    exit 2
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format.sh: clang-format not found; skipping (style is" \
         "advisory on this toolchain)"
    exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.hh')
if [[ "${mode}" == "check" ]]; then
    clang-format --dry-run --Werror "${files[@]}"
    echo "format.sh: ${#files[@]} files clean"
else
    clang-format -i "${files[@]}"
    echo "format.sh: formatted ${#files[@]} files"
fi
