#!/usr/bin/env bash
# Full reproduction pipeline: configure, build, test, and regenerate every
# paper table/figure. Outputs land in test_output.txt and bench_output.txt
# at the repository root.
#
# Usage:
#   scripts/reproduce.sh            # full protocol (~30-45 min single-core)
#   THERMCTL_FAST=1 scripts/reproduce.sh   # quick smoke sweep (~5 min)

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        [ -x "$b" ] && [ -f "$b" ] || continue
        echo "===== $(basename "$b") ====="
        "$b"
        echo "exit=$?"
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt and EXPERIMENTS.md"
