#!/usr/bin/env bash
# Correctness matrix for thermctl. Runs, in order:
#
#   1. format check        (skipped when clang-format is absent)
#   2. plain build + ctest with -Werror and the physics-invariant
#      instrumentation compiled in (THERMCTL_INVARIANTS=ON)
#   3. ASan+UBSan build + ctest (same instrumentation; includes the
#      property-fuzz suite under the sanitizers)
#   4. TSan build + parallel bench smoke: the sweep engine's worker
#      pool and warm-cache read path run under -fsanitize=thread with
#      THERMCTL_FAST=1
#   5. clang-tidy build    (skipped when clang-tidy is absent)
#
# Each stage uses its own build tree under build-check/ so the matrix
# never disturbs an existing build/ directory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
base="build-check"

stage() { printf '\n=== check.sh: %s ===\n' "$1"; }

stage "format check"
./scripts/format.sh --check

stage "plain build (-Werror, invariants on) + ctest"
cmake -B "${base}/plain" -S . \
    -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON
cmake --build "${base}/plain" -j "${jobs}"
ctest --test-dir "${base}/plain" --output-on-failure -j "${jobs}"

stage "ASan+UBSan build + ctest"
cmake -B "${base}/asan" -S . \
    -DTHERMCTL_INVARIANTS=ON "-DTHERMCTL_SANITIZE=address;undefined"
cmake --build "${base}/asan" -j "${jobs}"
ctest --test-dir "${base}/asan" --output-on-failure -j "${jobs}"

stage "TSan parallel bench smoke"
cmake -B "${base}/tsan" -S . "-DTHERMCTL_SANITIZE=thread"
cmake --build "${base}/tsan" -j "${jobs}" \
    --target test_sweep table4_characterization table6_structure_temps
ctest --test-dir "${base}/tsan" --output-on-failure -R test_sweep
tsan_cache="$(mktemp -d)"
trap 'rm -rf "${tsan_cache}"' EXIT
# Cold run exercises the worker pool + cache writes; the second binary
# shares the characterization grid, so it exercises warm-cache reads.
THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
    "${base}/tsan/bench/table4_characterization" \
    --cache-dir "${tsan_cache}" >/dev/null
THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
    "${base}/tsan/bench/table6_structure_temps" \
    --cache-dir "${tsan_cache}" >/dev/null

stage "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "${base}/tidy" -S . -DTHERMCTL_CLANG_TIDY=ON
    cmake --build "${base}/tidy" -j "${jobs}"
else
    echo "clang-tidy not found; skipping static-analysis stage"
fi

stage "all stages passed"
