#!/usr/bin/env bash
# Correctness matrix for thermctl. Stages, in order:
#
#   format         clang-format check (skipped when absent)
#   plain          build + ctest with -Werror and the physics-invariant
#                  instrumentation compiled in (THERMCTL_INVARIANTS=ON)
#   lint           thermctl_lint project-rule linter over src/, tests/,
#                  bench/, and tools/ with the committed allowlist
#                  (.thermctl-lint-allow); --ci makes stale allowlist
#                  entries fail the stage
#   analyze        thermctl_analyze whole-project static analysis:
#                  include-graph layering (.thermctl-layers) + cycle
#                  detection, unchecked must-check returns, static
#                  lock-order auditing, CFG+taint alloc-bound checking
#                  (deserialized counts must pass a dominating bound
#                  before reserve/resize/new[]), and struct-field
#                  coverage of digest/encode/decode bodies, with the
#                  committed baseline (.thermctl-analyze-allow); one
#                  invocation over the whole tree so cross-file edges
#                  are visible
#   thread-safety  compile with Clang Thread Safety Analysis as errors
#                  (THERMCTL_THREAD_SAFETY=ON; skipped when clang++ is
#                  absent)
#   asan           ASan+UBSan build + ctest (same instrumentation;
#                  includes the property-fuzz suite and the fuzz corpus
#                  replay under the sanitizers)
#   serve          serve smoke: the thermctl_serve daemon (ASan+UBSan
#                  build) under concurrent clients — a duplicate pair
#                  must coalesce, client output must be bit-identical to
#                  a direct thermctl_run, and SIGTERM must drain cleanly
#   multicore      multicore smoke (ASan+UBSan build): a 4-core
#                  budget-capped percore-PID run under the sanitizers,
#                  plus a serve round-trip of the same multicore config
#                  whose client output must be bit-identical to a
#                  direct, uncached thermctl_run
#   loadgen-smoke  open-loop load smoke (ASan+UBSan build): a short
#                  thermctl_loadgen run against a local daemon on the
#                  event-driven core must finish with nonzero throughput
#                  and zero transport/protocol errors
#   chaos-smoke    randomized chaos soak (ASan+UBSan build): serve +
#                  retrying clients under a seeded fault plan; every
#                  request must end in a bit-correct reply or a typed
#                  error, never a hang; the seed is echoed on failure
#   cluster-smoke  distributed sweep smoke (ASan+UBSan build): a
#                  coordinator shards a grid across three worker
#                  daemons, one is SIGKILLed mid-sweep, and the merged
#                  output must be bit-identical to looped direct
#                  thermctl_run executions with zero missing points;
#                  survivors must drain cleanly on SIGTERM; then a
#                  fresh-seed chaos_soak --cluster run (kill + stall +
#                  respawn under a seeded supervisor)
#   tsan           TSan build + parallel bench smoke: the sweep engine's
#                  worker pool and warm-cache read path under
#                  -fsanitize=thread with THERMCTL_FAST=1
#   fuzz-replay    corpus replay through the fuzz harnesses as plain
#                  ctests; with clang++ present additionally a short
#                  coverage-guided smoke (libFuzzer, -max_total_time=30
#                  per target) seeded from the committed corpus
#   tidy           clang-tidy build (skipped when absent)
#
# Run everything (default) or one stage:
#
#   scripts/check.sh
#   scripts/check.sh --stage lint
#   scripts/check.sh --stage thread-safety
#
# Each stage uses its own build tree under build-check/ so the matrix
# never disturbs an existing build/ directory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
base="build-check"

all_stages="format plain lint analyze thread-safety asan serve multicore loadgen-smoke chaos-smoke cluster-smoke tsan fuzz-replay tidy"
selected="all"
while [ $# -gt 0 ]; do
    case "$1" in
      --stage)
        [ $# -ge 2 ] || { echo "check.sh: --stage needs a name" >&2; exit 2; }
        selected="$2"
        shift 2
        ;;
      -h|--help)
        echo "usage: check.sh [--stage all|${all_stages// /|}]"
        exit 0
        ;;
      *)
        echo "check.sh: unknown argument '$1'" >&2
        exit 2
        ;;
    esac
done
case " all ${all_stages} " in
  *" ${selected} "*) ;;
  *) echo "check.sh: unknown stage '${selected}'" >&2; exit 2 ;;
esac

want() { [ "${selected}" = all ] || [ "${selected}" = "$1" ]; }
stage() { printf '\n=== check.sh: %s ===\n' "$1"; }

have_clangxx() { command -v clang++ >/dev/null 2>&1; }

if want format; then
    stage "format check"
    ./scripts/format.sh --check
fi

if want plain; then
    stage "plain build (-Werror, invariants on) + ctest"
    cmake -B "${base}/plain" -S . \
        -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON
    cmake --build "${base}/plain" -j "${jobs}"
    ctest --test-dir "${base}/plain" --output-on-failure -j "${jobs}"
fi

if want lint; then
    stage "project-rule lint (thermctl_lint over the source tree)"
    cmake -B "${base}/plain" -S . \
        -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON >/dev/null
    cmake --build "${base}/plain" -j "${jobs}" --target thermctl_lint
    # tests/, bench/, and tools/ are included so fault-point-scope can
    # see probes that leak outside src/.
    "${base}/plain/tools/thermctl_lint" --ci \
        --allowlist .thermctl-lint-allow src/ tests/ bench/ tools/
fi

if want analyze; then
    stage "whole-project analysis (thermctl_analyze over the source tree)"
    cmake -B "${base}/plain" -S . \
        -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON >/dev/null
    cmake --build "${base}/plain" -j "${jobs}" --target thermctl_analyze
    # One invocation over the whole tree: the include-graph passes only
    # see edges between files of the same run. The committed fixture
    # trees under tests/analyze/fixtures/ contain planted violations
    # (that is their job), so they are excluded here and covered by
    # test_analyze instead.
    "${base}/plain/tools/thermctl_analyze" --ci --json \
        --layers .thermctl-layers --allowlist .thermctl-analyze-allow \
        --exclude tests/analyze/fixtures \
        src/ tools/ tests/ bench/ examples/
fi

if want thread-safety; then
    stage "thread-safety analysis (-Werror=thread-safety)"
    if have_clangxx; then
        cmake -B "${base}/tsa" -S . \
            -DCMAKE_CXX_COMPILER=clang++ -DTHERMCTL_THREAD_SAFETY=ON
        cmake --build "${base}/tsa" -j "${jobs}"
    else
        echo "clang++ not found; skipping thread-safety stage"
    fi
fi

if want asan; then
    stage "ASan+UBSan build + ctest"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON "-DTHERMCTL_SANITIZE=address;undefined"
    cmake --build "${base}/asan" -j "${jobs}"
    ctest --test-dir "${base}/asan" --output-on-failure -j "${jobs}"
fi

if want serve; then
    stage "serve smoke (ASan+UBSan daemon, concurrent clients)"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON \
        "-DTHERMCTL_SANITIZE=address;undefined" >/dev/null
    cmake --build "${base}/asan" -j "${jobs}" \
        --target thermctl_serve_bin thermctl_client thermctl_run
    smoke_dir="$(mktemp -d)"
    serve_pid=""
    trap 'if [ -n "${serve_pid}" ]; then kill "${serve_pid}" 2>/dev/null || true; fi; rm -rf "${smoke_dir}"' EXIT
    smoke_sock="${smoke_dir}/serve.sock"
    # The batch window holds the first dispatch briefly so the duplicate
    # client pair below lands while its twin is still in flight.
    THERMCTL_FAST=1 "${base}/asan/tools/thermctl_serve" \
        --socket "${smoke_sock}" --cache-dir "${smoke_dir}/cache" \
        --jobs 8 --batch-window-ms 300 2>"${smoke_dir}/serve.log" &
    serve_pid=$!
    for _ in $(seq 100); do
        [ -S "${smoke_sock}" ] && break
        sleep 0.1
    done
    [ -S "${smoke_sock}" ] || { cat "${smoke_dir}/serve.log"; exit 1; }

    smoke_client() {
        "${base}/asan/tools/thermctl_client" --socket "${smoke_sock}" \
            --warmup 2000 --cycles 50000 "$@"
    }
    smoke_client --bench 186.crafty --policy PI >"${smoke_dir}/dup1.out" &
    dup1_pid=$!
    smoke_client --bench 186.crafty --policy PI >"${smoke_dir}/dup2.out" &
    dup2_pid=$!
    smoke_client --bench 179.art --policy none >"${smoke_dir}/other.out" &
    other_pid=$!
    wait "${dup1_pid}" "${dup2_pid}" "${other_pid}"
    cmp "${smoke_dir}/dup1.out" "${smoke_dir}/dup2.out"

    coalesced="$(smoke_client --stats \
        | awk '/^coalesced/ {print $NF}')"
    if [ "${coalesced:-0}" -lt 1 ]; then
        echo "serve smoke: duplicate request pair did not coalesce" >&2
        exit 1
    fi

    # Bit-identity: the served result must match a direct, uncached run.
    "${base}/asan/tools/thermctl_run" --bench 186.crafty --policy PI \
        --warmup 2000 --cycles 50000 --no-cache >"${smoke_dir}/direct.out"
    cmp "${smoke_dir}/dup1.out" "${smoke_dir}/direct.out"

    kill -TERM "${serve_pid}"
    if ! wait "${serve_pid}"; then
        echo "serve smoke: daemon did not drain cleanly on SIGTERM" >&2
        cat "${smoke_dir}/serve.log"
        exit 1
    fi
    serve_pid=""
    [ ! -S "${smoke_sock}" ] || {
        echo "serve smoke: socket not unlinked on shutdown" >&2; exit 1; }
    cat "${smoke_dir}/serve.log"
    rm -rf "${smoke_dir}"
    trap - EXIT
fi

if want multicore; then
    stage "multicore smoke (ASan+UBSan 4-core run + serve round-trip)"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON \
        "-DTHERMCTL_SANITIZE=address;undefined" >/dev/null
    cmake --build "${base}/asan" -j "${jobs}" \
        --target thermctl_serve_bin thermctl_client thermctl_run
    mc_dir="$(mktemp -d)"
    mc_pid=""
    trap 'if [ -n "${mc_pid}" ]; then kill "${mc_pid}" 2>/dev/null || true; fi; rm -rf "${mc_dir}"' EXIT

    # 4-core budget-capped chip under the sanitizers and the
    # energy-balance invariant: the direct run doubles as the
    # bit-identity reference for the served one below.
    mc_flags="--bench 186.crafty --policy percore-PID --cores 4 \
        --coupling 4 --budget 70 --budget-policy demand \
        --warmup 2000 --cycles 50000"
    # shellcheck disable=SC2086
    "${base}/asan/tools/thermctl_run" ${mc_flags} --no-cache \
        >"${mc_dir}/direct.out"

    # The adjustable-gain policy must survive the same smoke.
    "${base}/asan/tools/thermctl_run" --bench 186.crafty \
        --policy adj-integral --cores 4 --warmup 2000 --cycles 50000 \
        --no-cache >"${mc_dir}/adj.out"

    mc_sock="${mc_dir}/serve.sock"
    THERMCTL_FAST=1 "${base}/asan/tools/thermctl_serve" \
        --socket "${mc_sock}" --cache-dir "${mc_dir}/cache" \
        --jobs 4 2>"${mc_dir}/serve.log" &
    mc_pid=$!
    for _ in $(seq 100); do
        [ -S "${mc_sock}" ] && break
        sleep 0.1
    done
    [ -S "${mc_sock}" ] || { cat "${mc_dir}/serve.log"; exit 1; }

    # shellcheck disable=SC2086
    "${base}/asan/tools/thermctl_client" --socket "${mc_sock}" \
        ${mc_flags} >"${mc_dir}/served.out"
    cmp "${mc_dir}/served.out" "${mc_dir}/direct.out"

    kill -TERM "${mc_pid}"
    if ! wait "${mc_pid}"; then
        echo "multicore smoke: daemon did not drain cleanly on SIGTERM" >&2
        cat "${mc_dir}/serve.log"
        exit 1
    fi
    mc_pid=""
    rm -rf "${mc_dir}"
    trap - EXIT
fi

if want loadgen-smoke; then
    stage "loadgen smoke (open loop against the event-driven core)"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON \
        "-DTHERMCTL_SANITIZE=address;undefined" >/dev/null
    cmake --build "${base}/asan" -j "${jobs}" \
        --target thermctl_serve_bin thermctl_loadgen
    lg_dir="$(mktemp -d)"
    lg_pid=""
    trap 'if [ -n "${lg_pid}" ]; then kill "${lg_pid}" 2>/dev/null || true; fi; rm -rf "${lg_dir}"' EXIT
    lg_sock="${lg_dir}/serve.sock"
    THERMCTL_FAST=1 "${base}/asan/tools/thermctl_serve" \
        --socket "${lg_sock}" --cache-dir "${lg_dir}/cache" \
        --jobs 4 --workers 4 2>"${lg_dir}/serve.log" &
    lg_pid=$!
    for _ in $(seq 100); do
        [ -S "${lg_sock}" ] && break
        sleep 0.1
    done
    [ -S "${lg_sock}" ] || { cat "${lg_dir}/serve.log"; exit 1; }

    # Exit 0 already asserts zero transport/protocol errors and zero
    # refusals; the JSON probe double-checks real throughput happened.
    # --cores 2 routes every generated run/sweep point through the
    # multicore engine backend.
    THERMCTL_FAST=1 "${base}/asan/tools/thermctl_loadgen" \
        --socket "${lg_sock}" --rate 30 --conns 2 --duration 3 \
        --seed 42 --cores 2 --json "${lg_dir}/BENCH_serve.json" \
        | tee "${lg_dir}/loadgen.out"
    throughput="$(awk -F': ' '/"throughput_rps"/ {print $2+0}' \
        "${lg_dir}/BENCH_serve.json")"
    awk -v t="${throughput:-0}" 'BEGIN { exit (t > 0) ? 0 : 1 }' || {
        echo "loadgen smoke: throughput is zero" >&2
        cat "${lg_dir}/serve.log"
        exit 1
    }

    kill -TERM "${lg_pid}"
    if ! wait "${lg_pid}"; then
        echo "loadgen smoke: daemon did not drain cleanly on SIGTERM" >&2
        cat "${lg_dir}/serve.log"
        exit 1
    fi
    lg_pid=""
    rm -rf "${lg_dir}"
    trap - EXIT
fi

if want chaos-smoke; then
    stage "chaos smoke (ASan+UBSan soak under a randomized fault plan)"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON \
        "-DTHERMCTL_SANITIZE=address;undefined" >/dev/null
    cmake --build "${base}/asan" -j "${jobs}" --target chaos_soak
    # Fresh seed every run: the soak is deterministic per seed, so a
    # failure is replayable with the seed echoed below.
    chaos_seed="$(date +%s)"
    if ! "${base}/asan/tests/chaos/chaos_soak" \
            "--seed=${chaos_seed}" --clients=3 --requests=8 \
            --max-wall=300; then
        echo "chaos-smoke failed; replay with:" >&2
        echo "  ${base}/asan/tests/chaos/chaos_soak" \
             "--seed=${chaos_seed} --clients=3 --requests=8" >&2
        exit 1
    fi
fi

if want cluster-smoke; then
    stage "cluster smoke (coordinator + 3 workers, one SIGKILLed mid-sweep)"
    cmake -B "${base}/asan" -S . \
        -DTHERMCTL_INVARIANTS=ON \
        "-DTHERMCTL_SANITIZE=address;undefined" >/dev/null
    cmake --build "${base}/asan" -j "${jobs}" \
        --target thermctl_serve_bin thermctl_coord thermctl_run chaos_soak
    cl_dir="$(mktemp -d)"
    cl_pids=""
    trap 'for p in ${cl_pids}; do kill -9 "${p}" 2>/dev/null || true; done; rm -rf "${cl_dir}"' EXIT

    for i in 1 2 3; do
        THERMCTL_FAST=1 "${base}/asan/tools/thermctl_serve" \
            --socket "${cl_dir}/w${i}.sock" --no-cache \
            --jobs 2 2>"${cl_dir}/w${i}.log" &
        eval "w${i}_pid=\$!"
        cl_pids="${cl_pids} $!"
    done
    for i in 1 2 3; do
        for _ in $(seq 100); do
            [ -S "${cl_dir}/w${i}.sock" ] && break
            sleep 0.1
        done
        [ -S "${cl_dir}/w${i}.sock" ] || { cat "${cl_dir}/w${i}.log"; exit 1; }
    done

    # Reference: looped direct single-point runs in grid order
    # (benchmarks outer, policies inner), blocks joined by blank lines —
    # exactly the layout thermctl_coord prints.
    : > "${cl_dir}/direct.out"
    cl_first=1
    for b in 186.crafty 179.art; do
        for p in none PI PID; do
            [ "${cl_first}" = 1 ] || printf '\n' >>"${cl_dir}/direct.out"
            cl_first=0
            "${base}/asan/tools/thermctl_run" --bench "$b" --policy "$p" \
                --warmup 2000 --cycles 50000 --no-cache \
                >>"${cl_dir}/direct.out"
        done
    done

    # Shard the same grid across the three workers and SIGKILL one
    # mid-sweep: the coordinator must reassign its points and still
    # finish complete (--require-complete turns silent loss fatal).
    "${base}/asan/tools/thermctl_coord" \
        --connect "${cl_dir}/w1.sock" --connect "${cl_dir}/w2.sock" \
        --connect "${cl_dir}/w3.sock" \
        --bench 186.crafty,179.art --policy none,PI,PID \
        --warmup 2000 --cycles 50000 --require-complete \
        --workers-report >"${cl_dir}/coord.out" 2>"${cl_dir}/coord.log" &
    coord_pid=$!
    sleep 0.3
    kill -9 "${w2_pid}"
    if ! wait "${coord_pid}"; then
        echo "cluster smoke: coordinator did not complete the sweep" >&2
        cat "${cl_dir}/coord.log" >&2
        exit 1
    fi
    cmp "${cl_dir}/coord.out" "${cl_dir}/direct.out"
    cat "${cl_dir}/coord.log"

    # Surviving workers must drain cleanly on SIGTERM.
    for i in 1 3; do
        eval "wp=\${w${i}_pid}"
        kill -TERM "${wp}"
        if ! wait "${wp}"; then
            echo "cluster smoke: worker ${i} did not drain cleanly" >&2
            cat "${cl_dir}/w${i}.log" >&2
            exit 1
        fi
    done
    wait "${w2_pid}" 2>/dev/null || true
    cl_pids=""

    # Replayable randomized cluster soak: seeded supervisor SIGKILLs a
    # worker mid-sweep and respawns it while another stalls; the merged
    # report must be complete and bit-identical.
    cl_seed="$(date +%s)"
    if ! "${base}/asan/tests/chaos/chaos_soak" --cluster \
            "--seed=${cl_seed}" --max-wall=300; then
        echo "cluster-smoke soak failed; replay with:" >&2
        echo "  ${base}/asan/tests/chaos/chaos_soak --cluster" \
             "--seed=${cl_seed}" >&2
        exit 1
    fi
    rm -rf "${cl_dir}"
    trap - EXIT
fi

if want tsan; then
    stage "TSan parallel bench smoke"
    cmake -B "${base}/tsan" -S . "-DTHERMCTL_SANITIZE=thread"
    cmake --build "${base}/tsan" -j "${jobs}" \
        --target test_sweep table4_characterization table6_structure_temps
    ctest --test-dir "${base}/tsan" --output-on-failure -R test_sweep
    tsan_cache="$(mktemp -d)"
    trap 'rm -rf "${tsan_cache}"' EXIT
    # Cold run exercises the worker pool + cache writes; the second
    # binary shares the characterization grid, so it exercises
    # warm-cache reads.
    THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
        "${base}/tsan/bench/table4_characterization" \
        --cache-dir "${tsan_cache}" >/dev/null
    THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
        "${base}/tsan/bench/table6_structure_temps" \
        --cache-dir "${tsan_cache}" >/dev/null
    trap - EXIT
fi

if want fuzz-replay; then
    stage "fuzz corpus replay (plain ctest)"
    cmake -B "${base}/plain" -S . \
        -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON >/dev/null
    cmake --build "${base}/plain" -j "${jobs}" \
        --target fuzz_protocol_replay fuzz_runresult_replay \
                 fuzz_trace_replay
    ctest --test-dir "${base}/plain" --output-on-failure -R 'fuzz_replay'

    if have_clangxx; then
        stage "fuzz smoke (libFuzzer, 30s per target)"
        cmake -B "${base}/fuzz" -S . \
            -DCMAKE_CXX_COMPILER=clang++ -DTHERMCTL_FUZZ=ON
        cmake --build "${base}/fuzz" -j "${jobs}" \
            --target fuzz_protocol fuzz_runresult fuzz_trace
        fuzz_scratch="$(mktemp -d)"
        trap 'rm -rf "${fuzz_scratch}"' EXIT
        for harness in protocol runresult trace; do
            # Scratch dir first: libFuzzer writes newly discovered
            # inputs there, keeping the committed corpus pristine.
            mkdir -p "${fuzz_scratch}/${harness}"
            "${base}/fuzz/tests/fuzz/fuzz_${harness}" \
                -max_total_time=30 -print_final_stats=1 \
                "${fuzz_scratch}/${harness}" "tests/fuzz/corpus/${harness}"
        done
        rm -rf "${fuzz_scratch}"
        trap - EXIT
    else
        echo "clang++ not found; skipping coverage-guided fuzz smoke"
    fi
fi

if want tidy; then
    stage "clang-tidy"
    if command -v clang-tidy >/dev/null 2>&1; then
        cmake -B "${base}/tidy" -S . -DTHERMCTL_CLANG_TIDY=ON
        cmake --build "${base}/tidy" -j "${jobs}"
    else
        echo "clang-tidy not found; skipping static-analysis stage"
    fi
fi

stage "selected stages passed (${selected})"
