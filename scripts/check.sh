#!/usr/bin/env bash
# Correctness matrix for thermctl. Runs, in order:
#
#   1. format check        (skipped when clang-format is absent)
#   2. plain build + ctest with -Werror and the physics-invariant
#      instrumentation compiled in (THERMCTL_INVARIANTS=ON)
#   3. ASan+UBSan build + ctest (same instrumentation; includes the
#      property-fuzz suite under the sanitizers)
#   4. serve smoke: the thermctl_serve daemon (ASan+UBSan build) under
#      concurrent clients — a duplicate pair must coalesce, client
#      output must be bit-identical to a direct thermctl_run, and
#      SIGTERM must drain cleanly with exit code 0
#   5. TSan build + parallel bench smoke: the sweep engine's worker
#      pool and warm-cache read path run under -fsanitize=thread with
#      THERMCTL_FAST=1
#   6. clang-tidy build    (skipped when clang-tidy is absent)
#
# Each stage uses its own build tree under build-check/ so the matrix
# never disturbs an existing build/ directory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
base="build-check"

stage() { printf '\n=== check.sh: %s ===\n' "$1"; }

stage "format check"
./scripts/format.sh --check

stage "plain build (-Werror, invariants on) + ctest"
cmake -B "${base}/plain" -S . \
    -DTHERMCTL_WERROR=ON -DTHERMCTL_INVARIANTS=ON
cmake --build "${base}/plain" -j "${jobs}"
ctest --test-dir "${base}/plain" --output-on-failure -j "${jobs}"

stage "ASan+UBSan build + ctest"
cmake -B "${base}/asan" -S . \
    -DTHERMCTL_INVARIANTS=ON "-DTHERMCTL_SANITIZE=address;undefined"
cmake --build "${base}/asan" -j "${jobs}"
ctest --test-dir "${base}/asan" --output-on-failure -j "${jobs}"

stage "serve smoke (ASan+UBSan daemon, concurrent clients)"
smoke_dir="$(mktemp -d)"
serve_pid=""
trap 'if [ -n "${serve_pid}" ]; then kill "${serve_pid}" 2>/dev/null || true; fi; rm -rf "${smoke_dir}"' EXIT
smoke_sock="${smoke_dir}/serve.sock"
# The batch window holds the first dispatch briefly so the duplicate
# client pair below lands while its twin is still in flight.
THERMCTL_FAST=1 "${base}/asan/tools/thermctl_serve" \
    --socket "${smoke_sock}" --cache-dir "${smoke_dir}/cache" \
    --jobs 8 --batch-window-ms 300 2>"${smoke_dir}/serve.log" &
serve_pid=$!
for _ in $(seq 100); do
    [ -S "${smoke_sock}" ] && break
    sleep 0.1
done
[ -S "${smoke_sock}" ] || { cat "${smoke_dir}/serve.log"; exit 1; }

smoke_client() {
    "${base}/asan/tools/thermctl_client" --socket "${smoke_sock}" \
        --warmup 2000 --cycles 50000 "$@"
}
smoke_client --bench 186.crafty --policy PI >"${smoke_dir}/dup1.out" &
dup1_pid=$!
smoke_client --bench 186.crafty --policy PI >"${smoke_dir}/dup2.out" &
dup2_pid=$!
smoke_client --bench 179.art --policy none >"${smoke_dir}/other.out" &
other_pid=$!
wait "${dup1_pid}" "${dup2_pid}" "${other_pid}"
cmp "${smoke_dir}/dup1.out" "${smoke_dir}/dup2.out"

coalesced="$(smoke_client --stats \
    | awk '/^coalesced/ {print $NF}')"
if [ "${coalesced:-0}" -lt 1 ]; then
    echo "serve smoke: duplicate request pair did not coalesce" >&2
    exit 1
fi

# Bit-identity: the served result must match a direct, uncached run.
"${base}/asan/tools/thermctl_run" --bench 186.crafty --policy PI \
    --warmup 2000 --cycles 50000 --no-cache >"${smoke_dir}/direct.out"
cmp "${smoke_dir}/dup1.out" "${smoke_dir}/direct.out"

kill -TERM "${serve_pid}"
if ! wait "${serve_pid}"; then
    echo "serve smoke: daemon did not drain cleanly on SIGTERM" >&2
    cat "${smoke_dir}/serve.log"
    exit 1
fi
serve_pid=""
[ ! -S "${smoke_sock}" ] || {
    echo "serve smoke: socket not unlinked on shutdown" >&2; exit 1; }
cat "${smoke_dir}/serve.log"
rm -rf "${smoke_dir}"
trap - EXIT

stage "TSan parallel bench smoke"
cmake -B "${base}/tsan" -S . "-DTHERMCTL_SANITIZE=thread"
cmake --build "${base}/tsan" -j "${jobs}" \
    --target test_sweep table4_characterization table6_structure_temps
ctest --test-dir "${base}/tsan" --output-on-failure -R test_sweep
tsan_cache="$(mktemp -d)"
trap 'rm -rf "${tsan_cache}"' EXIT
# Cold run exercises the worker pool + cache writes; the second binary
# shares the characterization grid, so it exercises warm-cache reads.
THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
    "${base}/tsan/bench/table4_characterization" \
    --cache-dir "${tsan_cache}" >/dev/null
THERMCTL_FAST=1 THERMCTL_JOBS=8 THERMCTL_QUIET=1 \
    "${base}/tsan/bench/table6_structure_temps" \
    --cache-dir "${tsan_cache}" >/dev/null

stage "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "${base}/tidy" -S . -DTHERMCTL_CLANG_TIDY=ON
    cmake --build "${base}/tidy" -j "${jobs}"
else
    echo "clang-tidy not found; skipping static-analysis stage"
fi

stage "all stages passed"
