#include "control/pid.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "common/logging.hh"

namespace thermctl
{

PidController::PidController(const PidConfig &cfg) : cfg_(cfg)
{
    if (cfg.dt.value() <= 0.0)
        fatal("PidController: dt must be positive");
    if (cfg.out_min >= cfg.out_max)
        fatal("PidController: out_min must be below out_max");
    if (cfg.derivative_filter <= 0.0 || cfg.derivative_filter > 1.0)
        fatal("PidController: derivative_filter must be in (0, 1]");
    output_ = cfg.out_max;
    integral_ = cfg.integral_init;
}

void
PidController::reset()
{
    integral_ = cfg_.integral_init;
    prev_measurement_ = 0.0;
    derivative_ = 0.0;
    output_ = cfg_.out_max;
    primed_ = false;
    steps_ = 0;
}

double
PidController::update(double measurement)
{
    ++steps_;
    const double error = cfg_.setpoint - measurement;

    // Derivative on the measurement (sign-flipped), filtered.
    double raw_derivative = 0.0;
    if (primed_)
        raw_derivative = -(measurement - prev_measurement_) / cfg_.dt;
    derivative_ += cfg_.derivative_filter
        * (raw_derivative - derivative_);
    prev_measurement_ = measurement;
    primed_ = true;

    const double p_term = cfg_.kp * error;
    const double d_term = cfg_.kd * derivative_;

    // Candidate integral increment.
    const double increment = cfg_.ki * error * cfg_.dt;
    double integral_next = integral_ + increment;
    if (cfg_.anti_windup == AntiWindup::Conditional) {
        // The integral term alone must not exceed the actuator range
        // (the paper's "preventing the integral from taking on a
        // [saturating] value"). AntiWindup::None leaves the integrator
        // unbounded, exhibiting the classic windup the paper warns of.
        integral_next =
            std::clamp(integral_next, cfg_.out_min, cfg_.out_max);
    }

    double unclamped = p_term + integral_next + d_term;

    if (cfg_.anti_windup == AntiWindup::Conditional) {
        // Freeze the integrator when the output is saturated and the
        // increment pushes further into saturation.
        const bool sat_high =
            unclamped > cfg_.out_max && increment > 0.0;
        const bool sat_low =
            unclamped < cfg_.out_min && increment < 0.0;
        if (sat_high || sat_low) {
            integral_next = integral_;
            unclamped = p_term + integral_next + d_term;
        }
    }

    integral_ = integral_next;
    output_ = std::clamp(unclamped, cfg_.out_min, cfg_.out_max);
    THERMCTL_INVARIANT(check::verifyPidContract(
        output_, integral_, cfg_.out_min, cfg_.out_max,
        cfg_.anti_windup == AntiWindup::Conditional,
        "PidController::update"));
    return output_;
}

} // namespace thermctl
