/**
 * @file
 * Controller tuning in the Laplace domain (paper Section 3.2).
 *
 * The paper derives P/PI/PID gains against the FOPDT thermal plant by
 * loop shaping: pick a gain-crossover frequency and a phase constant
 * (phase margin), solve the two magnitude/phase equations, and close the
 * remaining degrees of freedom with the conventional constraint
 * Kp^2 = 4 Ki Kd (a critically damped pair of controller zeros) for the
 * PID. "All the preceding values are common values that are known to work
 * well in practice" — they required no per-benchmark tuning, which is the
 * robustness argument of the paper.
 *
 * Ziegler-Nichols and IMC (lambda) tunings are provided for comparison
 * and for the controller-design ablation bench.
 */

#ifndef THERMCTL_CONTROL_TUNING_HH
#define THERMCTL_CONTROL_TUNING_HH

#include "common/types.hh"
#include "control/pid.hh"
#include "control/plant.hh"

namespace thermctl
{

/** Controller families considered by the paper. */
enum class ControllerKind
{
    P,
    PI,
    PID,
};

/** @return printable controller-kind name. */
const char *controllerKindName(ControllerKind kind);

/** Loop-shaping design parameters. */
struct LoopShapingSpec
{
    /**
     * Desired phase margin in degrees. The paper's phase-constant values
     * per controller family; 60 degrees is the classic robust choice for
     * PID, PI tolerates less because it only adds lag.
     */
    double phase_margin_deg = 60.0;

    /**
     * Gain-crossover frequency as a fraction of 1/dead_time. Crossing
     * over well below the delay pole keeps the loop robust; 0.5 works
     * for all three families on FOPDT thermal plants.
     */
    double crossover_fraction = 0.5;

    /**
     * Cap on the crossover as a multiple of the plant pole 1/tau. The
     * thermal plant's time constant is ~500x the sampling dead time, so
     * an uncapped delay-referenced crossover would produce enormous
     * gains that a 7-level quantized actuator turns into pure limit
     * cycling; capping at a few tens of plant poles keeps the loop gain
     * meaningful for a quantized actuator while still reacting within a
     * small fraction of the thermal time constant.
     */
    double max_crossover_tau_mult = 20.0;
};

/**
 * Derive gains by loop shaping against an FOPDT plant.
 *
 * @param kind controller family (P / PI / PID)
 * @param plant the process model
 * @param spec design targets
 * @return kp/ki/kd (unused gains zero)
 */
PidConfig tuneLoopShaping(ControllerKind kind, const FopdtPlant &plant,
                          const LoopShapingSpec &spec = {});

/** Classic open-loop Ziegler-Nichols step-response tuning. */
PidConfig tuneZieglerNichols(ControllerKind kind, const FopdtPlant &plant);

/**
 * IMC / lambda tuning: closed-loop time constant lambda (defaults to
 * max(0.5 tau, 4 L) when <= 0).
 */
PidConfig tuneImc(ControllerKind kind, const FopdtPlant &plant,
                  double lambda = 0.0);

/**
 * The paper's Section 2.2 note, made concrete: "controllers can be
 * designed with guaranteed settling times". Searches the loop-shaping
 * crossover for the gentlest design whose simulated closed-loop step
 * response settles (to +-2%) within the target time, verifying
 * stability and bounding overshoot below 25%.
 *
 * @param kind controller family (PI or PID; P cannot guarantee settling
 *        to a +-2% band because of its steady-state offset)
 * @param plant the process model
 * @param target_settling required settling time
 * @param dt controller sampling period
 * @return tuned gains with dt filled in; fatal() when no design in the
 *         searched family meets the target
 */
PidConfig tuneForSettlingTime(ControllerKind kind,
                              const FopdtPlant &plant,
                              Seconds target_settling, Seconds dt);

} // namespace thermctl

#endif // THERMCTL_CONTROL_TUNING_HH
