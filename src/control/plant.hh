/**
 * @file
 * First-order-plus-dead-time (FOPDT) plant model (paper Section 3.2).
 *
 * The thermal dynamics of a controlled structure are modeled as
 *
 *      P(s) = K e^{-Ls} / (tau s + 1)
 *
 * where K is the steady-state gain (thermal R times the actuator's
 * power swing), tau the block's thermal RC constant, and L the loop dead
 * time introduced by sampling (half the sampling period).
 */

#ifndef THERMCTL_CONTROL_PLANT_HH
#define THERMCTL_CONTROL_PLANT_HH

#include <cmath>
#include <complex>

namespace thermctl
{

/** FOPDT process model. */
struct FopdtPlant
{
    double gain = 1.0;       ///< K: steady-state output per unit input
    double tau = 1.0;        ///< first-order time constant (seconds)
    double dead_time = 0.0;  ///< L: loop delay (seconds)

    /** @return complex frequency response P(j*omega). */
    std::complex<double>
    response(double omega) const
    {
        const std::complex<double> jw(0.0, omega);
        return gain * std::exp(-jw * dead_time) / (tau * jw + 1.0);
    }

    /** @return |P(j*omega)|. */
    double
    magnitude(double omega) const
    {
        return gain / std::sqrt(1.0 + omega * omega * tau * tau);
    }

    /** @return arg P(j*omega) in radians (negative: lag). */
    double
    phase(double omega) const
    {
        return -std::atan(omega * tau) - omega * dead_time;
    }

    /**
     * Advance a discrete simulation of the plant by one step of length
     * dt, given the (delayed externally) input u.
     *
     *      y += dt/tau * (K*u - y)
     */
    double
    stepState(double y, double u, double dt) const
    {
        return y + dt / tau * (gain * u - y);
    }
};

} // namespace thermctl

#endif // THERMCTL_CONTROL_PLANT_HH
