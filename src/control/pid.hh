/**
 * @file
 * Discrete PID controller (paper Section 3).
 *
 * The controller output is the superposition of proportional, integral
 * and derivative actions on the error e = setpoint - measurement:
 *
 *      u(t) = Kp e(t) + Ki * integral(e) + Kd * de/dt
 *
 * clamped to [out_min, out_max]. Anti-windup follows the paper's
 * Section 3.3: the integrator freezes whenever the un-clamped output
 * saturates the actuator and the error would push it further into
 * saturation, and the integral term itself is clamped so it can never
 * drive the output beyond the actuator range on its own ("preventing the
 * integral from taking on a [saturating] value").
 *
 * For DTM, u in [0, 1] is the permitted fetch duty: 1 = full speed,
 * 0 = fetch fully toggled off.
 */

#ifndef THERMCTL_CONTROL_PID_HH
#define THERMCTL_CONTROL_PID_HH

#include <cstdint>

#include "common/types.hh"

namespace thermctl
{

/** Anti-windup strategies. */
enum class AntiWindup
{
    None,        ///< plain integrator (exhibits windup)
    Conditional, ///< freeze integration while saturated in-error-direction
};

/** PID gains and limits. */
struct PidConfig
{
    double kp = 0.0;
    double ki = 0.0;        ///< per second
    double kd = 0.0;        ///< seconds
    double setpoint = 0.0;
    Seconds dt = 1.0;       ///< sampling period
    double out_min = 0.0;
    double out_max = 1.0;
    AntiWindup anti_windup = AntiWindup::Conditional;
    /**
     * First-order smoothing coefficient for the derivative term in
     * (0, 1]; 1 = raw difference. Derivative acts on the measurement to
     * avoid setpoint-change kicks.
     */
    double derivative_filter = 1.0;

    /**
     * Initial value of the integral term. DTM controllers start it at
     * out_max so a cool chip runs at full speed from the first sample
     * instead of waiting for the integrator to wind up to the rail.
     */
    double integral_init = 0.0;
};

/** Discrete PID controller with anti-windup. */
class PidController
{
  public:
    explicit PidController(const PidConfig &cfg);

    /**
     * Run one control step with the latest measurement.
     * @return the clamped controller output.
     */
    double update(double measurement);

    /** @return the most recent output (out_max before the first step). */
    double output() const { return output_; }

    /** @return accumulated integral term contribution (Ki * integral). */
    double integralTerm() const { return integral_; }

    /** Reset dynamic state (integral, derivative history). */
    void reset();

    /** Change the setpoint without disturbing the integral state. */
    void setSetpoint(double sp) { cfg_.setpoint = sp; }

    const PidConfig &config() const { return cfg_; }

    /** Number of update() calls since construction/reset. */
    std::uint64_t steps() const { return steps_; }

  private:
    PidConfig cfg_;
    double integral_ = 0.0;       ///< integral *term* (already x Ki)
    double prev_measurement_ = 0.0;
    double derivative_ = 0.0;     ///< filtered derivative of measurement
    double output_ = 0.0;
    bool primed_ = false;
    std::uint64_t steps_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_CONTROL_PID_HH
