/**
 * @file
 * Closed-loop analysis utilities: discrete simulation of a PID controller
 * against an FOPDT plant, step-response metrics (overshoot, settling
 * time, steady-state error), and a stability probe. Used by the test
 * suite to verify tunings and by the controller-design example/bench.
 */

#ifndef THERMCTL_CONTROL_ANALYSIS_HH
#define THERMCTL_CONTROL_ANALYSIS_HH

#include <vector>

#include "common/types.hh"
#include "control/pid.hh"
#include "control/plant.hh"

namespace thermctl
{

/** Step-response metrics of a closed-loop simulation. */
struct StepResponse
{
    std::vector<double> output;  ///< plant output trace
    double final_value = 0.0;
    double overshoot = 0.0;      ///< fraction of the step beyond target
    double settling_time = 0.0;  ///< seconds to stay within the band
    double steady_state_error = 0.0;
    bool settled = false;
    bool diverged = false;       ///< output exceeded sanity bounds
};

/** Parameters of a closed-loop step simulation. */
struct ClosedLoopSpec
{
    double duration = 0.0;        ///< total simulated time (s); 0 = auto
    double settling_band = 0.02;  ///< +-2 percent settling criterion
    /** Disturbance added to the plant input (actuator offset). */
    double input_disturbance = 0.0;
};

/**
 * Simulate the closed loop: the controller drives the plant toward the
 * PidConfig setpoint from a zero initial state.
 *
 * The plant's dead time is realized as an input delay line; the
 * controller runs every cfg.dt while the plant integrates at a finer
 * internal step for accuracy.
 */
StepResponse simulateClosedLoop(const PidConfig &cfg,
                                const FopdtPlant &plant,
                                const ClosedLoopSpec &spec = {});

/**
 * @return true when the closed loop is stable in simulation (no
 * divergence and bounded oscillation at the end of the horizon).
 */
bool isClosedLoopStable(const PidConfig &cfg, const FopdtPlant &plant);

/** Gain margin of loop C(s)P(s) estimated by frequency sweep (dB). */
double gainMarginDb(const PidConfig &cfg, const FopdtPlant &plant);

/** Phase margin of loop C(s)P(s) estimated by frequency sweep (deg). */
double phaseMarginDeg(const PidConfig &cfg, const FopdtPlant &plant);

/**
 * Worst-case regulation overshoot of the closed loop, as a fraction of
 * the commanded step. Evaluated by simulating the loop against both a
 * setpoint step and a full-scale input (power) disturbance and taking
 * the larger overshoot — the quantity that determines how close to the
 * emergency threshold the setpoint may sit.
 */
double worstCaseOvershoot(const PidConfig &cfg, const FopdtPlant &plant);

/**
 * Residual temperature excursion from workload power disturbances, in
 * output units: half the command authority (the workload swinging over
 * half its range) attenuated by the loop's sensitivity function
 * |1 / (1 + C P)| evaluated at the thermal-time-scale frequency 1/tau.
 * A pure P controller's finite loop gain leaves a substantial residual;
 * integral action drives it toward zero.
 */
double disturbanceResidual(const PidConfig &cfg, const FopdtPlant &plant);

/**
 * The paper's Section 2.2 design rule, made concrete: "an analysis of
 * the maximum overshoot can be used to choose a setpoint that, in
 * conjunction with the appropriate controller, is as high as possible
 * without risking an actual emergency."
 *
 * The worst excursion above the setpoint is bounded by the largest of:
 * the setpoint-approach overshoot (scaled by the approach step the
 * controller actually sees — the sensor range, for the paper's clamped
 * DTM sensors), the maximum plant slew through the loop's blind
 * interval, and the disturbance residual of the finite loop gain.
 *
 * @param cfg tuned controller (setpoint field ignored)
 * @param plant the thermal plant
 * @param t_base quasi-static base temperature
 * @param t_emergency the hard limit
 * @param margin extra guard band in degrees C
 * @param approach_step the setpoint step the controller can see
 *        (degrees C); for DTM this is the sensor range above the
 *        trigger floor
 */
Celsius chooseSafeSetpoint(const PidConfig &cfg, const FopdtPlant &plant,
                           Celsius t_base, Celsius t_emergency,
                           Celsius margin = 0.05,
                           Celsius approach_step = 0.2);

} // namespace thermctl

#endif // THERMCTL_CONTROL_ANALYSIS_HH
