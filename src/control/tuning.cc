#include "control/tuning.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "control/analysis.hh"

namespace thermctl
{

const char *
controllerKindName(ControllerKind kind)
{
    switch (kind) {
      case ControllerKind::P: return "P";
      case ControllerKind::PI: return "PI";
      case ControllerKind::PID: return "PID";
      default: return "?";
    }
}

PidConfig
tuneLoopShaping(ControllerKind kind, const FopdtPlant &plant,
                const LoopShapingSpec &spec)
{
    if (plant.gain <= 0.0 || plant.tau <= 0.0)
        fatal("tuneLoopShaping: plant gain and tau must be positive");
    if (spec.phase_margin_deg <= 0.0 || spec.phase_margin_deg >= 90.0)
        fatal("tuneLoopShaping: phase margin must be in (0, 90) degrees");

    // Crossover frequency: a fraction of the delay corner, capped at a
    // multiple of the plant pole (see LoopShapingSpec). With no dead
    // time fall back to the plant pole.
    double wc = plant.dead_time > 0.0
        ? spec.crossover_fraction / plant.dead_time
        : 1.0 / plant.tau;
    if (spec.max_crossover_tau_mult > 0.0)
        wc = std::min(wc, spec.max_crossover_tau_mult / plant.tau);

    const double pm = spec.phase_margin_deg * M_PI / 180.0;
    const double plant_phase = plant.phase(wc);
    const double plant_mag = plant.magnitude(wc);

    // Required controller phase at crossover so that the loop phase is
    // -180 deg + phase margin.
    double ctrl_phase = -M_PI + pm - plant_phase;
    // A P/PI/PID controller can contribute phase in (-90, +90) degrees.
    ctrl_phase = std::clamp(ctrl_phase, -0.49 * M_PI, 0.49 * M_PI);

    PidConfig cfg;
    const double tan_phase = std::tan(ctrl_phase);

    switch (kind) {
      case ControllerKind::P: {
        // A P controller cannot shape phase; set unity loop gain at the
        // crossover and accept the plant's phase margin.
        cfg.kp = 1.0 / plant_mag;
        break;
      }
      case ControllerKind::PI: {
        // C(jw) = Kp - j Ki/w  =>  tan(theta) = -Ki / (w Kp), theta <= 0.
        cfg.kp = std::cos(ctrl_phase) / plant_mag;
        cfg.ki = std::max(0.0, -cfg.kp * tan_phase * wc);
        if (cfg.ki == 0.0) {
            // The plant leaves no phase budget for integral action at
            // this crossover; take a gentle conventional integral.
            cfg.ki = 0.1 * cfg.kp * wc;
        }
        break;
      }
      case ControllerKind::PID: {
        // C(jw) = Kp + j (Kd w - Ki / w), with Kp^2 = 4 Ki Kd.
        cfg.kp = std::cos(ctrl_phase) / plant_mag;
        const double x = cfg.kp * tan_phase; // = Kd wc - Ki / wc
        // Substitute Kd = Kp^2 / (4 Ki):
        //   Ki^2 / wc + x Ki - Kp^2 wc / 4 = 0
        const double disc = x * x + cfg.kp * cfg.kp;
        cfg.ki = 0.5 * wc * (-x + std::sqrt(disc));
        cfg.kd = cfg.kp * cfg.kp / (4.0 * cfg.ki);
        break;
      }
    }
    return cfg;
}

PidConfig
tuneZieglerNichols(ControllerKind kind, const FopdtPlant &plant)
{
    if (plant.dead_time <= 0.0)
        fatal("tuneZieglerNichols: requires a non-zero dead time");
    const double k = plant.gain;
    const double tau = plant.tau;
    const double lag = plant.dead_time;

    PidConfig cfg;
    switch (kind) {
      case ControllerKind::P:
        cfg.kp = tau / (k * lag);
        break;
      case ControllerKind::PI:
        cfg.kp = 0.9 * tau / (k * lag);
        cfg.ki = cfg.kp / (lag / 0.3);
        break;
      case ControllerKind::PID:
        cfg.kp = 1.2 * tau / (k * lag);
        cfg.ki = cfg.kp / (2.0 * lag);
        cfg.kd = cfg.kp * 0.5 * lag;
        break;
    }
    return cfg;
}

PidConfig
tuneImc(ControllerKind kind, const FopdtPlant &plant, double lambda)
{
    if (lambda <= 0.0)
        lambda = std::max(0.5 * plant.tau, 4.0 * plant.dead_time);
    const double k = plant.gain;
    const double tau = plant.tau;
    const double lag = plant.dead_time;

    PidConfig cfg;
    switch (kind) {
      case ControllerKind::P:
        cfg.kp = tau / (k * (lambda + lag));
        break;
      case ControllerKind::PI: {
        cfg.kp = tau / (k * (lambda + lag));
        cfg.ki = cfg.kp / tau;
        break;
      }
      case ControllerKind::PID: {
        const double ti = tau + 0.5 * lag;
        cfg.kp = ti / (k * (lambda + 0.5 * lag));
        cfg.ki = cfg.kp / ti;
        cfg.kd = cfg.kp * (tau * 0.5 * lag) / ti;
        break;
      }
    }
    return cfg;
}


PidConfig
tuneForSettlingTime(ControllerKind kind, const FopdtPlant &plant,
                    Seconds target_settling, Seconds dt)
{
    const double target_settling_s = target_settling.value();
    if (kind == ControllerKind::P)
        fatal("tuneForSettlingTime: a P controller cannot guarantee "
              "settling to a 2% band (steady-state offset)");
    if (target_settling_s <= 0.0 || dt.value() <= 0.0)
        fatal("tuneForSettlingTime: target and dt must be positive");

    // Sweep the crossover cap from gentle to aggressive (and, at each
    // speed, the phase margin from standard to heavily damped) and take
    // the gentlest stable design that meets the target with bounded
    // overshoot — gentler loops are more robust to plant mismatch.
    for (double mult = 2.0; mult <= 256.0; mult *= 1.3) {
        for (double pm : {60.0, 70.0, 80.0}) {
            LoopShapingSpec spec;
            spec.max_crossover_tau_mult = mult;
            spec.phase_margin_deg = pm;
            PidConfig cfg = tuneLoopShaping(kind, plant, spec);
            cfg.dt = dt;
            cfg.setpoint = 1.0;
            cfg.out_min = -1e12;
            cfg.out_max = 1e12;
            const StepResponse resp = simulateClosedLoop(cfg, plant);
            if (resp.diverged || !resp.settled)
                continue;
            if (resp.overshoot > 0.25)
                continue;
            if (resp.settling_time <= target_settling_s) {
                // Hand back a clean config: gains + dt only.
                PidConfig out = cfg;
                out.setpoint = 0.0;
                out.out_min = PidConfig{}.out_min;
                out.out_max = PidConfig{}.out_max;
                return out;
            }
        }
    }
    fatal("tuneForSettlingTime: no ", controllerKindName(kind),
          " design in the searched family settles within ",
          target_settling_s, " s for this plant");
}

} // namespace thermctl
