#include "control/analysis.hh"

#include <algorithm>
#include <cmath>
#include <complex>
#include <deque>
#include <limits>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** Controller frequency response C(j*omega). */
std::complex<double>
controllerResponse(const PidConfig &cfg, double omega)
{
    return {cfg.kp, cfg.kd * omega - cfg.ki / omega};
}

} // namespace

StepResponse
simulateClosedLoop(const PidConfig &cfg, const FopdtPlant &plant,
                   const ClosedLoopSpec &spec)
{
    if (cfg.setpoint == 0.0)
        fatal("simulateClosedLoop: needs a non-zero setpoint step");

    const double duration = spec.duration > 0.0
        ? spec.duration
        : 20.0 * (plant.tau + plant.dead_time) + 10.0 * cfg.dt;

    // Plant integrates at a finer step than the controller for accuracy.
    const int substeps = 8;
    const double dt_int = cfg.dt / substeps;

    // Input delay line realizing the dead time.
    const std::size_t delay_slots = static_cast<std::size_t>(
        std::llround(plant.dead_time / dt_int));
    std::deque<double> delay(delay_slots, 0.0);

    PidController controller(cfg);
    StepResponse resp;

    double y = 0.0;
    double u = 0.0;
    const double sp = cfg.setpoint;
    const double hi_band = sp + std::abs(sp) * spec.settling_band;
    const double lo_band = sp - std::abs(sp) * spec.settling_band;
    double last_outside = 0.0;
    double peak = std::numeric_limits<double>::lowest();

    const std::uint64_t ctrl_steps = static_cast<std::uint64_t>(
        std::ceil(duration / cfg.dt));
    resp.output.reserve(ctrl_steps);

    for (std::uint64_t k = 0; k < ctrl_steps; ++k) {
        u = controller.update(y) + spec.input_disturbance;
        for (int s = 0; s < substeps; ++s) {
            double u_eff = u;
            if (!delay.empty()) {
                delay.push_back(u);
                u_eff = delay.front();
                delay.pop_front();
            }
            y = plant.stepState(y, u_eff, dt_int);
        }
        resp.output.push_back(y);
        peak = std::max(peak, y);

        const double t = (k + 1) * cfg.dt;
        if (y > hi_band || y < lo_band)
            last_outside = t;
        if (std::abs(y) > 100.0 * std::abs(sp) + 100.0) {
            resp.diverged = true;
            break;
        }
    }

    resp.final_value = y;
    resp.steady_state_error = sp - y;
    resp.overshoot = sp != 0.0
        ? std::max(0.0, (peak - sp) / std::abs(sp))
        : 0.0;
    resp.settled = !resp.diverged && last_outside < duration - 2.0 * cfg.dt;
    resp.settling_time = resp.settled ? last_outside : duration;
    return resp;
}

bool
isClosedLoopStable(const PidConfig &cfg, const FopdtPlant &plant)
{
    PidConfig wide = cfg;
    wide.out_min = -1e12;
    wide.out_max = 1e12;
    if (wide.setpoint == 0.0)
        wide.setpoint = 1.0;
    StepResponse resp = simulateClosedLoop(wide, plant);
    if (resp.diverged)
        return false;
    // Bounded and converging: the tail must be near the setpoint. The
    // band is wide enough to admit the steady-state offset of a pure
    // proportional controller on a self-regulating plant.
    return std::abs(resp.steady_state_error)
        < 0.5 * std::abs(wide.setpoint) + 1e-9;
}

double
worstCaseOvershoot(const PidConfig &cfg, const FopdtPlant &plant)
{
    // (a) Setpoint-approach overshoot, as a fraction of the step.
    PidConfig step_cfg = cfg;
    step_cfg.setpoint = 1.0;
    const StepResponse step = simulateClosedLoop(step_cfg, plant);
    double worst = step.diverged ? 1e6 : step.overshoot;

    // (b) Reaction-delay bound: the hottest surge the loop can suffer
    // is the plant rising at its maximum slew (a full-authority power
    // step, initial slope K/tau) during the interval the controller is
    // blind — the loop dead time plus one sampling period. Expressed as
    // a fraction of the command authority K this is (L + dt) / tau.
    const double blind = plant.dead_time + cfg.dt;
    worst = std::max(worst, blind / std::max(plant.tau, 1e-12));
    return worst;
}

double
disturbanceResidual(const PidConfig &cfg, const FopdtPlant &plant)
{
    const double w_d = 1.0 / std::max(plant.tau, 1e-12);
    const std::complex<double> loop =
        controllerResponse(cfg, w_d) * plant.response(w_d);
    const double sensitivity = 1.0 / std::abs(1.0 + loop);
    return 0.5 * plant.gain * sensitivity;
}

Celsius
chooseSafeSetpoint(const PidConfig &cfg, const FopdtPlant &plant,
                   Celsius t_base, Celsius t_emergency, Celsius margin,
                   Celsius approach_step)
{
    if (t_emergency <= t_base)
        fatal("chooseSafeSetpoint: emergency level must exceed base");

    // Setpoint-approach overshoot over the visible step.
    PidConfig step_cfg = cfg;
    step_cfg.setpoint = 1.0;
    const StepResponse step = simulateClosedLoop(step_cfg, plant);
    const double approach_peak =
        (step.diverged ? 1e6 : step.overshoot) * approach_step;

    // Maximum slew through the blind interval (dead time + one sample).
    const double blind_peak = plant.gain
        * (plant.dead_time + cfg.dt) / std::max(plant.tau, 1e-12);

    // Finite-loop-gain residual of workload power disturbances.
    const double residual_peak = disturbanceResidual(cfg, plant);

    const double excursion =
        std::max({approach_peak, blind_peak, residual_peak});
    const Celsius sp = t_emergency - margin - excursion;
    return std::max(sp, t_base);
}

double
phaseMarginDeg(const PidConfig &cfg, const FopdtPlant &plant)
{
    // Find the gain crossover |C P| = 1 by log sweep + bisection.
    auto loop_mag = [&](double w) {
        return std::abs(controllerResponse(cfg, w) * plant.response(w));
    };
    double lo = 1e-4 / std::max(plant.tau, 1e-9);
    double hi = 1e4 / std::max(plant.dead_time > 0 ? plant.dead_time
                                                   : plant.tau,
                               1e-9);
    if (loop_mag(lo) < 1.0)
        return 180.0; // loop gain below unity everywhere sampled
    for (int i = 0; i < 200; ++i) {
        const double mid = std::sqrt(lo * hi);
        if (loop_mag(mid) > 1.0)
            lo = mid;
        else
            hi = mid;
    }
    const double wc = std::sqrt(lo * hi);
    const double phase = std::arg(controllerResponse(cfg, wc)
                                  * plant.response(wc));
    return (phase + M_PI) * 180.0 / M_PI;
}

double
gainMarginDb(const PidConfig &cfg, const FopdtPlant &plant)
{
    // Find the phase crossover arg(CP) = -180 deg by sweep.
    auto loop_phase = [&](double w) {
        return std::arg(controllerResponse(cfg, w) * plant.response(w));
    };
    auto loop_mag = [&](double w) {
        return std::abs(controllerResponse(cfg, w) * plant.response(w));
    };
    const double w_start = 1e-4 / std::max(plant.tau, 1e-9);
    const double w_end = 1e4
        / std::max(plant.dead_time > 0 ? plant.dead_time : plant.tau,
                   1e-9);
    double prev_w = w_start;
    double prev_phase = loop_phase(w_start);
    for (double w = w_start; w <= w_end; w *= 1.02) {
        const double ph = loop_phase(w);
        if (prev_phase > -M_PI && ph <= -M_PI) {
            // Bisect the crossing.
            double lo = prev_w, hi = w;
            for (int i = 0; i < 100; ++i) {
                const double mid = std::sqrt(lo * hi);
                if (loop_phase(mid) > -M_PI)
                    lo = mid;
                else
                    hi = mid;
            }
            const double mag = loop_mag(std::sqrt(lo * hi));
            return -20.0 * std::log10(std::max(mag, 1e-300));
        }
        prev_w = w;
        prev_phase = ph;
    }
    return 100.0; // no phase crossover within the sweep: effectively inf
}

} // namespace thermctl
