/**
 * @file
 * The DTM manager: samples sensors at the configured interval, runs the
 * policy, applies the engagement mechanism (direct microarchitectural
 * signal, or interrupt-based with a fixed delay), and drives the fetch
 * toggler. Also accumulates the paper's success metrics: cycles in
 * thermal emergency and cycles of thermal stress.
 */

#ifndef THERMCTL_DTM_MANAGER_HH
#define THERMCTL_DTM_MANAGER_HH

#include <memory>
#include <limits>

#include "dtm/actuator.hh"
#include "dtm/policy.hh"
#include "dtm/sensor.hh"

namespace thermctl
{

/** How a policy decision reaches the actuator (paper Section 2.1). */
enum class EngagementMechanism
{
    Direct,    ///< dedicated signal: takes effect immediately
    Interrupt, ///< OS interrupt handler: fixed delay per change
};

/** DTM manager configuration. */
struct DtmConfig
{
    /** Controller/policy sampling interval (paper: 1000 cycles). */
    Cycle sample_interval = 1000;

    EngagementMechanism engagement = EngagementMechanism::Direct;

    /** Interrupt cost in cycles when engagement is Interrupt. */
    Cycle interrupt_delay = 250;

    /**
     * Pipeline stall (in nominal cycles) while the clock resynchronizes
     * after a voltage/frequency change (paper Section 2.1: "the
     * processor must stall ... while the clock re-synchronizes").
     */
    Cycle resync_cycles = 15000;

    /** Discrete duty levels above zero (paper: 7 -> 8 values). */
    std::uint32_t toggle_levels = 7;

    SensorConfig sensor{};
};

/** Aggregated DTM behaviour metrics. */
struct DtmStats
{
    std::uint64_t cycles = 0;
    std::uint64_t emergency_cycles = 0; ///< any hot-spot above emergency
    std::uint64_t stress_cycles = 0;    ///< any hot-spot above stress
    std::uint64_t samples = 0;
    std::uint64_t engaged_cycles = 0;   ///< cycles with duty < 1
    double duty_sum = 0.0;              ///< mean duty = duty_sum / samples
    Celsius max_temperature = std::numeric_limits<double>::lowest();

    double
    emergencyFraction() const
    {
        return cycles ? static_cast<double>(emergency_cycles)
                          / static_cast<double>(cycles)
                      : 0.0;
    }

    double
    stressFraction() const
    {
        return cycles ? static_cast<double>(stress_cycles)
                          / static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Orchestrates sensing, policy evaluation, and fetch gating. */
class DtmManager
{
  public:
    /**
     * @param cfg manager configuration
     * @param thermal_cfg thresholds used for the metrics
     * @param policy the DTM policy (owned)
     */
    DtmManager(const DtmConfig &cfg, const ThermalConfig &thermal_cfg,
               std::unique_ptr<DtmPolicy> policy);

    /**
     * Observe the true temperatures for the current cycle and decide
     * whether fetch is permitted next cycle.
     * @return true when fetch should be enabled.
     */
    bool tick(const TemperatureVector &truth, Cycle now);

    /**
     * The actuator command currently in force (after the engagement
     * mechanism). The simulator applies its width/speculation/frequency
     * fields to the core every cycle; the duty field is realized by the
     * manager's own toggler.
     */
    const DtmCommand &command() const { return current_command_; }

    const DtmStats &stats() const { return stats_; }

    /** Reset metrics (start of a measurement window). */
    void resetStats() { stats_ = DtmStats{}; }

    DtmPolicy &policy() { return *policy_; }
    const FetchToggler &toggler() const { return toggler_; }
    const DtmConfig &config() const { return cfg_; }

  private:
    DtmConfig cfg_;
    ThermalConfig thermal_cfg_;
    std::unique_ptr<DtmPolicy> policy_;
    SensorBank sensors_;
    FetchToggler toggler_;

    DtmCommand pending_command_{};
    Cycle pending_at_ = 0;
    bool has_pending_ = false;
    DtmCommand current_command_{};

    DtmStats stats_;
};

} // namespace thermctl

#endif // THERMCTL_DTM_MANAGER_HH
