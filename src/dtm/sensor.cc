#include "dtm/sensor.hh"

#include <cmath>

namespace thermctl
{

SensorBank::SensorBank(const SensorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), fault_rng_(Rng(cfg.seed).fork(0xfa417))
{
}

TemperatureVector
SensorBank::read(const TemperatureVector &truth)
{
    const std::uint64_t sample = samples_++;
    TemperatureVector out = truth;
    const bool ideal = cfg_.offset.value() == 0.0
        && cfg_.noise_sigma.value() == 0.0 && cfg_.quantum.value() == 0.0
        && cfg_.fault_mode == SensorFaultMode::None;
    if (ideal)
        return out;
    for (Celsius &t : out.value) {
        t += cfg_.offset;
        if (cfg_.noise_sigma.value() > 0.0)
            t += rng_.gaussian(0.0, cfg_.noise_sigma);
        if (cfg_.quantum.value() > 0.0)
            t = std::round(t / cfg_.quantum) * cfg_.quantum.value();
    }
    if (cfg_.fault_mode == SensorFaultMode::None
        || sample < cfg_.fault_start)
        return out;
    switch (cfg_.fault_mode) {
      case SensorFaultMode::StuckAtLast:
        // Freeze at the first reading taken once the fault engages;
        // DTM keeps seeing a plausible but never-changing vector.
        if (!have_held_) {
            held_ = out;
            have_held_ = true;
        }
        return held_;
      case SensorFaultMode::StuckAtValue:
        for (Celsius &t : out.value)
            t = cfg_.fault_value;
        return out;
      case SensorFaultMode::DropoutHold:
        // A dropped sample re-delivers the last successful reading.
        // The dropout pattern has its own stream so it is identical
        // whether or not noise/quantization are also configured.
        if (have_held_ && fault_rng_.chance(cfg_.dropout_p))
            return held_;
        held_ = out;
        have_held_ = true;
        return out;
      case SensorFaultMode::None:
        break;
    }
    return out;
}

} // namespace thermctl
