#include "dtm/sensor.hh"

#include <cmath>

namespace thermctl
{

SensorBank::SensorBank(const SensorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

TemperatureVector
SensorBank::read(const TemperatureVector &truth)
{
    TemperatureVector out = truth;
    const bool ideal = cfg_.offset.value() == 0.0
        && cfg_.noise_sigma.value() == 0.0 && cfg_.quantum.value() == 0.0;
    if (ideal)
        return out;
    for (Celsius &t : out.value) {
        t += cfg_.offset;
        if (cfg_.noise_sigma.value() > 0.0)
            t += rng_.gaussian(0.0, cfg_.noise_sigma);
        if (cfg_.quantum.value() > 0.0)
            t = std::round(t / cfg_.quantum) * cfg_.quantum.value();
    }
    return out;
}

} // namespace thermctl
