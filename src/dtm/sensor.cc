#include "dtm/sensor.hh"

#include <cmath>

namespace thermctl
{

SensorBank::SensorBank(const SensorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

TemperatureVector
SensorBank::read(const TemperatureVector &truth)
{
    TemperatureVector out = truth;
    const bool ideal = cfg_.offset == 0.0 && cfg_.noise_sigma == 0.0
        && cfg_.quantum == 0.0;
    if (ideal)
        return out;
    for (double &t : out.value) {
        t += cfg_.offset;
        if (cfg_.noise_sigma > 0.0)
            t += rng_.gaussian(0.0, cfg_.noise_sigma);
        if (cfg_.quantum > 0.0)
            t = std::round(t / cfg_.quantum) * cfg_.quantum;
    }
    return out;
}

} // namespace thermctl
