#include "dtm/manager.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "common/logging.hh"

namespace thermctl
{

DtmManager::DtmManager(const DtmConfig &cfg,
                       const ThermalConfig &thermal_cfg,
                       std::unique_ptr<DtmPolicy> policy)
    : cfg_(cfg), thermal_cfg_(thermal_cfg), policy_(std::move(policy)),
      sensors_(cfg.sensor), toggler_(cfg.toggle_levels)
{
    if (!policy_)
        fatal("DtmManager: policy must not be null");
    if (cfg.sample_interval == 0)
        fatal("DtmManager: sample interval must be positive");
}

bool
DtmManager::tick(const TemperatureVector &truth, Cycle now)
{
    THERMCTL_INVARIANT(check::verifyFinite(truth, "DtmManager::tick"));

    // ------------------------------------------------------- metrics
    ++stats_.cycles;
    const Celsius hottest = truth.maxHotspot();
    stats_.max_temperature = std::max(stats_.max_temperature, hottest);
    if (hottest > thermal_cfg_.t_emergency)
        ++stats_.emergency_cycles;
    if (hottest > thermal_cfg_.stressLevel())
        ++stats_.stress_cycles;

    // ------------------------------------------------------ sampling
    if (now % cfg_.sample_interval == 0) {
        const TemperatureVector sensed = sensors_.read(truth);
        const DtmCommand cmd = policy_->onSample(sensed, now);
        THERMCTL_INVARIANT(check::verifyFinite(
            cmd.duty, "policy duty", "DtmManager::tick"));
        ++stats_.samples;
        stats_.duty_sum += cmd.duty;

        if (cfg_.engagement == EngagementMechanism::Direct) {
            current_command_ = cmd;
            toggler_.setDuty(cmd.duty);
        } else if (!(cmd
                     == (has_pending_ ? pending_command_
                                      : current_command_))) {
            // Interrupt-based: the change lands after the handler runs.
            // A sample repeating the already-pending command does not
            // re-arm (and hence postpone) the interrupt.
            pending_command_ = cmd;
            pending_at_ = now + cfg_.interrupt_delay;
            has_pending_ = true;
        }
    }

    if (has_pending_ && now >= pending_at_) {
        current_command_ = pending_command_;
        toggler_.setDuty(pending_command_.duty);
        has_pending_ = false;
    }

    const bool allow = toggler_.allowFetch();
    if (toggler_.level() < toggler_.levels())
        ++stats_.engaged_cycles;
    return allow;
}

} // namespace thermctl
