/**
 * @file
 * Failsafe wrapper for DTM policies under sensor faults.
 *
 * The paper's controllers trust the sensed temperature. A failed sensor
 * (stuck, dropped out — see SensorFaultMode) silently feeds a controller
 * stale or bogus readings, and a PID happily holds full fetch while the
 * real silicon runs past the emergency level. FailsafePolicy guards the
 * inner policy: it watches the sensed stream for implausibility — a
 * non-finite value, a reading outside the plausible physical range, or a
 * vector that is bit-identical for too many consecutive samples — and,
 * once tripped, latches the paper's fallback response (full fetch
 * toggling, duty 0), the one mechanism that bounds temperature without
 * needing a trustworthy sensor. The latch clears only on reset().
 *
 * bench/ablation_sensor_faults evaluates the wrapper: it compares each
 * policy with and without the failsafe across the sensor fault modes.
 */

#ifndef THERMCTL_DTM_FAILSAFE_HH
#define THERMCTL_DTM_FAILSAFE_HH

#include <memory>
#include <string>

#include "dtm/policy.hh"

namespace thermctl
{

/** Plausibility thresholds for the failsafe detector. */
struct FailsafeConfig
{
    /**
     * Trip after this many consecutive bit-identical sensed vectors.
     * Physical temperatures move every sample, so an unchanging vector
     * means a stuck sensor — except at quantized steady state (quantum
     * > 0 can legitimately repeat), so size this above the plant's
     * settle horizon when quantization is configured.
     */
    std::uint64_t stuck_samples = 8;

    /** Readings below this are physically implausible (sub-ambient). */
    Celsius min_plausible = 20.0;

    /** Readings above this are physically implausible (silicon dead). */
    Celsius max_plausible = 150.0;
};

/**
 * Delegates to the wrapped policy while the sensed stream looks
 * plausible; latches DtmCommand{duty = 0} once it does not.
 */
class FailsafePolicy : public DtmPolicy
{
  public:
    FailsafePolicy(std::unique_ptr<DtmPolicy> inner,
                   const FailsafeConfig &cfg = {});

    DtmCommand onSample(const TemperatureVector &sensed,
                        Cycle now) override;
    std::string name() const override;
    void reset() override;

    /** @return true once the fallback has latched. */
    bool tripped() const { return tripped_; }

    /** Human-readable cause of the trip (empty until tripped). */
    const std::string &reason() const { return reason_; }

  private:
    /** @return non-empty reason when `sensed` is implausible. */
    std::string inspect(const TemperatureVector &sensed);

    std::unique_ptr<DtmPolicy> inner_;
    FailsafeConfig cfg_;
    bool tripped_ = false;
    std::string reason_;
    TemperatureVector prev_{};
    bool have_prev_ = false;
    std::uint64_t identical_run_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_DTM_FAILSAFE_HH
