#include "dtm/actuator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

FetchToggler::FetchToggler(std::uint32_t levels)
    : levels_(levels), level_(levels)
{
    if (levels == 0)
        fatal("FetchToggler: needs at least one duty level");
}

void
FetchToggler::setDuty(double duty)
{
    duty = std::clamp(duty, 0.0, 1.0);
    setLevel(static_cast<std::uint32_t>(
        std::lround(duty * static_cast<double>(levels_))));
}

void
FetchToggler::setLevel(std::uint32_t level)
{
    level_ = std::min(level, levels_);
}

double
FetchToggler::duty() const
{
    return static_cast<double>(level_) / static_cast<double>(levels_);
}

bool
FetchToggler::allowFetch()
{
    // Bresenham accumulator: emits `level_` allowed cycles out of every
    // `levels_`, spaced as evenly as the integer arithmetic permits.
    accumulator_ += level_;
    if (accumulator_ >= levels_) {
        accumulator_ -= levels_;
        return true;
    }
    return false;
}

// ------------------------------------------------------------- DvfsLadder

DvfsLadder::DvfsLadder(std::uint32_t levels, double min_scale)
    : levels_(levels), level_(levels), min_scale_(min_scale)
{
    if (levels == 0)
        fatal("DvfsLadder: needs at least one level");
    if (!(min_scale > 0.0 && min_scale < 1.0))
        fatal("DvfsLadder: min_scale must be in (0, 1)");
}

void
DvfsLadder::setDuty(double duty)
{
    duty = std::clamp(duty, 0.0, 1.0);
    setLevel(static_cast<std::uint32_t>(
        std::lround(duty * static_cast<double>(levels_))));
}

void
DvfsLadder::setLevel(std::uint32_t level)
{
    level_ = std::min(level, levels_);
}

double
DvfsLadder::freqScale() const
{
    return freqScale(level_);
}

double
DvfsLadder::freqScale(std::uint32_t level) const
{
    level = std::min(level, levels_);
    return min_scale_
        + (1.0 - min_scale_)
        * (static_cast<double>(level) / static_cast<double>(levels_));
}

double
DvfsLadder::voltageRatio(double alpha) const
{
    return alpha + (1.0 - alpha) * freqScale();
}

double
DvfsLadder::powerScale(double alpha) const
{
    const double v = voltageRatio(alpha);
    return freqScale() * v * v;
}

bool
DvfsLadder::clockGate()
{
    accumulator_ += freqScale();
    if (accumulator_ >= 1.0) {
        accumulator_ -= 1.0;
        return true;
    }
    return false;
}

} // namespace thermctl
