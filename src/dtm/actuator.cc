#include "dtm/actuator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

FetchToggler::FetchToggler(std::uint32_t levels)
    : levels_(levels), level_(levels)
{
    if (levels == 0)
        fatal("FetchToggler: needs at least one duty level");
}

void
FetchToggler::setDuty(double duty)
{
    duty = std::clamp(duty, 0.0, 1.0);
    setLevel(static_cast<std::uint32_t>(
        std::lround(duty * static_cast<double>(levels_))));
}

void
FetchToggler::setLevel(std::uint32_t level)
{
    level_ = std::min(level, levels_);
}

double
FetchToggler::duty() const
{
    return static_cast<double>(level_) / static_cast<double>(levels_);
}

bool
FetchToggler::allowFetch()
{
    // Bresenham accumulator: emits `level_` allowed cycles out of every
    // `levels_`, spaced as evenly as the integer arithmetic permits.
    accumulator_ += level_;
    if (accumulator_ >= levels_) {
        accumulator_ -= levels_;
        return true;
    }
    return false;
}

} // namespace thermctl
