#include "dtm/failsafe.hh"

#include <cmath>

namespace thermctl
{

FailsafePolicy::FailsafePolicy(std::unique_ptr<DtmPolicy> inner,
                               const FailsafeConfig &cfg)
    : inner_(std::move(inner)), cfg_(cfg)
{
}

namespace
{

bool
identical(const TemperatureVector &a, const TemperatureVector &b)
{
    if (a.value.size() != b.value.size())
        return false;
    for (std::size_t i = 0; i < a.value.size(); i++) {
        if (a.value[i].value() != b.value[i].value())
            return false;
    }
    return true;
}

} // namespace

std::string
FailsafePolicy::inspect(const TemperatureVector &sensed)
{
    // The check:: primitives panic on violation; the failsafe exists to
    // keep running through bad data, so it uses plain predicates.
    for (const Celsius &t : sensed.value) {
        if (!std::isfinite(t.value()))
            return "non-finite sensor reading";
        if (t < cfg_.min_plausible)
            return "reading below plausible range";
        if (t > cfg_.max_plausible)
            return "reading above plausible range";
    }
    if (have_prev_ && identical(sensed, prev_)) {
        identical_run_++;
        if (cfg_.stuck_samples > 0 && identical_run_ >= cfg_.stuck_samples)
            return "sensor stuck (" + std::to_string(identical_run_)
                + " identical consecutive samples)";
    } else {
        identical_run_ = 0;
    }
    prev_ = sensed;
    have_prev_ = true;
    return {};
}

DtmCommand
FailsafePolicy::onSample(const TemperatureVector &sensed, Cycle now)
{
    if (!tripped_) {
        reason_ = inspect(sensed);
        tripped_ = !reason_.empty();
    }
    if (tripped_) {
        // Paper fallback: full fetch toggling. Duty 0 bounds the
        // temperature regardless of what the sensors claim.
        DtmCommand fallback;
        fallback.duty = 0.0;
        return fallback;
    }
    return inner_->onSample(sensed, now);
}

std::string
FailsafePolicy::name() const
{
    return inner_->name() + "+failsafe";
}

void
FailsafePolicy::reset()
{
    tripped_ = false;
    reason_.clear();
    have_prev_ = false;
    identical_run_ = 0;
    inner_->reset();
}

} // namespace thermctl
