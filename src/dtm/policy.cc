#include "dtm/policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermctl
{

// ------------------------------------------------------- TriggeredPolicy

TriggeredPolicy::TriggeredPolicy(Celsius trigger,
                                 Cycle policy_delay_cycles,
                                 std::string name)
    : trigger_(trigger), policy_delay_(policy_delay_cycles),
      name_(std::move(name))
{
}

DtmCommand
TriggeredPolicy::onSample(const TemperatureVector &sensed, Cycle now)
{
    const Celsius hottest = sensed.maxHotspot();
    if (hottest >= trigger_) {
        engaged_ = true;
        engaged_until_ = now + policy_delay_;
    } else if (engaged_ && now >= engaged_until_) {
        engaged_ = false;
    }
    return engaged_ ? engagedCommand() : DtmCommand{};
}

void
TriggeredPolicy::reset()
{
    engaged_ = false;
    engaged_until_ = 0;
}

// ---------------------------------------------------------- FixedToggle

FixedTogglePolicy::FixedTogglePolicy(double duty, Celsius trigger,
                                     Cycle policy_delay_cycles,
                                     std::string name)
    : TriggeredPolicy(trigger, policy_delay_cycles, std::move(name)),
      duty_(duty)
{
    if (duty < 0.0 || duty > 1.0)
        fatal("FixedTogglePolicy: duty must be in [0, 1]");
}

DtmCommand
FixedTogglePolicy::engagedCommand() const
{
    return DtmCommand{.duty = duty_};
}

// -------------------------------------------------------- FetchThrottle

FetchThrottlePolicy::FetchThrottlePolicy(std::uint32_t width_limit,
                                         Celsius trigger,
                                         Cycle policy_delay_cycles)
    : TriggeredPolicy(trigger, policy_delay_cycles, "throttle"),
      width_limit_(width_limit)
{
    if (width_limit == 0)
        fatal("FetchThrottlePolicy: width limit must be positive");
}

DtmCommand
FetchThrottlePolicy::engagedCommand() const
{
    return DtmCommand{.width_limit = width_limit_};
}

// --------------------------------------------------- SpeculationControl

SpeculationControlPolicy::SpeculationControlPolicy(
    std::uint32_t max_branches, Celsius trigger,
    Cycle policy_delay_cycles)
    : TriggeredPolicy(trigger, policy_delay_cycles, "spec-ctrl"),
      max_branches_(max_branches)
{
    if (max_branches == 0)
        fatal("SpeculationControlPolicy: branch limit must be positive");
}

DtmCommand
SpeculationControlPolicy::engagedCommand() const
{
    return DtmCommand{.spec_limit = max_branches_};
}

// ------------------------------------------------------ VoltageScaling

VoltageScalingPolicy::VoltageScalingPolicy(double freq_scale,
                                           Celsius trigger,
                                           Cycle policy_delay_cycles)
    : TriggeredPolicy(trigger, policy_delay_cycles, "vf-scaling"),
      freq_scale_(freq_scale)
{
    if (freq_scale <= 0.0 || freq_scale >= 1.0)
        fatal("VoltageScalingPolicy: freq scale must be in (0, 1)");
}

DtmCommand
VoltageScalingPolicy::engagedCommand() const
{
    return DtmCommand{.freq_scale = freq_scale_};
}

// --------------------------------------------------------- Hierarchical

HierarchicalPolicy::HierarchicalPolicy(std::unique_ptr<DtmPolicy> primary,
                                       Celsius backup_trigger,
                                       double backup_scale,
                                       Cycle backup_delay)
    : primary_(std::move(primary)), backup_trigger_(backup_trigger),
      backup_scale_(backup_scale), backup_delay_(backup_delay)
{
    if (!primary_)
        fatal("HierarchicalPolicy: primary policy must not be null");
    if (backup_scale <= 0.0 || backup_scale >= 1.0)
        fatal("HierarchicalPolicy: backup scale must be in (0, 1)");
}

DtmCommand
HierarchicalPolicy::onSample(const TemperatureVector &sensed, Cycle now)
{
    DtmCommand cmd = primary_->onSample(sensed, now);
    const Celsius hottest = sensed.maxHotspot();
    if (hottest >= backup_trigger_) {
        engaged_ = true;
        engaged_until_ = now + backup_delay_;
    } else if (engaged_ && now >= engaged_until_) {
        engaged_ = false;
    }
    if (engaged_)
        cmd.freq_scale = backup_scale_;
    return cmd;
}

std::string
HierarchicalPolicy::name() const
{
    return primary_->name() + "+vf";
}

void
HierarchicalPolicy::reset()
{
    primary_->reset();
    engaged_ = false;
    engaged_until_ = 0;
}

// --------------------------------------------------- ManualProportional

ManualProportionalPolicy::ManualProportionalPolicy(Celsius low,
                                                   Celsius high)
    : low_(low), high_(high)
{
    if (high <= low)
        fatal("ManualProportionalPolicy: high must exceed low");
}

DtmCommand
ManualProportionalPolicy::onSample(const TemperatureVector &sensed, Cycle)
{
    const Celsius hottest = sensed.maxHotspot();
    // Duty 1 at/below `low`, 0 at/above `high`, linear in between:
    // e.g. halfway through the band -> toggle every other cycle.
    const double frac = (hottest - low_) / (high_ - low_);
    return DtmCommand{.duty = std::clamp(1.0 - frac, 0.0, 1.0)};
}

// ------------------------------------------------------------- CtPolicy

CtPolicy::CtPolicy(ControllerKind kind, const PidConfig &pid,
                   Celsius range_low)
    : kind_(kind), controller_([&] {
          PidConfig cfg = pid;
          cfg.out_min = 0.0;
          cfg.out_max = 1.0;
          // Start with the integral railed high: a cool chip must run
          // at full speed from the very first sample.
          cfg.integral_init = cfg.out_max;
          return cfg;
      }()),
      range_low_(range_low)
{
    if (range_low >= pid.setpoint)
        fatal("CtPolicy: sensor-range floor must sit below the setpoint");
}

DtmCommand
CtPolicy::onSample(const TemperatureVector &sensed, Cycle)
{
    // Clamp the measurement at the sensor-range floor: below it the
    // error is a constant positive value, the (clamped) integral rails
    // at full speed, and toggling does not engage.
    const Celsius measured =
        std::max(sensed.maxHotspot(), range_low_);
    return DtmCommand{.duty = controller_.update(measured)};
}

std::string
CtPolicy::name() const
{
    return controllerKindName(kind_);
}

void
CtPolicy::reset()
{
    controller_.reset();
}

} // namespace thermctl
