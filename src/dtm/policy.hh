/**
 * @file
 * DTM policies (paper Sections 2 and 5.3).
 *
 * Non-control-theoretic baselines (all from Brooks & Martonosi, as the
 * paper describes):
 *  - NoDtmPolicy: run free (the paper's non-TM baseline IPC).
 *  - FixedTogglePolicy: toggle1/toggle2 — a fixed fetch duty engaged at
 *    a trigger temperature, held for a policy delay.
 *  - FetchThrottlePolicy: fetch every cycle at reduced width; the
 *    I-cache and predictor stay busy, so some hot spots persist.
 *  - SpeculationControlPolicy: block fetch while too many unresolved
 *    branches are in flight; ineffective under good prediction.
 *  - VoltageScalingPolicy: global voltage/frequency scaling with a
 *    clock-resynchronization stall and a long policy delay.
 *  - ManualProportionalPolicy ("M"): the paper's hand-built adaptive
 *    controller — duty proportional to the temperature's position
 *    within [trigger, emergency].
 *
 * Control-theoretic (CT-DTM):
 *  - CtPolicy: a P/PI/PID controller on the hottest sensed structure,
 *    sampled every 1000 cycles, output quantized by the actuator.
 */

#ifndef THERMCTL_DTM_POLICY_HH
#define THERMCTL_DTM_POLICY_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "control/pid.hh"
#include "control/tuning.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{

/**
 * The actuator settings a policy requests for the next sampling
 * interval. Defaults mean "run free".
 */
struct DtmCommand
{
    /** Fetch-toggling duty: 1 = full speed, 0 = fetch off. */
    double duty = 1.0;

    /** Fetch-width cap (throttling); 0 = unlimited. */
    std::uint32_t width_limit = 0;

    /** Max unresolved branches before fetch blocks; 0 = disabled. */
    std::uint32_t spec_limit = 0;

    /** Global clock-frequency scale in (0, 1]; voltage follows. */
    double freq_scale = 1.0;

    bool
    operator==(const DtmCommand &other) const
    {
        return duty == other.duty && width_limit == other.width_limit
            && spec_limit == other.spec_limit
            && freq_scale == other.freq_scale;
    }
};

/** Interface: map sensed temperatures to actuator settings. */
class DtmPolicy
{
  public:
    virtual ~DtmPolicy() = default;

    /**
     * Called once per sampling interval with the sensed temperatures.
     * @return the actuator command to hold until the next sample.
     */
    virtual DtmCommand onSample(const TemperatureVector &sensed,
                                Cycle now) = 0;

    /** @return short policy name for reports ("toggle1", "PID", ...). */
    virtual std::string name() const = 0;

    /** Reset dynamic state between runs. */
    virtual void reset() {}
};

/** Always run at full speed. */
class NoDtmPolicy : public DtmPolicy
{
  public:
    DtmCommand onSample(const TemperatureVector &, Cycle) override
    {
        return {};
    }

    std::string name() const override { return "none"; }
};

/**
 * Common machinery for the fixed-response mechanisms: engage at a
 * trigger temperature, hold for at least the policy delay.
 */
class TriggeredPolicy : public DtmPolicy
{
  public:
    TriggeredPolicy(Celsius trigger, Cycle policy_delay_cycles,
                    std::string name);

    DtmCommand onSample(const TemperatureVector &sensed,
                        Cycle now) override;
    std::string name() const override { return name_; }
    void reset() override;

    bool engaged() const { return engaged_; }

  protected:
    /** The actuator settings applied while engaged. */
    virtual DtmCommand engagedCommand() const = 0;

  private:
    Celsius trigger_;
    Cycle policy_delay_;
    std::string name_;
    bool engaged_ = false;
    Cycle engaged_until_ = 0;
};

/** Brooks & Martonosi fixed-response toggling (toggle1 / toggle2). */
class FixedTogglePolicy : public TriggeredPolicy
{
  public:
    /**
     * @param duty duty applied while engaged (0 = toggle1, 0.5 = toggle2)
     * @param trigger engage when any hot-spot sensor reaches this level
     * @param policy_delay_cycles minimum engagement time once triggered
     */
    FixedTogglePolicy(double duty, Celsius trigger,
                      Cycle policy_delay_cycles, std::string name);

  protected:
    DtmCommand engagedCommand() const override;

  private:
    double duty_;
};

/** Fetch throttling: reduced fetch width while engaged. */
class FetchThrottlePolicy : public TriggeredPolicy
{
  public:
    FetchThrottlePolicy(std::uint32_t width_limit, Celsius trigger,
                        Cycle policy_delay_cycles);

  protected:
    DtmCommand engagedCommand() const override;

  private:
    std::uint32_t width_limit_;
};

/** Speculation control: bounded unresolved branches while engaged. */
class SpeculationControlPolicy : public TriggeredPolicy
{
  public:
    SpeculationControlPolicy(std::uint32_t max_branches, Celsius trigger,
                             Cycle policy_delay_cycles);

  protected:
    DtmCommand engagedCommand() const override;

  private:
    std::uint32_t max_branches_;
};

/** Global voltage/frequency scaling while engaged. */
class VoltageScalingPolicy : public TriggeredPolicy
{
  public:
    /**
     * @param freq_scale engaged clock scale in (0, 1)
     * @param trigger engage threshold
     * @param policy_delay_cycles hold time; scaling pays a
     *        resynchronization stall on every transition, so the delay
     *        must be long (the paper's "significant policy delay")
     */
    VoltageScalingPolicy(double freq_scale, Celsius trigger,
                         Cycle policy_delay_cycles);

  protected:
    DtmCommand engagedCommand() const override;

  private:
    double freq_scale_;
};

/**
 * The paper's Section 2.1 "hierarchy of TM techniques": a low-cost
 * primary mechanism (typically CT fetch toggling) runs normally; "only
 * when temperature gets truly close to emergency would auxiliary
 * mechanisms like voltage/frequency scaling be employed". The backup
 * engages at its own (higher) trigger and holds for a long delay,
 * overriding the primary's frequency field while leaving its toggling
 * in place.
 */
class HierarchicalPolicy : public DtmPolicy
{
  public:
    /**
     * @param primary the always-on mechanism (owned)
     * @param backup_trigger engage scaling at this temperature
     * @param backup_scale clock scale while the backup is engaged
     * @param backup_delay minimum backup engagement (long: every
     *        transition costs a resynchronization stall)
     */
    HierarchicalPolicy(std::unique_ptr<DtmPolicy> primary,
                       Celsius backup_trigger, double backup_scale,
                       Cycle backup_delay);

    DtmCommand onSample(const TemperatureVector &sensed,
                        Cycle now) override;
    std::string name() const override;
    void reset() override;

    bool backupEngaged() const { return engaged_; }

  private:
    std::unique_ptr<DtmPolicy> primary_;
    Celsius backup_trigger_;
    double backup_scale_;
    Cycle backup_delay_;
    bool engaged_ = false;
    Cycle engaged_until_ = 0;
};

/** The paper's manually designed proportional controller "M". */
class ManualProportionalPolicy : public DtmPolicy
{
  public:
    /**
     * Duty falls linearly from 1 at `low` to 0 at `high`
     * (paper: low = trigger level, high = emergency level).
     */
    ManualProportionalPolicy(Celsius low, Celsius high);

    DtmCommand onSample(const TemperatureVector &sensed,
                        Cycle now) override;
    std::string name() const override { return "M"; }

  private:
    Celsius low_;
    Celsius high_;
};

/** Control-theoretic policy: P, PI or PID on the hottest structure. */
class CtPolicy : public DtmPolicy
{
  public:
    /**
     * @param kind controller family
     * @param pid tuned gains (output range forced to [0, 1])
     * @param range_low sensor-range floor: below this temperature the
     *        controller is quiescent and fetch runs at full speed (the
     *        "trigger threshold above which toggling starts to engage")
     */
    CtPolicy(ControllerKind kind, const PidConfig &pid, Celsius range_low);

    DtmCommand onSample(const TemperatureVector &sensed,
                        Cycle now) override;
    std::string name() const override;
    void reset() override;

    const PidController &controller() const { return controller_; }

  private:
    ControllerKind kind_;
    PidController controller_;
    Celsius range_low_;
};

} // namespace thermctl

#endif // THERMCTL_DTM_POLICY_HH
