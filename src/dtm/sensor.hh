/**
 * @file
 * Temperature-sensor model.
 *
 * The paper assumes an idealized sensor per functional block (its stated
 * future work is modeling sensor behaviour distinct from true physical
 * temperature). thermctl implements that extension: sensors can add a
 * static offset, Gaussian noise, and quantization to the true block
 * temperature; the defaults are ideal (zero error), matching the paper's
 * assumption, and bench/ablation_sensors explores the non-ideal cases.
 */

#ifndef THERMCTL_DTM_SENSOR_HH
#define THERMCTL_DTM_SENSOR_HH

#include "common/random.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{

/** Sensor non-idealities (defaults: ideal). */
struct SensorConfig
{
    Celsius offset = 0.0;      ///< static bias
    Celsius noise_sigma = 0.0; ///< Gaussian noise per reading
    Celsius quantum = 0.0;     ///< quantization step (0 = continuous)
    std::uint64_t seed = 0x5e5e5e5e;
};

/** Reads the per-block temperatures through the sensor model. */
class SensorBank
{
  public:
    explicit SensorBank(const SensorConfig &cfg = {});

    /** @return sensed temperatures for the given true temperatures. */
    TemperatureVector read(const TemperatureVector &truth);

    const SensorConfig &config() const { return cfg_; }

  private:
    SensorConfig cfg_;
    Rng rng_;
};

} // namespace thermctl

#endif // THERMCTL_DTM_SENSOR_HH
