/**
 * @file
 * Temperature-sensor model.
 *
 * The paper assumes an idealized sensor per functional block (its stated
 * future work is modeling sensor behaviour distinct from true physical
 * temperature). thermctl implements that extension: sensors can add a
 * static offset, Gaussian noise, and quantization to the true block
 * temperature, and can *fail* outright — stuck-at-last, stuck-at-value,
 * or dropout-with-hold (see SensorFaultMode). The defaults are ideal
 * (zero error, no fault), matching the paper's assumption;
 * bench/ablation_sensors explores the non-ideal cases and
 * bench/ablation_sensor_faults the failure modes under FailsafePolicy.
 */

#ifndef THERMCTL_DTM_SENSOR_HH
#define THERMCTL_DTM_SENSOR_HH

#include "common/random.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{

/** Outright sensor failure modes (beyond offset/noise/quantization). */
enum class SensorFaultMode : std::uint32_t
{
    None = 0,
    /** Readings freeze at the first post-fault value. */
    StuckAtLast = 1,
    /** Every block reads a constant fault_value. */
    StuckAtValue = 2,
    /** Each sample drops with probability dropout_p; the bank holds
        (re-delivers) the last successful reading. */
    DropoutHold = 3,
};

/** Sensor non-idealities (defaults: ideal). */
struct SensorConfig
{
    Celsius offset = 0.0;      ///< static bias
    Celsius noise_sigma = 0.0; ///< Gaussian noise per reading
    Celsius quantum = 0.0;     ///< quantization step (0 = continuous)
    std::uint64_t seed = 0x5e5e5e5e;

    SensorFaultMode fault_mode = SensorFaultMode::None;
    /** Sample index (not cycle) at which the fault engages. */
    std::uint64_t fault_start = 0;
    /** DropoutHold: per-sample drop probability. */
    double dropout_p = 0.0;
    /** StuckAtValue: the constant every block reads. */
    Celsius fault_value = 0.0;
};

/** Reads the per-block temperatures through the sensor model. */
class SensorBank
{
  public:
    explicit SensorBank(const SensorConfig &cfg = {});

    /** @return sensed temperatures for the given true temperatures. */
    TemperatureVector read(const TemperatureVector &truth);

    const SensorConfig &config() const { return cfg_; }

  private:
    SensorConfig cfg_;
    Rng rng_;
    Rng fault_rng_; ///< separate stream: dropout pattern is stable
                    ///< whether or not noise is also configured
    std::uint64_t samples_ = 0;
    TemperatureVector held_{};
    bool have_held_ = false;
};

} // namespace thermctl

#endif // THERMCTL_DTM_SENSOR_HH
