/**
 * @file
 * DTM actuators.
 *
 * FetchToggler (paper Sections 2.2 and 5.3): the controller output
 * (0-100%) is quantized to eight evenly spaced duty levels; a
 * Bresenham-style accumulator spreads the permitted fetch cycles evenly
 * through time, so level 4/7 really fetches 4 of every 7 cycles rather
 * than in bursts. Level 7 is full speed; level 0 is the paper's toggle1
 * (fetch fully disabled).
 *
 * DvfsLadder (multicore extension): a discrete frequency/voltage
 * operating-point ladder for per-core DVFS. The controller's continuous
 * output is quantized to a level; each level fixes a clock scale and a
 * supply-voltage ratio, from which dynamic power scales with f*V^2 and
 * ladder leakage with V (linear — a deliberate simplification versus the
 * single-core engine's V^2 leakage scaling; see DESIGN.md §15).
 */

#ifndef THERMCTL_DTM_ACTUATOR_HH
#define THERMCTL_DTM_ACTUATOR_HH

#include <cstdint>

namespace thermctl
{

/** Evenly distributed fetch duty-cycle generator. */
class FetchToggler
{
  public:
    /** @param levels number of discrete duty levels above zero (paper: 7,
     *  giving eight values 0/7 .. 7/7). */
    explicit FetchToggler(std::uint32_t levels = 7);

    /**
     * Set the duty as a fraction in [0, 1]; it is quantized to the
     * nearest discrete level.
     */
    void setDuty(double duty);

    /** Set the discrete level directly (clamped to [0, levels]). */
    void setLevel(std::uint32_t level);

    /** @return current discrete level in [0, levels]. */
    std::uint32_t level() const { return level_; }

    /** @return the realized duty fraction level/levels. */
    double duty() const;

    /** @return whether fetch is permitted this cycle; advances state. */
    bool allowFetch();

    std::uint32_t levels() const { return levels_; }

  private:
    std::uint32_t levels_;
    std::uint32_t level_;
    std::uint32_t accumulator_ = 0;
};

/**
 * Discrete per-core DVFS operating-point ladder.
 *
 * Level L in [0, levels] maps to the clock scale
 *   scale(L) = min_scale + (1 - min_scale) * L / levels
 * so level `levels` is the nominal operating point (scale 1.0) and
 * level 0 the floor. A scaled core executes on a subset of nominal-grid
 * clock edges, realized by the same Bresenham accumulator the fetch
 * toggler uses (clockGate()), which keeps the multicore engine on one
 * shared nominal time grid.
 */
class DvfsLadder
{
  public:
    /**
     * @param levels ladder levels above the floor (>= 1)
     * @param min_scale clock scale at level 0, in (0, 1)
     */
    explicit DvfsLadder(std::uint32_t levels = 7,
                        double min_scale = 0.3);

    /** Quantize a continuous duty in [0, 1] to the nearest level. */
    void setDuty(double duty);

    /** Set the discrete level directly (clamped to [0, levels]). */
    void setLevel(std::uint32_t level);

    std::uint32_t level() const { return level_; }
    std::uint32_t levels() const { return levels_; }

    /** @return clock scale of the current level, in (0, 1]. */
    double freqScale() const;

    /** @return clock scale of an arbitrary level (clamped). */
    double freqScale(std::uint32_t level) const;

    /**
     * Supply-voltage ratio V/V0 at the current level under the affine
     * V-f model: alpha + (1 - alpha) * freqScale().
     */
    double voltageRatio(double alpha) const;

    /** Dynamic-power multiplier f * (V/V0)^2 at the current level. */
    double powerScale(double alpha) const;

    /**
     * @return whether this core takes a clock edge on the current
     * nominal-grid cycle; advances the accumulator. At scale s the core
     * executes on the fraction s of nominal cycles, evenly spread.
     */
    bool clockGate();

  private:
    std::uint32_t levels_;
    std::uint32_t level_;
    double min_scale_;
    double accumulator_ = 0.0;
};

} // namespace thermctl

#endif // THERMCTL_DTM_ACTUATOR_HH
