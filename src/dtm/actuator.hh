/**
 * @file
 * The fetch-toggling actuator (paper Sections 2.2 and 5.3).
 *
 * The controller output (0-100%) is quantized to eight evenly spaced
 * duty levels; a Bresenham-style accumulator spreads the permitted fetch
 * cycles evenly through time, so level 4/7 really fetches 4 of every 7
 * cycles rather than in bursts. Level 7 is full speed; level 0 is the
 * paper's toggle1 (fetch fully disabled).
 */

#ifndef THERMCTL_DTM_ACTUATOR_HH
#define THERMCTL_DTM_ACTUATOR_HH

#include <cstdint>

namespace thermctl
{

/** Evenly distributed fetch duty-cycle generator. */
class FetchToggler
{
  public:
    /** @param levels number of discrete duty levels above zero (paper: 7,
     *  giving eight values 0/7 .. 7/7). */
    explicit FetchToggler(std::uint32_t levels = 7);

    /**
     * Set the duty as a fraction in [0, 1]; it is quantized to the
     * nearest discrete level.
     */
    void setDuty(double duty);

    /** Set the discrete level directly (clamped to [0, levels]). */
    void setLevel(std::uint32_t level);

    /** @return current discrete level in [0, levels]. */
    std::uint32_t level() const { return level_; }

    /** @return the realized duty fraction level/levels. */
    double duty() const;

    /** @return whether fetch is permitted this cycle; advances state. */
    bool allowFetch();

    std::uint32_t levels() const { return levels_; }

  private:
    std::uint32_t levels_;
    std::uint32_t level_;
    std::uint32_t accumulator_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_DTM_ACTUATOR_HH
