#include "serve/connect.hh"

#include "common/logging.hh"

namespace thermctl::serve
{

namespace
{

/** The concrete client behind connect(): retrying data plane (a single
 *  attempt when retries are off), strict lazily-connected control
 *  plane. */
class UnifiedClient final : public Client
{
  public:
    explicit UnifiedClient(const ClientOptions &opts)
        : endpoint_(opts.endpoint),
          data_(opts.endpoint, effectiveBackoff(opts))
    {
    }

    PointReply
    run(const RunRequest &req) override
    {
        return data_.run(req);
    }

    SweepReply
    sweep(const SweepRequest &req) override
    {
        return data_.sweep(req);
    }

    CacheQueryReply
    cacheQuery(const CacheQueryRequest &req) override
    {
        return control().cacheQuery(req);
    }

    StatsReply
    stats() override
    {
        return control().stats();
    }

    bool
    drain() override
    {
        return control().drain();
    }

    std::uint64_t
    attemptsTotal() const override
    {
        return data_.attemptsTotal();
    }

  private:
    static BackoffConfig
    effectiveBackoff(const ClientOptions &opts)
    {
        BackoffConfig config = opts.backoff;
        if (!opts.retry)
            config.max_attempts = 1;
        return config;
    }

    ServeClient &
    control()
    {
        if (!control_.connected())
            control_ = ServeClient::connect(endpoint_);
        return control_;
    }

    std::string endpoint_;
    RetryingClient data_;
    ServeClient control_;
};

} // namespace

std::unique_ptr<Client>
connect(const ClientOptions &opts)
{
    if (opts.endpoint.empty())
        fatal("serve: connect: empty endpoint");
    return std::make_unique<UnifiedClient>(opts);
}

} // namespace thermctl::serve
