/**
 * @file
 * Request scheduler for thermctl-serve: admission control, single-flight
 * coalescing, and batched dispatch onto the SweepEngine.
 *
 * Every request resolves to a ResolvedPoint whose identity is the sweep
 * cache digest (sweepConfigDigest): two requests the simulator cannot
 * distinguish share a digest. The scheduler exploits that three ways:
 *
 *  - Single-flight: a request whose digest is already queued or running
 *    attaches to the existing run's future instead of enqueueing a
 *    duplicate — N identical concurrent requests cost one simulation.
 *  - Batching: a dispatcher drains the queue in one sweep, groups
 *    points that differ only in workload into shared SweepSpec grids,
 *    and executes each group as one SweepEngine invocation so the
 *    engine's worker pool parallelizes across the batch.
 *  - Bounded queue: submit() past `max_queue` undispatched points is
 *    rejected immediately with Overloaded — the server never queues
 *    unboundedly and never blocks admission on simulation progress.
 *
 * The engine's content-addressed on-disk cache sits under all of this
 * as a read-through layer, so repeated requests across server restarts
 * are served without simulation.
 */

#ifndef THERMCTL_SERVE_SCHEDULER_HH
#define THERMCTL_SERVE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "common/stats.hh"
#include "serve/protocol.hh"
#include "sim/sweep.hh"

namespace thermctl::serve
{

/**
 * A fully resolved simulation request: configuration, protocol, and the
 * content digest that names it.
 */
struct ResolvedPoint
{
    std::string key; ///< "benchmark/policy", for telemetry
    SimConfig config;
    RunProtocol proto;
    std::uint64_t digest = 0; ///< sweepConfigDigest(config, proto)
};

/**
 * Resolve a wire PointSpec against the server's base configuration.
 * Throws FatalError for unknown benchmark or policy names.
 */
ResolvedPoint resolvePoint(const PointSpec &spec, const SimConfig &base);

/** Counter snapshot (see protocol.hh StatsReply for field meanings). */
struct SchedulerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t simulated = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t failed = 0;
    std::uint64_t stalled = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_high_water = 0;
    std::uint64_t latency_count = 0;
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0;
    double latency_p90_ms = 0.0;
    double latency_p99_ms = 0.0;
};

/** Admission, batching, and dispatch of resolved points. */
class Scheduler
{
  public:
    struct Options
    {
        /** Engine knobs: worker threads and the read-through cache. */
        SweepOptions sweep;

        /** Admission bound on undispatched points. */
        std::size_t max_queue = 256;

        /** Dispatcher threads (each runs one batch at a time). */
        unsigned dispatchers = 2;

        /**
         * After the first point of a batch arrives, wait this long for
         * more points to coalesce/batch before dispatching. 0 keeps
         * latency minimal; the serve-smoke stage raises it to make
         * duplicate detection deterministic.
         */
        unsigned batch_window_ms = 0;

        /**
         * Watchdog: fail a dispatched point with ServeError::Stalled
         * when its batch has made no progress for this long. 0 turns
         * the watchdog off (no extra thread).
         */
        unsigned watchdog_ms = 0;
    };

    /** Terminal state of one scheduled point. */
    struct Outcome
    {
        ServeError error = ServeError::None;
        std::string message;
        RunResult result;
        bool cache_hit = false;
        double server_ms = 0.0; ///< submit-to-completion wall time
        /** Overloaded only: suggested client backoff before retrying. */
        std::uint32_t retry_after_ms = 0;
    };

    using OutcomePtr = std::shared_ptr<const Outcome>;

    /** Handle returned by submit(); the future is always valid. */
    struct Ticket
    {
        std::shared_future<OutcomePtr> future;

        /** This request attached to an identical in-flight run. */
        bool coalesced = false;

        /** Admission rejected (future already holds the error). */
        bool rejected = false;
    };

    explicit Scheduler(const Options &opts);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit one point. Never blocks on simulation progress: returns a
     * coalesced ticket, a queued ticket, or an immediately rejected
     * ticket (Overloaded when the queue is full, Draining after
     * beginDrain()).
     */
    Ticket submit(const ResolvedPoint &point, std::uint64_t deadline_ms)
        THERMCTL_EXCLUDES(mutex_);

    /**
     * Hold dispatch (queued points stay queued; running batches finish).
     * Tests use this to make coalescing and overload deterministic.
     */
    void pauseDispatch() THERMCTL_EXCLUDES(mutex_);
    void resumeDispatch() THERMCTL_EXCLUDES(mutex_);

    /** Refuse new submissions; queued and running work continues. */
    void beginDrain() THERMCTL_EXCLUDES(mutex_);

    /** Block until no point is queued or running. */
    void awaitIdle() THERMCTL_EXCLUDES(mutex_);

    /** Drain, finish everything, and join the dispatchers. */
    void stop() THERMCTL_EXCLUDES(mutex_);

    SchedulerStats stats() const THERMCTL_EXCLUDES(mutex_);

    const Options &options() const { return opts_; }

  private:
    struct Pending;

    void dispatchLoop() THERMCTL_EXCLUDES(mutex_);
    void watchdogLoop() THERMCTL_EXCLUDES(mutex_);
    void runBatch(std::vector<std::shared_ptr<Pending>> batch)
        THERMCTL_EXCLUDES(mutex_);
    void finish(const std::shared_ptr<Pending> &p, Outcome outcome)
        THERMCTL_EXCLUDES(mutex_);

    /** Pop every queued point as one batch. */
    std::vector<std::shared_ptr<Pending>> takeBatch()
        THERMCTL_REQUIRES(mutex_);

    Options opts_;
    SweepEngine engine_;

    mutable Mutex mutex_;
    CondVar work_cv_; ///< queue became non-empty / state change
    CondVar idle_cv_; ///< queue + in-flight went empty
    CondVar watchdog_cv_; ///< wakes the watchdog early on stop()
    std::deque<std::shared_ptr<Pending>> queue_
        THERMCTL_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> inflight_
        THERMCTL_GUARDED_BY(mutex_);
    /** Points currently in a running batch. */
    std::size_t dispatching_ THERMCTL_GUARDED_BY(mutex_) = 0;
    bool paused_ THERMCTL_GUARDED_BY(mutex_) = false;
    bool draining_ THERMCTL_GUARDED_BY(mutex_) = false;
    bool stopping_ THERMCTL_GUARDED_BY(mutex_) = false;

    SchedulerStats counters_ THERMCTL_GUARDED_BY(mutex_);
    Accumulator latency_ms_ THERMCTL_GUARDED_BY(mutex_);
    Histogram latency_hist_ms_ THERMCTL_GUARDED_BY(mutex_);

    std::vector<std::thread> dispatchers_;
    std::thread watchdog_;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_SCHEDULER_HH
