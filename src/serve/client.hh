/**
 * @file
 * Synchronous client for the thermctl-serve wire protocol.
 *
 * A ServeClient owns one connected socket and issues one request at a
 * time (the protocol is strictly request/reply per connection; open
 * more clients for concurrency). Transport and framing failures throw
 * FatalError; server-side failures come back as typed ServeError codes
 * inside the replies, so callers can distinguish "the server refused
 * this request" (Overloaded, Draining, BadRequest, ...) from "the
 * connection broke".
 */

#ifndef THERMCTL_SERVE_CLIENT_HH
#define THERMCTL_SERVE_CLIENT_HH

#include <string>
#include <utility>

#include "serve/protocol.hh"

namespace thermctl::serve
{

class ServeClient
{
  public:
    /** Connect to a Unix-domain server socket. Fatal on failure. */
    static ServeClient connectUnix(const std::string &path);

    /** Connect to a TCP server on loopback/hostname. Fatal on failure. */
    static ServeClient connectTcp(const std::string &host, int port);

    /**
     * Endpoint syntax: "unix:PATH", "tcp:HOST:PORT", or a bare path
     * (treated as a Unix socket).
     */
    static ServeClient connect(const std::string &endpoint);

    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept
        : fd_(std::exchange(other.fd_, -1))
    {
    }
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Execute one point on the server. Server-side refusals (overload,
     * drain, unknown names, deadline) return as PointReply.error.
     */
    PointReply run(const RunRequest &req);

    /** Execute a benchmarks x policies grid; replies in grid order. */
    SweepReply sweep(const SweepRequest &req);

    /** Probe the server's result cache without simulating. */
    CacheQueryReply cacheQuery(const CacheQueryRequest &req);

    StatsReply stats();

    /**
     * Request a graceful drain: the server finishes in-flight work,
     * refuses new requests, and exits.
     * @return true when the server was already draining.
     */
    bool drain();

  private:
    explicit ServeClient(int fd) : fd_(fd) {}

    /** One request/reply exchange; throws FatalError on transport. */
    std::pair<MsgType, std::string> roundTrip(MsgType type,
                                              std::string_view payload);

    int fd_ = -1;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_CLIENT_HH
