/**
 * @file
 * Synchronous client for the thermctl-serve wire protocol.
 *
 * A ServeClient owns one connected socket and issues one request at a
 * time (the protocol is strictly request/reply per connection; open
 * more clients for concurrency). Server-side failures come back as
 * typed ServeError codes inside the replies; transport failures on the
 * data plane (run/sweep) come back the same way, as
 * ServeError::Transport, with the socket closed — callers distinguish
 * "the server refused this request" (Overloaded, Draining, ...) from
 * "the connection broke" and can reconnect (see serve/retry.hh for the
 * retrying wrapper). Control-plane calls (cacheQuery/stats/drain) and
 * protocol violations still throw FatalError.
 */

#ifndef THERMCTL_SERVE_CLIENT_HH
#define THERMCTL_SERVE_CLIENT_HH

#include <string>
#include <utility>

#include "serve/protocol.hh"

namespace thermctl::serve
{

class ServeClient
{
  public:
    /** Connect to a Unix-domain server socket. Fatal on failure. */
    static ServeClient connectUnix(const std::string &path);

    /** Connect to a TCP server on loopback/hostname. Fatal on failure. */
    static ServeClient connectTcp(const std::string &host, int port);

    /**
     * Endpoint syntax: "unix:PATH", "tcp:HOST:PORT", or a bare path
     * (treated as a Unix socket).
     */
    static ServeClient connect(const std::string &endpoint);

    /**
     * Non-fatal connect: on failure returns a disconnected client and
     * fills `error`. Reconnection paths use this so a flapping server
     * is a retryable condition, not process death.
     */
    static ServeClient tryConnect(const std::string &endpoint,
                                  std::string &error);

    /**
     * tryConnect with a bound on the connect phase itself: the socket
     * is connected non-blocking and abandoned after `timeout_ms`. A
     * Unix listener whose backlog is full fails immediately instead of
     * blocking, so a flapping or wedged worker costs bounded time.
     */
    static ServeClient tryConnect(const std::string &endpoint,
                                  unsigned timeout_ms, std::string &error);

    /** A disconnected client; connect() or tryConnect() to get one. */
    ServeClient() = default;

    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept
        : fd_(std::exchange(other.fd_, -1))
    {
    }
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** @return true while the socket is open and usable. */
    [[nodiscard]] bool connected() const { return fd_ >= 0; }

    /**
     * Bound every subsequent reply read to `ms` milliseconds
     * (SO_RCVTIMEO); 0 restores blocking reads. An expired read
     * surfaces as a Transport failure with the socket closed — the
     * coordinator uses this to turn a silent worker stall into a typed,
     * lease-sized failure instead of an indefinite hang.
     */
    void setRecvTimeout(unsigned ms);

    /**
     * Execute one point on the server. Server-side refusals (overload,
     * drain, unknown names, deadline) return as PointReply.error; a
     * broken connection returns ServeError::Transport and disconnects.
     */
    [[nodiscard]] PointReply run(const RunRequest &req);

    /**
     * Execute a benchmarks x policies grid; replies in grid order.
     * A broken connection yields a single Transport point.
     */
    [[nodiscard]] SweepReply sweep(const SweepRequest &req);

    /** Probe the server's result cache without simulating. */
    [[nodiscard]] CacheQueryReply cacheQuery(const CacheQueryRequest &req);

    [[nodiscard]] StatsReply stats();

    /**
     * Lightweight health probe. Non-fatal like the data plane: a broken
     * connection returns false with the cause in `error` and the socket
     * closed. Protocol violations still throw.
     */
    [[nodiscard]] bool ping(PingReply &out, std::string &error);

    /**
     * Request a graceful drain: the server finishes in-flight work,
     * refuses new requests, and exits.
     * @return true when the server was already draining.
     */
    bool drain();

  private:
    explicit ServeClient(int fd) : fd_(fd) {}

    /** One request/reply exchange; throws FatalError on transport. */
    std::pair<MsgType, std::string> roundTrip(MsgType type,
                                              std::string_view payload);

    /**
     * One request/reply exchange that reports transport failures by
     * returning false (with a human-readable cause in `error`) and
     * closing the socket, instead of throwing. Framing violations —
     * a server speaking another protocol — still throw.
     */
    [[nodiscard]] bool tryRoundTrip(MsgType type, std::string_view payload,
                      MsgType &reply_type, std::string &reply,
                      std::string &error);

    /** Close the socket (broken connections are not reusable). */
    void disconnect();

    int fd_ = -1;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_CLIENT_HH
