#include "serve/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "common/random.hh"
#include "common/thread_annotations.hh"
#include "fault/fault.hh"
#include "serve/client.hh"
#include "serve/scheduler.hh"
#include "sim/sweep.hh"

namespace thermctl::serve
{

void
CoordinatorOptions::validate() const
{
    if (endpoints.empty())
        fatal("coordinator: at least one worker endpoint is required");
    if (lease_ms == 0)
        fatal("coordinator: lease must be > 0 ms");
    if (probe_interval_ms == 0)
        fatal("coordinator: probe interval must be > 0 ms");
    if (max_point_attempts == 0)
        fatal("coordinator: max point attempts must be > 0");
    if (unhealthy_after == 0)
        fatal("coordinator: unhealthy-after must be > 0");
}

const char *
workerHealthName(WorkerHealth h)
{
    switch (h) {
      case WorkerHealth::Healthy: return "healthy";
      case WorkerHealth::Unhealthy: return "unhealthy";
      case WorkerHealth::Quarantined: return "quarantined";
      default: return "?";
    }
}

bool
CoordinatorReport::complete() const
{
    return std::all_of(outcomes.begin(), outcomes.end(),
                       [](const CoordPointOutcome &o) {
                           return o.reply.error == ServeError::None;
                       });
}

std::vector<std::string>
CoordinatorReport::missingKeys() const
{
    std::vector<std::string> missing;
    for (const auto &o : outcomes)
        if (o.reply.error != ServeError::None)
            missing.push_back(o.key);
    return missing;
}

std::vector<PointSpec>
Coordinator::gridPoints(const SweepRequest &grid)
{
    std::vector<PointSpec> points;
    points.reserve(grid.benchmarks.size() * grid.policies.size());
    for (const auto &bench : grid.benchmarks) {
        for (const auto &policy : grid.policies) {
            PointSpec p;
            p.benchmark = bench;
            p.policy = policy;
            p.warmup_cycles = grid.warmup_cycles;
            p.measure_cycles = grid.measure_cycles;
            p.ct_setpoint = grid.ct_setpoint;
            p.sample_interval = grid.sample_interval;
            p.num_cores = grid.num_cores;
            p.coupling_r = grid.coupling_r;
            p.chip_budget = grid.chip_budget;
            p.budget_policy = grid.budget_policy;
            points.push_back(std::move(p));
        }
    }
    return points;
}

Coordinator::Coordinator(CoordinatorOptions opts) : opts_(std::move(opts))
{
}

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedMs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

/** Settlement phase of one representative (digest-unique) point. */
enum class Phase : std::uint8_t
{
    Pending,  ///< in some worker's backlog
    InFlight, ///< at least one dispatch outstanding
    Done,     ///< completed; bytes hold the canonical serialization
    Failed,   ///< typed terminal failure (reply carries the cause)
};

struct PointState
{
    PointSpec spec;
    std::string key;
    std::uint64_t digest = 0;
    Phase phase = Phase::Pending;
    unsigned attempts = 0;
    unsigned inflight = 0; ///< dispatches currently outstanding
    bool shadowed = false; ///< a speculative duplicate was issued
    std::size_t owner = 0; ///< worker of the primary dispatch
    std::string bytes;     ///< serialized result (duplicate compare key)
    PointReply reply;
    std::string worker; ///< endpoint that completed it
};

struct WorkerState
{
    std::deque<std::size_t> backlog;
    WorkerHealth health = WorkerHealth::Healthy;
    unsigned consecutive_failures = 0;
    Clock::time_point quarantined_until{};
    CoordWorkerStats stats;
};

/** One dispatch's ending, mapped from the typed reply (or its absence). */
enum class DispatchKind
{
    Completed,
    Transport,    ///< connection failed or broke below the lease
    LeaseExpired, ///< worker silent for the whole lease
    Overloaded,   ///< worker queue full; honor retry_after_ms
    Stalled,      ///< typed Stalled / DeadlineExceeded from the worker
    Draining,     ///< worker is shutting down; quarantine + reassign
    Terminal,     ///< BadRequest/Internal/VersionMismatch: do not retry
};

struct Dispatch
{
    DispatchKind kind = DispatchKind::Transport;
    PointReply reply; ///< meaningful unless the reply never arrived
    std::string error;
};

/**
 * The machinery of one Coordinator::run(): per-worker agent threads, a
 * health prober, and the shared settlement state. Lives on the stack of
 * run() and joins everything before returning.
 */
class Flock
{
  public:
    Flock(const CoordinatorOptions &opts, std::vector<PointState> points)
        : opts_(opts), points_(std::move(points)),
          workers_(opts.endpoints.size())
    {
        for (std::size_t wi = 0; wi < workers_.size(); ++wi)
            workers_[wi].stats.endpoint = opts_.endpoints[wi];
        // Round-robin shard; points that failed to resolve never enter
        // a backlog (they are already settled as Failed).
        std::size_t next = 0;
        for (std::size_t pi = 0; pi < points_.size(); ++pi) {
            if (points_[pi].phase != Phase::Pending)
                continue;
            workers_[next % workers_.size()].backlog.push_back(pi);
            next++;
            unsettled_++;
        }
    }

    void
    runAll()
    {
        std::vector<std::thread> agents;
        agents.reserve(workers_.size());
        for (std::size_t wi = 0; wi < workers_.size(); ++wi)
            agents.emplace_back([this, wi] { agentLoop(wi); });
        std::thread prober([this] { proberLoop(); });
        for (auto &t : agents)
            t.join();
        prober.join();
        MutexLock lock(mutex_);
        if (!mismatch_.empty())
            fatal(mismatch_);
    }

    const PointState &
    point(std::size_t pi) const
    {
        // Only called after runAll() joined every thread.
        return points_[pi];
    }

    std::vector<CoordWorkerStats>
    workerStats() const
    {
        std::vector<CoordWorkerStats> out;
        out.reserve(workers_.size());
        for (const auto &w : workers_) {
            CoordWorkerStats s = w.stats;
            s.health = w.health;
            out.push_back(std::move(s));
        }
        return out;
    }

  private:
    // ------------------------------------------------------- agent side

    void
    agentLoop(std::size_t wi)
    {
        ServeClient client;
        Rng jitter = Rng(opts_.seed).fork(wi + 1);
        std::uint32_t prev_sleep_ms = 0;
        for (;;) {
            std::size_t pi = 0;
            RunRequest req;
            {
                MutexLock lock(mutex_);
                if (!acquireWork(wi, pi, req))
                    return;
            }
            Dispatch d = dispatchOne(client, wi, req);
            std::uint32_t sleep_ms = 0;
            {
                MutexLock lock(mutex_);
                sleep_ms = settle(wi, pi, d, jitter, prev_sleep_ms);
                cv_.notify_all();
            }
            if (sleep_ms > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleep_ms));
            }
        }
    }

    /**
     * Pick the next point for worker `wi`: own backlog first, then
     * steal from the largest backlog, then shadow a point still in
     * flight elsewhere. Blocks (with periodic re-checks) while there is
     * nothing to do; returns false once the run is settled or aborted.
     */
    bool
    acquireWork(std::size_t wi, std::size_t &pi, RunRequest &req)
        THERMCTL_REQUIRES(mutex_)
    {
        for (;;) {
            if (unsettled_ == 0 || !mismatch_.empty())
                return false;
            WorkerState &w = workers_[wi];
            if (w.health == WorkerHealth::Quarantined) {
                const bool any_active = std::any_of(
                    workers_.begin(), workers_.end(),
                    [](const WorkerState &o) {
                        return o.health != WorkerHealth::Quarantined;
                    });
                if (any_active) {
                    // Only the prober re-admits; wait it out while the
                    // healthy workers drain (or steal) the points.
                    cv_.waitUntil(
                        mutex_,
                        Clock::now() + std::chrono::milliseconds(50));
                    continue;
                }
                // Every worker is quarantined (the whole cluster is
                // down or sick). Waiting for re-admission could block
                // forever, so dispatch anyway: each attempt burns the
                // point's budget, which guarantees settlement — every
                // point ends Done or Failed in bounded time.
            }
            bool shadow = false;
            if (!w.backlog.empty()) {
                pi = w.backlog.front();
                w.backlog.pop_front();
            } else {
                // Steal from the slowest worker's backlog (largest
                // pile of unstarted work), taking from the back so the
                // victim's own head-of-line point is untouched.
                std::size_t victim = workers_.size();
                std::size_t depth = 0;
                for (std::size_t j = 0; j < workers_.size(); ++j) {
                    if (j != wi && workers_[j].backlog.size() > depth) {
                        victim = j;
                        depth = workers_[j].backlog.size();
                    }
                }
                if (victim < workers_.size()) {
                    pi = workers_[victim].backlog.back();
                    workers_[victim].backlog.pop_back();
                    w.stats.stolen++;
                } else if (findShadow(wi, pi)) {
                    shadow = true;
                    w.stats.shadowed++;
                } else {
                    cv_.waitUntil(
                        mutex_,
                        Clock::now() + std::chrono::milliseconds(100));
                    continue;
                }
            }
            PointState &p = points_[pi];
            if (p.phase == Phase::Done || p.phase == Phase::Failed)
                continue; // settled while parked in a backlog
            if (!shadow) {
                p.phase = Phase::InFlight;
                p.owner = wi;
            } else {
                p.shadowed = true;
            }
            p.attempts++;
            p.inflight++;
            w.stats.dispatched++;
            req.point = p.spec;
            req.deadline_ms = opts_.lease_ms;
            return true;
        }
    }

    /**
     * End-of-grid speculation: a point still in flight on one *other*
     * worker, not yet shadowed. At most one shadow per point keeps the
     * worst-case duplicate work at 2x on the final stragglers only.
     */
    bool
    findShadow(std::size_t wi, std::size_t &pi) THERMCTL_REQUIRES(mutex_)
    {
        for (std::size_t i = 0; i < points_.size(); ++i) {
            PointState &p = points_[i];
            if (p.phase == Phase::InFlight && !p.shadowed
                && p.inflight == 1 && p.owner != wi) {
                pi = i;
                return true;
            }
        }
        return false;
    }

    /** One dispatch over the wire; no shared state touched. */
    Dispatch
    dispatchOne(ServeClient &client, std::size_t wi, const RunRequest &req)
        THERMCTL_EXCLUDES(mutex_)
    {
        Dispatch d;
        const auto fp = THERMCTL_FAULT_POINT("coord.dispatch");
        if (fp.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fp.stall_ms));
        }
        if (fp.abort()) {
            d.kind = DispatchKind::Transport;
            d.error = "injected dispatch fault";
            return d;
        }
        if (!client.connected()) {
            std::string error;
            client = ServeClient::tryConnect(
                opts_.endpoints[wi], opts_.connect_timeout_ms, error);
            if (!client.connected()) {
                d.kind = DispatchKind::Transport;
                d.error = error;
                return d;
            }
            // The lease doubles as the receive timeout: a worker that
            // goes silent costs exactly one lease, never a hang.
            client.setRecvTimeout(opts_.lease_ms);
        }
        const auto t0 = Clock::now();
        PointReply r;
        try {
            r = client.run(req);
        } catch (const FatalError &e) {
            // A protocol-level violation (foreign wire version, garbage
            // frames) is not retryable on this worker, but other
            // workers may be fine: treat it as a transport failure and
            // let the health ladder quarantine the offender.
            d.kind = DispatchKind::Transport;
            d.error = e.what();
            return d;
        }
        if (r.error == ServeError::Transport) {
            // Distinguish "the connection broke" from "the worker went
            // silent for the whole lease" — the latter is a stall, and
            // stalls are reassigned elsewhere rather than retried here.
            d.kind = elapsedMs(t0) + 50 >= opts_.lease_ms
                         ? DispatchKind::LeaseExpired
                         : DispatchKind::Transport;
            d.error = r.message;
            return d;
        }
        const auto fc = THERMCTL_FAULT_POINT("coord.collect");
        if (fc.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fc.stall_ms));
        }
        if (fc.abort()) {
            // The worker's answer is dropped on the floor. For the
            // coordinator this is a lost reply and the point gets
            // re-dispatched; the duplicate-completion byte-compare is
            // what makes that safe.
            d.kind = DispatchKind::Transport;
            d.error = "injected collect fault (reply dropped)";
            return d;
        }
        d.reply = std::move(r);
        switch (d.reply.error) {
          case ServeError::None:
            d.kind = DispatchKind::Completed;
            break;
          case ServeError::Overloaded:
            d.kind = DispatchKind::Overloaded;
            break;
          case ServeError::Stalled:
          case ServeError::DeadlineExceeded:
            d.kind = DispatchKind::Stalled;
            break;
          case ServeError::Draining:
            d.kind = DispatchKind::Draining;
            break;
          default:
            d.kind = DispatchKind::Terminal;
            break;
        }
        return d;
    }

    /** Apply one dispatch outcome. @return backoff sleep for the agent. */
    std::uint32_t
    settle(std::size_t wi, std::size_t pi, Dispatch &d, Rng &jitter,
           std::uint32_t &prev_sleep_ms) THERMCTL_REQUIRES(mutex_)
    {
        PointState &p = points_[pi];
        WorkerState &w = workers_[wi];
        p.inflight--;
        switch (d.kind) {
          case DispatchKind::Completed:
            w.stats.completed++;
            noteSuccess(wi);
            completeLocked(pi, std::move(d.reply), wi);
            return 0;

          case DispatchKind::Transport:
          case DispatchKind::LeaseExpired:
            if (d.kind == DispatchKind::Transport)
                w.stats.transport_failures++;
            else
                w.stats.lease_expiries++;
            noteFailure(wi);
            requeueLocked(pi, wi, ServeError::Transport, d.error);
            return 0;

          case DispatchKind::Stalled:
            w.stats.stalls++;
            noteFailure(wi);
            requeueLocked(pi, wi, ServeError::Stalled, d.reply.message);
            return 0;

          case DispatchKind::Overloaded: {
            w.stats.overloads++;
            // The worker answered — it is busy, not sick: no health
            // penalty, and the agent backs off before its next
            // dispatch, floored on the server's own hint.
            requeueLocked(pi, wi, ServeError::Overloaded,
                          d.reply.message);
            const double base = 25.0;
            const double prev =
                prev_sleep_ms > 0 ? double(prev_sleep_ms) : base;
            double sleep =
                jitter.uniform(base, std::max(base + 1.0, prev * 3.0));
            sleep = std::min(sleep, 2000.0);
            sleep = std::max(sleep, double(d.reply.retry_after_ms));
            prev_sleep_ms = static_cast<std::uint32_t>(sleep);
            return prev_sleep_ms;
          }

          case DispatchKind::Draining:
            noteFailure(wi);
            quarantineLocked(wi);
            requeueLocked(pi, wi, ServeError::Draining, d.reply.message);
            return 0;

          case DispatchKind::Terminal:
            failLocked(pi, std::move(d.reply));
            return 0;
        }
        return 0;
    }

    // ------------------------------------------------ state transitions

    void
    completeLocked(std::size_t pi, PointReply reply, std::size_t wi)
        THERMCTL_REQUIRES(mutex_)
    {
        PointState &p = points_[pi];
        const std::string bytes = serializeRunResult(reply.result);
        if (p.phase == Phase::Done) {
            // At-least-once dispatch means genuine duplicates (shadows,
            // dropped replies). Exactly-once-in-effect holds only if
            // every completion of a digest is bit-identical; anything
            // else means a nondeterministic worker or a foreign base
            // config, and the merged results cannot be trusted.
            if (bytes != p.bytes && mismatch_.empty()) {
                mismatch_ = "coordinator: duplicate completions for "
                            + p.key + " differ byte-for-byte ("
                            + opts_.endpoints[wi] + " vs " + p.worker
                            + "): nondeterministic worker or mismatched "
                              "base config";
            }
            return;
        }
        const bool was_settled = p.phase == Phase::Failed;
        p.phase = Phase::Done;
        p.bytes = bytes;
        p.reply = std::move(reply);
        p.worker = opts_.endpoints[wi];
        if (!was_settled)
            settleOne();
    }

    void
    failLocked(std::size_t pi, PointReply reply) THERMCTL_REQUIRES(mutex_)
    {
        PointState &p = points_[pi];
        if (p.phase == Phase::Done || p.phase == Phase::Failed)
            return;
        p.phase = Phase::Failed;
        p.reply = std::move(reply);
        settleOne();
    }

    /**
     * A dispatch failed without a terminal verdict: re-shard the point
     * to the healthiest other worker, or fail it once its attempt
     * budget is gone. No-op while a duplicate dispatch is still out —
     * the survivor settles the point.
     */
    void
    requeueLocked(std::size_t pi, std::size_t wi, ServeError cause,
                  const std::string &detail) THERMCTL_REQUIRES(mutex_)
    {
        PointState &p = points_[pi];
        if (p.phase == Phase::Done || p.phase == Phase::Failed)
            return;
        if (p.inflight > 0)
            return;
        if (p.attempts >= opts_.max_point_attempts) {
            PointReply r;
            r.error = cause;
            r.message = "gave up after " + std::to_string(p.attempts)
                        + " dispatch attempt(s); last: "
                        + std::string(serveErrorName(cause))
                        + (detail.empty() ? "" : " (" + detail + ")");
            failLocked(pi, std::move(r));
            return;
        }
        p.phase = Phase::Pending;
        p.shadowed = false;
        pushElsewhere(pi, wi);
    }

    /** Reassign `pi` to the non-quarantined worker with the smallest
     * backlog, preferring anyone but `wi`. */
    void
    pushElsewhere(std::size_t pi, std::size_t wi) THERMCTL_REQUIRES(mutex_)
    {
        std::size_t best = wi;
        std::size_t depth = std::numeric_limits<std::size_t>::max();
        for (std::size_t j = 0; j < workers_.size(); ++j) {
            if (j == wi
                || workers_[j].health == WorkerHealth::Quarantined) {
                continue;
            }
            if (workers_[j].backlog.size() < depth) {
                best = j;
                depth = workers_[j].backlog.size();
            }
        }
        workers_[best].backlog.push_back(pi);
    }

    void
    settleOne() THERMCTL_REQUIRES(mutex_)
    {
        unsettled_--;
    }

    // --------------------------------------------------- health ladder

    void
    noteSuccess(std::size_t wi) THERMCTL_REQUIRES(mutex_)
    {
        WorkerState &w = workers_[wi];
        w.consecutive_failures = 0;
        if (w.health == WorkerHealth::Unhealthy)
            w.health = WorkerHealth::Healthy;
        // Quarantined stays quarantined: only the prober re-admits,
        // after the window passed.
    }

    void
    noteFailure(std::size_t wi) THERMCTL_REQUIRES(mutex_)
    {
        WorkerState &w = workers_[wi];
        w.consecutive_failures++;
        if (w.health == WorkerHealth::Healthy
            && w.consecutive_failures >= opts_.unhealthy_after) {
            w.health = WorkerHealth::Unhealthy;
        } else if (w.health == WorkerHealth::Unhealthy
                   && w.consecutive_failures
                          >= 2 * opts_.unhealthy_after) {
            quarantineLocked(wi);
        }
    }

    void
    quarantineLocked(std::size_t wi) THERMCTL_REQUIRES(mutex_)
    {
        WorkerState &w = workers_[wi];
        w.quarantined_until =
            Clock::now() + std::chrono::milliseconds(opts_.quarantine_ms);
        if (w.health == WorkerHealth::Quarantined)
            return; // extend the window only
        w.health = WorkerHealth::Quarantined;
        w.stats.quarantines++;
        // Redistribute the backlog so queued points do not wait out the
        // quarantine window. If every other worker is also quarantined
        // the points stay here — stealing ignores health, so they are
        // picked up the moment anyone recovers.
        std::deque<std::size_t> keep;
        while (!w.backlog.empty()) {
            const std::size_t pi = w.backlog.front();
            w.backlog.pop_front();
            std::size_t target = wi;
            std::size_t depth = std::numeric_limits<std::size_t>::max();
            for (std::size_t j = 0; j < workers_.size(); ++j) {
                if (j == wi
                    || workers_[j].health == WorkerHealth::Quarantined) {
                    continue;
                }
                if (workers_[j].backlog.size() < depth) {
                    target = j;
                    depth = workers_[j].backlog.size();
                }
            }
            if (target == wi)
                keep.push_back(pi);
            else
                workers_[target].backlog.push_back(pi);
        }
        w.backlog = std::move(keep);
    }

    // ------------------------------------------------------ prober side

    void
    proberLoop() THERMCTL_EXCLUDES(mutex_)
    {
        std::vector<ServeClient> probes(workers_.size());
        for (;;) {
            for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
                {
                    MutexLock lock(mutex_);
                    if (unsettled_ == 0 || !mismatch_.empty())
                        return;
                }
                bool ok = false;
                PingReply pong;
                std::string error;
                try {
                    if (!probes[wi].connected()) {
                        probes[wi] = ServeClient::tryConnect(
                            opts_.endpoints[wi], opts_.connect_timeout_ms,
                            error);
                        if (probes[wi].connected()) {
                            probes[wi].setRecvTimeout(
                                std::max(1000u, opts_.probe_interval_ms));
                        }
                    }
                    if (probes[wi].connected())
                        ok = probes[wi].ping(pong, error);
                } catch (const FatalError &) {
                    ok = false; // foreign protocol: permanent failure
                }
                if (ok && pong.version != kWireVersion)
                    ok = false;
                MutexLock lock(mutex_);
                WorkerState &w = workers_[wi];
                if (!ok) {
                    noteFailure(wi);
                } else if (pong.draining) {
                    quarantineLocked(wi);
                } else if (w.health == WorkerHealth::Quarantined) {
                    if (Clock::now() >= w.quarantined_until) {
                        // Served the window AND answers probes again:
                        // re-admit and wake waiting agents.
                        w.health = WorkerHealth::Healthy;
                        w.consecutive_failures = 0;
                        cv_.notify_all();
                    }
                } else {
                    noteSuccess(wi);
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.probe_interval_ms));
        }
    }

    const CoordinatorOptions &opts_;
    Mutex mutex_;
    CondVar cv_;
    std::vector<PointState> points_ THERMCTL_GUARDED_BY(mutex_);
    std::vector<WorkerState> workers_ THERMCTL_GUARDED_BY(mutex_);
    std::size_t unsettled_ THERMCTL_GUARDED_BY(mutex_) = 0;
    std::string mismatch_ THERMCTL_GUARDED_BY(mutex_);
};

} // namespace

CoordinatorReport
Coordinator::run(const std::vector<PointSpec> &grid)
{
    opts_.validate();

    // Resolve every grid point to its content address up front.
    // Duplicate digests coalesce onto one representative dispatch —
    // the coordinator-level twin of the scheduler's single-flight table
    // and the cache's content addressing, keyed identically.
    std::vector<PointState> reps;
    std::vector<std::size_t> rep_of(grid.size());
    std::unordered_map<std::uint64_t, std::size_t> by_digest;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        try {
            const ResolvedPoint pt = resolvePoint(grid[i], opts_.base);
            const auto it = by_digest.find(pt.digest);
            if (it != by_digest.end()) {
                rep_of[i] = it->second;
                continue;
            }
            PointState st;
            st.spec = grid[i];
            st.key = pt.key;
            st.digest = pt.digest;
            by_digest.emplace(pt.digest, reps.size());
            rep_of[i] = reps.size();
            reps.push_back(std::move(st));
        } catch (const FatalError &e) {
            // Unknown benchmark/policy names are a per-point BadRequest
            // (matching the server's verdict), not a run abort.
            PointState st;
            st.spec = grid[i];
            st.key = grid[i].benchmark + "/" + grid[i].policy;
            st.phase = Phase::Failed;
            st.reply.error = ServeError::BadRequest;
            st.reply.message = e.what();
            rep_of[i] = reps.size();
            reps.push_back(std::move(st));
        }
    }

    Flock flock(opts_, std::move(reps));
    flock.runAll();

    CoordinatorReport report;
    report.outcomes.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const PointState &st = flock.point(rep_of[i]);
        CoordPointOutcome o;
        o.spec = grid[i];
        o.key = st.key;
        o.digest = st.digest;
        o.reply = st.reply;
        o.attempts = st.attempts;
        o.worker = st.worker;
        report.outcomes.push_back(std::move(o));
    }
    report.workers = flock.workerStats();
    return report;
}

} // namespace thermctl::serve
