#include "serve/client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"

namespace thermctl::serve
{

namespace
{

/**
 * Non-blocking connect bounded by `timeout_ms`; on success the socket
 * is back in blocking mode. A Unix listener with a full backlog makes
 * ::connect fail with EAGAIN straight away — that is reported as a
 * failure, not waited out, so a wedged worker costs bounded time.
 */
bool
connectBounded(int fd, const sockaddr *addr, socklen_t len,
               unsigned timeout_ms, std::string &error)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, addr, len) != 0) {
        if (errno != EINPROGRESS) {
            error = std::string("connect: ") + std::strerror(errno);
            return false;
        }
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::milliseconds(timeout_ms);
        for (;;) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0) {
                error = "connect timed out after "
                        + std::to_string(timeout_ms) + " ms";
                return false;
            }
            pollfd p{};
            p.fd = fd;
            p.events = POLLOUT;
            const int rc = ::poll(&p, 1, int(left.count()));
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                error = std::string("poll: ") + std::strerror(errno);
                return false;
            }
            if (rc > 0)
                break;
        }
        int so_error = 0;
        socklen_t so_len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len)
                != 0
            || so_error != 0) {
            error = std::string("connect: ")
                    + std::strerror(so_error ? so_error : errno);
            return false;
        }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
        error = std::string("fcntl(restore): ") + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace

ServeClient
ServeClient::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("client: socket(AF_UNIX): ", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        fatal("client: socket path too long: ", path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        const int err = errno;
        ::close(fd);
        fatal("client: cannot connect to ", path, ": ",
              std::strerror(err), " (is thermctl_serve running?)");
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connectTcp(const std::string &host, int port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0
        || !res) {
        fatal("client: cannot resolve ", host, ":", port);
    }
    const int fd = ::socket(res->ai_family, res->ai_socktype,
                            res->ai_protocol);
    if (fd < 0) {
        ::freeaddrinfo(res);
        fatal("client: socket(AF_INET): ", std::strerror(errno));
    }
    const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    const int err = errno;
    ::freeaddrinfo(res);
    if (rc != 0) {
        ::close(fd);
        fatal("client: cannot connect to ", host, ":", port, ": ",
              std::strerror(err), " (is thermctl_serve running?)");
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connect(const std::string &endpoint)
{
    if (endpoint.rfind("unix:", 0) == 0)
        return connectUnix(endpoint.substr(5));
    if (endpoint.rfind("tcp:", 0) == 0) {
        const std::string rest = endpoint.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos)
            fatal("client: tcp endpoint needs HOST:PORT, got '",
                  endpoint, "'");
        const std::string host = rest.substr(0, colon);
        int port = 0;
        try {
            port = std::stoi(rest.substr(colon + 1));
        } catch (const std::exception &) {
            fatal("client: bad tcp port in '", endpoint, "'");
        }
        return connectTcp(host, port);
    }
    return connectUnix(endpoint);
}

ServeClient
ServeClient::tryConnect(const std::string &endpoint, std::string &error)
{
    try {
        return connect(endpoint);
    } catch (const FatalError &e) {
        error = e.what();
        return ServeClient();
    }
}

ServeClient
ServeClient::tryConnect(const std::string &endpoint, unsigned timeout_ms,
                        std::string &error)
{
    if (endpoint.rfind("tcp:", 0) == 0) {
        const std::string rest = endpoint.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            error = "tcp endpoint needs HOST:PORT: '" + endpoint + "'";
            return ServeClient();
        }
        const std::string host = rest.substr(0, colon);
        int port = 0;
        try {
            port = std::stoi(rest.substr(colon + 1));
        } catch (const std::exception &) {
            error = "bad tcp port in '" + endpoint + "'";
            return ServeClient();
        }
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *res = nullptr;
        if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                          &hints, &res)
                != 0
            || !res) {
            error = "cannot resolve " + host + ":" + std::to_string(port);
            return ServeClient();
        }
        const int fd = ::socket(res->ai_family, res->ai_socktype,
                                res->ai_protocol);
        if (fd < 0) {
            ::freeaddrinfo(res);
            error = std::string("socket: ") + std::strerror(errno);
            return ServeClient();
        }
        const bool ok = connectBounded(fd, res->ai_addr, res->ai_addrlen,
                                       timeout_ms, error);
        ::freeaddrinfo(res);
        if (!ok) {
            ::close(fd);
            return ServeClient();
        }
        return ServeClient(fd);
    }

    const std::string path = endpoint.rfind("unix:", 0) == 0
                                 ? endpoint.substr(5)
                                 : endpoint;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + path;
        return ServeClient();
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return ServeClient();
    }
    if (!connectBounded(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr), timeout_ms, error)) {
        ::close(fd);
        return ServeClient();
    }
    return ServeClient(fd);
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void
ServeClient::setRecvTimeout(unsigned ms)
{
    if (fd_ < 0)
        return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = suseconds_t(ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void
ServeClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::tryRoundTrip(MsgType type, std::string_view payload,
                          MsgType &reply_type, std::string &reply,
                          std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, type, payload)) {
        error = "send failed (server gone?)";
        disconnect();
        return false;
    }
    FrameStatus fs = FrameStatus::Ok;
    switch (readFrame(fd_, reply_type, reply, &fs)) {
      case ReadStatus::Ok:
        return true;
      case ReadStatus::Eof:
        error = "server closed the connection before replying";
        disconnect();
        return false;
      case ReadStatus::Transport:
        error = "transport error reading reply";
        disconnect();
        return false;
      case ReadStatus::BadFrame:
        // Not a transport blip: the peer speaks a different protocol.
        // Retrying cannot help, so this stays fatal.
        disconnect();
        fatal("client: malformed reply frame (",
              fs == FrameStatus::BadVersion ? "wire version mismatch"
                                            : "bad header",
              ")");
    }
    error = "unreachable read status";
    return false;
}

std::pair<MsgType, std::string>
ServeClient::roundTrip(MsgType type, std::string_view payload)
{
    MsgType reply_type;
    std::string reply;
    std::string error;
    if (!tryRoundTrip(type, payload, reply_type, reply, error))
        fatal("client: ", error);
    return {reply_type, std::move(reply)};
}

namespace
{

/** Map an ErrorReply frame into a typed PointReply failure. */
PointReply
errorToPoint(const std::string &payload)
{
    ErrorReply err;
    if (!ErrorReply::decode(payload, err))
        fatal("client: undecodable ErrorReply from server");
    PointReply p;
    p.error = err.code;
    p.message = err.message;
    return p;
}

} // namespace

PointReply
ServeClient::run(const RunRequest &req)
{
    MsgType type;
    std::string payload;
    std::string error;
    if (!tryRoundTrip(MsgType::RunRequest, req.encode(), type, payload,
                      error)) {
        PointReply p;
        p.error = ServeError::Transport;
        p.message = error;
        return p;
    }
    if (type == MsgType::ErrorReply)
        return errorToPoint(payload);
    if (type != MsgType::RunReply)
        fatal("client: unexpected reply type to RunRequest");
    RunReply reply;
    if (!RunReply::decode(payload, reply))
        fatal("client: undecodable RunReply payload");
    return reply.point;
}

SweepReply
ServeClient::sweep(const SweepRequest &req)
{
    MsgType type;
    std::string payload;
    std::string error;
    if (!tryRoundTrip(MsgType::SweepRequest, req.encode(), type, payload,
                      error)) {
        SweepReply reply;
        PointReply p;
        p.error = ServeError::Transport;
        p.message = error;
        reply.points.push_back(std::move(p));
        return reply;
    }
    if (type == MsgType::ErrorReply) {
        SweepReply reply;
        reply.points.push_back(errorToPoint(payload));
        return reply;
    }
    if (type != MsgType::SweepReply)
        fatal("client: unexpected reply type to SweepRequest");
    SweepReply reply;
    if (!SweepReply::decode(payload, reply))
        fatal("client: undecodable SweepReply payload");
    return reply;
}

CacheQueryReply
ServeClient::cacheQuery(const CacheQueryRequest &req)
{
    auto [type, payload] =
        roundTrip(MsgType::CacheQueryRequest, req.encode());
    if (type == MsgType::ErrorReply) {
        ErrorReply err;
        if (!ErrorReply::decode(payload, err))
            fatal("client: undecodable ErrorReply from server");
        fatal("client: cache query refused: ", err.message);
    }
    if (type != MsgType::CacheQueryReply)
        fatal("client: unexpected reply type to CacheQueryRequest");
    CacheQueryReply reply;
    if (!CacheQueryReply::decode(payload, reply))
        fatal("client: undecodable CacheQueryReply payload");
    return reply;
}

StatsReply
ServeClient::stats()
{
    auto [type, payload] =
        roundTrip(MsgType::StatsRequest, StatsRequest{}.encode());
    if (type != MsgType::StatsReply)
        fatal("client: unexpected reply type to StatsRequest");
    StatsReply reply;
    if (!StatsReply::decode(payload, reply))
        fatal("client: undecodable StatsReply payload");
    return reply;
}

bool
ServeClient::ping(PingReply &out, std::string &error)
{
    MsgType type;
    std::string payload;
    if (!tryRoundTrip(MsgType::PingRequest, PingRequest{}.encode(), type,
                      payload, error)) {
        return false;
    }
    if (type == MsgType::ErrorReply) {
        ErrorReply err;
        if (!ErrorReply::decode(payload, err))
            fatal("client: undecodable ErrorReply from server");
        error = err.message;
        return false;
    }
    if (type != MsgType::PingReply)
        fatal("client: unexpected reply type to PingRequest");
    if (!PingReply::decode(payload, out))
        fatal("client: undecodable PingReply payload");
    return true;
}

bool
ServeClient::drain()
{
    auto [type, payload] =
        roundTrip(MsgType::DrainRequest, DrainRequest{}.encode());
    if (type != MsgType::DrainReply)
        fatal("client: unexpected reply type to DrainRequest");
    DrainReply reply;
    if (!DrainReply::decode(payload, reply))
        fatal("client: undecodable DrainReply payload");
    return reply.was_draining;
}

} // namespace thermctl::serve
