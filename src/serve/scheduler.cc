#include "serve/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "fault/fault.hh"
#include "multicore/multicore_sim.hh"
#include "sim/policy_factory.hh"
#include "workload/spec_profiles.hh"

namespace thermctl::serve
{

using Clock = std::chrono::steady_clock;

/** One admitted point from submit() until its promise is fulfilled. */
struct Scheduler::Pending
{
    ResolvedPoint point;
    Clock::time_point enqueued;
    Clock::time_point deadline; ///< meaningful only when has_deadline
    bool has_deadline = false;
    std::promise<OutcomePtr> promise;
    std::shared_future<OutcomePtr> future;

    // Guarded by Scheduler::mutex_ (annotation impossible on an inner
    // struct member referring to an instance mutex).
    bool dispatched = false; ///< handed to runBatch by takeBatch()
    bool fulfilled = false;  ///< promise set (by finish or watchdog)
    Clock::time_point dispatch_started;
};

ResolvedPoint
resolvePoint(const PointSpec &spec, const SimConfig &base)
{
    ResolvedPoint pt;
    pt.config = base;
    pt.config.workload = specProfile(spec.benchmark);
    if (!parseDtmPolicyKind(spec.policy, pt.config.policy.kind)) {
        std::string all;
        for (const auto &n : dtmPolicyNames())
            all += all.empty() ? n : "|" + n;
        fatal("unknown policy '", spec.policy, "' (expected one of ",
              all, ")");
    }
    if (spec.ct_setpoint != 0.0) {
        pt.config.policy.ct_setpoint = spec.ct_setpoint;
        pt.config.policy.ct_range_low = spec.ct_setpoint - 0.2;
    }
    if (spec.sample_interval != 0)
        pt.config.dtm.sample_interval = spec.sample_interval;
    // Multicore knobs: zero keeps the server-side config default. The
    // values were range-checked at decode time (multicoreKnobsValid),
    // so resolution never fatals on client input.
    if (spec.num_cores != 0)
        pt.config.multicore.num_cores = spec.num_cores;
    if (spec.coupling_r != 0.0)
        pt.config.multicore.coupling_resistance = spec.coupling_r;
    if (spec.chip_budget != 0.0)
        pt.config.multicore.chip_budget = spec.chip_budget;
    if (spec.budget_policy != 0) {
        pt.config.multicore.budget_policy =
            static_cast<BudgetPolicy>(spec.budget_policy);
    }
    pt.proto.warmup_cycles = spec.warmup_cycles;
    pt.proto.measure_cycles = spec.measure_cycles;
    pt.key = sweepKey(pt.config.workload.name,
                      dtmPolicyKindName(pt.config.policy.kind));
    pt.digest = sweepConfigDigest(pt.config, pt.proto);
    return pt;
}

namespace
{

/**
 * Batch-grouping digest: everything the full digest covers except the
 * workload. Points sharing it differ only in workload, so one
 * SweepSpec (base + workload list) reproduces each of them exactly.
 */
std::uint64_t
groupDigest(const ResolvedPoint &pt)
{
    SimConfig neutral = pt.config;
    neutral.workload = WorkloadProfile{};
    return sweepConfigDigest(neutral, pt.proto);
}

/** @return an immediately resolved ticket carrying a typed error. */
Scheduler::Ticket
rejectedTicket(ServeError code, std::string message,
               std::uint32_t retry_after_ms = 0)
{
    auto outcome = std::make_shared<Scheduler::Outcome>();
    outcome->error = code;
    outcome->message = std::move(message);
    outcome->retry_after_ms = retry_after_ms;
    std::promise<Scheduler::OutcomePtr> promise;
    promise.set_value(std::move(outcome));
    Scheduler::Ticket t;
    t.future = promise.get_future().share();
    t.rejected = true;
    return t;
}

} // namespace

Scheduler::Scheduler(const Options &opts)
    : opts_(opts), engine_(opts.sweep),
      latency_hist_ms_(0.0, 60000.0, 6000)
{
    // Any admitted point may carry multicore knobs; make sure the
    // engine can dispatch them before the first dispatcher starts.
    multicore::ensureBackendRegistered();
    const unsigned n = std::max(1u, opts_.dispatchers);
    dispatchers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
    if (opts_.watchdog_ms > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

Scheduler::~Scheduler()
{
    stop();
}

Scheduler::Ticket
Scheduler::submit(const ResolvedPoint &point, std::uint64_t deadline_ms)
{
    MutexLock lock(mutex_);
    counters_.submitted++;

    if (draining_ || stopping_)
        return rejectedTicket(ServeError::Draining,
                              "server is draining; request refused");

    // Single-flight: identical work already queued or running.
    if (auto it = inflight_.find(point.digest); it != inflight_.end()) {
        counters_.coalesced++;
        Ticket t;
        t.future = it->second->future;
        t.coalesced = true;
        return t;
    }

    if (queue_.size() >= opts_.max_queue) {
        counters_.rejected_overload++;
        // Retry-after hint: roughly when the backlog ahead of a retry
        // should have cleared — mean point latency scaled by the queue
        // per dispatcher, clamped to something a client can live with.
        double hint_ms = 100.0;
        if (latency_ms_.count() > 0) {
            hint_ms = latency_ms_.mean()
                      * (1.0 + static_cast<double>(queue_.size()))
                      / std::max(1u, opts_.dispatchers);
        }
        hint_ms = std::clamp(hint_ms, 25.0, 5000.0);
        return rejectedTicket(
            ServeError::Overloaded,
            "request queue full (" + std::to_string(opts_.max_queue)
                + " points); retry later",
            static_cast<std::uint32_t>(hint_ms));
    }

    auto p = std::make_shared<Pending>();
    p->point = point;
    p->enqueued = Clock::now();
    if (deadline_ms != 0) {
        p->has_deadline = true;
        p->deadline =
            p->enqueued + std::chrono::milliseconds(deadline_ms);
    }
    p->future = p->promise.get_future().share();

    queue_.push_back(p);
    inflight_.emplace(point.digest, p);
    counters_.queue_high_water =
        std::max<std::uint64_t>(counters_.queue_high_water,
                                queue_.size());
    work_cv_.notify_one();

    Ticket t;
    t.future = p->future;
    return t;
}

void
Scheduler::pauseDispatch()
{
    MutexLock lock(mutex_);
    paused_ = true;
}

void
Scheduler::resumeDispatch()
{
    MutexLock lock(mutex_);
    paused_ = false;
    work_cv_.notify_all();
}

void
Scheduler::beginDrain()
{
    MutexLock lock(mutex_);
    draining_ = true;
    // Drain overrides a test-paused dispatcher: queued work must finish.
    paused_ = false;
    work_cv_.notify_all();
}

void
Scheduler::awaitIdle()
{
    MutexLock lock(mutex_);
    while (!(queue_.empty() && dispatching_ == 0 && inflight_.empty()))
        idle_cv_.wait(mutex_);
}

void
Scheduler::stop()
{
    {
        MutexLock lock(mutex_);
        if (stopping_)
            return;
        draining_ = true;
        paused_ = false;
        stopping_ = true;
        work_cv_.notify_all();
        watchdog_cv_.notify_all();
    }
    for (auto &t : dispatchers_)
        t.join();
    dispatchers_.clear();
    if (watchdog_.joinable())
        watchdog_.join();
}

SchedulerStats
Scheduler::stats() const
{
    MutexLock lock(mutex_);
    SchedulerStats s = counters_;
    s.queue_depth = queue_.size();
    s.latency_count = latency_ms_.count();
    s.latency_mean_ms = latency_ms_.mean();
    s.latency_p50_ms = latency_hist_ms_.quantile(0.50);
    s.latency_p90_ms = latency_hist_ms_.quantile(0.90);
    s.latency_p99_ms = latency_hist_ms_.quantile(0.99);
    return s;
}

std::vector<std::shared_ptr<Scheduler::Pending>>
Scheduler::takeBatch()
{
    std::vector<std::shared_ptr<Pending>> batch(queue_.begin(),
                                                queue_.end());
    queue_.clear();
    dispatching_ += batch.size();
    const auto now = Clock::now();
    for (auto &p : batch) {
        p->dispatched = true;
        p->dispatch_started = now;
    }
    return batch;
}

void
Scheduler::dispatchLoop()
{
    MutexLock lock(mutex_);
    for (;;) {
        while (!(stopping_ || (!paused_ && !queue_.empty())))
            work_cv_.wait(mutex_);
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Batch window: give concurrent clients a moment to land their
        // requests so duplicates coalesce and compatible points share
        // one engine invocation.
        if (opts_.batch_window_ms > 0 && !stopping_) {
            const auto until =
                Clock::now()
                + std::chrono::milliseconds(opts_.batch_window_ms);
            while (!stopping_ && work_cv_.waitUntil(mutex_, until)) {
                // Woken before the window closed; keep collecting
                // until the deadline unless a stop arrived.
            }
        }

        auto batch = takeBatch();
        lock.unlock();
        runBatch(std::move(batch));
        lock.lock();
        idle_cv_.notify_all();
    }
}

void
Scheduler::finish(const std::shared_ptr<Pending> &p, Outcome outcome)
{
    outcome.server_ms =
        std::chrono::duration<double, std::milli>(Clock::now()
                                                  - p->enqueued)
            .count();
    const double ms = outcome.server_ms;
    const bool ok = outcome.error == ServeError::None;
    const bool hit = outcome.cache_hit;
    bool deliver = false;
    {
        MutexLock lock(mutex_);
        deliver = !p->fulfilled;
        p->fulfilled = true;
        // Un-register before fulfilling: a digest is coalescible only
        // while its outcome is still pending. Compare pointers — the
        // watchdog may have failed this point already, after which the
        // same digest can be re-admitted as a fresh Pending.
        if (auto it = inflight_.find(p->point.digest);
            it != inflight_.end() && it->second == p) {
            inflight_.erase(it);
        }
        dispatching_--;
        if (deliver && ok) {
            latency_ms_.add(ms);
            latency_hist_ms_.add(ms);
            if (hit)
                counters_.cache_hits++;
            else
                counters_.simulated++;
        }
    }
    // A watchdog-failed point already carries a Stalled outcome; the
    // late real result is dropped (the client was told, typed).
    if (deliver) {
        p->promise.set_value(
            std::make_shared<const Outcome>(std::move(outcome)));
    }
}

void
Scheduler::watchdogLoop()
{
    const auto limit = std::chrono::milliseconds(opts_.watchdog_ms);
    const auto period =
        std::chrono::milliseconds(std::max(1u, opts_.watchdog_ms / 2));
    MutexLock lock(mutex_);
    while (!stopping_) {
        watchdog_cv_.waitUntil(mutex_, Clock::now() + period);
        if (stopping_)
            return;
        const auto now = Clock::now();
        std::vector<std::shared_ptr<Pending>> expired;
        for (auto it = inflight_.begin(); it != inflight_.end();) {
            const auto &p = it->second;
            if (p->dispatched && !p->fulfilled
                && now - p->dispatch_started > limit) {
                p->fulfilled = true;
                counters_.stalled++;
                expired.push_back(p);
                it = inflight_.erase(it);
            } else {
                ++it;
            }
        }
        if (expired.empty())
            continue;
        // Fulfill outside the lock; finish() later only drops the late
        // result and decrements dispatching_, so drain stays correct.
        lock.unlock();
        for (const auto &p : expired) {
            Outcome oc;
            oc.error = ServeError::Stalled;
            oc.message = "batch dispatch made no progress for "
                         + std::to_string(opts_.watchdog_ms) + " ms";
            oc.server_ms =
                std::chrono::duration<double, std::milli>(now
                                                          - p->enqueued)
                    .count();
            p->promise.set_value(
                std::make_shared<const Outcome>(std::move(oc)));
        }
        lock.lock();
    }
}

void
Scheduler::runBatch(std::vector<std::shared_ptr<Pending>> batch)
{
    // Expired deadlines fail fast without costing a simulation.
    const auto now = Clock::now();
    std::vector<std::shared_ptr<Pending>> live;
    live.reserve(batch.size());
    for (auto &p : batch) {
        if (p->has_deadline && now > p->deadline) {
            {
                MutexLock lock(mutex_);
                counters_.rejected_deadline++;
            }
            Outcome oc;
            oc.error = ServeError::DeadlineExceeded;
            oc.message = "deadline expired before dispatch";
            finish(p, std::move(oc));
        } else {
            live.push_back(std::move(p));
        }
    }

    // Group points that differ only in workload into shared grids.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < live.size(); ++i)
        groups[groupDigest(live[i]->point)].push_back(i);

    for (const auto &[digest, members] : groups) {
        (void)digest;
        const auto fp = THERMCTL_FAULT_POINT("sched.batch");
        if (fp.stall()) {
            // A wedged engine invocation: the watchdog (when enabled)
            // must fail these points rather than hang the drain.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fp.stall_ms));
        }
        const ResolvedPoint &rep = live[members.front()]->point;
        SweepSpec spec;
        spec.protocol(rep.proto).base(rep.config);
        for (std::size_t i : members)
            spec.workload(live[i]->point.config.workload);

        try {
            const SweepResults results = engine_.run(spec);
            // points() iterates workloads in insertion order with the
            // single (base) policy, so outcomes align with `members`.
            const auto &outcomes = results.outcomes();
            for (std::size_t j = 0; j < members.size(); ++j) {
                Outcome oc;
                oc.result = outcomes[j].result;
                oc.cache_hit = outcomes[j].cache_hit;
                finish(live[members[j]], std::move(oc));
            }
        } catch (const std::exception &e) {
            {
                MutexLock lock(mutex_);
                counters_.failed += members.size();
            }
            for (std::size_t i : members) {
                Outcome oc;
                oc.error = ServeError::Internal;
                oc.message = e.what();
                finish(live[i], std::move(oc));
            }
        }
    }
}

} // namespace thermctl::serve
