/**
 * @file
 * thermctl-flock: fault-tolerant distributed sweep sharding.
 *
 * A Coordinator spreads a benchmarks x policies grid across several
 * thermctl_serve workers over the existing wire protocol and keeps the
 * run correct while workers crash, stall, restart, or go slow. The
 * design leans entirely on substrates that already exist:
 *
 *  - *Idempotent dispatch.* Every point's identity is its
 *    sweepConfigDigest (the same content address the cache and the
 *    scheduler's single-flight table use), so dispatching a point twice
 *    is harmless. At-least-once dispatch becomes exactly-once-in-effect
 *    at collection: the first completion of a digest wins, and any
 *    duplicate completion is byte-compared against it — a mismatch
 *    means a worker is not deterministic and aborts the run.
 *
 *  - *Leases.* Each dispatched point carries a lease: the request's
 *    deadline_ms and the connection's receive timeout are both the
 *    lease duration. A worker that goes silent mid-point turns into a
 *    typed, lease-sized failure, never an indefinite hang, and the
 *    point is reassigned elsewhere.
 *
 *  - *Typed failure policy.* Transport: reconnect and reassign.
 *    Stalled / lease expiry: reassign to a different worker. Overloaded:
 *    back off honoring the server's retry_after_ms hint. Draining:
 *    quarantine the worker and reassign. BadRequest / Internal /
 *    VersionMismatch: terminal for the point (retrying cannot help).
 *
 *  - *Health lifecycle.* A prober thread pings every worker (the wire
 *    v4 Ping frame: version echo, queue depth, stalled count) on a
 *    fixed cadence. Consecutive failures demote a worker
 *    healthy -> unhealthy -> quarantined; a quarantined worker's backlog
 *    is redistributed and it is re-admitted only after its quarantine
 *    window passed and a probe succeeds.
 *
 *  - *Work stealing.* The grid is sharded round-robin up front; an idle
 *    agent first drains its own backlog, then steals from the largest
 *    remaining backlog, and at the very end of the grid shadow-dispatches
 *    points still in flight on slower workers (at most one shadow per
 *    point, never on the same worker) — the finish line is never gated
 *    on the slowest worker alone, and shadows exercise the duplicate
 *    byte-compare path for real.
 *
 * Partial results are explicit, never silent: the report lists every
 * point outcome in grid order plus a manifest of missing keys, and
 * callers choose between require-complete and best-effort semantics.
 *
 * See DESIGN.md §17 for the cluster failure model.
 */

#ifndef THERMCTL_SERVE_COORDINATOR_HH
#define THERMCTL_SERVE_COORDINATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "sim/config.hh"

namespace thermctl::serve
{

/** Coordinator knobs; validate() is fatal on nonsense. */
struct CoordinatorOptions
{
    /** Worker endpoints ("unix:PATH", "tcp:HOST:PORT", bare path). */
    std::vector<std::string> endpoints;

    /** Base config the workers are assumed to run (digest resolution). */
    SimConfig base;

    /**
     * Lease per dispatched point: the request's server-side deadline
     * and the connection's receive timeout. A worker silent past the
     * lease loses the point to reassignment.
     */
    unsigned lease_ms = 20000;

    /** Bound on each connect attempt to a worker. */
    unsigned connect_timeout_ms = 1000;

    /** Health probe cadence (Ping frames). */
    unsigned probe_interval_ms = 200;

    /** Quarantine window before a failed worker may be re-admitted. */
    unsigned quarantine_ms = 1000;

    /** Consecutive failures before healthy -> unhealthy (then x2 ->
     * quarantined). */
    unsigned unhealthy_after = 2;

    /** Dispatch attempts per point before it is failed outright. */
    unsigned max_point_attempts = 8;

    /** Jitter seed for per-agent overload backoff (replayable). */
    std::uint64_t seed = 1;

    void validate() const;
};

/** Worker lifecycle state (see the prober's escalation rules). */
enum class WorkerHealth : std::uint8_t
{
    Healthy = 0,
    Unhealthy = 1,   ///< consecutive failures; still dispatching
    Quarantined = 2, ///< no dispatch until the window passes + probe ok
};

/** @return printable health name ("healthy", ...). */
const char *workerHealthName(WorkerHealth h);

/** Per-worker counters for the final report. */
struct CoordWorkerStats
{
    std::string endpoint;
    std::uint64_t dispatched = 0; ///< points sent (incl. re-dispatches)
    std::uint64_t completed = 0;  ///< successful completions collected
    std::uint64_t stolen = 0;     ///< points taken from another backlog
    std::uint64_t shadowed = 0;   ///< speculative end-of-grid dispatches
    std::uint64_t transport_failures = 0;
    std::uint64_t lease_expiries = 0; ///< silent past the lease
    std::uint64_t stalls = 0;         ///< typed Stalled/DeadlineExceeded
    std::uint64_t overloads = 0;
    std::uint64_t quarantines = 0; ///< times the worker was quarantined
    WorkerHealth health = WorkerHealth::Healthy; ///< at run end
};

/** Outcome of one grid point, in grid order. */
struct CoordPointOutcome
{
    PointSpec spec;
    std::string key;          ///< "bench/policy"
    std::uint64_t digest = 0; ///< content address (cache/coalesce key)
    PointReply reply;         ///< error == None iff the point completed
    unsigned attempts = 0;    ///< dispatches spent on this point
    std::string worker;       ///< endpoint that produced the result
};

/** Result of a coordinated run; partial results are explicit. */
struct CoordinatorReport
{
    std::vector<CoordPointOutcome> outcomes; ///< grid order
    std::vector<CoordWorkerStats> workers;

    /** @return true when every point completed. */
    [[nodiscard]] bool complete() const;

    /** Keys of points that did not complete (the missing manifest). */
    [[nodiscard]] std::vector<std::string> missingKeys() const;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions opts);

    /**
     * Shard `grid` across the workers and run it to settlement: every
     * point either completed (exactly-once-in-effect) or carries a
     * typed failure in its outcome. Throws FatalError only for
     * correctness violations (duplicate completions that differ
     * byte-for-byte); worker failures never throw.
     */
    [[nodiscard]] CoordinatorReport run(const std::vector<PointSpec> &grid);

    /**
     * Expand a SweepRequest-shaped grid (benchmarks x policies under
     * shared knobs) into dispatchable points, in the same grid order
     * the server's sweep path uses.
     */
    [[nodiscard]] static std::vector<PointSpec>
    gridPoints(const SweepRequest &grid);

  private:
    CoordinatorOptions opts_;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_COORDINATOR_HH
