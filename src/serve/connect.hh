/**
 * @file
 * One front door for serve-layer clients.
 *
 * ServeClient (one socket, no retries) and RetryingClient (reconnect +
 * backoff) used to leak into every caller as an if/else on retry mode.
 * connect(ClientOptions) hides the split behind a single Client
 * interface: data-plane calls (run/sweep) go through the retry policy
 * — with retries disabled that policy degenerates to exactly one
 * attempt, which is the plain client — and control-plane calls
 * (cacheQuery/stats/drain) keep ServeClient's strict semantics, where
 * a transport failure throws FatalError instead of being retried
 * (draining a server twice because the first reply got lost is not
 * idempotent in effect, even if the frame is).
 *
 * thermctl_client, the chaos soak, and thermctl_loadgen all build a
 * ClientOptions and stop caring which concrete client answers.
 */

#ifndef THERMCTL_SERVE_CONNECT_HH
#define THERMCTL_SERVE_CONNECT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.hh"
#include "serve/retry.hh"

namespace thermctl::serve
{

/** How to reach a server and how hard to try. */
struct ClientOptions
{
    /** "unix:PATH", "tcp:HOST:PORT", or a bare Unix socket path. */
    std::string endpoint;

    /** Retry idempotent data-plane calls (run/sweep) with backoff. */
    bool retry = true;

    /** Retry policy knobs; ignored except max_attempts=1 when !retry. */
    BackoffConfig backoff;
};

/**
 * What every serve-layer caller programs against. Connections are
 * established lazily (first call), so constructing a Client against a
 * not-yet-listening server is fine when retries are on.
 */
class Client
{
  public:
    virtual ~Client() = default;

    /** Execute one point; server refusals come back as typed errors. */
    virtual PointReply run(const RunRequest &req) = 0;

    /** Execute a benchmarks x policies grid; replies in grid order. */
    virtual SweepReply sweep(const SweepRequest &req) = 0;

    /** Probe the server's result cache without simulating. */
    virtual CacheQueryReply cacheQuery(const CacheQueryRequest &req) = 0;

    /** Server counters snapshot. */
    virtual StatsReply stats() = 0;

    /**
     * Request a graceful drain.
     * @return true when the server was already draining.
     */
    virtual bool drain() = 0;

    /** Data-plane attempts across all calls (telemetry). */
    virtual std::uint64_t attemptsTotal() const = 0;
};

/** Build a Client for `opts`. Fatal on a malformed endpoint. */
[[nodiscard]] std::unique_ptr<Client> connect(const ClientOptions &opts);

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_CONNECT_HH
