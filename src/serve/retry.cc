#include "serve/retry.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace thermctl::serve
{

BackoffPolicy::BackoffPolicy(const BackoffConfig &config)
    : config_(config), rng_(config.seed)
{
}

BackoffPolicy::Decision
BackoffPolicy::next(std::uint64_t elapsed_ms,
                    std::uint32_t retry_after_ms)
{
    if (attempts_ >= std::max(1u, config_.max_attempts))
        return {false, 0};

    // Decorrelated jitter (AWS architecture blog): each sleep is drawn
    // from uniform[base, 3 * previous), clamped to the cap. Unlike
    // plain exponential-with-jitter this decorrelates concurrent
    // clients quickly while still growing geometrically in expectation.
    const double base = static_cast<double>(std::max(1u, config_.base_ms));
    const double prev =
        prev_sleep_ms_ > 0 ? static_cast<double>(prev_sleep_ms_) : base;
    double sleep = rng_.uniform(base, std::max(base + 1.0, prev * 3.0));
    sleep = std::min(sleep, static_cast<double>(config_.cap_ms));
    // A server retry-after hint floors the sleep: the server knows its
    // backlog better than our local guess does.
    sleep = std::max(sleep, static_cast<double>(retry_after_ms));
    sleep = std::min(sleep, static_cast<double>(config_.cap_ms));

    auto sleep_ms = static_cast<std::uint32_t>(sleep);
    if (config_.deadline_ms != 0
        && elapsed_ms + sleep_ms >= config_.deadline_ms) {
        // The budget cannot fit the sleep plus any useful attempt:
        // report exhaustion now rather than sleeping into the deadline.
        return {false, 0};
    }

    attempts_++;
    prev_sleep_ms_ = sleep_ms;
    return {true, sleep_ms};
}

RetryingClient::RetryingClient(std::string endpoint,
                               const BackoffConfig &config)
    : endpoint_(std::move(endpoint)), config_(config)
{
}

bool
RetryingClient::retryable(ServeError error)
{
    return error == ServeError::Transport
           || error == ServeError::Overloaded;
}

namespace
{

/** "No deadline" sentinel for a remaining-budget value. */
constexpr std::uint64_t kNoBudget =
    std::numeric_limits<std::uint64_t>::max();

} // namespace

bool
RetryingClient::ensureConnected(std::uint64_t remaining_ms,
                                std::string &error)
{
    if (client_.connected())
        return true;
    if (remaining_ms == 0) {
        // The budget is already gone: dialing now could only stretch
        // the request past its deadline, so fail fast instead.
        error = "deadline exhausted before reconnect";
        return false;
    }
    std::uint64_t timeout = config_.connect_timeout_ms;
    if (remaining_ms != kNoBudget)
        timeout = timeout == 0
                      ? remaining_ms
                      : std::min<std::uint64_t>(timeout, remaining_ms);
    if (timeout == 0)
        client_ = ServeClient::tryConnect(endpoint_, error);
    else
        client_ = ServeClient::tryConnect(
            endpoint_, static_cast<unsigned>(timeout), error);
    return client_.connected();
}

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedMs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

/** Exhausted budget: wrap the last failure in a DeadlineExceeded. */
PointReply
budgetExhausted(const PointReply &last, std::uint32_t attempts)
{
    PointReply p;
    p.error = ServeError::DeadlineExceeded;
    p.message = "retry budget exhausted after "
                + std::to_string(attempts) + " attempt(s); last error: "
                + serveErrorName(last.error)
                + (last.message.empty() ? "" : " (" + last.message + ")");
    return p;
}

} // namespace

PointReply
RetryingClient::run(const RunRequest &req)
{
    BackoffConfig config = config_;
    config.seed = Rng(config_.seed).fork(calls_++).next();
    BackoffPolicy policy(config);
    const auto started = Clock::now();
    auto remaining = [&]() -> std::uint64_t {
        if (config.deadline_ms == 0)
            return kNoBudget;
        const std::uint64_t e = elapsedMs(started);
        return e >= config.deadline_ms ? 0 : config.deadline_ms - e;
    };

    PointReply last;
    for (;;) {
        attempts_total_++;
        std::string error;
        if (ensureConnected(remaining(), error)) {
            last = client_.run(req);
        } else {
            last.error = ServeError::Transport;
            last.message = error;
        }
        if (!retryable(last.error))
            return last;

        const auto d =
            policy.next(elapsedMs(started), last.retry_after_ms);
        if (!d.retry) {
            // With retries disabled (max_attempts=1) behave exactly
            // like the plain client: surface the typed error as-is.
            return policy.attempts() <= 1
                       ? last
                       : budgetExhausted(last, policy.attempts());
        }
        if (d.sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.sleep_ms));
        }
    }
}

SweepReply
RetryingClient::sweep(const SweepRequest &req)
{
    BackoffConfig config = config_;
    config.seed = Rng(config_.seed).fork(calls_++).next();
    BackoffPolicy policy(config);
    const auto started = Clock::now();
    auto remaining = [&]() -> std::uint64_t {
        if (config.deadline_ms == 0)
            return kNoBudget;
        const std::uint64_t e = elapsedMs(started);
        return e >= config.deadline_ms ? 0 : config.deadline_ms - e;
    };

    SweepReply last;
    for (;;) {
        attempts_total_++;
        std::string error;
        if (ensureConnected(remaining(), error)) {
            last = client_.sweep(req);
        } else {
            last.points.clear();
            PointReply p;
            p.error = ServeError::Transport;
            p.message = error;
            last.points.push_back(std::move(p));
        }
        // A sweep is retried as a unit only when the whole reply is one
        // typed transport/overload failure; per-point errors inside a
        // delivered grid are the caller's to inspect.
        const bool whole_failure =
            last.points.size() == 1 && retryable(last.points[0].error);
        if (!whole_failure)
            return last;

        const auto d = policy.next(elapsedMs(started),
                                   last.points[0].retry_after_ms);
        if (!d.retry) {
            if (policy.attempts() <= 1)
                return last;
            SweepReply out;
            out.points.push_back(
                budgetExhausted(last.points[0], policy.attempts()));
            return out;
        }
        if (d.sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.sleep_ms));
        }
    }
}

} // namespace thermctl::serve
