/**
 * @file
 * thermctl-serve wire protocol: length-prefixed, versioned binary frames.
 *
 * Every message travels in one frame:
 *
 *   bytes 0..3   magic "TSRV"
 *   byte  4      wire version (kWireVersion)
 *   byte  5      message type (MsgType)
 *   bytes 6..9   payload length, u32 little-endian (<= kMaxFramePayload)
 *   bytes 10..   payload, encoded with ByteWriter (common/serialize.hh)
 *
 * The version byte is checked before the payload is touched: a client
 * speaking a different protocol revision gets a typed VersionMismatch
 * error, never a mis-decoded payload. RunResult values ride inside
 * frames in their own versioned + checksummed format
 * (serializeRunResult, sim/sweep.hh), so result payloads are guarded
 * twice: frame framing here, field-level integrity there.
 *
 * See DESIGN.md §10 ("thermctl-serve") for the protocol contract,
 * scheduler coalescing rules, and overload behaviour.
 */

#ifndef THERMCTL_SERVE_PROTOCOL_HH
#define THERMCTL_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.hh"

namespace thermctl::serve
{

/** Wire protocol revision; bump on any frame or payload layout change. */
inline constexpr std::uint8_t kWireVersion = 4;

/** Frame magic preceding every message. */
inline constexpr std::string_view kFrameMagic = "TSRV";

/** Fixed frame header size: magic + version + type + payload length. */
inline constexpr std::size_t kFrameHeaderBytes = 10;

/** Upper bound on a payload; larger lengths are a framing error. */
inline constexpr std::uint32_t kMaxFramePayload = 8u << 20;

/** Message discriminator (requests < 64 <= replies). */
enum class MsgType : std::uint8_t
{
    RunRequest = 1,        ///< one benchmark x policy point
    SweepRequest = 2,      ///< benchmarks x policies grid
    CacheQueryRequest = 3, ///< is this point cached? (never simulates)
    StatsRequest = 4,      ///< server counters snapshot
    DrainRequest = 5,      ///< graceful shutdown: finish in-flight work
    PingRequest = 6,       ///< lightweight health probe (wire v4)

    RunReply = 65,
    SweepReply = 66,
    CacheQueryReply = 67,
    StatsReply = 68,
    DrainReply = 69,
    ErrorReply = 70,
    PingReply = 71,
};

/** @return true when `t` holds a defined MsgType value. */
[[nodiscard]] bool msgTypeValid(std::uint8_t t);

/** Typed server-side failure causes. */
enum class ServeError : std::uint8_t
{
    None = 0,
    BadRequest = 1,       ///< undecodable payload or unknown names
    VersionMismatch = 2,  ///< frame carried a foreign wire version
    Overloaded = 3,       ///< admission control: request queue full
    DeadlineExceeded = 4, ///< request expired before dispatch
    Draining = 5,         ///< server is shutting down gracefully
    Internal = 6,         ///< simulation raised an unexpected error
    Transport = 7,        ///< client-side: connection failed or broke
    Stalled = 8,          ///< watchdog: batch dispatch stopped progressing
};

/** @return printable error name ("overloaded", ...). */
const char *serveErrorName(ServeError e);

// --------------------------------------------------------------- framing

/** Decoded frame header. */
struct FrameHeader
{
    std::uint8_t version = 0;
    MsgType type = MsgType::ErrorReply;
    std::uint32_t payload_len = 0;
};

/** Frame header validation outcome. */
enum class FrameStatus
{
    Ok,
    BadMagic,   ///< not a thermctl-serve stream
    BadVersion, ///< foreign wire version (reject with VersionMismatch)
    BadType,    ///< unknown message discriminator
    BadLength,  ///< payload length exceeds kMaxFramePayload
};

/** @return one complete frame: header + payload. */
[[nodiscard]] std::string encodeFrame(MsgType type, std::string_view payload);

/**
 * Validate and decode a kFrameHeaderBytes-long header.
 * `out` is unspecified unless Ok (except version, set when readable).
 */
[[nodiscard]] FrameStatus decodeFrameHeader(std::string_view header,
                                            FrameHeader &out);

/**
 * Incremental frame assembly over a byte stream.
 *
 * The event-driven server and the load generator receive bytes in
 * arbitrary chunks (whatever recv() delivers); a FrameAssembler buffers
 * them and hands back complete frames as they materialize. Feeding and
 * extraction are decoupled so a single recv() burst can yield zero,
 * one, or many frames.
 *
 * A header that fails validation poisons the assembler (Bad is sticky):
 * once framing is lost there is no way to resynchronize the stream, so
 * the only safe reaction is to report the reason and close.
 */
class FrameAssembler
{
  public:
    /** Outcome of one extraction attempt. */
    enum class Next
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< `type`/`payload` hold one complete frame
        Bad,      ///< framing lost (see `why`); sticky
    };

    /** Append raw received bytes. */
    void feed(std::string_view bytes) { buf_.append(bytes); }

    /**
     * Try to extract the next complete frame.
     * On Bad, `why` (when non-null) says what the header failed.
     */
    [[nodiscard]] Next next(MsgType &type, std::string &payload,
                            FrameStatus *why = nullptr);

    /** Bytes buffered but not yet consumed (flow-control input). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    std::size_t pos_ = 0; ///< consumed prefix of buf_
    bool bad_ = false;
};

// -------------------------------------------------------------- requests

/**
 * One requested simulation point, named the way thermctl_run names it.
 * Zero-valued optional fields keep the server-side config defaults.
 */
struct PointSpec
{
    std::string benchmark = "186.crafty";
    std::string policy = "none";
    std::uint64_t warmup_cycles = 300000;
    std::uint64_t measure_cycles = 1000000;
    double ct_setpoint = 0.0;          ///< 0 = config default
    std::uint64_t sample_interval = 0; ///< 0 = config default
    // Multicore knobs (wire v3). Zero keeps the server-side default.
    std::uint32_t num_cores = 0;  ///< 0 = default (single core)
    double coupling_r = 0.0;      ///< K/W between adjacent cores
    double chip_budget = 0.0;     ///< W; 0 = no budget coordinator
    std::uint8_t budget_policy = 0; ///< BudgetPolicy enumerator value
};

struct RunRequest
{
    PointSpec point;
    std::uint64_t deadline_ms = 0; ///< 0 = no deadline

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     RunRequest &out);
};

/** Cartesian benchmarks x policies grid under shared knobs. */
struct SweepRequest
{
    std::vector<std::string> benchmarks;
    std::vector<std::string> policies;
    std::uint64_t warmup_cycles = 300000;
    std::uint64_t measure_cycles = 1000000;
    double ct_setpoint = 0.0;
    std::uint64_t sample_interval = 0;
    // Multicore knobs shared by every point (wire v3, zero = default).
    std::uint32_t num_cores = 0;
    double coupling_r = 0.0;
    double chip_budget = 0.0;
    std::uint8_t budget_policy = 0;
    std::uint64_t deadline_ms = 0;

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     SweepRequest &out);
};

struct CacheQueryRequest
{
    PointSpec point;

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     CacheQueryRequest &out);
};

struct StatsRequest
{
    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     StatsRequest &out);
};

struct DrainRequest
{
    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     DrainRequest &out);
};

/**
 * Lightweight health probe (wire v4). Cheaper than StatsRequest: the
 * reply is fixed-size, answered straight from the scheduler's counters,
 * and safe to issue at high frequency — the coordinator's prober and
 * external load balancers both key worker liveness off it.
 */
struct PingRequest
{
    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     PingRequest &out);
};

// --------------------------------------------------------------- replies

/**
 * Outcome of one scheduled point. `result` is meaningful only when
 * `error` is ServeError::None.
 */
struct PointReply
{
    ServeError error = ServeError::None;
    std::string message; ///< error detail, empty on success
    RunResult result;
    bool cache_hit = false; ///< served from the on-disk result cache
    bool coalesced = false; ///< piggybacked on an identical in-flight run
    double server_ms = 0.0; ///< queue + simulation time on the server
    /** Overloaded only: server-computed backoff hint for the retry. */
    std::uint32_t retry_after_ms = 0;
};

struct RunReply
{
    PointReply point;

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     RunReply &out);
};

struct SweepReply
{
    std::vector<PointReply> points; ///< grid order: benchmarks x policies

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     SweepReply &out);
};

struct CacheQueryReply
{
    bool cached = false;
    std::uint64_t digest = 0; ///< content-address of the resolved point

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     CacheQueryReply &out);
};

/** Server counters; see Scheduler/Server stats accessors. */
struct StatsReply
{
    std::uint64_t requests_total = 0;   ///< frames dispatched to handlers
    std::uint64_t run_requests = 0;
    std::uint64_t sweep_requests = 0;
    std::uint64_t cache_queries = 0;
    std::uint64_t points_submitted = 0; ///< scheduler admissions
    std::uint64_t points_simulated = 0; ///< actually run on the engine
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;        ///< deduped onto in-flight runs
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t failed = 0;           ///< Internal errors
    std::uint64_t stalled = 0;          ///< watchdog-failed dispatches
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_high_water = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t active_connections = 0;
    double uptime_seconds = 0.0;
    std::uint64_t latency_count = 0;
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0;
    double latency_p90_ms = 0.0;
    double latency_p99_ms = 0.0;

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     StatsReply &out);
};

struct DrainReply
{
    bool was_draining = false; ///< drain had already been requested

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     DrainReply &out);
};

struct ErrorReply
{
    ServeError code = ServeError::Internal;
    std::string message;

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     ErrorReply &out);
};

/** Health snapshot answering a PingRequest (wire v4, fixed-size). */
struct PingReply
{
    std::uint8_t version = kWireVersion; ///< server's wire revision
    bool draining = false;      ///< drain requested; refuse new work
    std::uint64_t queue_depth = 0; ///< scheduler backlog right now
    std::uint64_t stalled = 0;     ///< watchdog-failed dispatches so far

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static bool decode(std::string_view payload,
                                     PingReply &out);
};

// ------------------------------------------------------------ framed I/O

/**
 * Blocking framed send on a connected socket.
 * @return false on any transport error (peer gone, short write).
 */
[[nodiscard]] bool writeFrame(int fd, MsgType type, std::string_view payload);

/** Outcome of readFrame. */
enum class ReadStatus
{
    Ok,
    Eof,       ///< clean close at a frame boundary
    Transport, ///< read error or close mid-frame
    BadFrame,  ///< header failed validation (see frame_status)
};

/**
 * Blocking framed receive: reads exactly one frame.
 * On BadFrame, `frame_status` says why (BadVersion lets the server
 * answer with a typed VersionMismatch before closing).
 */
[[nodiscard]] ReadStatus readFrame(int fd, MsgType &type, std::string &payload,
                     FrameStatus *frame_status = nullptr);

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_PROTOCOL_HH
