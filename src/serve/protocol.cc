#include "serve/protocol.hh"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/serialize.hh"
#include "fault/fault.hh"
#include "sim/sweep.hh"

namespace thermctl::serve
{

namespace
{

/** Decode guard: every decode() must consume the whole payload. */
bool
finish(const ByteReader &r)
{
    return r.atEnd();
}

void
encodePoint(ByteWriter &w, const PointSpec &p)
{
    w.str(p.benchmark);
    w.str(p.policy);
    w.u64(p.warmup_cycles);
    w.u64(p.measure_cycles);
    w.f64(p.ct_setpoint);
    w.u64(p.sample_interval);
    w.u32(p.num_cores);
    w.f64(p.coupling_r);
    w.f64(p.chip_budget);
    w.u8(p.budget_policy);
}

/**
 * Validate the multicore knobs shared by PointSpec and SweepRequest.
 * Rejecting here (before any config is built) keeps a hostile
 * num_cores from ever sizing an allocation and turns out-of-range
 * values into a typed BadRequest instead of a server-side fatal.
 */
bool
multicoreKnobsValid(std::uint32_t num_cores, double coupling_r,
                    double chip_budget, std::uint8_t budget_policy)
{
    if (num_cores > kMaxCores)
        return false;
    if (!std::isfinite(coupling_r) || coupling_r < 0.0)
        return false;
    if (!std::isfinite(chip_budget) || chip_budget < 0.0)
        return false;
    return budget_policy
           <= static_cast<std::uint8_t>(BudgetPolicy::ThermalHeadroom);
}

bool
decodePoint(ByteReader &r, PointSpec &p)
{
    p.benchmark = r.str();
    p.policy = r.str();
    p.warmup_cycles = r.u64();
    p.measure_cycles = r.u64();
    p.ct_setpoint = r.f64();
    p.sample_interval = r.u64();
    p.num_cores = r.u32();
    p.coupling_r = r.f64();
    p.chip_budget = r.f64();
    p.budget_policy = r.u8();
    return r.ok()
           && multicoreKnobsValid(p.num_cores, p.coupling_r, p.chip_budget,
                                  p.budget_policy);
}

void
encodeStrings(ByteWriter &w, const std::vector<std::string> &v)
{
    w.u64(v.size());
    for (const auto &s : v)
        w.str(s);
}

bool
decodeStrings(ByteReader &r, std::vector<std::string> &v)
{
    const std::uint64_t n = r.u64();
    // Every encoded string occupies at least its 8-byte length prefix,
    // so a count beyond remaining()/8 is provably corrupt. Rejecting it
    // here (rather than only capping at kMaxFramePayload) keeps a
    // hostile 13-byte payload from forcing a multi-hundred-MB reserve.
    if (!r.ok() || n > r.remaining() / 8)
        return false;
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        v.push_back(r.str());
    return r.ok();
}

void
encodePointReply(ByteWriter &w, const PointReply &p)
{
    w.u8(static_cast<std::uint8_t>(p.error));
    w.str(p.message);
    w.u8(p.cache_hit ? 1 : 0);
    w.u8(p.coalesced ? 1 : 0);
    w.f64(p.server_ms);
    w.u32(p.retry_after_ms);
    if (p.error == ServeError::None)
        w.str(serializeRunResult(p.result));
}

bool
decodePointReply(ByteReader &r, PointReply &p)
{
    const std::uint8_t code = r.u8();
    if (code > static_cast<std::uint8_t>(ServeError::Stalled))
        return false;
    p.error = static_cast<ServeError>(code);
    p.message = r.str();
    p.cache_hit = r.u8() != 0;
    p.coalesced = r.u8() != 0;
    p.server_ms = r.f64();
    p.retry_after_ms = r.u32();
    if (!r.ok())
        return false;
    if (p.error == ServeError::None) {
        const std::string body = r.str();
        if (!r.ok()
            || deserializeRunResult(body, p.result)
                   != RunResultDecodeStatus::Ok) {
            return false;
        }
    }
    return true;
}

bool
readFully(int fd, char *dst, std::size_t n, bool &saw_bytes)
{
    std::size_t got = 0;
    while (got < n) {
        const auto fp = THERMCTL_FAULT_POINT("serve.sock.read");
        if (fp.abort()) {
            errno = ECONNRESET;
            return false;
        }
        if (fp.eintr())
            continue; // as if ::recv returned -1/EINTR
        if (fp.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fp.stall_ms));
        }
        // ShortIo: deliver the bytes one at a time.
        const std::size_t want = fp.shortIo() ? 1 : n - got;
        const ssize_t r = ::recv(fd, dst + got, want, 0);
        if (r == 0)
            return false;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<std::size_t>(r);
        saw_bytes = true;
    }
    return true;
}

} // namespace

bool
msgTypeValid(std::uint8_t t)
{
    switch (static_cast<MsgType>(t)) {
      case MsgType::RunRequest:
      case MsgType::SweepRequest:
      case MsgType::CacheQueryRequest:
      case MsgType::StatsRequest:
      case MsgType::DrainRequest:
      case MsgType::PingRequest:
      case MsgType::RunReply:
      case MsgType::SweepReply:
      case MsgType::CacheQueryReply:
      case MsgType::StatsReply:
      case MsgType::DrainReply:
      case MsgType::ErrorReply:
      case MsgType::PingReply:
        return true;
    }
    return false;
}

const char *
serveErrorName(ServeError e)
{
    switch (e) {
      case ServeError::None: return "ok";
      case ServeError::BadRequest: return "bad-request";
      case ServeError::VersionMismatch: return "version-mismatch";
      case ServeError::Overloaded: return "overloaded";
      case ServeError::DeadlineExceeded: return "deadline-exceeded";
      case ServeError::Draining: return "draining";
      case ServeError::Internal: return "internal";
      case ServeError::Transport: return "transport";
      case ServeError::Stalled: return "stalled";
      default: return "?";
    }
}

// --------------------------------------------------------------- framing

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    out.append(kFrameMagic);
    ByteWriter h;
    h.u8(kWireVersion);
    h.u8(static_cast<std::uint8_t>(type));
    h.u32(static_cast<std::uint32_t>(payload.size()));
    out.append(h.buffer());
    out.append(payload);
    return out;
}

FrameStatus
decodeFrameHeader(std::string_view header, FrameHeader &out)
{
    if (header.size() != kFrameHeaderBytes
        || header.substr(0, kFrameMagic.size()) != kFrameMagic) {
        return FrameStatus::BadMagic;
    }
    ByteReader r(header.substr(kFrameMagic.size()));
    out.version = r.u8();
    const std::uint8_t type = r.u8();
    out.payload_len = r.u32();
    if (out.version != kWireVersion)
        return FrameStatus::BadVersion;
    if (!msgTypeValid(type))
        return FrameStatus::BadType;
    out.type = static_cast<MsgType>(type);
    if (out.payload_len > kMaxFramePayload)
        return FrameStatus::BadLength;
    return FrameStatus::Ok;
}

FrameAssembler::Next
FrameAssembler::next(MsgType &type, std::string &payload,
                     FrameStatus *why)
{
    if (bad_) {
        if (why)
            *why = FrameStatus::BadMagic;
        return Next::Bad;
    }
    if (buffered() < kFrameHeaderBytes)
        return Next::NeedMore;

    FrameHeader h;
    const FrameStatus fs = decodeFrameHeader(
        std::string_view(buf_).substr(pos_, kFrameHeaderBytes), h);
    if (why)
        *why = fs;
    if (fs != FrameStatus::Ok) {
        bad_ = true;
        return Next::Bad;
    }
    if (buffered() < kFrameHeaderBytes + h.payload_len)
        return Next::NeedMore;

    type = h.type;
    payload.assign(buf_, pos_ + kFrameHeaderBytes, h.payload_len);
    pos_ += kFrameHeaderBytes + h.payload_len;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not accrete every frame it ever carried.
    if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    return Next::Frame;
}

// -------------------------------------------------------------- requests

std::string
RunRequest::encode() const
{
    ByteWriter w;
    encodePoint(w, point);
    w.u64(deadline_ms);
    return w.take();
}

bool
RunRequest::decode(std::string_view payload, RunRequest &out)
{
    ByteReader r(payload);
    if (!decodePoint(r, out.point))
        return false;
    out.deadline_ms = r.u64();
    return finish(r);
}

std::string
SweepRequest::encode() const
{
    ByteWriter w;
    encodeStrings(w, benchmarks);
    encodeStrings(w, policies);
    w.u64(warmup_cycles);
    w.u64(measure_cycles);
    w.f64(ct_setpoint);
    w.u64(sample_interval);
    w.u32(num_cores);
    w.f64(coupling_r);
    w.f64(chip_budget);
    w.u8(budget_policy);
    w.u64(deadline_ms);
    return w.take();
}

bool
SweepRequest::decode(std::string_view payload, SweepRequest &out)
{
    ByteReader r(payload);
    if (!decodeStrings(r, out.benchmarks)
        || !decodeStrings(r, out.policies)) {
        return false;
    }
    out.warmup_cycles = r.u64();
    out.measure_cycles = r.u64();
    out.ct_setpoint = r.f64();
    out.sample_interval = r.u64();
    out.num_cores = r.u32();
    out.coupling_r = r.f64();
    out.chip_budget = r.f64();
    out.budget_policy = r.u8();
    if (!r.ok()
        || !multicoreKnobsValid(out.num_cores, out.coupling_r,
                                out.chip_budget, out.budget_policy)) {
        return false;
    }
    out.deadline_ms = r.u64();
    return finish(r);
}

std::string
CacheQueryRequest::encode() const
{
    ByteWriter w;
    encodePoint(w, point);
    return w.take();
}

bool
CacheQueryRequest::decode(std::string_view payload, CacheQueryRequest &out)
{
    ByteReader r(payload);
    return decodePoint(r, out.point) && finish(r);
}

std::string
StatsRequest::encode() const
{
    return {};
}

bool
StatsRequest::decode(std::string_view payload, StatsRequest &out)
{
    (void)out;
    return payload.empty();
}

std::string
DrainRequest::encode() const
{
    return {};
}

bool
DrainRequest::decode(std::string_view payload, DrainRequest &out)
{
    (void)out;
    return payload.empty();
}

std::string
PingRequest::encode() const
{
    return {};
}

bool
PingRequest::decode(std::string_view payload, PingRequest &out)
{
    (void)out;
    return payload.empty();
}

// --------------------------------------------------------------- replies

std::string
RunReply::encode() const
{
    ByteWriter w;
    encodePointReply(w, point);
    return w.take();
}

bool
RunReply::decode(std::string_view payload, RunReply &out)
{
    ByteReader r(payload);
    return decodePointReply(r, out.point) && finish(r);
}

std::string
SweepReply::encode() const
{
    ByteWriter w;
    w.u64(points.size());
    for (const auto &p : points)
        encodePointReply(w, p);
    return w.take();
}

bool
SweepReply::decode(std::string_view payload, SweepReply &out)
{
    ByteReader r(payload);
    const std::uint64_t n = r.u64();
    // A PointReply encodes to >= 19 bytes (error byte, message length
    // prefix, two flag bytes, server_ms), so bound the count by the
    // bytes actually present before reserving sizeof(PointReply) each —
    // PointReply is large (inline RunResult), which made the old
    // kMaxFramePayload cap an allocation amplifier.
    constexpr std::uint64_t kMinPointReplyBytes = 19;
    if (!r.ok() || n > r.remaining() / kMinPointReplyBytes)
        return false;
    out.points.clear();
    out.points.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        PointReply p;
        if (!decodePointReply(r, p))
            return false;
        out.points.push_back(std::move(p));
    }
    return finish(r);
}

std::string
CacheQueryReply::encode() const
{
    ByteWriter w;
    w.u8(cached ? 1 : 0);
    w.u64(digest);
    return w.take();
}

bool
CacheQueryReply::decode(std::string_view payload, CacheQueryReply &out)
{
    ByteReader r(payload);
    out.cached = r.u8() != 0;
    out.digest = r.u64();
    return finish(r);
}

std::string
StatsReply::encode() const
{
    ByteWriter w;
    w.u64(requests_total);
    w.u64(run_requests);
    w.u64(sweep_requests);
    w.u64(cache_queries);
    w.u64(points_submitted);
    w.u64(points_simulated);
    w.u64(cache_hits);
    w.u64(coalesced);
    w.u64(rejected_overload);
    w.u64(rejected_deadline);
    w.u64(failed);
    w.u64(stalled);
    w.u64(queue_depth);
    w.u64(queue_high_water);
    w.u64(connections_accepted);
    w.u64(active_connections);
    w.f64(uptime_seconds);
    w.u64(latency_count);
    w.f64(latency_mean_ms);
    w.f64(latency_p50_ms);
    w.f64(latency_p90_ms);
    w.f64(latency_p99_ms);
    return w.take();
}

bool
StatsReply::decode(std::string_view payload, StatsReply &out)
{
    ByteReader r(payload);
    out.requests_total = r.u64();
    out.run_requests = r.u64();
    out.sweep_requests = r.u64();
    out.cache_queries = r.u64();
    out.points_submitted = r.u64();
    out.points_simulated = r.u64();
    out.cache_hits = r.u64();
    out.coalesced = r.u64();
    out.rejected_overload = r.u64();
    out.rejected_deadline = r.u64();
    out.failed = r.u64();
    out.stalled = r.u64();
    out.queue_depth = r.u64();
    out.queue_high_water = r.u64();
    out.connections_accepted = r.u64();
    out.active_connections = r.u64();
    out.uptime_seconds = r.f64();
    out.latency_count = r.u64();
    out.latency_mean_ms = r.f64();
    out.latency_p50_ms = r.f64();
    out.latency_p90_ms = r.f64();
    out.latency_p99_ms = r.f64();
    return finish(r);
}

std::string
DrainReply::encode() const
{
    ByteWriter w;
    w.u8(was_draining ? 1 : 0);
    return w.take();
}

bool
DrainReply::decode(std::string_view payload, DrainReply &out)
{
    ByteReader r(payload);
    out.was_draining = r.u8() != 0;
    return finish(r);
}

std::string
ErrorReply::encode() const
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(code));
    w.str(message);
    return w.take();
}

bool
ErrorReply::decode(std::string_view payload, ErrorReply &out)
{
    ByteReader r(payload);
    const std::uint8_t code = r.u8();
    if (code > static_cast<std::uint8_t>(ServeError::Stalled))
        return false;
    out.code = static_cast<ServeError>(code);
    out.message = r.str();
    return finish(r);
}

std::string
PingReply::encode() const
{
    ByteWriter w;
    w.u8(version);
    w.u8(draining ? 1 : 0);
    w.u64(queue_depth);
    w.u64(stalled);
    return w.take();
}

bool
PingReply::decode(std::string_view payload, PingReply &out)
{
    ByteReader r(payload);
    out.version = r.u8();
    const std::uint8_t draining = r.u8();
    // The draining flag is a strict boolean on the wire; any other
    // value means the stream is not what it claims to be.
    if (draining > 1)
        return false;
    out.draining = draining != 0;
    out.queue_depth = r.u64();
    out.stalled = r.u64();
    return finish(r);
}

// ------------------------------------------------------------ framed I/O

bool
writeFrame(int fd, MsgType type, std::string_view payload)
{
    const std::string frame = encodeFrame(type, payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const auto fp = THERMCTL_FAULT_POINT("serve.sock.write");
        if (fp.abort())
            return false; // as if the peer reset mid-frame
        if (fp.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fp.stall_ms));
        }
        // ShortIo: push the frame out one byte per ::send call.
        const std::size_t chunk = fp.shortIo() ? 1 : frame.size() - sent;
        const ssize_t w = ::send(fd, frame.data() + sent,
                                 chunk, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

ReadStatus
readFrame(int fd, MsgType &type, std::string &payload,
          FrameStatus *frame_status)
{
    char header[kFrameHeaderBytes];
    bool saw_bytes = false;
    if (!readFully(fd, header, sizeof(header), saw_bytes))
        return saw_bytes ? ReadStatus::Transport : ReadStatus::Eof;

    FrameHeader h;
    const FrameStatus fs =
        decodeFrameHeader(std::string_view(header, sizeof(header)), h);
    if (frame_status)
        *frame_status = fs;
    if (fs != FrameStatus::Ok)
        return ReadStatus::BadFrame;

    payload.resize(h.payload_len);
    if (h.payload_len > 0
        && !readFully(fd, payload.data(), h.payload_len, saw_bytes)) {
        return ReadStatus::Transport;
    }
    type = h.type;
    return ReadStatus::Ok;
}

} // namespace thermctl::serve
