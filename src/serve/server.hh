/**
 * @file
 * thermctl-serve socket server: accepts framed requests on a Unix-domain
 * socket (TCP on loopback opt-in), resolves them against the server's
 * base configuration, and answers from the Scheduler.
 *
 * Threading model: one accept thread multiplexing the listeners with
 * poll(), one thread per connection reading frames, and the Scheduler's
 * dispatcher threads underneath. Connection threads block on scheduler
 * futures, never on each other.
 *
 * Overload behaviour: admission control lives in the Scheduler — a full
 * queue answers Overloaded immediately. The server adds graceful drain:
 * after beginDrain() (SIGTERM in the daemon, or a client DrainRequest),
 * new connections and new requests are refused with a typed Draining
 * error while every already-admitted request completes and its reply is
 * delivered before the server exits.
 */

#ifndef THERMCTL_SERVE_SERVER_HH
#define THERMCTL_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "serve/scheduler.hh"
#include "sim/config.hh"

namespace thermctl::serve
{

struct ServerOptions
{
    /** Unix-domain listener path; empty disables it. */
    std::string unix_path;

    /** Listen on TCP loopback too (opt-in). */
    bool tcp = false;

    /** TCP port; 0 picks an ephemeral port (see Server::tcpPort). */
    int tcp_port = 0;

    /** Base configuration every request resolves against. */
    SimConfig base;

    Scheduler::Options sched;

    int backlog = 16;
};

/** @return the default Unix socket path ($XDG_RUNTIME_DIR or /tmp). */
std::string defaultSocketPath();

class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and start serving. Fatal on bind errors. */
    void start();

    /** @return bound TCP port (after start()), or -1 when TCP is off. */
    int tcpPort() const { return tcp_port_; }

    /**
     * Stop accepting connections and refuse new requests; in-flight
     * requests run to completion and their replies are delivered.
     * Idempotent and callable from any thread.
     */
    void beginDrain();

    /** @return true once beginDrain() happened (signal or client). */
    bool drainRequested() const { return draining_.load(); }

    /** Block until a drain is requested (daemon main loop). */
    void waitForDrainRequest();

    /** Finish the drain: complete work, close connections, join. */
    void shutdown();

    /** Full counters snapshot (scheduler + connection counters). */
    StatsReply statsSnapshot() const;

    /** Scheduler access for tests (pauseDispatch / resumeDispatch). */
    Scheduler &scheduler() { return *sched_; }

    const ServerOptions &options() const { return opts_; }

  private:
    void acceptLoop() THERMCTL_EXCLUDES(conn_mutex_);
    void serveConnection(int fd) THERMCTL_EXCLUDES(conn_mutex_);
    /** @return false when the reply write failed (connection unusable). */
    bool handleFrame(int fd, MsgType type, const std::string &payload);
    PointReply awaitTicket(Scheduler::Ticket ticket);
    void reapFinishedConnections() THERMCTL_EXCLUDES(conn_mutex_);

    ServerOptions opts_;
    std::unique_ptr<Scheduler> sched_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int wake_pipe_[2] = {-1, -1}; ///< unblocks the accept poll()

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
    /** Pairs with drain_cv_; the waited state itself is draining_. */
    Mutex drain_mutex_;
    CondVar drain_cv_;

    std::thread accept_thread_;
    Mutex conn_mutex_;
    std::vector<std::thread> conn_threads_
        THERMCTL_GUARDED_BY(conn_mutex_);
    std::vector<std::thread::id> finished_conn_ids_
        THERMCTL_GUARDED_BY(conn_mutex_);

    // Connection/request counters (atomics: touched from many threads).
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> active_connections_{0};
    std::atomic<std::uint64_t> requests_total_{0};
    std::atomic<std::uint64_t> run_requests_{0};
    std::atomic<std::uint64_t> sweep_requests_{0};
    std::atomic<std::uint64_t> cache_queries_{0};
    std::chrono::steady_clock::time_point started_;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_SERVER_HH
