/**
 * @file
 * thermctl-serve socket server: accepts framed requests on a Unix-domain
 * socket (TCP on loopback opt-in), resolves them against the server's
 * base configuration, and answers from the Scheduler.
 *
 * Threading model (event-driven core): ONE event-loop thread owns every
 * listener and connection socket. Sockets are non-blocking; the loop
 * multiplexes readiness with poll(), assembles inbound frames
 * incrementally (FrameAssembler), and flushes outbound reply bytes from
 * per-connection write buffers. Request execution happens on a fixed
 * worker pool: the loop hands a decoded frame to a worker, the worker
 * runs it against the Scheduler (blocking on the scheduler future is
 * fine there), and the finished reply frame comes back to the loop over
 * a completion queue plus the self-pipe wakeup. The loop never blocks
 * on simulation and a worker never touches a socket.
 *
 * Flow control: one frame executes per connection at a time (the
 * protocol is strictly request/reply); while a request is in flight or
 * the connection's write buffer is above ServerOptions::max_write_buffer
 * the loop stops polling that connection for readability, so a flooding
 * or never-reading peer is bounded by kernel buffers plus one write
 * buffer, never unbounded heap. Idle connections are evicted by the
 * loop after ServerOptions::idle_timeout_ms (this replaces the old
 * blocking-core SO_RCVTIMEO, which is meaningless on non-blocking
 * sockets).
 *
 * Overload behaviour: admission control lives in the Scheduler — a full
 * queue answers Overloaded immediately. The server adds graceful drain:
 * after beginDrain() (SIGTERM in the daemon, or a client DrainRequest),
 * new connections and new requests are refused while every
 * already-admitted request completes and its reply bytes are flushed
 * (bounded by ServerOptions::drain_flush_ms) before the server exits.
 *
 * See DESIGN.md §14 for the loop/worker contract and buffer ownership
 * rules.
 */

#ifndef THERMCTL_SERVE_SERVER_HH
#define THERMCTL_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "serve/scheduler.hh"
#include "sim/config.hh"

namespace thermctl::serve
{

/**
 * Every server knob in one flat, validated struct. Build one (usually
 * from CLI flags), call validate(), hand it to Server. Grouped by the
 * layer each knob configures; zero/empty keeps the documented default.
 */
struct ServerOptions
{
    // ----------------------------------------------------- listeners
    /** Unix-domain listener path; empty disables it. */
    std::string unix_path;

    /** Listen on TCP loopback too (opt-in). */
    bool tcp = false;

    /** TCP port; 0 picks an ephemeral port (see Server::tcpPort). */
    int tcp_port = 0;

    /** listen(2) backlog for both listeners. */
    int backlog = 64;

    // ----------------------------------------------- simulation base
    /** Base configuration every request resolves against. */
    SimConfig base;

    /** Engine knobs: sweep worker threads and the read-through cache. */
    SweepOptions sweep;

    // ------------------------------------------------------ scheduler
    /** Admission bound on undispatched points (queue depth). */
    std::size_t max_queue = 256;

    /** Scheduler dispatcher threads (each runs one batch at a time). */
    unsigned dispatchers = 2;

    /** Hold dispatch briefly so concurrent requests coalesce/batch. */
    unsigned batch_window_ms = 0;

    /** Fail batches stuck longer than this with Stalled; 0 = off. */
    unsigned watchdog_ms = 0;

    // ------------------------------------------------ event-loop core
    /** Request-execution worker threads owned by the server. */
    unsigned workers = 2;

    /** Evict connections idle this long; 0 = never evict. */
    unsigned idle_timeout_ms = 30000;

    /**
     * Per-connection write-buffer high water: past it the loop stops
     * reading from that connection until the peer drains replies.
     */
    std::size_t max_write_buffer = 4u << 20;

    /** SO_SNDBUF for accepted connections; 0 keeps the OS default. */
    int sndbuf = 0;

    // ---------------------------------------------------- drain policy
    /** Budget for flushing already-produced replies during drain. */
    unsigned drain_flush_ms = 5000;

    // -------------------------------------------------- chaos testing
    /** Fault plan armed at start() (needs THERMCTL_FAULTS); empty = off. */
    std::string fault_plan;

    /**
     * Fail fast on nonsense combinations (no listener, zero workers,
     * zero queue...). Fatal on the first violation; Server::start()
     * calls this, call it earlier to surface flag errors before any
     * side effect.
     */
    void validate() const;

    /** The scheduler-layer slice of these options. */
    [[nodiscard]] Scheduler::Options schedulerOptions() const;
};

/** @return the default Unix socket path ($XDG_RUNTIME_DIR or /tmp). */
std::string defaultSocketPath();

class Server
{
  public:
    explicit Server(const ServerOptions &opts);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and start serving. Fatal on bind errors. */
    void start();

    /** @return bound TCP port (after start()), or -1 when TCP is off. */
    int tcpPort() const { return tcp_port_; }

    /**
     * Stop accepting connections and refuse new requests; in-flight
     * requests run to completion and their replies are delivered.
     * Idempotent and callable from any thread.
     */
    void beginDrain();

    /** @return true once beginDrain() happened (signal or client). */
    bool drainRequested() const { return draining_.load(); }

    /** Block until a drain is requested (daemon main loop). */
    void waitForDrainRequest();

    /** Finish the drain: complete work, flush replies, join. */
    void shutdown();

    /** Full counters snapshot (scheduler + connection counters). */
    StatsReply statsSnapshot() const;

    /** Connections evicted by the idle timeout (test observability). */
    std::uint64_t idleEvicted() const { return idle_evicted_.load(); }

    /** Scheduler access for tests (pauseDispatch / resumeDispatch). */
    Scheduler &scheduler() { return *sched_; }

    const ServerOptions &options() const { return opts_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** Per-connection state; owned and touched by the loop thread only. */
    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        FrameAssembler assembler;
        std::string wbuf;        ///< encoded replies awaiting the kernel
        std::size_t woff = 0;    ///< flushed prefix of wbuf
        bool busy = false;       ///< one frame executing on a worker
        bool close_after_flush = false;
        /**
         * Peer hung up while its request was executing. The fd leaves
         * the poll set (POLLHUP would otherwise be reported every
         * round against a busy conn's empty event mask, spinning the
         * loop); the completion is dropped and the conn closed.
         */
        bool peer_hup = false;
        Clock::time_point last_activity;
    };

    /** A decoded frame handed to the worker pool. */
    struct Work
    {
        std::uint64_t conn_id = 0;
        MsgType type = MsgType::ErrorReply;
        std::string payload;
    };

    /** A finished reply travelling back to the loop. */
    struct Completion
    {
        std::uint64_t conn_id = 0;
        std::string frame;        ///< complete encoded reply frame
        bool drain_after = false; ///< DrainRequest: drain once delivered
    };

    /** Reply bytes queued on `c` but not yet accepted by the kernel. */
    static std::size_t pending(const Conn &c)
    {
        return c.wbuf.size() - c.woff;
    }

    void eventLoop() THERMCTL_EXCLUDES(work_mutex_, done_mutex_);
    void workerLoop() THERMCTL_EXCLUDES(work_mutex_, done_mutex_);

    void acceptReady(int listen_fd);
    /** @return false when the connection died and was closed. */
    bool readReady(Conn &conn);
    /** Flush wbuf as far as the kernel allows; false = conn closed. */
    bool flushConn(Conn &conn);
    /**
     * Hand the next buffered frame to the workers (one at a time).
     * @return false when the connection was closed (a malformed frame
     * whose courtesy error reply flushed completely closes inline) —
     * the Conn is destroyed and the caller must not touch it.
     */
    [[nodiscard]] bool tryDispatch(Conn &conn);
    void processCompletions() THERMCTL_EXCLUDES(done_mutex_);
    void closeConn(Conn &conn);
    void wakeLoop();

    /** Execute one decoded frame (worker thread); returns the reply. */
    Completion executeFrame(const Work &work);
    PointReply awaitTicket(Scheduler::Ticket ticket);

    ServerOptions opts_;
    std::unique_ptr<Scheduler> sched_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int wake_pipe_[2] = {-1, -1}; ///< unblocks the loop's poll()

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
    /** Pairs with drain_cv_; the waited state itself is draining_. */
    Mutex drain_mutex_;
    CondVar drain_cv_;

    std::thread loop_thread_;

    // Loop-owned state (no lock: only eventLoop() and its helpers).
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::uint64_t next_conn_id_ = 1;
    Clock::time_point drain_started_;
    /** Listeners leave the poll set until then after EMFILE-class
     *  accept failures (otherwise the readable listener spins). */
    Clock::time_point accept_backoff_until_{};

    // Worker pool hand-off.
    Mutex work_mutex_;
    CondVar work_cv_;
    std::deque<Work> work_queue_ THERMCTL_GUARDED_BY(work_mutex_);
    bool workers_stop_ THERMCTL_GUARDED_BY(work_mutex_) = false;
    std::vector<std::thread> workers_;

    Mutex done_mutex_;
    std::deque<Completion> done_queue_ THERMCTL_GUARDED_BY(done_mutex_);

    // Connection/request counters (atomics: touched from many threads).
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> active_connections_{0};
    std::atomic<std::uint64_t> idle_evicted_{0};
    std::atomic<std::uint64_t> requests_total_{0};
    std::atomic<std::uint64_t> run_requests_{0};
    std::atomic<std::uint64_t> sweep_requests_{0};
    std::atomic<std::uint64_t> cache_queries_{0};
    std::chrono::steady_clock::time_point started_;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_SERVER_HH
