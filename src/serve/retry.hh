/**
 * @file
 * Client-side resilience: bounded retries with exponential backoff,
 * decorrelated jitter, and an end-to-end deadline budget.
 *
 * Retrying a simulation request is safe because requests are
 * *idempotent by construction*: a request's identity is its sweep
 * digest (sweepConfigDigest over the fully resolved configuration), a
 * run is a pure function of that configuration, and the server
 * coalesces and caches by the same digest. Sending the same request
 * twice therefore cannot produce a different answer or duplicate work
 * that matters — the worst case is one extra cache hit.
 *
 * Only two failure classes are retried:
 *  - Transport: the connection broke or could not be established; the
 *    request may or may not have executed, which is exactly the case
 *    idempotency exists for.
 *  - Overloaded: the server said "queue full"; its retry-after hint
 *    (PointReply::retry_after_ms) becomes the floor of the next sleep.
 *
 * Every other error (BadRequest, Draining, DeadlineExceeded, Stalled,
 * Internal, ...) is returned to the caller unchanged — retrying a
 * request the server *answered* with a terminal verdict just burns the
 * budget.
 *
 * The backoff sequence is deterministic given BackoffConfig::seed, so
 * chaos runs replay exactly (see src/fault/fault.hh).
 */

#ifndef THERMCTL_SERVE_RETRY_HH
#define THERMCTL_SERVE_RETRY_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"

namespace thermctl::serve
{

/** Knobs of the retry/backoff policy. */
struct BackoffConfig
{
    std::uint32_t base_ms = 50;   ///< first sleep ~uniform[base, 3*base)
    std::uint32_t cap_ms = 2000;  ///< per-sleep ceiling
    std::uint32_t max_attempts = 5; ///< total tries (1 = no retries)
    /** End-to-end budget across attempts + sleeps; 0 = unbounded. */
    std::uint64_t deadline_ms = 0;
    /**
     * Bound on each reconnect attempt. Reconnect time is charged
     * against deadline_ms like everything else, so a flapping server
     * cannot stretch one request with unbounded connect hangs; 0 falls
     * back to a blocking connect (still capped by the deadline budget
     * when one is set).
     */
    std::uint32_t connect_timeout_ms = 1000;
    std::uint64_t seed = 0x7e7217ULL; ///< jitter stream seed
};

/**
 * Decorrelated-jitter backoff under a deadline budget. Pure policy
 * math — no sockets, no clocks; the caller reports elapsed time and
 * receives sleep durations, which makes the sequence unit-testable and
 * deterministic per seed.
 */
class BackoffPolicy
{
  public:
    explicit BackoffPolicy(const BackoffConfig &config);

    /** Verdict for one failed attempt. */
    struct Decision
    {
        bool retry = false;        ///< false: budget/attempts exhausted
        std::uint32_t sleep_ms = 0; ///< wait before the next attempt
    };

    /**
     * Decide after a failed attempt. `elapsed_ms` is wall time since
     * the first attempt started; `retry_after_ms` (a server hint, 0 =
     * none) becomes the floor of the computed sleep. Never returns a
     * sleep that would overrun the deadline budget: once the budget
     * cannot fit another sleep + attempt, the answer is {false, 0} —
     * no final pointless sleep.
     */
    Decision next(std::uint64_t elapsed_ms,
                  std::uint32_t retry_after_ms = 0);

    /** Attempts granted so far (including the first). */
    std::uint32_t attempts() const { return attempts_; }

  private:
    BackoffConfig config_;
    Rng rng_;
    std::uint32_t attempts_ = 1; ///< the first attempt is underway
    std::uint32_t prev_sleep_ms_ = 0;
};

/**
 * ServeClient wrapper that reconnects and retries idempotent requests
 * (run/sweep) per BackoffPolicy. Each call gets its own deterministic
 * jitter stream (config seed forked by call index), so a process's
 * retry timing replays from one seed.
 */
class RetryingClient
{
  public:
    RetryingClient(std::string endpoint, const BackoffConfig &config);

    /**
     * run() with retries. On exhaustion the last typed failure is
     * returned; when the deadline budget ran out mid-retry, the error
     * is DeadlineExceeded with the underlying cause in the message.
     */
    PointReply run(const RunRequest &req);

    /** sweep() with retries (the whole grid is retried as a unit). */
    SweepReply sweep(const SweepRequest &req);

    /** Total attempts across all calls (telemetry). */
    std::uint64_t attemptsTotal() const { return attempts_total_; }

  private:
    /** @return true when `error` is worth another attempt. */
    static bool retryable(ServeError error);

    /**
     * Reconnect if needed, spending at most `remaining_ms` of the
     * request's deadline budget (max() = no deadline). A zero remainder
     * fails fast instead of dialing at all.
     */
    bool ensureConnected(std::uint64_t remaining_ms, std::string &error);

    std::string endpoint_;
    BackoffConfig config_;
    ServeClient client_;
    std::uint64_t calls_ = 0;
    std::uint64_t attempts_total_ = 0;
};

} // namespace thermctl::serve

#endif // THERMCTL_SERVE_RETRY_HH
