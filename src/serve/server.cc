#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "fault/fault.hh"

namespace thermctl::serve
{

namespace
{

/** Poll period of connection threads: drain-notice latency bound. */
constexpr int kConnPollMs = 100;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("THERMCTL_SOCKET"))
        return env;
    if (const char *dir = std::getenv("XDG_RUNTIME_DIR"))
        return std::string(dir) + "/thermctl.sock";
    return "/tmp/thermctl-" + std::to_string(::getuid()) + ".sock";
}

Server::Server(const ServerOptions &opts)
    : opts_(opts), sched_(std::make_unique<Scheduler>(opts.sched)),
      started_(std::chrono::steady_clock::now())
{
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    if (opts_.unix_path.empty() && !opts_.tcp)
        fatal("serve: no listener configured (unix path empty, tcp off)");

    if (::pipe(wake_pipe_) != 0)
        fatal("serve: pipe: ", std::strerror(errno));

    if (!opts_.unix_path.empty()) {
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unix_fd_ < 0)
            fatal("serve: socket(AF_UNIX): ", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.unix_path.size() >= sizeof(addr.sun_path))
            fatal("serve: socket path too long: ", opts_.unix_path);
        std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(opts_.unix_path.c_str()); // remove a stale socket
        if (::bind(unix_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
            != 0) {
            fatal("serve: bind(", opts_.unix_path,
                  "): ", std::strerror(errno));
        }
        if (::listen(unix_fd_, opts_.backlog) != 0)
            fatal("serve: listen: ", std::strerror(errno));
    }

    if (opts_.tcp) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            fatal("serve: socket(AF_INET): ", std::strerror(errno));
        const int one = 1;
        ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcp_port));
        if (::bind(tcp_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
            != 0) {
            fatal("serve: bind(tcp ", opts_.tcp_port,
                  "): ", std::strerror(errno));
        }
        if (::listen(tcp_fd_, opts_.backlog) != 0)
            fatal("serve: listen(tcp): ", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(tcp_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len);
        tcp_port_ = ntohs(bound.sin_port);
    }

    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
Server::beginDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    // Refuse new submissions right away; queued work keeps running.
    sched_->beginDrain();
    // Wake the accept poll so it stops accepting promptly.
    if (wake_pipe_[1] >= 0) {
        const char b = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
    }
    MutexLock lock(drain_mutex_);
    drain_cv_.notify_all();
}

void
Server::waitForDrainRequest()
{
    MutexLock lock(drain_mutex_);
    while (!draining_.load())
        drain_cv_.wait(drain_mutex_);
}

void
Server::shutdown()
{
    if (stopped_.exchange(true))
        return;
    beginDrain();

    if (accept_thread_.joinable())
        accept_thread_.join();
    closeFd(unix_fd_);
    closeFd(tcp_fd_);
    if (!opts_.unix_path.empty())
        ::unlink(opts_.unix_path.c_str());

    // Every admitted request finishes and its reply is delivered before
    // connection threads exit (they observe draining_ between frames).
    sched_->beginDrain();
    sched_->awaitIdle();

    std::vector<std::thread> threads;
    {
        MutexLock lock(conn_mutex_);
        threads.swap(conn_threads_);
    }
    for (auto &t : threads)
        t.join();

    sched_->stop();
    closeFd(wake_pipe_[0]);
    closeFd(wake_pipe_[1]);
}

StatsReply
Server::statsSnapshot() const
{
    const SchedulerStats ss = sched_->stats();
    StatsReply s;
    s.requests_total = requests_total_.load();
    s.run_requests = run_requests_.load();
    s.sweep_requests = sweep_requests_.load();
    s.cache_queries = cache_queries_.load();
    s.points_submitted = ss.submitted;
    s.points_simulated = ss.simulated;
    s.cache_hits = ss.cache_hits;
    s.coalesced = ss.coalesced;
    s.rejected_overload = ss.rejected_overload;
    s.rejected_deadline = ss.rejected_deadline;
    s.failed = ss.failed;
    s.stalled = ss.stalled;
    s.queue_depth = ss.queue_depth;
    s.queue_high_water = ss.queue_high_water;
    s.connections_accepted = connections_accepted_.load();
    s.active_connections = active_connections_.load();
    s.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - started_)
            .count();
    s.latency_count = ss.latency_count;
    s.latency_mean_ms = ss.latency_mean_ms;
    s.latency_p50_ms = ss.latency_p50_ms;
    s.latency_p90_ms = ss.latency_p90_ms;
    s.latency_p99_ms = ss.latency_p99_ms;
    return s;
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[3];
        nfds_t n = 0;
        int unix_slot = -1, tcp_slot = -1;
        if (unix_fd_ >= 0) {
            unix_slot = static_cast<int>(n);
            fds[n++] = {unix_fd_, POLLIN, 0};
        }
        if (tcp_fd_ >= 0) {
            tcp_slot = static_cast<int>(n);
            fds[n++] = {tcp_fd_, POLLIN, 0};
        }
        fds[n++] = {wake_pipe_[0], POLLIN, 0};

        const int rc = ::poll(fds, n, -1);
        if (draining_.load())
            return;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: ", std::strerror(errno));
            return;
        }

        reapFinishedConnections();

        for (int slot : {unix_slot, tcp_slot}) {
            if (slot < 0 || !(fds[slot].revents & POLLIN))
                continue;
            const int fd = ::accept(fds[slot].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            if (THERMCTL_FAULT_POINT("serve.accept").abort()) {
                // Drop the connection before it is serviced; the peer
                // sees a clean close and must reconnect.
                ::close(fd);
                continue;
            }
            // Bound mid-frame reads so a stalled peer cannot wedge a
            // connection thread (and with it, shutdown) forever.
            const timeval tv{10, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
            connections_accepted_++;
            active_connections_++;
            MutexLock lock(conn_mutex_);
            conn_threads_.emplace_back(
                [this, fd] { serveConnection(fd); });
        }
    }
}

/** Join connection threads that announced completion (bounds growth). */
void
Server::reapFinishedConnections()
{
    MutexLock lock(conn_mutex_);
    for (std::thread::id id : finished_conn_ids_) {
        auto it = std::find_if(conn_threads_.begin(), conn_threads_.end(),
                               [id](const std::thread &t) {
                                   return t.get_id() == id;
                               });
        if (it != conn_threads_.end()) {
            it->join();
            conn_threads_.erase(it);
        }
    }
    finished_conn_ids_.clear();
}

void
Server::serveConnection(int fd)
{
    for (;;) {
        // Poll between frames so an idle connection notices a drain
        // without being force-closed mid-reply.
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, kConnPollMs);
        if (draining_.load())
            break;
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;

        MsgType type;
        std::string payload;
        FrameStatus fs = FrameStatus::Ok;
        const ReadStatus rs = readFrame(fd, type, payload, &fs);
        if (rs == ReadStatus::Eof || rs == ReadStatus::Transport)
            break;
        if (rs == ReadStatus::BadFrame) {
            ErrorReply err;
            err.code = fs == FrameStatus::BadVersion
                           ? ServeError::VersionMismatch
                           : ServeError::BadRequest;
            err.message =
                fs == FrameStatus::BadVersion
                    ? "unsupported wire version (server speaks v"
                          + std::to_string(kWireVersion) + ")"
                    : "malformed frame header";
            // Best-effort courtesy reply: the connection closes on the
            // next line whether or not the peer ever sees it.
            (void)writeFrame(fd, MsgType::ErrorReply, err.encode());
            break; // framing is unrecoverable: close
        }
        // A failed reply write leaves the stream mid-frame; the only
        // safe move is to close so the peer sees EOF and retries,
        // rather than waiting forever on a reply that will never come.
        if (!handleFrame(fd, type, payload))
            break;
    }
    ::close(fd);
    active_connections_--;
    MutexLock lock(conn_mutex_);
    finished_conn_ids_.push_back(std::this_thread::get_id());
}

PointReply
Server::awaitTicket(Scheduler::Ticket ticket)
{
    const Scheduler::OutcomePtr oc = ticket.future.get();
    PointReply p;
    p.error = oc->error;
    p.message = oc->message;
    if (oc->error == ServeError::None)
        p.result = oc->result;
    p.cache_hit = oc->cache_hit;
    p.coalesced = ticket.coalesced;
    p.server_ms = oc->server_ms;
    p.retry_after_ms = oc->retry_after_ms;
    return p;
}

bool
Server::handleFrame(int fd, MsgType type, const std::string &payload)
{
    requests_total_++;

    auto badRequest = [&](const std::string &msg) {
        ErrorReply err;
        err.code = ServeError::BadRequest;
        err.message = msg;
        return writeFrame(fd, MsgType::ErrorReply, err.encode());
    };

    switch (type) {
      case MsgType::RunRequest: {
        run_requests_++;
        RunRequest req;
        if (!RunRequest::decode(payload, req))
            return badRequest("undecodable RunRequest payload");
        RunReply reply;
        try {
            const ResolvedPoint pt = resolvePoint(req.point, opts_.base);
            reply.point =
                awaitTicket(sched_->submit(pt, req.deadline_ms));
        } catch (const FatalError &e) {
            reply.point.error = ServeError::BadRequest;
            reply.point.message = e.what();
        }
        return writeFrame(fd, MsgType::RunReply, reply.encode());
      }

      case MsgType::SweepRequest: {
        sweep_requests_++;
        SweepRequest req;
        if (!SweepRequest::decode(payload, req) || req.benchmarks.empty()
            || req.policies.empty()) {
            return badRequest("undecodable or empty SweepRequest payload");
        }
        // Submit the whole grid before waiting on any point so the
        // scheduler can batch compatible points and coalesce
        // duplicates across the grid.
        struct Slot
        {
            bool resolved = false;
            Scheduler::Ticket ticket;
            std::string error;
        };
        std::vector<Slot> slots;
        slots.reserve(req.benchmarks.size() * req.policies.size());
        for (const auto &bench : req.benchmarks) {
            for (const auto &policy : req.policies) {
                PointSpec spec;
                spec.benchmark = bench;
                spec.policy = policy;
                spec.warmup_cycles = req.warmup_cycles;
                spec.measure_cycles = req.measure_cycles;
                spec.ct_setpoint = req.ct_setpoint;
                spec.sample_interval = req.sample_interval;
                Slot slot;
                try {
                    const ResolvedPoint pt =
                        resolvePoint(spec, opts_.base);
                    slot.ticket =
                        sched_->submit(pt, req.deadline_ms);
                    slot.resolved = true;
                } catch (const FatalError &e) {
                    slot.error = e.what();
                }
                slots.push_back(std::move(slot));
            }
        }
        SweepReply reply;
        reply.points.reserve(slots.size());
        for (auto &slot : slots) {
            if (slot.resolved) {
                reply.points.push_back(
                    awaitTicket(std::move(slot.ticket)));
            } else {
                PointReply p;
                p.error = ServeError::BadRequest;
                p.message = slot.error;
                reply.points.push_back(std::move(p));
            }
        }
        return writeFrame(fd, MsgType::SweepReply, reply.encode());
      }

      case MsgType::CacheQueryRequest: {
        cache_queries_++;
        CacheQueryRequest req;
        if (!CacheQueryRequest::decode(payload, req))
            return badRequest("undecodable CacheQueryRequest payload");
        CacheQueryReply reply;
        try {
            const ResolvedPoint pt = resolvePoint(req.point, opts_.base);
            reply.digest = pt.digest;
            if (opts_.sched.sweep.use_cache) {
                const std::string dir =
                    opts_.sched.sweep.cache_dir.empty()
                        ? SweepEngine::defaultCacheDir()
                        : opts_.sched.sweep.cache_dir;
                RunResult ignored;
                reply.cached =
                    sweepCacheLookup(dir, pt.digest, ignored);
            }
        } catch (const FatalError &e) {
            return badRequest(e.what());
        }
        return writeFrame(fd, MsgType::CacheQueryReply, reply.encode());
      }

      case MsgType::StatsRequest: {
        StatsRequest req;
        if (!StatsRequest::decode(payload, req))
            return badRequest("undecodable StatsRequest payload");
        return writeFrame(fd, MsgType::StatsReply,
                          statsSnapshot().encode());
      }

      case MsgType::DrainRequest: {
        DrainRequest req;
        if (!DrainRequest::decode(payload, req))
            return badRequest("undecodable DrainRequest payload");
        DrainReply reply;
        reply.was_draining = drainRequested();
        // Reply first: beginDrain() makes this connection close after
        // the current frame.
        const bool sent =
            writeFrame(fd, MsgType::DrainReply, reply.encode());
        beginDrain();
        return sent;
      }

      default:
        return badRequest("unexpected message type on a server socket");
    }
}

} // namespace thermctl::serve
