#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "fault/fault.hh"

namespace thermctl::serve
{

namespace
{

/** recv() chunk size only — NOT a flow-control bound: readReady()
 *  keeps reading until EAGAIN or a frame dispatches (busy), so a
 *  connection's buffered-but-undispatched bytes are bounded by one
 *  maximum frame (kMaxFramePayload + header) plus a chunk. */
constexpr std::size_t kReadChunk = 16384;

/** Accept pause after EMFILE-class accept() failures. */
constexpr int kAcceptBackoffMs = 100;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int
clampTimeoutMs(std::int64_t ms)
{
    if (ms < 0)
        return 0;
    if (ms > std::numeric_limits<int>::max())
        return std::numeric_limits<int>::max();
    return static_cast<int>(ms);
}

} // namespace

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("THERMCTL_SOCKET"))
        return env;
    if (const char *dir = std::getenv("XDG_RUNTIME_DIR"))
        return std::string(dir) + "/thermctl.sock";
    return "/tmp/thermctl-" + std::to_string(::getuid()) + ".sock";
}

void
ServerOptions::validate() const
{
    if (unix_path.empty() && !tcp)
        fatal("serve: no listener configured (unix path empty, tcp off)");
    if (tcp_port < 0 || tcp_port > 65535)
        fatal("serve: tcp port out of range: ", tcp_port);
    if (backlog <= 0)
        fatal("serve: backlog must be positive");
    if (max_queue == 0)
        fatal("serve: max queue depth must be positive");
    if (dispatchers == 0)
        fatal("serve: dispatcher count must be positive");
    if (workers == 0)
        fatal("serve: worker count must be positive");
    if (max_write_buffer == 0)
        fatal("serve: max write buffer must be positive");
    if (sndbuf < 0)
        fatal("serve: sndbuf must be non-negative");
    if (!fault_plan.empty()) {
        fault::FaultPlan plan;
        std::string error;
        if (!fault::FaultPlan::tryParse(fault_plan, plan, error))
            fatal("serve: bad fault plan: ", error);
    }
}

Scheduler::Options
ServerOptions::schedulerOptions() const
{
    Scheduler::Options sched;
    sched.sweep = sweep;
    sched.max_queue = max_queue;
    sched.dispatchers = dispatchers;
    sched.batch_window_ms = batch_window_ms;
    sched.watchdog_ms = watchdog_ms;
    return sched;
}

Server::Server(const ServerOptions &opts)
    : opts_(opts),
      sched_(std::make_unique<Scheduler>(opts.schedulerOptions())),
      started_(std::chrono::steady_clock::now())
{
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    opts_.validate();

    if (!opts_.fault_plan.empty())
        fault::FaultInjector::instance().arm(
            fault::FaultPlan::parse(opts_.fault_plan));

    if (::pipe(wake_pipe_) != 0)
        fatal("serve: pipe: ", std::strerror(errno));
    setNonBlocking(wake_pipe_[0]);
    setNonBlocking(wake_pipe_[1]);

    if (!opts_.unix_path.empty()) {
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unix_fd_ < 0)
            fatal("serve: socket(AF_UNIX): ", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.unix_path.size() >= sizeof(addr.sun_path))
            fatal("serve: socket path too long: ", opts_.unix_path);
        std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(opts_.unix_path.c_str()); // remove a stale socket
        if (::bind(unix_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
            != 0) {
            fatal("serve: bind(", opts_.unix_path,
                  "): ", std::strerror(errno));
        }
        if (::listen(unix_fd_, opts_.backlog) != 0)
            fatal("serve: listen: ", std::strerror(errno));
        setNonBlocking(unix_fd_);
    }

    if (opts_.tcp) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            fatal("serve: socket(AF_INET): ", std::strerror(errno));
        const int one = 1;
        ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcp_port));
        if (::bind(tcp_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
            != 0) {
            fatal("serve: bind(tcp ", opts_.tcp_port,
                  "): ", std::strerror(errno));
        }
        if (::listen(tcp_fd_, opts_.backlog) != 0)
            fatal("serve: listen(tcp): ", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(tcp_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len);
        tcp_port_ = ntohs(bound.sin_port);
        setNonBlocking(tcp_fd_);
    }

    workers_.reserve(opts_.workers);
    for (unsigned i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    loop_thread_ = std::thread([this] { eventLoop(); });
}

void
Server::beginDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    // Refuse new submissions right away; queued work keeps running.
    sched_->beginDrain();
    wakeLoop();
    MutexLock lock(drain_mutex_);
    drain_cv_.notify_all();
}

void
Server::waitForDrainRequest()
{
    MutexLock lock(drain_mutex_);
    while (!draining_.load())
        drain_cv_.wait(drain_mutex_);
}

void
Server::shutdown()
{
    if (stopped_.exchange(true))
        return;
    beginDrain();

    // The loop owns every socket: it finishes flushing replies (bounded
    // by drain_flush_ms), closes connections, and exits.
    if (loop_thread_.joinable())
        loop_thread_.join();
    closeFd(unix_fd_);
    closeFd(tcp_fd_);
    if (!opts_.unix_path.empty())
        ::unlink(opts_.unix_path.c_str());

    // Let every admitted point finish so workers blocked on scheduler
    // futures wake up, then release the pool.
    sched_->awaitIdle();
    {
        MutexLock lock(work_mutex_);
        workers_stop_ = true;
        work_cv_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
    workers_.clear();

    sched_->stop();
    closeFd(wake_pipe_[0]);
    closeFd(wake_pipe_[1]);

    if (!opts_.fault_plan.empty())
        fault::FaultInjector::instance().disarm();
}

StatsReply
Server::statsSnapshot() const
{
    const SchedulerStats ss = sched_->stats();
    StatsReply s;
    s.requests_total = requests_total_.load();
    s.run_requests = run_requests_.load();
    s.sweep_requests = sweep_requests_.load();
    s.cache_queries = cache_queries_.load();
    s.points_submitted = ss.submitted;
    s.points_simulated = ss.simulated;
    s.cache_hits = ss.cache_hits;
    s.coalesced = ss.coalesced;
    s.rejected_overload = ss.rejected_overload;
    s.rejected_deadline = ss.rejected_deadline;
    s.failed = ss.failed;
    s.stalled = ss.stalled;
    s.queue_depth = ss.queue_depth;
    s.queue_high_water = ss.queue_high_water;
    s.connections_accepted = connections_accepted_.load();
    s.active_connections = active_connections_.load();
    s.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - started_)
            .count();
    s.latency_count = ss.latency_count;
    s.latency_mean_ms = ss.latency_mean_ms;
    s.latency_p50_ms = ss.latency_p50_ms;
    s.latency_p90_ms = ss.latency_p90_ms;
    s.latency_p99_ms = ss.latency_p99_ms;
    return s;
}

void
Server::wakeLoop()
{
    if (wake_pipe_[1] >= 0) {
        const char b = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
    }
}

// ------------------------------------------------------------ event loop

void
Server::eventLoop()
{
    bool drain_seen = false;

    for (;;) {
        const bool draining = draining_.load();
        if (draining && !drain_seen) {
            drain_seen = true;
            drain_started_ = Clock::now();
        }

        // ---- build the poll set
        const Clock::time_point now = Clock::now();
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> fd_conn; // parallel; 0 = not a conn
        fds.push_back({wake_pipe_[0], POLLIN, 0});
        fd_conn.push_back(0);
        int unix_slot = -1, tcp_slot = -1;
        const bool accept_paused = accept_backoff_until_ > now;
        if (!draining && !accept_paused) {
            if (unix_fd_ >= 0) {
                unix_slot = static_cast<int>(fds.size());
                fds.push_back({unix_fd_, POLLIN, 0});
                fd_conn.push_back(0);
            }
            if (tcp_fd_ >= 0) {
                tcp_slot = static_cast<int>(fds.size());
                fds.push_back({tcp_fd_, POLLIN, 0});
                fd_conn.push_back(0);
            }
        }
        for (auto &[id, conn] : conns_) {
            if (conn->peer_hup)
                continue; // hung up mid-request: wait for completion
            short events = 0;
            if (pending(*conn) > 0)
                events |= POLLOUT;
            // Readability is the flow-control valve: closed while a
            // request executes, while the write buffer is over the high
            // water, and during drain (no new requests admitted).
            if (!conn->busy && !draining && !conn->close_after_flush
                && conn->wbuf.size() - conn->woff
                       < opts_.max_write_buffer) {
                events |= POLLIN;
            }
            // events == 0 still reports POLLERR/POLLHUP.
            fds.push_back({conn->fd, events, 0});
            fd_conn.push_back(id);
        }

        // ---- compute the poll timeout
        int timeout = -1;
        if (draining) {
            const auto deadline =
                drain_started_
                + std::chrono::milliseconds(opts_.drain_flush_ms);
            timeout = clampTimeoutMs(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count());
        } else if (opts_.idle_timeout_ms > 0 && !conns_.empty()) {
            std::int64_t soonest =
                std::numeric_limits<std::int64_t>::max();
            for (const auto &[id, conn] : conns_) {
                if (conn->busy)
                    continue; // an executing request is not idle
                const auto deadline =
                    conn->last_activity
                    + std::chrono::milliseconds(opts_.idle_timeout_ms);
                soonest = std::min(
                    soonest,
                    static_cast<std::int64_t>(
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline - now)
                            .count()));
            }
            if (soonest != std::numeric_limits<std::int64_t>::max())
                timeout = clampTimeoutMs(soonest);
        }
        if (!draining && accept_paused) {
            // Wake when the accept backoff expires so the listeners
            // rejoin the poll set even with no other activity.
            const int left = clampTimeoutMs(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    accept_backoff_until_ - now)
                    .count()
                + 1);
            timeout = timeout < 0 ? left : std::min(timeout, left);
        }

        const int rc = ::poll(fds.data(), fds.size(), timeout);
        if (rc < 0 && errno != EINTR) {
            warn("serve: poll: ", std::strerror(errno));
            break;
        }

        // ---- drain the wakeup pipe
        if (rc > 0 && (fds[0].revents & POLLIN)) {
            char buf[64];
            while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
            }
        }

        processCompletions();

        // ---- accept new connections
        for (int slot : {unix_slot, tcp_slot}) {
            if (slot >= 0 && (fds[slot].revents & POLLIN))
                acceptReady(fds[slot].fd);
        }

        // ---- service connection readiness
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fd_conn[i] == 0)
                continue;
            auto it = conns_.find(fd_conn[i]);
            if (it == conns_.end())
                continue; // closed by an earlier step this iteration
            Conn &conn = *it->second;
            const short re = fds[i].revents;
            if (re & (POLLERR | POLLNVAL)) {
                closeConn(conn);
                continue;
            }
            if (re & POLLOUT) {
                if (!flushConn(conn))
                    continue;
                // Dropping below the high water may unblock a buffered
                // request the backpressure gate had parked; dispatching
                // a malformed frame can close the conn inline.
                if (!tryDispatch(conn))
                    continue;
            }
            if ((re & POLLHUP) && conn.busy) {
                // Peer gone while its request executes: leave the poll
                // set (events==0 would re-report POLLHUP every round,
                // spinning the loop) until the completion arrives,
                // which drops the reply and closes.
                conn.peer_hup = true;
                continue;
            }
            // POLLHUP still allows reading what the peer sent before
            // closing; recv() returning 0 finishes the close.
            if ((re & (POLLIN | POLLHUP)) && !readReady(conn))
                continue;
        }

        // ---- idle eviction
        if (!draining && opts_.idle_timeout_ms > 0) {
            const Clock::time_point cutoff =
                Clock::now()
                - std::chrono::milliseconds(opts_.idle_timeout_ms);
            for (auto it = conns_.begin(); it != conns_.end();) {
                Conn &conn = *it->second;
                ++it; // closeConn erases
                if (!conn.busy && conn.last_activity <= cutoff) {
                    idle_evicted_++;
                    closeConn(conn);
                }
            }
        }

        // ---- drain: flush what we owe, then leave
        if (draining) {
            for (auto it = conns_.begin(); it != conns_.end();) {
                Conn &conn = *it->second;
                ++it;
                if (!conn.busy && pending(conn) == 0)
                    closeConn(conn);
            }
            if (conns_.empty())
                break;
            if (Clock::now() - drain_started_
                >= std::chrono::milliseconds(opts_.drain_flush_ms)) {
                warn("serve: drain flush budget exhausted; dropping ",
                     conns_.size(), " connection(s)");
                break;
            }
        }
    }

    // Whatever survives (drain deadline, poll failure) closes now; a
    // late completion for one of these connections is simply dropped.
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &conn = *it->second;
        ++it;
        closeConn(conn);
    }
}

void
Server::acceptReady(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break; // drained the backlog
            if (errno == EINTR || errno == ECONNABORTED)
                continue; // transient, retry now
            // EMFILE/ENFILE/ENOBUFS/...: the listener stays readable,
            // so re-polling immediately would spin. Pause accepts.
            warn("serve: accept: ", std::strerror(errno),
                 " (pausing accepts for ", kAcceptBackoffMs, " ms)");
            accept_backoff_until_ =
                Clock::now()
                + std::chrono::milliseconds(kAcceptBackoffMs);
            break;
        }
        if (THERMCTL_FAULT_POINT("serve.accept").abort()) {
            // Drop the connection before it is serviced; the peer
            // sees a clean close and must reconnect.
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        if (opts_.sndbuf > 0) {
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sndbuf,
                         sizeof(opts_.sndbuf));
        }
        connections_accepted_++;
        active_connections_++;
        auto conn = std::make_unique<Conn>();
        conn->id = next_conn_id_++;
        conn->fd = fd;
        conn->last_activity = Clock::now();
        conns_.emplace(conn->id, std::move(conn));
    }
}

bool
Server::readReady(Conn &conn)
{
    char buf[kReadChunk];
    for (;;) {
        if (conn.busy)
            return true; // flow control: one request at a time
        const fault::FaultDecision d =
            THERMCTL_FAULT_POINT("serve.sock.read");
        if (d.abort()) {
            closeConn(conn); // injected ECONNRESET
            return false;
        }
        if (d.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.stall_ms));
        }
        if (d.eintr())
            continue; // as if recv() returned EINTR
        const std::size_t want = d.shortIo() ? 1 : sizeof(buf);
        const ssize_t n = ::recv(conn.fd, buf, want, 0);
        if (n == 0) {
            closeConn(conn); // peer closed
            return false;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            closeConn(conn);
            return false;
        }
        conn.assembler.feed(
            std::string_view(buf, static_cast<std::size_t>(n)));
        conn.last_activity = Clock::now();
        if (!tryDispatch(conn))
            return false; // malformed frame: error flushed, conn gone
        if (conn.close_after_flush)
            return true; // framing lost: stop reading, flush the error
    }
}

bool
Server::flushConn(Conn &conn)
{
    while (pending(conn) > 0) {
        const fault::FaultDecision d =
            THERMCTL_FAULT_POINT("serve.sock.write");
        if (d.abort()) {
            closeConn(conn); // injected EPIPE
            return false;
        }
        if (d.stall()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.stall_ms));
        }
        if (d.eintr())
            continue; // as if send() returned EINTR
        const std::size_t len = d.shortIo() ? 1 : pending(conn);
        const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                                 len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // kernel buffer full: wait for POLLOUT
            if (errno == EINTR)
                continue;
            closeConn(conn);
            return false;
        }
        conn.woff += static_cast<std::size_t>(n);
        conn.last_activity = Clock::now();
    }
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.close_after_flush) {
        closeConn(conn);
        return false;
    }
    return true;
}

bool
Server::tryDispatch(Conn &conn)
{
    if (conn.busy || conn.close_after_flush || draining_.load())
        return true;
    // Backpressure: while the peer is not draining replies, no new
    // work is executed for it, even if requests are already buffered.
    if (pending(conn) >= opts_.max_write_buffer)
        return true;
    MsgType type;
    std::string payload;
    FrameStatus fs = FrameStatus::Ok;
    switch (conn.assembler.next(type, payload, &fs)) {
      case FrameAssembler::Next::NeedMore:
        return true;
      case FrameAssembler::Next::Bad: {
        ErrorReply err;
        err.code = fs == FrameStatus::BadVersion
                       ? ServeError::VersionMismatch
                       : ServeError::BadRequest;
        err.message =
            fs == FrameStatus::BadVersion
                ? "unsupported wire version (server speaks v"
                      + std::to_string(kWireVersion) + ")"
                : "malformed frame header";
        // Best-effort courtesy reply; framing is unrecoverable, so the
        // connection closes once these bytes are out — possibly right
        // here when the flush completes, destroying `conn`.
        conn.wbuf += encodeFrame(MsgType::ErrorReply, err.encode());
        conn.close_after_flush = true;
        return flushConn(conn);
      }
      case FrameAssembler::Next::Frame:
        break;
    }
    conn.busy = true;
    {
        MutexLock lock(work_mutex_);
        work_queue_.push_back(
            Work{conn.id, type, std::move(payload)});
        work_cv_.notify_one();
    }
    return true;
}

void
Server::processCompletions()
{
    std::deque<Completion> done;
    {
        MutexLock lock(done_mutex_);
        done.swap(done_queue_);
    }
    bool drain_after = false;
    for (auto &c : done) {
        auto it = conns_.find(c.conn_id);
        if (it == conns_.end())
            continue; // connection died while its request ran
        Conn &conn = *it->second;
        conn.busy = false;
        if (conn.peer_hup) {
            // The peer hung up while this request ran: drop the reply
            // (a DrainRequest still drains — it was admitted).
            drain_after |= c.drain_after;
            closeConn(conn);
            continue;
        }
        conn.wbuf += c.frame;
        conn.last_activity = Clock::now();
        if (c.drain_after) {
            // DrainRequest: deliver the reply, then close; the drain
            // itself starts once every completion is applied.
            conn.close_after_flush = true;
            drain_after = true;
        }
        if (!flushConn(conn))
            continue;
        // The peer may have pipelined the next request already; the
        // conn is not touched again this round, so a close is fine.
        (void)tryDispatch(conn);
    }
    if (drain_after)
        beginDrain();
}

void
Server::closeConn(Conn &conn)
{
    ::close(conn.fd);
    active_connections_--;
    conns_.erase(conn.id); // destroys conn
}

// ----------------------------------------------------------- worker pool

void
Server::workerLoop()
{
    for (;;) {
        Work work;
        {
            MutexLock lock(work_mutex_);
            while (work_queue_.empty() && !workers_stop_)
                work_cv_.wait(work_mutex_);
            if (work_queue_.empty())
                return; // workers_stop_ and nothing left
            work = std::move(work_queue_.front());
            work_queue_.pop_front();
        }
        Completion done = executeFrame(work);
        {
            MutexLock lock(done_mutex_);
            done_queue_.push_back(std::move(done));
        }
        wakeLoop();
    }
}

PointReply
Server::awaitTicket(Scheduler::Ticket ticket)
{
    const Scheduler::OutcomePtr oc = ticket.future.get();
    PointReply p;
    p.error = oc->error;
    p.message = oc->message;
    if (oc->error == ServeError::None)
        p.result = oc->result;
    p.cache_hit = oc->cache_hit;
    p.coalesced = ticket.coalesced;
    p.server_ms = oc->server_ms;
    p.retry_after_ms = oc->retry_after_ms;
    return p;
}

Server::Completion
Server::executeFrame(const Work &work)
{
    requests_total_++;

    Completion done;
    done.conn_id = work.conn_id;

    auto badRequest = [&](const std::string &msg) {
        ErrorReply err;
        err.code = ServeError::BadRequest;
        err.message = msg;
        done.frame = encodeFrame(MsgType::ErrorReply, err.encode());
        return done;
    };

    switch (work.type) {
      case MsgType::RunRequest: {
        run_requests_++;
        RunRequest req;
        if (!RunRequest::decode(work.payload, req))
            return badRequest("undecodable RunRequest payload");
        RunReply reply;
        try {
            const ResolvedPoint pt = resolvePoint(req.point, opts_.base);
            reply.point =
                awaitTicket(sched_->submit(pt, req.deadline_ms));
        } catch (const FatalError &e) {
            reply.point.error = ServeError::BadRequest;
            reply.point.message = e.what();
        }
        done.frame = encodeFrame(MsgType::RunReply, reply.encode());
        return done;
      }

      case MsgType::SweepRequest: {
        sweep_requests_++;
        SweepRequest req;
        if (!SweepRequest::decode(work.payload, req)
            || req.benchmarks.empty() || req.policies.empty()) {
            return badRequest("undecodable or empty SweepRequest payload");
        }
        // Submit the whole grid before waiting on any point so the
        // scheduler can batch compatible points and coalesce
        // duplicates across the grid.
        struct Slot
        {
            bool resolved = false;
            Scheduler::Ticket ticket;
            std::string error;
        };
        std::vector<Slot> slots;
        slots.reserve(req.benchmarks.size() * req.policies.size());
        for (const auto &bench : req.benchmarks) {
            for (const auto &policy : req.policies) {
                PointSpec spec;
                spec.benchmark = bench;
                spec.policy = policy;
                spec.warmup_cycles = req.warmup_cycles;
                spec.measure_cycles = req.measure_cycles;
                spec.ct_setpoint = req.ct_setpoint;
                spec.sample_interval = req.sample_interval;
                spec.num_cores = req.num_cores;
                spec.coupling_r = req.coupling_r;
                spec.chip_budget = req.chip_budget;
                spec.budget_policy = req.budget_policy;
                Slot slot;
                try {
                    const ResolvedPoint pt =
                        resolvePoint(spec, opts_.base);
                    slot.ticket =
                        sched_->submit(pt, req.deadline_ms);
                    slot.resolved = true;
                } catch (const FatalError &e) {
                    slot.error = e.what();
                }
                slots.push_back(std::move(slot));
            }
        }
        SweepReply reply;
        reply.points.reserve(slots.size());
        for (auto &slot : slots) {
            if (slot.resolved) {
                reply.points.push_back(
                    awaitTicket(std::move(slot.ticket)));
            } else {
                PointReply p;
                p.error = ServeError::BadRequest;
                p.message = slot.error;
                reply.points.push_back(std::move(p));
            }
        }
        done.frame = encodeFrame(MsgType::SweepReply, reply.encode());
        return done;
      }

      case MsgType::CacheQueryRequest: {
        cache_queries_++;
        CacheQueryRequest req;
        if (!CacheQueryRequest::decode(work.payload, req))
            return badRequest("undecodable CacheQueryRequest payload");
        CacheQueryReply reply;
        try {
            const ResolvedPoint pt = resolvePoint(req.point, opts_.base);
            reply.digest = pt.digest;
            if (opts_.sweep.use_cache) {
                const std::string dir =
                    opts_.sweep.cache_dir.empty()
                        ? SweepEngine::defaultCacheDir()
                        : opts_.sweep.cache_dir;
                RunResult ignored;
                reply.cached =
                    sweepCacheLookup(dir, pt.digest, ignored);
            }
        } catch (const FatalError &e) {
            return badRequest(e.what());
        }
        done.frame =
            encodeFrame(MsgType::CacheQueryReply, reply.encode());
        return done;
      }

      case MsgType::StatsRequest: {
        StatsRequest req;
        if (!StatsRequest::decode(work.payload, req))
            return badRequest("undecodable StatsRequest payload");
        done.frame = encodeFrame(MsgType::StatsReply,
                                 statsSnapshot().encode());
        return done;
      }

      case MsgType::PingRequest: {
        PingRequest req;
        if (!PingRequest::decode(work.payload, req))
            return badRequest("undecodable PingRequest payload");
        // Answered straight from the scheduler counters: no simulation,
        // no cache I/O, so probers can hammer this without perturbing
        // the data plane.
        const SchedulerStats s = sched_->stats();
        PingReply reply;
        reply.version = kWireVersion;
        reply.draining = drainRequested();
        reply.queue_depth = s.queue_depth;
        reply.stalled = s.stalled;
        done.frame = encodeFrame(MsgType::PingReply, reply.encode());
        return done;
      }

      case MsgType::DrainRequest: {
        DrainRequest req;
        if (!DrainRequest::decode(work.payload, req))
            return badRequest("undecodable DrainRequest payload");
        DrainReply reply;
        reply.was_draining = drainRequested();
        done.frame = encodeFrame(MsgType::DrainReply, reply.encode());
        done.drain_after = true;
        return done;
      }

      default:
        return badRequest("unexpected message type on a server socket");
    }
}

} // namespace thermctl::serve
