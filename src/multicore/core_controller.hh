/**
 * @file
 * Per-core thermal controllers for the multicore engine (DESIGN.md §15).
 *
 * Each core runs one controller that observes the core's hottest
 * hot-spot block every sample and outputs a continuous duty in [0, 1],
 * which the engine quantizes onto the per-core DVFS ladder (and clamps
 * under the chip budget).
 *
 * Two families:
 *
 *  - FixedPidCoreController: the paper's loop-shaped PID, reused
 *    unchanged. Its gains are tuned once against a nominal FOPDT plant;
 *    when the true plant gain differs (different floorplan corner,
 *    neighbor heating, leakage feedback) the fixed loop over- or
 *    under-reacts.
 *
 *  - AdjustableIntegralController (Rao et al., "Temperature Regulation
 *    in Multicore Processors Using Adjustable-Gain Integral
 *    Controllers"): an integral law u[k+1] = clamp(u[k] + g[k] e[k])
 *    whose gain is re-derived every sample from an online estimate of
 *    the plant sensitivity b = dT/du, so the loop gain g*b stays at the
 *    designed value even when the plant drifts 4x from nominal.
 */

#ifndef THERMCTL_MULTICORE_CORE_CONTROLLER_HH
#define THERMCTL_MULTICORE_CORE_CONTROLLER_HH

#include <memory>

#include "common/types.hh"
#include "control/pid.hh"

namespace thermctl::multicore
{

/** One core's thermal controller: hottest block in, duty out. */
class CoreController
{
  public:
    virtual ~CoreController() = default;

    /**
     * One control sample.
     * @param hottest the core's hottest hot-spot temperature
     * @return commanded duty in [0, 1] (1 = nominal frequency)
     */
    virtual double update(Celsius hottest) = 0;

    /** @return printable controller name. */
    virtual const char *name() const = 0;
};

/** The paper's fixed-gain PID driving the DVFS ladder. */
class FixedPidCoreController : public CoreController
{
  public:
    explicit FixedPidCoreController(const PidConfig &cfg);

    double update(Celsius hottest) override;
    const char *name() const override { return "percore-PID"; }

    const PidController &pid() const { return pid_; }

  private:
    PidController pid_;
};

/** Adjustable-gain integral controller configuration. */
struct AdjustableIntegralConfig
{
    /** Temperature setpoint (defaults follow DtmPolicySettings). */
    Celsius setpoint = 111.6;

    /**
     * Designed per-sample loop gain: the fraction of the current error
     * the loop should remove each sample (g[k] = loop_gain / b_hat).
     * 0.5 halves the error every sample when the estimate is exact —
     * fast but monotone (no overshoot) for a first-order plant.
     */
    double loop_gain = 0.5;

    /** Initial plant-sensitivity estimate b_hat, degrees per unit duty. */
    double initial_sensitivity = 10.0;

    /** EWMA weight of a fresh sensitivity observation. */
    double sensitivity_filter = 0.25;

    /** Clamp band for b_hat (keeps g finite under tiny observations). */
    double sensitivity_min = 0.5;
    double sensitivity_max = 500.0;

    /** Actuator range. */
    double out_min = 0.0;
    double out_max = 1.0;
};

/**
 * Rao-style adjustable-gain integral controller.
 *
 * Law: u[k+1] = clamp(u[k] + g[k] (setpoint - T[k])) with
 * g[k] = loop_gain / b_hat[k]. The sensitivity estimate updates from
 * the observed response: whenever the previously applied duty change
 * was non-negligible, b_obs = dT/du feeds an EWMA (only plausible
 * positive observations are accepted; the plant heats when duty rises).
 */
class AdjustableIntegralController : public CoreController
{
  public:
    explicit AdjustableIntegralController(
        const AdjustableIntegralConfig &cfg);

    double update(Celsius hottest) override;
    const char *name() const override { return "adj-integral"; }

    /** Current adapted gain g[k] (tests/telemetry). */
    double gain() const;

    /** Current plant-sensitivity estimate b_hat (tests/telemetry). */
    double sensitivity() const { return b_hat_; }

    const AdjustableIntegralConfig &config() const { return cfg_; }

  private:
    AdjustableIntegralConfig cfg_;
    double u_;      ///< current output
    double b_hat_;  ///< plant-sensitivity estimate, K per unit duty
    double prev_temp_ = 0.0;
    double prev_u_ = 0.0;
    bool have_prev_ = false;
};

} // namespace thermctl::multicore

#endif // THERMCTL_MULTICORE_CORE_CONTROLLER_HH
