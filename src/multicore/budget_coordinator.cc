#include "multicore/budget_coordinator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermctl::multicore
{

BudgetCoordinator::BudgetCoordinator(Watts chip_budget,
                                     BudgetPolicy policy,
                                     Celsius t_emergency)
    : budget_(chip_budget), policy_(policy), t_emergency_(t_emergency)
{
    if (chip_budget.value() <= 0.0)
        fatal("BudgetCoordinator: chip budget must be positive, got ",
              chip_budget.value());
}

std::vector<Watts>
BudgetCoordinator::split(const std::vector<Watts> &demand,
                         const std::vector<Celsius> &hottest) const
{
    const std::size_t n = demand.size();
    if (n == 0 || hottest.size() != n)
        panic("BudgetCoordinator::split: demand/hottest size mismatch (",
              n, " vs ", hottest.size(), ")");

    // A tiny floor keeps every weight positive: a zero-weight core
    // would be starved to exactly 0 W, which no DVFS floor can honour.
    constexpr double kWeightFloor = 1e-3;
    std::vector<double> weight(n, 1.0);
    switch (policy_) {
      case BudgetPolicy::Uniform:
        break;
      case BudgetPolicy::DemandProportional:
        for (std::size_t i = 0; i < n; ++i)
            weight[i] = std::max(demand[i].value(), kWeightFloor);
        break;
      case BudgetPolicy::ThermalHeadroom:
        for (std::size_t i = 0; i < n; ++i) {
            weight[i] = std::max(
                t_emergency_.value() - hottest[i].value(), 0.0)
                + kWeightFloor;
        }
        break;
      default:
        panic("BudgetCoordinator::split: unknown policy");
    }

    double total_w = 0.0;
    for (double w : weight)
        total_w += w;

    // Exact conservation: the last core takes whatever remains, so the
    // shares sum to the budget bit-exactly regardless of rounding in
    // the proportional division.
    std::vector<Watts> out(n);
    double handed_out = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double share = budget_.value() * (weight[i] / total_w);
        out[i] = Watts(share);
        handed_out += share;
    }
    out[n - 1] = Watts(budget_.value() - handed_out);
    return out;
}

} // namespace thermctl::multicore
