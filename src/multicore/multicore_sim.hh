/**
 * @file
 * The multicore simulator (DESIGN.md §15): N independent cores on one
 * shared nominal clock grid, coupled through the ChipModel thermal
 * network and coordinated by the budget supervisor.
 *
 * Time model: the engine advances on the NOMINAL clock grid. A core at
 * DVFS scale s executes on the fraction s of nominal cycles (spread
 * evenly by the ladder's Bresenham gate) and skips the rest, so one
 * nominal cycle is always one fixed wall-clock period and every core's
 * thermal trace shares one time base. Dynamic power of an executed
 * cycle is scaled by f*V^2; ladder leakage scales linearly with V (a
 * deliberate simplification versus the single-core engine's V^2 — see
 * DESIGN.md §15).
 *
 * Control hierarchy, once per sample interval:
 *   1. the thermal network integrates the window's average power;
 *   2. each per-core controller maps its hottest block to a duty;
 *   3. once per budget epoch the coordinator re-splits the chip budget
 *      and each core's ladder level is capped so its estimated power
 *      stays under its share.
 */

#ifndef THERMCTL_MULTICORE_MULTICORE_SIM_HH
#define THERMCTL_MULTICORE_MULTICORE_SIM_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "dtm/actuator.hh"
#include "multicore/budget_coordinator.hh"
#include "multicore/chip_model.hh"
#include "multicore/core_controller.hh"
#include "sim/experiment.hh"
#include "workload/synthetic.hh"

namespace thermctl::multicore
{

/** Per-structure measurement aggregates across the chip. */
struct ChipStructureStats
{
    double temp_sum = 0.0; ///< sum over cores and cycles (mean of cores)
    Celsius temp_max = std::numeric_limits<double>::lowest();
    std::uint64_t emergency_cycles = 0; ///< any core's block above
    std::uint64_t stress_cycles = 0;
    double power_sum = 0.0; ///< watt-cycles, summed over cores
};

/** Whole-chip measurement aggregates. */
struct ChipStats
{
    std::uint64_t nominal_cycles = 0;
    std::uint64_t executed_cycles = 0;  ///< summed over cores
    std::uint64_t committed = 0;        ///< summed over cores
    std::uint64_t emergency_cycles = 0; ///< any block of any core above
    std::uint64_t stress_cycles = 0;
    std::uint64_t samples = 0;
    double freq_scale_sum = 0.0; ///< per-core scale summed per sample
    Celsius max_temperature = std::numeric_limits<double>::lowest();
    std::array<ChipStructureStats, kNumStructures> structures{};
};

/** One fully wired N-core simulation instance. */
class MulticoreSimulator
{
  public:
    /** Fatal on invalid multicore config or unsupported policy kind. */
    explicit MulticoreSimulator(const SimConfig &cfg);

    /** Advance n nominal cycles. */
    void run(std::uint64_t nominal_cycles);

    /** The standard protocol: half cold, warm-start, settle, reset. */
    void warmUp(std::uint64_t cycles);

    /** Clear measurement statistics (not the machine state). */
    void resetMeasurement();

    const ChipStats &stats() const { return stats_; }

    /** Committed instructions summed over cores (measurement window). */
    std::uint64_t committedTotal() const;
    const ChipModel &chip() const { return chip_; }
    const SimConfig &config() const { return cfg_; }
    std::size_t numCores() const { return cores_.size(); }

    /** Core-c clock scale currently commanded (tests). */
    double freqScale(std::size_t c) const
    {
        return cores_[c]->ladder.freqScale();
    }

  private:
    struct CoreUnit
    {
        std::unique_ptr<InstructionStream> workload;
        std::unique_ptr<MemoryHierarchy> memory;
        std::unique_ptr<Core> core;
        DvfsLadder ladder;
        std::unique_ptr<CoreController> controller;
        /** Dynamic energy accumulated this sample window (W-cycles). */
        PowerVector window_power;
        /** Power accumulated over the measurement window (W-cycles). */
        PowerVector meas_power;
        /** Ladder level cap from the current budget split. */
        std::uint32_t budget_cap_level;

        CoreUnit(std::uint32_t levels, double min_scale)
            : ladder(levels, min_scale), budget_cap_level(levels)
        {
        }
    };

    /** Close a sample window: thermal step, metrics, control, budget. */
    void sample();

    /** Highest ladder level whose power scale fits under `cap`. */
    std::uint32_t capLevel(Watts full_speed_demand, Watts cap) const;

    SimConfig cfg_;
    Floorplan floorplan_;
    PowerModel power_;
    ChipModel chip_;
    std::vector<std::unique_ptr<CoreUnit>> cores_;
    std::unique_ptr<BudgetCoordinator> coordinator_;

    Cycle now_ = 0;
    std::uint64_t since_sample_ = 0;
    std::uint32_t samples_since_epoch_ = 0;

    // Scratch reused every sample (no steady-state allocation).
    std::vector<PowerVector> sample_power_;
    std::vector<Celsius> hottest_;
    std::vector<Watts> demand_;

    ChipStats stats_;
};

/**
 * The engine backend: run one multicore config under the standard
 * warm-up/measure protocol and aggregate chip metrics into the
 * single-core RunResult shape (per-structure details are means/maxima
 * across cores; powers are chip totals).
 */
RunResult runMulticoreOne(const SimConfig &cfg, const RunProtocol &proto);

/**
 * Install runMulticoreOne as the engine's multicore backend.
 * Idempotent; every entry point that may see multicore configs calls
 * this at startup (tool mains, Scheduler, benches, tests).
 */
void ensureBackendRegistered();

} // namespace thermctl::multicore

#endif // THERMCTL_MULTICORE_MULTICORE_SIM_HH
