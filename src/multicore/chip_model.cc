#include "multicore/chip_model.hh"

#include <algorithm>
#include <cmath>

#include "check/invariants.hh"
#include "common/logging.hh"
#include "fault/fault.hh"

namespace thermctl::multicore
{

ChipModel::ChipModel(const Floorplan &floorplan, const ThermalConfig &cfg,
                     Seconds dt, const MulticoreConfig &mc)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt), t_sink_(cfg.t_base)
{
    if (dt.value() <= 0.0)
        fatal("ChipModel: dt must be positive");
    if (mc.num_cores < 1 || mc.num_cores > kMaxCores)
        fatal("ChipModel: num_cores must be in [1, ", kMaxCores,
              "], got ", mc.num_cores);

    const std::size_t n = mc.num_cores;
    temps_.resize(n);
    flow_.resize(n);
    for (std::size_t c = 0; c < n; ++c)
        temps_[c].value.fill(cfg.t_base);

    // Per-core network: identical construction to FullRCModel.
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        conductance_[i][kNumStructures] =
            1.0 / floorplan.block(id).resistance;
    }
    for (const auto &tan : floorplan.tangential()) {
        const std::size_t a = static_cast<std::size_t>(tan.a);
        const std::size_t b = static_cast<std::size_t>(tan.b);
        const double g = 1.0 / tan.resistance;
        conductance_[a][b] += g;
        conductance_[b][a] += g;
    }

    // Shared heatsink: capacitance and ambient conductance scale with
    // the core count so each core sees the single-chip package path.
    sink_to_ambient_g_ = static_cast<double>(n)
        / floorplan.config().chip_resistance;
    sink_capacitance_ =
        static_cast<double>(n) * floorplan.config().chip_capacitance;

    // Lateral coupling: every block that touches a vertical die edge
    // faces its mirror image on the adjacent core, so each adjacent
    // pair of cores couples the same structure to itself.
    if (n > 1 && mc.coupling_resistance.value() > 0.0) {
        double die_w = 0.0;
        for (StructureId id : kAllStructures) {
            const BlockRect &r = floorplan.rect(id);
            die_w = std::max(die_w, r.x_mm + r.w_mm);
        }
        const double edge_eps = 1e-6 * die_w;
        const double g = 1.0 / mc.coupling_resistance;
        for (StructureId id : kAllStructures) {
            const BlockRect &r = floorplan.rect(id);
            const bool left = r.x_mm <= edge_eps;
            const bool right = r.x_mm + r.w_mm >= die_w - edge_eps;
            if (left || right) {
                coupling_.push_back(
                    {static_cast<std::size_t>(id), g});
            }
        }
        if (coupling_.empty())
            fatal("ChipModel: floorplan has no boundary blocks to "
                  "couple (degenerate layout?)");
    }

    // Forward-Euler stability guard, as in FullRCModel, with the
    // coupling conductance added to each boundary block's total.
    double sink_g_total = sink_to_ambient_g_;
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        double g_total = 0.0;
        for (std::size_t j = 0; j <= kNumStructures; ++j)
            g_total += conductance_[i][j];
        for (const CouplingPath &cp : coupling_) {
            // An interior core couples across both seams.
            if (cp.block == i)
                g_total += 2.0 * cp.conductance;
        }
        sink_g_total +=
            static_cast<double>(n) * conductance_[i][kNumStructures];
        const double rate = g_total / floorplan.block(id).capacitance;
        max_g_over_c_ = std::max(max_g_over_c_, rate);
        if (dt.value() * rate >= 1.0)
            fatal("ChipModel: dt too large for block ",
                  structureName(id), " (forward Euler unstable)");
    }
    const double sink_rate = sink_g_total / sink_capacitance_;
    max_g_over_c_ = std::max(max_g_over_c_, sink_rate);
    if (dt.value() * sink_rate >= 1.0)
        fatal("ChipModel: dt too large for the heatsink node "
              "(forward Euler unstable)");
}

void
ChipModel::step(const std::vector<PowerVector> &power)
{
    const std::size_t n = temps_.size();
    THERMCTL_INVARIANT({
        if (power.size() != n)
            panic("ChipModel::step: ", power.size(),
                  " power vectors for ", n, " cores");
        for (const PowerVector &p : power)
            check::verifyFinite(p, "ChipModel::step");
    });

    double sink_flow = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        const TemperatureVector &t = temps_[c];
        auto &flow = flow_[c];
        for (std::size_t i = 0; i < kNumStructures; ++i) {
            double q = power[c].value[i];
            // Tangential exchange within the core.
            for (std::size_t j = 0; j < kNumStructures; ++j) {
                if (conductance_[i][j] != 0.0) {
                    q -= conductance_[i][j]
                        * (t.value[i] - t.value[j]);
                }
            }
            // Normal path to the shared heatsink node.
            const double to_sink = conductance_[i][kNumStructures]
                * (t.value[i] - t_sink_);
            q -= to_sink;
            sink_flow += to_sink;
            flow[i] = q;
        }
    }

    // Lateral exchange across each adjacent-core seam. Empty when
    // num_cores == 1 or coupling is disabled, preserving bit-exact
    // FullRCModel behaviour in the single-core case.
    for (std::size_t c = 0; c + 1 < n; ++c) {
        for (const CouplingPath &cp : coupling_) {
            const double q = cp.conductance
                * (temps_[c].value[cp.block]
                   - temps_[c + 1].value[cp.block]);
            flow_[c][cp.block] -= q;
            flow_[c + 1][cp.block] += q;
        }
    }

    for (std::size_t c = 0; c < n; ++c) {
        for (StructureId id : kAllStructures) {
            const std::size_t i = static_cast<std::size_t>(id);
            temps_[c].value[i] += dt_ * flow_[c][i]
                / floorplan_.block(id).capacitance;
        }
    }

    sink_flow -= sink_to_ambient_g_
        * (t_sink_ - floorplan_.config().ambient);
    t_sink_ += dt_.value() * sink_flow / sink_capacitance_;
    THERMCTL_INVARIANT({
        for (const TemperatureVector &t : temps_)
            check::verifyFinite(t, "ChipModel::step");
    });
}

void
ChipModel::stepSpan(const std::vector<PowerVector> &power,
                    std::uint64_t cycles)
{
    // Same sub-stepping policy as FullRCModel: forward Euler stays
    // stable well below the smallest node time constant; chunk at 1 us.
    const double max_chunk_s = 1e-6;
    const std::uint64_t chunk_cycles = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(max_chunk_s / dt_));
    std::uint64_t remaining = cycles;
    const Seconds saved_dt = dt_;

#if THERMCTL_INVARIANTS_ENABLED
    check::EnergyAudit audit;
    const auto storedEnergy = [this]() -> Joules {
        Joules e = 0.0;
        for (const TemperatureVector &t : temps_) {
            for (StructureId id : kAllStructures) {
                e += floorplan_.block(id).capacitance
                    * Kelvin(t[id].value());
            }
        }
        e += JoulePerKelvin(sink_capacitance_)
            * Kelvin(t_sink_.value());
        return e;
    };
    audit.setStoredBefore(storedEnergy());
    Watts p_total = 0.0;
    for (const PowerVector &p : power)
        p_total += p.total();
#endif

    // Chaos hook: inject unaccounted stored energy inside the audited
    // span so the energy-balance invariant provably fires
    // (tests/test_multicore.cc seeds this via a fault plan).
    if (THERMCTL_FAULT_POINT("multicore.energy").abort())
        temps_[0].value[0] += 5.0;

    while (remaining > 0) {
        const std::uint64_t n = std::min(remaining, chunk_cycles);
        const Seconds chunk = saved_dt * static_cast<double>(n);
        THERMCTL_INVARIANT(check::verifyEulerStable(
            chunk.value() * max_g_over_c_, 1.0, "ChipModel::stepSpan",
            "stiffest node"));
#if THERMCTL_INVARIANTS_ENABLED
        audit.addInput(p_total * chunk);
        audit.addAmbientLoss(
            Watts(sink_to_ambient_g_
                  * (t_sink_ - floorplan_.config().ambient))
            * chunk);
#endif
        dt_ = chunk;
        step(power);
        dt_ = saved_dt;
        remaining -= n;
    }

#if THERMCTL_INVARIANTS_ENABLED
    audit.setStoredAfter(storedEnergy());
    audit.verify("ChipModel::stepSpan");
#endif
}

void
ChipModel::warmStart(const std::vector<PowerVector> &power)
{
    const std::size_t n = temps_.size();
    if (power.size() != n)
        panic("ChipModel::warmStart: ", power.size(),
              " power vectors for ", n, " cores");
    // The shared sink is quasi-static: its time constant is
    // chip_resistance * chip_capacitance per core (~20 s, invariant
    // under the N-scaling of both parameters), orders of magnitude
    // beyond any simulated span, so a warm start leaves it at its
    // current (t_base) value — the same quasi-constant-base assumption
    // the paper's simplified model rests on. Blocks jump to their own
    // P*R above the sink (tangential and lateral flows neglected; they
    // only redistribute a fraction of a degree, which the
    // post-warm-start settling run absorbs).
    for (std::size_t c = 0; c < n; ++c) {
        for (StructureId id : kAllStructures) {
            const std::size_t i = static_cast<std::size_t>(id);
            temps_[c].value[i] = t_sink_
                + power[c].value[i]
                * floorplan_.block(id).resistance.value();
        }
        THERMCTL_INVARIANT(check::verifyFinite(
            temps_[c], "ChipModel::warmStart"));
    }
}

void
ChipModel::setUniform(Celsius t)
{
    for (TemperatureVector &tv : temps_)
        tv.value.fill(t);
    t_sink_ = t;
}

} // namespace thermctl::multicore
