#include "multicore/core_controller.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl::multicore
{

// ------------------------------------------------- FixedPidCoreController

FixedPidCoreController::FixedPidCoreController(const PidConfig &cfg)
    : pid_(cfg)
{
}

double
FixedPidCoreController::update(Celsius hottest)
{
    return pid_.update(hottest.value());
}

// --------------------------------------------- AdjustableIntegralController

AdjustableIntegralController::AdjustableIntegralController(
    const AdjustableIntegralConfig &cfg)
    : cfg_(cfg), u_(cfg.out_max), b_hat_(cfg.initial_sensitivity)
{
    if (!(cfg.loop_gain > 0.0 && cfg.loop_gain < 2.0))
        fatal("AdjustableIntegralController: loop_gain must be in "
              "(0, 2), got ", cfg.loop_gain);
    if (!(cfg.sensitivity_min > 0.0
          && cfg.sensitivity_min < cfg.sensitivity_max))
        fatal("AdjustableIntegralController: need 0 < sensitivity_min "
              "< sensitivity_max");
    if (!(cfg.initial_sensitivity >= cfg.sensitivity_min
          && cfg.initial_sensitivity <= cfg.sensitivity_max))
        fatal("AdjustableIntegralController: initial_sensitivity "
              "outside the clamp band");
    if (!(cfg.out_min < cfg.out_max))
        fatal("AdjustableIntegralController: out_min must be below "
              "out_max");
    if (!(cfg.sensitivity_filter > 0.0 && cfg.sensitivity_filter <= 1.0))
        fatal("AdjustableIntegralController: sensitivity_filter must "
              "be in (0, 1]");
}

double
AdjustableIntegralController::gain() const
{
    return cfg_.loop_gain / b_hat_;
}

double
AdjustableIntegralController::update(Celsius hottest)
{
    const double temp = hottest.value();

    // Online sensitivity estimate: the observed response dT to the duty
    // change du we applied last sample. Only meaningfully large duty
    // changes observe anything (small du divides noise up), and only
    // positive observations are physical (more duty heats the core).
    if (have_prev_) {
        const double du = u_ - prev_u_;
        if (std::abs(du) > 1e-3) {
            const double b_obs = (temp - prev_temp_) / du;
            if (b_obs > 0.0 && std::isfinite(b_obs)) {
                const double w = cfg_.sensitivity_filter;
                b_hat_ = std::clamp((1.0 - w) * b_hat_ + w * b_obs,
                                    cfg_.sensitivity_min,
                                    cfg_.sensitivity_max);
            }
        }
    }
    prev_temp_ = temp;
    prev_u_ = u_;
    have_prev_ = true;

    // Integral law with the adapted gain. Clamping the state itself is
    // the anti-windup: the integrator can never leave the actuator
    // range, so there is nothing to unwind when the error reverses.
    const double e = cfg_.setpoint.value() - temp;
    u_ = std::clamp(u_ + gain() * e, cfg_.out_min, cfg_.out_max);
    return u_;
}

} // namespace thermctl::multicore
