/**
 * @file
 * Chip-level power-budget coordinator (ControlPULP-style supervisor;
 * DESIGN.md §15).
 *
 * Once per budget epoch the coordinator splits the chip power budget
 * across cores and the engine clamps each core's controller output so
 * its estimated power stays under its share. Three split policies:
 *
 *  - Uniform: budget / N each, workload-oblivious.
 *  - DemandProportional: shares follow each core's recent full-speed
 *    power demand, so busy cores get headroom idle cores don't use.
 *  - ThermalHeadroom: shares follow each core's distance to the
 *    emergency threshold, starving cores that are already hot.
 *
 * Conservation is exact by construction: the last core receives the
 * budget minus the sum handed to the others, so the shares always sum
 * to the chip budget to the last ULP (tests hold this per epoch).
 */

#ifndef THERMCTL_MULTICORE_BUDGET_COORDINATOR_HH
#define THERMCTL_MULTICORE_BUDGET_COORDINATOR_HH

#include <vector>

#include "sim/config.hh"

namespace thermctl::multicore
{

/** Splits the chip budget across cores each epoch. */
class BudgetCoordinator
{
  public:
    /**
     * @param chip_budget total chip budget, Watts (> 0)
     * @param policy split policy
     * @param t_emergency emergency threshold for the headroom policy
     */
    BudgetCoordinator(Watts chip_budget, BudgetPolicy policy,
                      Celsius t_emergency);

    /**
     * Compute per-core budgets for one epoch.
     *
     * @param demand per-core recent full-speed power demand, Watts
     * @param hottest per-core hottest hot-spot temperature
     * @return per-core budgets summing exactly to the chip budget
     */
    std::vector<Watts> split(const std::vector<Watts> &demand,
                             const std::vector<Celsius> &hottest) const;

    Watts chipBudget() const { return budget_; }
    BudgetPolicy policy() const { return policy_; }

  private:
    Watts budget_;
    BudgetPolicy policy_;
    Celsius t_emergency_;
};

} // namespace thermctl::multicore

#endif // THERMCTL_MULTICORE_BUDGET_COORDINATOR_HH
