/**
 * @file
 * N-core lumped thermal-RC network (ROADMAP item 2; DESIGN.md §15).
 *
 * Each core is a full paper floorplan wired exactly like FullRCModel
 * (Figure 3B: per-block normal paths plus tangential resistances), all
 * cores share ONE heat-spreader/heatsink node whose capacitance and
 * ambient conductance scale with the core count, and adjacent cores in
 * the row exchange heat through lateral coupling resistances between
 * their facing boundary blocks (the blocks that touch the die's
 * vertical edges — cores are mirrored, so the same structure faces
 * itself across the seam).
 *
 * With num_cores == 1 the network degenerates to FullRCModel: the
 * coupling list is empty, the sink parameters reduce to the single-chip
 * values, and step() performs the identical floating-point operations
 * in the identical order, so the two models are bit-identical
 * (tests/test_multicore.cc holds that as a regression).
 */

#ifndef THERMCTL_MULTICORE_CHIP_MODEL_HH
#define THERMCTL_MULTICORE_CHIP_MODEL_HH

#include <vector>

#include "sim/config.hh"
#include "thermal/rc_model.hh"

namespace thermctl::multicore
{

/** One lateral inter-core path: same block id on both facing cores. */
struct CouplingPath
{
    std::size_t block = 0; ///< structure index coupled across the seam
    double conductance = 0.0; ///< 1 / coupling_resistance, W/K
};

/** The N-core thermal network. */
class ChipModel
{
  public:
    /**
     * @param floorplan the per-core floorplan (shared by every core)
     * @param cfg thermal thresholds/environment
     * @param dt integration step (one nominal clock period)
     * @param mc core count and coupling knobs (validated; fatal on
     *        nonsense)
     */
    ChipModel(const Floorplan &floorplan, const ThermalConfig &cfg,
              Seconds dt, const MulticoreConfig &mc);

    /**
     * Advance one cycle. `power` holds one PowerVector per core
     * (size checked under THERMCTL_INVARIANTS).
     */
    void step(const std::vector<PowerVector> &power);

    /**
     * Advance `cycles` cycles under constant power, sub-stepping at a
     * numerically safe interval. Guarded by the energy-balance audit
     * when invariants are enabled: stored-energy delta must equal input
     * minus ambient loss over the span.
     */
    void stepSpan(const std::vector<PowerVector> &power,
                  std::uint64_t cycles);

    /** Jump to the steady state implied by the given per-core powers
     *  (coupling and tangential flows neglected — warm-start only). */
    void warmStart(const std::vector<PowerVector> &power);

    /** Set every block of every core and the sink to `t`. */
    void setUniform(Celsius t);

    const TemperatureVector &temperatures(std::size_t core) const
    {
        return temps_[core];
    }

    Celsius heatsinkTemperature() const { return t_sink_; }
    std::size_t numCores() const { return temps_.size(); }

    /** Lateral paths between each adjacent core pair (tests). */
    const std::vector<CouplingPath> &couplingPaths() const
    {
        return coupling_;
    }

  private:
    const Floorplan &floorplan_;
    ThermalConfig cfg_;
    Seconds dt_;

    std::vector<TemperatureVector> temps_; ///< [core]
    Celsius t_sink_;

    /** Per-core conductances (identical for every core):
     *  [i][j] between blocks, [i][N] block to the shared sink. */
    std::array<std::array<double, kNumStructures + 1>, kNumStructures>
        conductance_{};
    /** Applied between cores c and c+1 for every adjacent pair. */
    std::vector<CouplingPath> coupling_;

    double sink_to_ambient_g_ = 0.0;
    double sink_capacitance_ = 0.0; ///< num_cores * chip_capacitance
    double max_g_over_c_ = 0.0;     ///< stiffest node's total G / C, 1/s

    // Scratch reused across step() calls (no per-step allocation).
    std::vector<std::array<double, kNumStructures>> flow_;
};

} // namespace thermctl::multicore

#endif // THERMCTL_MULTICORE_CHIP_MODEL_HH
