#include "multicore/multicore_sim.hh"

#include <algorithm>
#include <cmath>

#include "check/invariants.hh"
#include "common/logging.hh"
#include "sim/policy_factory.hh"
#include "workload/trace.hh"

namespace thermctl::multicore
{

namespace
{

/** Instruction source for one core: trace or seed-offset synthetic. */
std::unique_ptr<InstructionStream>
makeStream(const SimConfig &cfg, std::size_t core_index)
{
    if (!cfg.trace_path.empty()) {
        return std::make_unique<TraceReader>(cfg.trace_path,
                                             cfg.trace_loop);
    }
    // Offset the workload seed per core so cores run decorrelated
    // instances of the same profile (identical seeds would phase-lock
    // every core's activity and defeat the budget-contention scenarios).
    WorkloadProfile profile = cfg.workload;
    profile.seed += core_index;
    return std::make_unique<SyntheticWorkload>(profile);
}

/** Build one core's controller for the configured policy kind. */
std::unique_ptr<CoreController>
makeController(const SimConfig &cfg, const FopdtPlant &plant)
{
    const DtmPolicySettings &s = cfg.policy;
    const Seconds sample_dt =
        static_cast<double>(cfg.dtm.sample_interval)
        * cfg.power.tech.cycleSeconds();

    const auto make_pid = [&](ControllerKind kind, Celsius setpoint) {
        PidConfig pc = tuneLoopShaping(kind, plant, s.shaping);
        pc.setpoint = setpoint;
        pc.dt = sample_dt;
        pc.out_min = 0.0;
        pc.out_max = 1.0;
        pc.anti_windup = AntiWindup::Conditional;
        pc.integral_init = pc.out_max; // cool core starts at full speed
        return std::make_unique<FixedPidCoreController>(pc);
    };

    switch (s.kind) {
      case DtmPolicyKind::None:
        return nullptr; // uncapped: budget clamp may still engage
      case DtmPolicyKind::P:
        return make_pid(ControllerKind::P, s.p_setpoint);
      case DtmPolicyKind::PI:
        return make_pid(ControllerKind::PI, s.ct_setpoint);
      case DtmPolicyKind::PID:
      case DtmPolicyKind::PerCorePid:
        return make_pid(ControllerKind::PID, s.ct_setpoint);
      case DtmPolicyKind::AdjIntegral: {
        AdjustableIntegralConfig ac;
        ac.setpoint = s.ct_setpoint;
        // Seed the sensitivity estimate from the derived plant gain
        // (the temperature swing a full-range duty change commands);
        // the online estimator refines it from observed responses.
        ac.initial_sensitivity = std::clamp(
            plant.gain, ac.sensitivity_min, ac.sensitivity_max);
        return std::make_unique<AdjustableIntegralController>(ac);
      }
      default:
        fatal("policy '", dtmPolicyKindName(s.kind),
              "' is not supported by the multicore engine (supported: "
              "none, P, PI, PID, percore-PID, adj-integral)");
    }
}

} // namespace

MulticoreSimulator::MulticoreSimulator(const SimConfig &cfg)
    : cfg_(cfg),
      floorplan_(cfg.floorplan),
      power_(cfg.power, cfg.cpu, cfg.memory),
      chip_(floorplan_, cfg.thermal, cfg.power.tech.cycleSeconds(),
            cfg.multicore)
{
    const MulticoreConfig &mc = cfg.multicore;
    if (mc.budget_epoch_samples < 1)
        fatal("MulticoreSimulator: budget_epoch_samples must be >= 1");

    const FopdtPlant plant = deriveDtmPlant(
        floorplan_, power_, cfg.dtm, cfg.power.tech.cycleSeconds());

    // Bounded: chip_'s ChipModel ctor ran in the member-init list above
    // and fatally rejects num_cores outside [1, kMaxCores].
    const std::size_t n = mc.num_cores;
    cores_.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        auto unit = std::make_unique<CoreUnit>(mc.dvfs_levels,
                                               mc.dvfs_min_scale);
        unit->workload = makeStream(cfg, c);
        unit->memory = std::make_unique<MemoryHierarchy>(cfg.memory);
        unit->core = std::make_unique<Core>(cfg.cpu, *unit->workload,
                                            *unit->memory);
        unit->controller = makeController(cfg, plant);
        cores_.push_back(std::move(unit));
    }

    if (mc.chip_budget.value() > 0.0) {
        coordinator_ = std::make_unique<BudgetCoordinator>(
            mc.chip_budget, mc.budget_policy, cfg.thermal.t_emergency);
    }

    sample_power_.resize(n);
    hottest_.resize(n);
    demand_.resize(n);
}

void
MulticoreSimulator::run(std::uint64_t nominal_cycles)
{
    const double alpha = cfg_.power.voltage_scaling_alpha;
    for (std::uint64_t k = 0; k < nominal_cycles; ++k) {
        for (const auto &unit : cores_) {
            if (!unit->ladder.clockGate())
                continue; // scaled core skips this nominal edge
            unit->core->tick();
            const PowerVector p =
                power_.cyclePower(unit->core->activity());
            const double ps = unit->ladder.powerScale(alpha);
            for (std::size_t j = 0; j < kNumStructures; ++j)
                unit->window_power.value[j] += p.value[j] * ps;
            ++stats_.executed_cycles;
        }
        ++now_;
        ++stats_.nominal_cycles;
        if (++since_sample_ >= cfg_.dtm.sample_interval)
            sample();
    }
}

void
MulticoreSimulator::sample()
{
    const std::uint64_t window = since_sample_;
    if (window == 0)
        return;
    const std::size_t n = cores_.size();
    const double inv = 1.0 / static_cast<double>(window);
    const double alpha = cfg_.power.voltage_scaling_alpha;

    // Window-average power per core, plus ladder leakage (linear in V).
    for (std::size_t c = 0; c < n; ++c) {
        const CoreUnit &unit = *cores_[c];
        PowerVector &sp = sample_power_[c];
        for (std::size_t j = 0; j < kNumStructures; ++j)
            sp.value[j] = unit.window_power.value[j] * inv;
        if (cfg_.power.leakage_enabled) {
            const PowerVector leak =
                power_.leakagePower(chip_.temperatures(c).value);
            const double v = unit.ladder.voltageRatio(alpha);
            for (std::size_t j = 0; j < kNumStructures; ++j)
                sp.value[j] += leak.value[j] * v;
        }
        THERMCTL_INVARIANT(check::verifyFinite(
            sp, "MulticoreSimulator::sample"));
    }

    chip_.stepSpan(sample_power_, window);

    // ------------------------------------------------------- metrics
    const Celsius t_emerg = cfg_.thermal.t_emergency;
    const Celsius t_stress = cfg_.thermal.stressLevel();
    bool chip_emerg = false;
    bool chip_stress = false;
    std::array<bool, kNumStructures> st_emerg{};
    std::array<bool, kNumStructures> st_stress{};
    for (std::size_t c = 0; c < n; ++c) {
        const TemperatureVector &temps = chip_.temperatures(c);
        hottest_[c] = temps.maxHotspot();
        stats_.max_temperature =
            std::max(stats_.max_temperature, hottest_[c]);
        if (hottest_[c] > t_emerg)
            chip_emerg = true;
        if (hottest_[c] > t_stress)
            chip_stress = true;
        for (std::size_t j = 0; j < kNumStructures; ++j) {
            auto &s = stats_.structures[j];
            const Celsius t = temps.value[j];
            s.temp_sum += t.value() * static_cast<double>(window);
            s.temp_max = std::max(s.temp_max, t);
            s.power_sum += sample_power_[c].value[j]
                * static_cast<double>(window);
            if (t > t_emerg)
                st_emerg[j] = true;
            if (t > t_stress)
                st_stress[j] = true;
        }
        for (std::size_t j = 0; j < kNumStructures; ++j) {
            cores_[c]->meas_power.value[j] += sample_power_[c].value[j]
                * static_cast<double>(window);
        }
    }
    for (std::size_t j = 0; j < kNumStructures; ++j) {
        if (st_emerg[j])
            stats_.structures[j].emergency_cycles += window;
        if (st_stress[j])
            stats_.structures[j].stress_cycles += window;
    }
    if (chip_emerg)
        stats_.emergency_cycles += window;
    if (chip_stress)
        stats_.stress_cycles += window;

    // ------------------------------------------------------- control
    for (std::size_t c = 0; c < n; ++c) {
        CoreUnit &unit = *cores_[c];
        if (unit.controller)
            unit.ladder.setDuty(unit.controller->update(hottest_[c]));
        else
            unit.ladder.setLevel(unit.ladder.levels());
    }

    // -------------------------------------------------- budget epoch
    if (coordinator_) {
        if (++samples_since_epoch_
            >= cfg_.multicore.budget_epoch_samples) {
            samples_since_epoch_ = 0;
            for (std::size_t c = 0; c < n; ++c) {
                const CoreUnit &unit = *cores_[c];
                // Full-speed demand: what this core would draw at the
                // nominal operating point, estimated by unscaling the
                // window's observed power.
                double total = 0.0;
                for (double w : sample_power_[c].value)
                    total += w;
                demand_[c] =
                    Watts(total / unit.ladder.powerScale(alpha));
            }
            const std::vector<Watts> budgets =
                coordinator_->split(demand_, hottest_);
            for (std::size_t c = 0; c < n; ++c) {
                cores_[c]->budget_cap_level =
                    capLevel(demand_[c], budgets[c]);
            }
        }
        // The cap from the current epoch clamps every sample.
        for (const auto &unit : cores_) {
            if (unit->ladder.level() > unit->budget_cap_level)
                unit->ladder.setLevel(unit->budget_cap_level);
        }
    }

    for (const auto &unit : cores_)
        stats_.freq_scale_sum += unit->ladder.freqScale();
    ++stats_.samples;
    // Core commit counters reset together with stats_, so the running
    // total is the measurement-window total (refreshed per sample).
    stats_.committed = committedTotal();

    for (const auto &unit : cores_)
        unit->window_power = PowerVector{};
    since_sample_ = 0;
}

std::uint32_t
MulticoreSimulator::capLevel(Watts full_speed_demand, Watts cap) const
{
    const double alpha = cfg_.power.voltage_scaling_alpha;
    const DvfsLadder &ladder = cores_[0]->ladder;
    const double demand = std::max(full_speed_demand.value(), 1e-9);
    for (std::uint32_t level = ladder.levels();; --level) {
        const double s = ladder.freqScale(level);
        const double v = alpha + (1.0 - alpha) * s;
        if (demand * s * v * v <= cap.value() || level == 0)
            return level;
    }
}

void
MulticoreSimulator::warmUp(std::uint64_t cycles)
{
    const std::uint64_t half = cycles / 2;
    run(half);

    // Jump the thermal network to the steady state of the per-core
    // average power observed so far, then settle for the second half.
    const double den =
        std::max<double>(1.0, static_cast<double>(stats_.nominal_cycles));
    std::vector<PowerVector> avg(cores_.size());
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        for (std::size_t j = 0; j < kNumStructures; ++j)
            avg[c].value[j] = cores_[c]->meas_power.value[j] / den;
    }
    chip_.warmStart(avg);

    run(cycles - half);
    resetMeasurement();
}

void
MulticoreSimulator::resetMeasurement()
{
    stats_ = ChipStats{};
    for (const auto &unit : cores_) {
        unit->core->resetStats();
        unit->meas_power = PowerVector{};
    }
}

std::uint64_t
MulticoreSimulator::committedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &unit : cores_)
        total += unit->core->stats().committed;
    return total;
}

RunResult
runMulticoreOne(const SimConfig &cfg, const RunProtocol &proto)
{
    MulticoreSimulator sim(cfg);
    sim.warmUp(proto.warmup_cycles);
    sim.run(proto.measure_cycles);

    const ChipStats &s = sim.stats();
    const double nom = static_cast<double>(s.nominal_cycles);
    const double ncores = static_cast<double>(sim.numCores());

    RunResult r;
    r.benchmark = cfg.workload.name;
    r.policy = dtmPolicyKindName(cfg.policy.kind);
    r.category = cfg.workload.category;
    // Aggregate chip throughput on the nominal wall clock: every
    // nominal cycle is one period of wall time, so committed / nominal
    // charges DVFS slowdown exactly like measuredPerformance() does.
    r.ipc = nom > 0.0
        ? static_cast<double>(sim.committedTotal()) / nom
        : 0.0;
    r.raw_ipc = s.executed_cycles
        ? static_cast<double>(sim.committedTotal())
            / static_cast<double>(s.executed_cycles)
        : 0.0;
    double p_total = 0.0;
    for (const auto &st : s.structures)
        p_total += st.power_sum;
    r.avg_power = nom > 0.0 ? p_total / nom : 0.0;
    r.emergency_fraction = nom > 0.0
        ? static_cast<double>(s.emergency_cycles) / nom
        : 0.0;
    r.stress_fraction = nom > 0.0
        ? static_cast<double>(s.stress_cycles) / nom
        : 0.0;
    r.max_temperature = s.samples ? s.max_temperature : Celsius(0.0);
    r.mean_duty = s.samples
        ? s.freq_scale_sum
            / (static_cast<double>(s.samples) * ncores)
        : 1.0;
    for (std::size_t j = 0; j < kNumStructures; ++j) {
        auto &det = r.structures[j];
        const auto &st = s.structures[j];
        det.avg_temp = nom > 0.0 ? st.temp_sum / (nom * ncores) : 0.0;
        det.max_temp = s.samples
            ? st.temp_max
            : Celsius(0.0);
        det.avg_power = nom > 0.0 ? st.power_sum / nom : 0.0;
        det.emergency_fraction = nom > 0.0
            ? static_cast<double>(st.emergency_cycles) / nom
            : 0.0;
        det.stress_fraction = nom > 0.0
            ? static_cast<double>(st.stress_cycles) / nom
            : 0.0;
    }
    return r;
}

void
ensureBackendRegistered()
{
    registerMulticoreBackend(&runMulticoreOne);
}

} // namespace thermctl::multicore
