#include "cache/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace thermctl
{

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg.block_bytes == 0 || !std::has_single_bit(cfg.block_bytes))
        fatal(cfg.name, ": block size must be a power of two");
    if (cfg.assoc == 0)
        fatal(cfg.name, ": associativity must be positive");
    if (cfg.size_bytes % (static_cast<std::uint64_t>(cfg.block_bytes)
                          * cfg.assoc) != 0) {
        fatal(cfg.name, ": size must be a multiple of block_bytes * assoc");
    }
    num_sets_ = static_cast<std::uint32_t>(
        cfg.size_bytes / cfg.block_bytes / cfg.assoc);
    if (!std::has_single_bit(num_sets_))
        fatal(cfg.name, ": number of sets must be a power of two, got ",
              num_sets_);
    block_shift_ = static_cast<unsigned>(std::countr_zero(cfg.block_bytes));
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    lines_.assign(static_cast<std::size_t>(num_sets_) * cfg.assoc, Line{});
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> block_shift_)
                                      & (num_sets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> block_shift_ >> set_shift_;
}

Addr
Cache::blockAddr(Addr tag, std::uint32_t set) const
{
    return ((tag << set_shift_) | set) << block_shift_;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];
    ++tick_;

    Line *victim = base;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            if (is_write)
                line.dirty = true;
            return {.hit = true};
        }
        if (!line.valid)
            victim = &line;
        else if (victim->valid && line.lru < victim->lru)
            victim = &line;
    }

    // Miss: allocate over the LRU (or an invalid) way.
    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    CacheAccessResult result;
    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        result.writeback = true;
        result.victim_addr = blockAddr(victim->tag, set);
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = tick_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace thermctl
