/**
 * @file
 * Fully associative TLB (paper Table 2: 128 entries, 30-cycle miss
 * penalty). Timing-only: translation is identity.
 */

#ifndef THERMCTL_CACHE_TLB_HH
#define THERMCTL_CACHE_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace thermctl
{

/** TLB configuration. */
struct TlbConfig
{
    std::uint32_t entries = 128;
    std::uint32_t page_bytes = 8192;
    std::uint32_t miss_penalty = 30;
};

/** Behavioural counters for the TLB. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses)
                            / static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Fully associative, true-LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg = {});

    /**
     * Look up the page containing addr, filling on miss.
     * @return the extra latency in cycles (0 on hit, miss_penalty on miss).
     */
    std::uint32_t access(Addr addr);

    const TlbConfig &config() const { return cfg_; }
    const TlbStats &stats() const { return stats_; }

    /** Drop all translations. */
    void flush();

  private:
    TlbConfig cfg_;
    unsigned page_shift_;
    /** page number -> LRU tick. */
    std::unordered_map<Addr, std::uint64_t> entries_;
    std::uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace thermctl

#endif // THERMCTL_CACHE_TLB_HH
