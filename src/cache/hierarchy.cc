#include "cache/hierarchy.hh"

namespace thermctl
{

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2), tlb_(cfg.tlb)
{
}

std::uint32_t
MemoryHierarchy::dataAccess(Addr addr, bool is_write)
{
    std::uint32_t latency = tlb_.access(addr);
    ++activity_.tlb_accesses;

    ++activity_.l1d_accesses;
    auto l1 = l1d_.access(addr, is_write);
    if (l1.hit)
        return latency + cfg_.l1d.hit_latency;

    // L1 miss: fill from L2 (write-allocate). A dirty L1 victim writes
    // back into the L2.
    ++activity_.l2_accesses;
    auto l2 = l2_.access(addr, false);
    if (l1.writeback) {
        ++activity_.l2_accesses;
        l2_.access(l1.victim_addr, true);
    }
    if (l2.hit)
        return latency + cfg_.l2.hit_latency;

    // L2 miss: main memory. Dirty L2 victims go to memory (no extra
    // latency modeled on the critical path — write buffers).
    return latency + cfg_.memory_latency;
}

std::uint32_t
MemoryHierarchy::instFetch(Addr pc)
{
    ++activity_.l1i_accesses;
    auto l1 = l1i_.access(pc, false);
    if (l1.hit)
        return cfg_.l1i.hit_latency;

    ++activity_.l2_accesses;
    auto l2 = l2_.access(pc, false);
    if (l2.hit)
        return cfg_.l2.hit_latency;
    return cfg_.memory_latency;
}

} // namespace thermctl
