/**
 * @file
 * Set-associative cache timing/behaviour model with LRU replacement and
 * write-back, write-allocate semantics.
 */

#ifndef THERMCTL_CACHE_CACHE_HH
#define THERMCTL_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermctl
{

/** Static geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t block_bytes = 32;
    std::uint32_t hit_latency = 1;
};

/** Behavioural counters for a cache. */
struct CacheStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t misses() const { return read_misses + write_misses; }

    /** @return overall miss ratio in [0, 1]. */
    double
    missRate() const
    {
        const std::uint64_t a = accesses();
        return a ? static_cast<double>(misses()) / static_cast<double>(a)
                 : 0.0;
    }
};

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;   ///< a dirty victim was evicted
    Addr victim_addr = 0;     ///< block address of the dirty victim
};

/**
 * Set-associative, write-back, write-allocate cache with true-LRU
 * replacement. Purely functional-timing: no data storage.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the block containing addr.
     * Allocates on miss; marks dirty on write.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** @return true if the block containing addr is currently resident. */
    bool contains(Addr addr) const;

    /** Invalidate all blocks (dirty contents discarded). */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    std::uint32_t numSets() const { return num_sets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    std::uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr blockAddr(Addr tag, std::uint32_t set) const;

    CacheConfig cfg_;
    std::uint32_t num_sets_;
    unsigned block_shift_;
    unsigned set_shift_;
    std::vector<Line> lines_; ///< num_sets_ * assoc, set-major
    std::uint64_t tick_ = 0;
    CacheStats stats_;
};

} // namespace thermctl

#endif // THERMCTL_CACHE_CACHE_HH
