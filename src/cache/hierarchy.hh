/**
 * @file
 * The paper's Table 2 memory hierarchy: split 64 KB 2-way L1 caches with
 * 32 B blocks and 1-cycle latency, a unified 2 MB 4-way write-back L2 with
 * 11-cycle latency, 100-cycle main memory, and a 128-entry fully
 * associative TLB with a 30-cycle miss penalty.
 */

#ifndef THERMCTL_CACHE_HIERARCHY_HH
#define THERMCTL_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/tlb.hh"

namespace thermctl
{

/** Configuration for the full hierarchy. */
struct MemoryHierarchyConfig
{
    CacheConfig l1i{.name = "L1I", .size_bytes = 64 * 1024, .assoc = 2,
                    .block_bytes = 32, .hit_latency = 1};
    CacheConfig l1d{.name = "L1D", .size_bytes = 64 * 1024, .assoc = 2,
                    .block_bytes = 32, .hit_latency = 1};
    CacheConfig l2{.name = "L2", .size_bytes = 2 * 1024 * 1024, .assoc = 4,
                   .block_bytes = 32, .hit_latency = 11};
    TlbConfig tlb{};
    std::uint32_t memory_latency = 100;
};

/** Per-cycle access counts exposed to the power model. */
struct HierarchyActivity
{
    std::uint32_t l1i_accesses = 0;
    std::uint32_t l1d_accesses = 0;
    std::uint32_t l2_accesses = 0;
    std::uint32_t tlb_accesses = 0;

    void
    reset()
    {
        *this = HierarchyActivity{};
    }
};

/**
 * Behavioural + timing model of the memory system. Latencies are returned
 * to the core, which models them as completion delays (ideal MSHRs: any
 * number of misses may be outstanding, as in SimpleScalar's default RUU
 * model).
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryHierarchyConfig &cfg = {});

    /**
     * Data access (load or store) at addr.
     * @return total latency in cycles, including TLB miss penalty.
     */
    std::uint32_t dataAccess(Addr addr, bool is_write);

    /**
     * Instruction fetch of the block containing pc.
     * @return latency in cycles (1 on L1I hit).
     */
    std::uint32_t instFetch(Addr pc);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Tlb &tlb() const { return tlb_; }

    /** Activity counters accumulated since the last resetActivity(). */
    const HierarchyActivity &activity() const { return activity_; }

    /** Clear the per-cycle activity counters (called by the core). */
    void resetActivity() { activity_.reset(); }

    const MemoryHierarchyConfig &config() const { return cfg_; }

  private:
    MemoryHierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb tlb_;
    HierarchyActivity activity_;
};

} // namespace thermctl

#endif // THERMCTL_CACHE_HIERARCHY_HH
