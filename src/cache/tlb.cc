#include "cache/tlb.hh"

#include <bit>

#include "common/logging.hh"

namespace thermctl
{

Tlb::Tlb(const TlbConfig &cfg) : cfg_(cfg)
{
    if (cfg.entries == 0)
        fatal("TLB needs at least one entry");
    if (cfg.page_bytes == 0 || !std::has_single_bit(cfg.page_bytes))
        fatal("TLB page size must be a power of two");
    page_shift_ = static_cast<unsigned>(std::countr_zero(cfg.page_bytes));
}

std::uint32_t
Tlb::access(Addr addr)
{
    ++stats_.accesses;
    ++tick_;
    const Addr page = addr >> page_shift_;
    auto it = entries_.find(page);
    if (it != entries_.end()) {
        it->second = tick_;
        return 0;
    }

    ++stats_.misses;
    if (entries_.size() >= cfg_.entries) {
        // Evict the least recently used page.
        auto victim = entries_.begin();
        for (auto jt = entries_.begin(); jt != entries_.end(); ++jt)
            if (jt->second < victim->second)
                victim = jt;
        entries_.erase(victim);
    }
    entries_.emplace(page, tick_);
    return cfg_.miss_penalty;
}

void
Tlb::flush()
{
    entries_.clear();
}

} // namespace thermctl
