/**
 * @file
 * Cycle-level out-of-order core in the style of SimpleScalar's
 * sim-outorder RUU model, extended per the paper with three additional
 * rename/enqueue stages between decode and issue.
 *
 * The core is trace-driven: an InstructionStream supplies the committed
 * path, and after a branch misprediction the core fetches synthesized
 * wrong-path micro-ops (which occupy resources and dissipate power) until
 * the branch resolves, then squashes and refetches — reproducing the
 * performance and power behaviour of mis-speculated execution.
 *
 * Dynamic thermal management hooks in through setFetchEnabled(): the DTM
 * layer gates fetch cycle by cycle to realize the paper's fetch-toggling
 * actuator at any duty level.
 */

#ifndef THERMCTL_CPU_CORE_HH
#define THERMCTL_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "branch/hybrid.hh"
#include "cache/hierarchy.hh"
#include "cpu/activity.hh"
#include "cpu/config.hh"
#include "isa/micro_op.hh"
#include "workload/instruction_stream.hh"

namespace thermctl
{

/** Aggregate behavioural statistics for a core run. */
struct CpuStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t fetch_gated_cycles = 0; ///< cycles DTM blocked fetch
    std::uint64_t squashes = 0;
    std::uint64_t wrong_path_ops = 0;

    /** @return committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed)
                          / static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The simulated out-of-order core. */
class Core
{
  public:
    /**
     * @param cfg static configuration (paper Table 2 defaults)
     * @param stream committed-path instruction source (not owned)
     * @param memory the memory hierarchy (not owned)
     */
    Core(const CpuConfig &cfg, InstructionStream &stream,
         MemoryHierarchy &memory);

    /**
     * Advance the core by one clock cycle. Activity counters for the
     * cycle are available through activity() afterwards.
     */
    void tick();

    /**
     * Gate instruction fetch for the upcoming cycles (the DTM
     * fetch-toggling actuator). Disabling fetch idles the front end only;
     * ops already in flight continue to execute and drain, exactly as in
     * the paper's toggling mechanism.
     */
    void setFetchEnabled(bool enabled) { fetch_enabled_ = enabled; }

    bool fetchEnabled() const { return fetch_enabled_; }

    /**
     * Fetch-throttling actuator (paper Section 2.1): fetch happens every
     * cycle, but at most `limit` instructions are fetched (0 = no limit).
     * Unlike toggling, the I-cache and branch predictor are still
     * accessed every cycle — the reason the paper finds throttling
     * "often cannot prevent certain hot spots".
     */
    void setFetchWidthLimit(std::uint32_t limit)
    {
        fetch_width_limit_ = limit;
    }

    /**
     * Speculation-control actuator (paper Section 2.1): while more than
     * `limit` unresolved conditional branches are in flight, no further
     * instructions are fetched (0 = disabled). Ineffective for programs
     * (or phases) with excellent branch prediction, as the paper notes.
     */
    void setSpeculationLimit(std::uint32_t limit)
    {
        speculation_limit_ = limit;
    }

    /** @return in-flight conditional branches not yet resolved. */
    std::uint32_t unresolvedBranches() const
    {
        return unresolved_branches_;
    }

    /** Activity counters of the most recent cycle. */
    const CpuActivity &activity() const { return activity_; }

    const CpuStats &stats() const { return stats_; }
    const HybridPredictor &predictor() const { return bpred_; }
    const CpuConfig &config() const { return cfg_; }

    /** In-flight window occupancy (for tests and probes). */
    std::size_t windowOccupancy() const { return window_.size(); }
    std::size_t lsqOccupancy() const { return lsq_occupancy_; }

    /** Reset the behavioural statistics (start of a measurement phase). */
    void resetStats() { stats_ = CpuStats{}; }

  private:
    /** Lifecycle of an in-flight op. */
    enum class OpState : std::uint8_t
    {
        Waiting,   ///< in window, operands outstanding
        Ready,     ///< operands available, not yet issued
        Issued,    ///< executing on a functional unit
        Complete,  ///< result available / store resolved
    };

    /** An op in the frontend pipe or the window. */
    struct InflightOp
    {
        MicroOp op;
        BranchPrediction pred;
        std::uint64_t seq = 0;
        OpState state = OpState::Waiting;
        bool wrong_path = false;
        bool mispredicted = false;   ///< effective prediction was wrong
        bool in_lsq = false;
        std::uint8_t outstanding = 0; ///< unresolved operands
        std::uint64_t forward_store = 0; ///< seq of forwarding store (or 0)
        bool has_forward_store = false;
        std::vector<std::uint64_t> dependents; ///< seqs woken by this op
    };

    /** Entry in the decode/rename pipe. */
    struct FrontendEntry
    {
        MicroOp op;
        BranchPrediction pred;
        bool wrong_path = false;
        bool mispredicted = false;
        std::uint64_t ready_cycle = 0; ///< cycle it may dispatch
    };

    // Pipeline stages, called youngest-first each tick so same-cycle
    // structural interactions resolve like a real pipeline.
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    void squashYoungerThan(std::uint64_t seq);
    void scheduleCompletion(std::uint64_t seq, std::uint64_t at_cycle);
    InflightOp *findOp(std::uint64_t seq);
    void wakeDependents(InflightOp &producer);
    void markReady(InflightOp &op);
    std::uint32_t executionLatency(OpClass cls) const;

    CpuConfig cfg_;
    InstructionStream &stream_;
    MemoryHierarchy &memory_;
    HybridPredictor bpred_;

    // Fetch state.
    bool fetch_enabled_ = true;
    std::uint32_t fetch_width_limit_ = 0;
    std::uint32_t speculation_limit_ = 0;
    std::uint32_t unresolved_branches_ = 0;
    Addr fetch_pc_ = 0;
    bool fetch_pc_valid_ = false;
    std::uint64_t fetch_stall_until_ = 0;
    bool on_wrong_path_ = false;
    bool stream_primed_ = false;
    MicroOp pending_correct_op_{};
    bool has_pending_correct_op_ = false;

    // Frontend pipe (decode + rename stages).
    std::deque<FrontendEntry> frontend_;

    // Window (RUU) as a seq-indexed deque.
    std::deque<InflightOp> window_;
    /** Rename map: arch reg -> seq of youngest in-flight producer. */
    std::array<std::uint64_t, kNumArchRegs> last_writer_{};
    std::uint64_t next_seq_ = 1;
    std::size_t lsq_occupancy_ = 0;

    // Ready ops, oldest first (lazily invalidated after squashes).
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        ready_;

    // Completion calendar: cycle -> seqs completing that cycle.
    static constexpr std::size_t kCalendarSlots = 256;
    std::array<std::vector<std::uint64_t>, kCalendarSlots> calendar_;

    // Unpipelined units busy-until cycles.
    std::uint64_t int_div_busy_until_ = 0;
    std::uint64_t fp_div_busy_until_ = 0;

    std::uint64_t now_ = 0;
    CpuActivity activity_;
    CpuStats stats_;
};

} // namespace thermctl

#endif // THERMCTL_CPU_CORE_HH
