/**
 * @file
 * Per-cycle activity counters exported by the core to the power model —
 * the thermctl equivalent of Wattch's per-unit access counts.
 */

#ifndef THERMCTL_CPU_ACTIVITY_HH
#define THERMCTL_CPU_ACTIVITY_HH

#include <cstdint>

namespace thermctl
{

/**
 * Events observed during one core cycle. The power model converts these
 * to per-structure energies using its capacitance estimates and the
 * configured conditional-clocking style.
 */
struct CpuActivity
{
    // Front end.
    std::uint32_t icache_accesses = 0; ///< fetch-width-granularity accesses
    std::uint32_t bpred_lookups = 0;   ///< predictions made this cycle
    std::uint32_t bpred_updates = 0;   ///< training events this cycle
    std::uint32_t decoded_ops = 0;     ///< ops flowing through decode/rename

    // Window / scheduler.
    std::uint32_t dispatched_ops = 0;  ///< ops written into the RUU
    std::uint32_t issued_int = 0;      ///< ops issued to integer units
    std::uint32_t issued_fp = 0;       ///< ops issued to FP units
    std::uint32_t issued_mem = 0;      ///< memory ports used
    std::uint32_t wakeup_broadcasts = 0; ///< completing ops tag-matching

    // Register file.
    std::uint32_t regfile_reads = 0;
    std::uint32_t regfile_writes = 0;

    // LSQ.
    std::uint32_t lsq_accesses = 0;    ///< inserts + associative searches

    // Memory system (mirrored from MemoryHierarchy for convenience).
    std::uint32_t l1d_accesses = 0;
    std::uint32_t l1i_accesses = 0;
    std::uint32_t l2_accesses = 0;
    std::uint32_t tlb_accesses = 0;

    // Execution.
    std::uint32_t int_alu_ops = 0;
    std::uint32_t int_mult_ops = 0;
    std::uint32_t fp_alu_ops = 0;
    std::uint32_t fp_mult_ops = 0;

    // Retirement.
    std::uint32_t committed_ops = 0;

    /** Reset all counters for the next cycle. */
    void
    reset()
    {
        *this = CpuActivity{};
    }
};

} // namespace thermctl

#endif // THERMCTL_CPU_ACTIVITY_HH
