/**
 * @file
 * Configuration of the simulated out-of-order core.
 *
 * Defaults follow the paper's Table 2: an approximation of the Alpha
 * 21264 with an 80-entry instruction window (RUU), 40-entry load/store
 * queue, 6-wide issue (4 integer + 2 FP), 4 IntALUs, 1 IntMult/Div,
 * 2 FPALUs, 1 FPMult/Div, and 2 memory ports — plus the paper's pipeline
 * extension of three additional rename/enqueue stages between decode and
 * issue, which lengthen branch-resolution latency.
 */

#ifndef THERMCTL_CPU_CONFIG_HH
#define THERMCTL_CPU_CONFIG_HH

#include <cstdint>

#include "branch/hybrid.hh"

namespace thermctl
{

/** Static configuration of the core. */
struct CpuConfig
{
    // Widths.
    std::uint32_t fetch_width = 4;
    std::uint32_t dispatch_width = 4;
    std::uint32_t commit_width = 4;
    std::uint32_t int_issue_width = 4;
    std::uint32_t fp_issue_width = 2;

    // Window sizes (paper: 80-RUU, 40-LSQ).
    std::uint32_t window_size = 80;
    std::uint32_t lsq_size = 40;

    /** Capacity of the fetch/decode/rename pipe feeding dispatch. */
    std::uint32_t frontend_capacity = 32;

    /**
     * Stages between fetch and dispatch: decode (1) + the paper's three
     * extra rename/enqueue stages + enqueue into the window (1).
     */
    std::uint32_t frontend_depth = 5;

    // Functional units.
    std::uint32_t num_int_alu = 4;
    std::uint32_t num_int_mult = 1;  ///< shared mult/div unit
    std::uint32_t num_fp_alu = 2;
    std::uint32_t num_fp_mult = 1;   ///< shared mult/div unit
    std::uint32_t num_mem_ports = 2;

    // Latencies (cycles), SimpleScalar defaults.
    std::uint32_t lat_int_alu = 1;
    std::uint32_t lat_int_mult = 3;
    std::uint32_t lat_int_div = 20;  ///< unpipelined
    std::uint32_t lat_fp_alu = 2;
    std::uint32_t lat_fp_mult = 4;
    std::uint32_t lat_fp_div = 12;   ///< unpipelined

    /** Branch predictor configuration (paper Table 2). */
    HybridPredictorConfig bpred{};
};

} // namespace thermctl

#endif // THERMCTL_CPU_CONFIG_HH
