#include "cpu/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermctl
{

Core::Core(const CpuConfig &cfg, InstructionStream &stream,
           MemoryHierarchy &memory)
    : cfg_(cfg), stream_(stream), memory_(memory), bpred_(cfg.bpred)
{
    if (cfg.fetch_width == 0 || cfg.dispatch_width == 0
        || cfg.commit_width == 0)
        fatal("core widths must be positive");
    if (cfg.window_size == 0 || cfg.lsq_size == 0)
        fatal("window and LSQ sizes must be positive");
    const std::uint32_t max_latency =
        std::max({cfg.lat_int_div, cfg.lat_fp_div,
                  memory_.config().memory_latency
                      + memory_.config().tlb.miss_penalty});
    if (max_latency + 2 >= kCalendarSlots)
        fatal("completion calendar too small for configured latencies");
}

void
Core::tick()
{
    ++now_;
    activity_.reset();
    memory_.resetActivity();

    commitStage();
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();

    const auto &mem = memory_.activity();
    activity_.l1d_accesses = mem.l1d_accesses;
    activity_.l1i_accesses = mem.l1i_accesses;
    activity_.l2_accesses = mem.l2_accesses;
    activity_.tlb_accesses = mem.tlb_accesses;

    ++stats_.cycles;
}

// --------------------------------------------------------------------- fetch

void
Core::fetchStage()
{
    if (!fetch_enabled_) {
        ++stats_.fetch_gated_cycles;
        return;
    }
    if (speculation_limit_ != 0
        && unresolved_branches_ >= speculation_limit_) {
        return; // speculation control: wait for branches to resolve
    }
    if (now_ < fetch_stall_until_)
        return;
    if (frontend_.size() + cfg_.fetch_width > cfg_.frontend_capacity)
        return; // dispatch backpressure

    if (!stream_primed_) {
        pending_correct_op_ = stream_.next();
        has_pending_correct_op_ = true;
        fetch_pc_ = pending_correct_op_.pc;
        fetch_pc_valid_ = true;
        stream_primed_ = true;
    }

    // One I-cache access of fetch-width granularity per cycle (the paper's
    // improved fetch model); a miss stalls fetch for the full latency.
    ++activity_.icache_accesses;
    const std::uint32_t lat = memory_.instFetch(fetch_pc_);
    if (lat > 1) {
        fetch_stall_until_ = now_ + lat;
        return;
    }

    const Addr block_mask = memory_.config().l1i.block_bytes - 1;
    const Addr block_end = (fetch_pc_ | block_mask) + 1;

    std::uint32_t width = cfg_.fetch_width;
    if (fetch_width_limit_ != 0 && fetch_width_limit_ < width)
        width = fetch_width_limit_; // throttling

    for (std::uint32_t n = 0; n < width && fetch_pc_ < block_end;
         ++n) {
        FrontendEntry entry;
        entry.ready_cycle = now_ + cfg_.frontend_depth;
        entry.wrong_path = on_wrong_path_;

        if (on_wrong_path_) {
            entry.op = stream_.synthesizeAt(fetch_pc_);
            fetch_pc_ += 4;
            ++stats_.wrong_path_ops;
            frontend_.push_back(std::move(entry));
            ++stats_.fetched;
            continue;
        }

        if (pending_correct_op_.pc != fetch_pc_)
            panic("fetch desync: expected pc 0x", std::hex,
                  pending_correct_op_.pc, " got 0x", fetch_pc_);

        entry.op = pending_correct_op_;
        pending_correct_op_ = stream_.next();

        if (entry.op.is_branch) {
            entry.pred = bpred_.predict(entry.op);
            ++activity_.bpred_lookups;

            // A taken prediction is only actionable with a target (from
            // the BTB or the RAS); otherwise fetch falls through — the
            // classic BTB-miss-means-not-taken front end.
            const bool eff_taken = entry.pred.taken
                && entry.pred.target != 0;
            const Addr eff_next = eff_taken ? entry.pred.target
                                            : entry.op.nextPc();
            entry.mispredicted = eff_next != entry.op.actualNextPc();

            frontend_.push_back(std::move(entry));
            ++stats_.fetched;

            if (frontend_.back().mispredicted) {
                on_wrong_path_ = true;
                fetch_pc_ = eff_next;
                break; // redirect consumes the rest of the fetch cycle
            }
            fetch_pc_ = eff_next;
            if (eff_taken)
                break; // taken branches end the fetch group
            continue;
        }

        fetch_pc_ = entry.op.nextPc();
        frontend_.push_back(std::move(entry));
        ++stats_.fetched;
    }
}

// ------------------------------------------------------------------ dispatch

void
Core::dispatchStage()
{
    for (std::uint32_t n = 0; n < cfg_.dispatch_width; ++n) {
        if (frontend_.empty() || frontend_.front().ready_cycle > now_)
            break;
        if (window_.size() >= cfg_.window_size)
            break;
        const bool mem_op = isMemOp(frontend_.front().op.op);
        if (mem_op && lsq_occupancy_ >= cfg_.lsq_size)
            break;

        FrontendEntry fe = std::move(frontend_.front());
        frontend_.pop_front();

        InflightOp inflight;
        inflight.op = fe.op;
        inflight.pred = fe.pred;
        inflight.wrong_path = fe.wrong_path;
        inflight.mispredicted = fe.mispredicted;
        inflight.seq = next_seq_++;

        // Rename: chain each source to its youngest in-flight producer.
        for (std::uint8_t s = 0; s < inflight.op.num_srcs; ++s) {
            const RegId reg = inflight.op.srcs[s];
            if (reg >= kNumArchRegs)
                continue;
            const std::uint64_t producer_seq = last_writer_[reg];
            if (producer_seq == 0)
                continue;
            InflightOp *producer = findOp(producer_seq);
            if (!producer || producer->state == OpState::Complete)
                continue;
            producer->dependents.push_back(inflight.seq);
            ++inflight.outstanding;
        }

        if (mem_op) {
            inflight.in_lsq = true;
            ++lsq_occupancy_;
            ++activity_.lsq_accesses; // LSQ insert

            if (inflight.op.op == OpClass::Load) {
                // Oracle disambiguation: find the youngest older store to
                // the same 8-byte word still in flight.
                const Addr word = inflight.op.mem_addr & ~Addr{7};
                for (auto it = window_.rbegin(); it != window_.rend();
                     ++it) {
                    if (it->op.op != OpClass::Store || !it->in_lsq)
                        continue;
                    if ((it->op.mem_addr & ~Addr{7}) != word)
                        continue;
                    inflight.has_forward_store = true;
                    if (it->state != OpState::Complete) {
                        it->dependents.push_back(inflight.seq);
                        ++inflight.outstanding;
                    }
                    break;
                }
            }
        }

        if (inflight.op.hasDest())
            last_writer_[inflight.op.dest] = inflight.seq;
        if (inflight.op.is_conditional)
            ++unresolved_branches_;

        ++activity_.dispatched_ops;
        ++activity_.decoded_ops;

        window_.push_back(std::move(inflight));
        if (window_.back().outstanding == 0)
            markReady(window_.back());
    }
}

// --------------------------------------------------------------------- issue

std::uint32_t
Core::executionLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return cfg_.lat_int_alu;
      case OpClass::IntMult: return cfg_.lat_int_mult;
      case OpClass::IntDiv: return cfg_.lat_int_div;
      case OpClass::FpAlu: return cfg_.lat_fp_alu;
      case OpClass::FpMult: return cfg_.lat_fp_mult;
      case OpClass::FpDiv: return cfg_.lat_fp_div;
      default: return 1;
    }
}

void
Core::issueStage()
{
    std::uint32_t int_slots = cfg_.int_issue_width;
    std::uint32_t fp_slots = cfg_.fp_issue_width;
    std::uint32_t mem_ports = cfg_.num_mem_ports;
    std::uint32_t int_alu_units = cfg_.num_int_alu;
    std::uint32_t int_mult_units = cfg_.num_int_mult;
    std::uint32_t fp_alu_units = cfg_.num_fp_alu;
    std::uint32_t fp_mult_units = cfg_.num_fp_mult;

    std::vector<std::uint64_t> stash;

    while (!ready_.empty() && (int_slots > 0 || fp_slots > 0)) {
        const std::uint64_t seq = ready_.top();
        ready_.pop();
        InflightOp *op = findOp(seq);
        if (!op || op->state != OpState::Ready)
            continue; // squashed or stale entry

        const OpClass cls = op->op.op;
        bool can_issue = false;
        std::uint32_t latency = executionLatency(cls);

        switch (cls) {
          case OpClass::Load:
          case OpClass::Store:
            if (int_slots > 0 && mem_ports > 0) {
                can_issue = true;
                --int_slots;
                --mem_ports;
                ++activity_.issued_mem;
                ++activity_.lsq_accesses; // associative search
                if (cls == OpClass::Load) {
                    if (op->has_forward_store) {
                        latency = 1; // store-to-load forwarding
                    } else {
                        latency = memory_.dataAccess(op->op.mem_addr,
                                                     false);
                    }
                } else {
                    latency = 1; // store resolves; writes at commit
                }
            }
            break;
          case OpClass::IntAlu:
          case OpClass::Branch:
          case OpClass::Nop:
            if (int_slots > 0 && int_alu_units > 0) {
                can_issue = true;
                --int_slots;
                --int_alu_units;
                ++activity_.int_alu_ops;
            }
            break;
          case OpClass::IntMult:
            if (int_slots > 0 && int_mult_units > 0
                && now_ >= int_div_busy_until_) {
                can_issue = true;
                --int_slots;
                --int_mult_units;
                ++activity_.int_mult_ops;
            }
            break;
          case OpClass::IntDiv:
            if (int_slots > 0 && int_mult_units > 0
                && now_ >= int_div_busy_until_) {
                can_issue = true;
                --int_slots;
                --int_mult_units;
                ++activity_.int_mult_ops;
                int_div_busy_until_ = now_ + latency; // unpipelined
            }
            break;
          case OpClass::FpAlu:
            if (fp_slots > 0 && fp_alu_units > 0) {
                can_issue = true;
                --fp_slots;
                --fp_alu_units;
                ++activity_.fp_alu_ops;
            }
            break;
          case OpClass::FpMult:
            if (fp_slots > 0 && fp_mult_units > 0
                && now_ >= fp_div_busy_until_) {
                can_issue = true;
                --fp_slots;
                --fp_mult_units;
                ++activity_.fp_mult_ops;
            }
            break;
          case OpClass::FpDiv:
            if (fp_slots > 0 && fp_mult_units > 0
                && now_ >= fp_div_busy_until_) {
                can_issue = true;
                --fp_slots;
                --fp_mult_units;
                ++activity_.fp_mult_ops;
                fp_div_busy_until_ = now_ + latency; // unpipelined
            }
            break;
          default:
            break;
        }

        if (!can_issue) {
            stash.push_back(seq);
            continue;
        }

        op->state = OpState::Issued;
        activity_.regfile_reads += op->op.num_srcs;
        if (isFpOp(cls))
            ++activity_.issued_fp;
        else if (!isMemOp(cls))
            ++activity_.issued_int;
        scheduleCompletion(seq, now_ + latency);
    }

    for (std::uint64_t seq : stash)
        ready_.push(seq);
}

// ------------------------------------------------------------------ complete

void
Core::scheduleCompletion(std::uint64_t seq, std::uint64_t at_cycle)
{
    if (at_cycle <= now_)
        at_cycle = now_ + 1;
    if (at_cycle - now_ >= kCalendarSlots)
        panic("completion latency exceeds calendar span");
    calendar_[at_cycle % kCalendarSlots].push_back(seq);
}

void
Core::completeStage()
{
    auto &slot = calendar_[now_ % kCalendarSlots];
    if (slot.empty())
        return;
    std::vector<std::uint64_t> completing;
    completing.swap(slot);

    for (std::uint64_t seq : completing) {
        InflightOp *op = findOp(seq);
        if (!op || op->state != OpState::Issued)
            continue; // squashed since issue

        op->state = OpState::Complete;
        ++activity_.wakeup_broadcasts;
        if (op->op.hasDest())
            ++activity_.regfile_writes;
        if (op->op.is_conditional && unresolved_branches_ > 0)
            --unresolved_branches_;
        wakeDependents(*op);

        if (op->op.is_branch && op->mispredicted && !op->wrong_path) {
            // Branch resolution: repair predictor state, squash younger
            // ops, and redirect fetch down the correct path.
            ++stats_.squashes;
            bpred_.repairAfterMispredict(op->op, op->pred);
            const Addr resume_pc = op->op.actualNextPc();
            squashYoungerThan(seq);
            on_wrong_path_ = false;
            fetch_pc_ = resume_pc;
            fetch_pc_valid_ = true;
            if (fetch_stall_until_ < now_ + 1)
                fetch_stall_until_ = now_ + 1;
        }
    }
}

void
Core::wakeDependents(InflightOp &producer)
{
    for (std::uint64_t dep_seq : producer.dependents) {
        InflightOp *dep = findOp(dep_seq);
        if (!dep || dep->state != OpState::Waiting)
            continue;
        if (dep->outstanding == 0)
            panic("dependent with no outstanding operands");
        if (--dep->outstanding == 0)
            markReady(*dep);
    }
    producer.dependents.clear();
}

void
Core::markReady(InflightOp &op)
{
    op.state = OpState::Ready;
    ready_.push(op.seq);
}

// -------------------------------------------------------------------- commit

void
Core::commitStage()
{
    for (std::uint32_t n = 0; n < cfg_.commit_width; ++n) {
        if (window_.empty())
            break;
        InflightOp &head = window_.front();
        if (head.state != OpState::Complete)
            break;

        if (head.wrong_path)
            panic("wrong-path op reached commit");

        if (head.op.op == OpClass::Store) {
            // Stores update the D-cache at retirement (write buffer
            // hides the latency from the commit pipeline).
            memory_.dataAccess(head.op.mem_addr, true);
            ++activity_.lsq_accesses;
        }
        if (head.op.is_branch) {
            bpred_.resolve(head.op, head.pred);
            ++activity_.bpred_updates;
        }
        if (head.op.hasDest()
            && last_writer_[head.op.dest] == head.seq) {
            last_writer_[head.op.dest] = 0;
        }
        if (head.in_lsq)
            --lsq_occupancy_;

        ++stats_.committed;
        ++activity_.committed_ops;
        window_.pop_front();
    }
}

// -------------------------------------------------------------------- squash

void
Core::squashYoungerThan(std::uint64_t seq)
{
    while (!window_.empty() && window_.back().seq > seq) {
        if (window_.back().in_lsq)
            --lsq_occupancy_;
        window_.pop_back();
    }
    frontend_.clear();

    // Rebuild the rename map and the unresolved-branch count from the
    // surviving window contents.
    last_writer_.fill(0);
    unresolved_branches_ = 0;
    for (const auto &op : window_) {
        if (op.op.hasDest())
            last_writer_[op.op.dest] = op.seq;
        if (op.op.is_conditional && op.state != OpState::Complete)
            ++unresolved_branches_;
    }
}

Core::InflightOp *
Core::findOp(std::uint64_t seq)
{
    // Window seqs are strictly increasing but may have gaps after
    // squashes (seqs are never reused), so locate by binary search.
    auto it = std::lower_bound(
        window_.begin(), window_.end(), seq,
        [](const InflightOp &op, std::uint64_t s) { return op.seq < s; });
    if (it == window_.end() || it->seq != seq)
        return nullptr;
    return &*it;
}

} // namespace thermctl
