#include "branch/ras.hh"

#include "common/logging.hh"

namespace thermctl
{

ReturnAddressStack::ReturnAddressStack(std::size_t entries)
    : stack_(entries, 0)
{
    if (entries == 0)
        fatal("ReturnAddressStack needs at least one entry");
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    stack_[tos_ % stack_.size()] = ret_addr;
    ++tos_;
}

Addr
ReturnAddressStack::pop()
{
    if (tos_ == 0)
        return 0;
    --tos_;
    return stack_[tos_ % stack_.size()];
}

Addr
ReturnAddressStack::top() const
{
    if (tos_ == 0)
        return 0;
    return stack_[(tos_ - 1) % stack_.size()];
}

void
ReturnAddressStack::restore(std::uint32_t tos_index, Addr top_value)
{
    tos_ = tos_index;
    if (tos_ > 0)
        stack_[(tos_ - 1) % stack_.size()] = top_value;
}

} // namespace thermctl
