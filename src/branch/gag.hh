/**
 * @file
 * GAg two-level adaptive predictor: one global history register indexing a
 * shared pattern-history table of 2-bit counters (paper Table 2:
 * 4 K entries, 12 history bits).
 */

#ifndef THERMCTL_BRANCH_GAG_HH
#define THERMCTL_BRANCH_GAG_HH

#include <vector>

#include "branch/predictor.hh"

namespace thermctl
{

/** Global-history two-level predictor (GAg). */
class GAgPredictor
{
  public:
    /**
     * @param entries pattern-history table size (power of two)
     * @param history_bits global-history length; the table is indexed by
     *        the low history bits (xor-folded with the PC would make this
     *        gshare; GAg uses history alone, as the paper specifies).
     */
    explicit GAgPredictor(std::size_t entries = 4096,
                          unsigned history_bits = 12);

    /** @return predicted direction under the given history value. */
    bool predictWith(std::uint32_t history) const;

    /** Train the counter selected by the given history value. */
    void updateWith(std::uint32_t history, bool taken);

    unsigned historyBits() const { return history_bits_; }
    std::uint32_t historyMask() const { return history_mask_; }

  private:
    std::vector<Counter2> table_;
    std::size_t index_mask_;
    unsigned history_bits_;
    std::uint32_t history_mask_;
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_GAG_HH
