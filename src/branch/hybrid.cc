#include "branch/hybrid.hh"

namespace thermctl
{

HybridPredictor::HybridPredictor(const HybridPredictorConfig &cfg)
    : bimod_(cfg.bimod_entries),
      gag_(cfg.gag_entries, cfg.gag_history_bits),
      chooser_(cfg.chooser_entries),
      btb_(cfg.btb_entries, cfg.btb_ways),
      ras_(cfg.ras_entries)
{
}

BranchPrediction
HybridPredictor::predict(const MicroOp &op)
{
    BranchPrediction pred;
    pred.history_checkpoint = history_;
    pred.ras_checkpoint_tos = ras_.tosIndex();
    pred.ras_checkpoint_addr = ras_.top();
    ++stats_.lookups;

    if (op.is_return) {
        pred.taken = true;
        pred.used_ras = true;
        pred.target = ras_.pop();
        if (pred.target == 0) {
            // Empty RAS: fall back to the BTB.
            if (auto t = btb_.lookup(op.pc)) {
                pred.target = *t;
                pred.btb_hit = true;
            }
        }
        return pred;
    }

    if (op.is_call) {
        pred.taken = true;
        ras_.push(op.nextPc());
        if (auto t = btb_.lookup(op.pc)) {
            pred.target = *t;
            pred.btb_hit = true;
        }
        return pred;
    }

    if (!op.is_conditional) {
        // Unconditional direct jump.
        pred.taken = true;
        if (auto t = btb_.lookup(op.pc)) {
            pred.target = *t;
            pred.btb_hit = true;
        }
        return pred;
    }

    ++stats_.cond_lookups;
    const bool bimod_taken = bimod_.predict(op.pc);
    const bool gag_taken = gag_.predictWith(history_);
    // Chooser counter >= 2 selects the global (GAg) component.
    pred.used_global = chooser_.predict(op.pc);
    pred.taken = pred.used_global ? gag_taken : bimod_taken;

    if (pred.taken) {
        if (auto t = btb_.lookup(op.pc)) {
            pred.target = *t;
            pred.btb_hit = true;
        }
    }

    // Speculative history update with the predicted direction.
    history_ = ((history_ << 1) | (pred.taken ? 1u : 0u))
        & gag_.historyMask();
    return pred;
}

void
HybridPredictor::resolve(const MicroOp &op, const BranchPrediction &pred)
{
    if (op.is_conditional) {
        const std::uint32_t hist = pred.history_checkpoint;
        const bool bimod_taken = bimod_.predict(op.pc);
        const bool gag_taken = gag_.predictWith(hist);
        const bool bimod_right = bimod_taken == op.taken;
        const bool gag_right = gag_taken == op.taken;
        // Chooser trains only when the components disagree.
        if (bimod_right != gag_right)
            chooser_.update(op.pc, gag_right);
        bimod_.update(op.pc, op.taken);
        gag_.updateWith(hist, op.taken);

        if (pred.taken == op.taken)
            ++stats_.dir_correct;
        else
            ++stats_.dir_wrong;
    }

    if (op.taken) {
        if (!pred.btb_hit || pred.target != op.target) {
            if (!op.is_return)
                btb_.update(op.pc, op.target);
            if (pred.taken && pred.target != op.target)
                ++stats_.target_wrong;
        }
    }
}

void
HybridPredictor::repairAfterMispredict(const MicroOp &op,
                                       const BranchPrediction &pred)
{
    if (op.is_conditional) {
        history_ = ((pred.history_checkpoint << 1)
                    | (op.taken ? 1u : 0u))
            & gag_.historyMask();
    } else {
        history_ = pred.history_checkpoint;
    }
    ras_.restore(pred.ras_checkpoint_tos, pred.ras_checkpoint_addr);
    // Re-apply the branch's own RAS effect now that it is known correct.
    if (op.is_call)
        ras_.push(op.nextPc());
    else if (op.is_return)
        ras_.pop();
}

} // namespace thermctl
