/**
 * @file
 * Common types for direction predictors.
 *
 * The simulated front end uses the paper's Table 2 predictor: a hybrid of
 * a 4 K-entry bimodal predictor and a 4 K-entry GAg with 12 bits of global
 * history, selected by a 4 K-entry bimodal-style chooser, plus a 1 K-entry
 * 2-way BTB and a 32-entry return-address stack. Global history is updated
 * speculatively at prediction time and repaired after a misprediction,
 * following the paper's reference to speculative update with repair.
 */

#ifndef THERMCTL_BRANCH_PREDICTOR_HH
#define THERMCTL_BRANCH_PREDICTOR_HH

#include <cstdint>

#include "common/types.hh"

namespace thermctl
{

/** Saturating 2-bit counter helper. */
class Counter2
{
  public:
    /** @param init initial value in [0, 3]; >= 2 predicts taken. */
    explicit Counter2(std::uint8_t init = 1) : value_(init) {}

    bool taken() const { return value_ >= 2; }

    void
    train(bool taken)
    {
        if (taken) {
            if (value_ < 3)
                ++value_;
        } else {
            if (value_ > 0)
                --value_;
        }
    }

    std::uint8_t raw() const { return value_; }

  private:
    std::uint8_t value_;
};

/**
 * Everything fetch needs to act on a prediction plus the state required
 * to repair the predictor after a misprediction.
 */
struct BranchPrediction
{
    bool taken = false;        ///< predicted direction
    Addr target = 0;           ///< predicted target (valid when taken)
    bool btb_hit = false;      ///< direct target came from the BTB
    bool used_ras = false;     ///< target popped from the RAS
    bool used_global = false;  ///< chooser selected the GAg component

    // --- repair state captured at prediction time ---
    std::uint32_t history_checkpoint = 0; ///< global history before update
    std::uint32_t ras_checkpoint_tos = 0; ///< RAS top-of-stack index
    Addr ras_checkpoint_addr = 0;         ///< value at RAS top-of-stack
};

/** Aggregate direction/target statistics for a predictor. */
struct BranchPredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t cond_lookups = 0;
    std::uint64_t dir_correct = 0;
    std::uint64_t dir_wrong = 0;
    std::uint64_t target_wrong = 0;

    /** @return conditional-branch direction accuracy in [0, 1]. */
    double
    accuracy() const
    {
        const std::uint64_t n = dir_correct + dir_wrong;
        return n ? static_cast<double>(dir_correct)
                     / static_cast<double>(n)
                 : 0.0;
    }
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_PREDICTOR_HH
