/**
 * @file
 * The paper's front-end predictor: a hybrid of bimodal and GAg components
 * selected by a bimodal-style chooser (SimpleScalar's "comb" predictor),
 * with BTB, return-address stack, and speculative global-history update
 * repaired after mispredictions.
 */

#ifndef THERMCTL_BRANCH_HYBRID_HH
#define THERMCTL_BRANCH_HYBRID_HH

#include <vector>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gag.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "isa/micro_op.hh"

namespace thermctl
{

/** Configuration of the hybrid predictor (paper Table 2 defaults). */
struct HybridPredictorConfig
{
    std::size_t bimod_entries = 4096;
    std::size_t gag_entries = 4096;
    unsigned gag_history_bits = 12;
    std::size_t chooser_entries = 4096;
    std::size_t btb_entries = 1024;
    std::size_t btb_ways = 2;
    std::size_t ras_entries = 32;
};

/** Hybrid (bimodal + GAg + chooser) branch predictor with BTB and RAS. */
class HybridPredictor
{
  public:
    explicit HybridPredictor(const HybridPredictorConfig &cfg = {});

    /**
     * Predict the branch `op` fetched at op.pc. Speculatively updates the
     * global history (conditional branches) and the RAS (calls/returns);
     * the returned prediction carries the checkpoints needed for repair.
     */
    BranchPrediction predict(const MicroOp &op);

    /**
     * Train tables with the resolved outcome. Must be called exactly once
     * per predicted branch, in program order (thermctl resolves at
     * commit). GAg is trained under the history value captured at
     * prediction time.
     */
    void resolve(const MicroOp &op, const BranchPrediction &pred);

    /**
     * Repair speculative state after a misprediction: rebuild the global
     * history from the prediction-time checkpoint plus the actual
     * direction, and restore the RAS top.
     */
    void repairAfterMispredict(const MicroOp &op,
                               const BranchPrediction &pred);

    const BranchPredictorStats &stats() const { return stats_; }

    /** @return current (speculative) global history value. */
    std::uint32_t history() const { return history_; }

    const ReturnAddressStack &ras() const { return ras_; }
    const BranchTargetBuffer &btb() const { return btb_; }

  private:
    BimodalPredictor bimod_;
    GAgPredictor gag_;
    BimodalPredictor chooser_;
    BranchTargetBuffer btb_;
    ReturnAddressStack ras_;

    std::uint32_t history_ = 0;
    BranchPredictorStats stats_;
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_HYBRID_HH
