/**
 * @file
 * Bimodal (per-PC 2-bit counter) direction predictor.
 */

#ifndef THERMCTL_BRANCH_BIMODAL_HH
#define THERMCTL_BRANCH_BIMODAL_HH

#include <vector>

#include "branch/predictor.hh"

namespace thermctl
{

/** Classic Smith bimodal predictor: a table of 2-bit counters keyed by PC. */
class BimodalPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 4096);

    /** @return predicted direction for the branch at pc. */
    bool predict(Addr pc) const;

    /** Train the counter for pc with the resolved direction. */
    void update(Addr pc, bool taken);

    std::size_t entries() const { return table_.size(); }

  private:
    std::size_t index(Addr pc) const;
    std::vector<Counter2> table_;
    std::size_t mask_;
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_BIMODAL_HH
