#include "branch/gag.hh"

#include "common/logging.hh"

namespace thermctl
{

GAgPredictor::GAgPredictor(std::size_t entries, unsigned history_bits)
    : table_(entries, Counter2(1)),
      index_mask_(entries - 1),
      history_bits_(history_bits),
      history_mask_((history_bits >= 32) ? 0xffffffffu
                                         : ((1u << history_bits) - 1))
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("GAgPredictor size must be a power of two, got ", entries);
    if (history_bits == 0 || history_bits > 32)
        fatal("GAgPredictor history bits must be in [1, 32], got ",
              history_bits);
}

bool
GAgPredictor::predictWith(std::uint32_t history) const
{
    return table_[(history & history_mask_) & index_mask_].taken();
}

void
GAgPredictor::updateWith(std::uint32_t history, bool taken)
{
    table_[(history & history_mask_) & index_mask_].train(taken);
}

} // namespace thermctl
