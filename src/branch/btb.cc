#include "branch/btb.hh"

#include "common/logging.hh"

namespace thermctl
{

BranchTargetBuffer::BranchTargetBuffer(std::size_t entries, std::size_t ways)
    : ways_(ways)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("BTB entries must be a power of two, got ", entries);
    if (ways == 0 || entries % ways != 0)
        fatal("BTB ways must divide entries");
    sets_.assign(entries / ways, std::vector<Entry>(ways));
}

std::size_t
BranchTargetBuffer::setIndex(Addr pc) const
{
    return (pc >> 2) & (sets_.size() - 1);
}

Addr
BranchTargetBuffer::tagOf(Addr pc) const
{
    return pc >> 2 >> __builtin_ctzll(sets_.size());
}

std::optional<Addr>
BranchTargetBuffer::lookup(Addr pc)
{
    auto &set = sets_[setIndex(pc)];
    const Addr tag = tagOf(pc);
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.lru = ++tick_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
BranchTargetBuffer::update(Addr pc, Addr target)
{
    auto &set = sets_[setIndex(pc)];
    const Addr tag = tagOf(pc);
    ++tick_;

    Entry *victim = &set[0];
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lru = tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = tick_;
}

} // namespace thermctl
