/**
 * @file
 * Return-address stack (paper Table 2: 32 entries), with the single-entry
 * checkpoint/repair scheme commonly used with speculative front ends: a
 * prediction records the top-of-stack pointer and value, and a squash
 * restores them.
 */

#ifndef THERMCTL_BRANCH_RAS_HH
#define THERMCTL_BRANCH_RAS_HH

#include <vector>

#include "common/types.hh"

namespace thermctl
{

/** Circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t entries = 32);

    /** Push a return address (call). Wraps and overwrites when full. */
    void push(Addr ret_addr);

    /** Pop the predicted return address (returns 0 when empty). */
    Addr pop();

    /** @return the current top value without popping (0 when empty). */
    Addr top() const;

    /** @return top-of-stack index for checkpointing. */
    std::uint32_t tosIndex() const { return tos_; }

    /** Restore the stack top after a squash. */
    void restore(std::uint32_t tos_index, Addr top_value);

    std::size_t capacity() const { return stack_.size(); }

  private:
    std::vector<Addr> stack_;
    std::uint32_t tos_ = 0; ///< index one past the top element
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_RAS_HH
