/**
 * @file
 * Branch target buffer: set-associative tagged cache of branch targets
 * (paper Table 2: 1 K entries, 2-way).
 */

#ifndef THERMCTL_BRANCH_BTB_HH
#define THERMCTL_BRANCH_BTB_HH

#include <optional>
#include <vector>

#include "common/types.hh"

namespace thermctl
{

/** Set-associative branch target buffer with LRU replacement. */
class BranchTargetBuffer
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways associativity (must divide entries)
     */
    explicit BranchTargetBuffer(std::size_t entries = 1024,
                                std::size_t ways = 2);

    /** @return the cached target for pc, if present (refreshes LRU). */
    std::optional<Addr> lookup(Addr pc);

    /** Insert/refresh the target for pc (LRU within the set). */
    void update(Addr pc, Addr target);

    std::size_t entries() const { return sets_.size() * ways_; }
    std::size_t ways() const { return ways_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lru = 0; ///< larger = more recently used
    };

    std::size_t setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    std::vector<std::vector<Entry>> sets_;
    std::size_t ways_;
    std::uint64_t tick_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_BRANCH_BTB_HH
