#include "branch/bimodal.hh"

#include "common/logging.hh"

namespace thermctl
{

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries, Counter2(1)), mask_(entries - 1)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("BimodalPredictor size must be a power of two, got ", entries);
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    // Drop the 2 alignment bits; fold upper bits in for spread.
    return ((pc >> 2) ^ (pc >> 15)) & mask_;
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table_[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    table_[index(pc)].train(taken);
}

} // namespace thermctl
