#include "common/hash.hh"

namespace thermctl
{

std::string
hashHex(std::uint64_t digest)
{
    static constexpr char kHex[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
        digest >>= 4;
    }
    return s;
}

} // namespace thermctl
