/**
 * @file
 * Stable content hashing for configuration fingerprints.
 *
 * HashStream is a 64-bit FNV-1a accumulator with typed feeders: every
 * value is reduced to a canonical little-endian byte sequence before
 * being folded in, so a digest depends only on the logical field values
 * — never on struct padding, platform endianness, or field addresses.
 * The sweep engine's content-addressed result cache (sim/sweep.hh) is
 * built on these digests; see DESIGN.md §9 for the key-derivation
 * contract.
 *
 * Floating-point values are hashed by bit pattern (after normalizing
 * -0.0 to 0.0), which is exactly the equality the cache needs: two
 * configurations hash alike iff a simulation cannot distinguish them.
 */

#ifndef THERMCTL_COMMON_HASH_HH
#define THERMCTL_COMMON_HASH_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace thermctl
{

/** 64-bit FNV-1a accumulator with canonical typed feeders. */
class HashStream
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;

    /** Fold raw bytes into the digest. */
    HashStream &
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state_ ^= p[i];
            state_ *= kPrime;
        }
        return *this;
    }

    /** Fold an unsigned integer, canonicalized to 8 LE bytes. */
    HashStream &
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(b, sizeof(b));
    }

    /** Fold a signed integer (two's-complement bit pattern). */
    HashStream &
    i64(std::int64_t v)
    {
        return u64(static_cast<std::uint64_t>(v));
    }

    /** Fold a bool as one byte. */
    HashStream &
    b(bool v)
    {
        return u64(v ? 1 : 0);
    }

    /**
     * Fold a double by bit pattern. -0.0 is normalized to 0.0 so the
     * two indistinguishable zeroes share a digest; NaNs keep their
     * payload (a NaN in a config is a bug the invariant layer catches).
     */
    HashStream &
    f64(double v)
    {
        if (v == 0.0)
            v = 0.0; // collapses -0.0
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    /** Fold a string: length prefix + bytes (unambiguous framing). */
    HashStream &
    str(std::string_view s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    /** Fold a fixed array of doubles. */
    template <std::size_t N>
    HashStream &
    f64s(const std::array<double, N> &a)
    {
        u64(N);
        for (double v : a)
            f64(v);
        return *this;
    }

    /** @return the current 64-bit digest. */
    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = kOffsetBasis;
};

/** @return one-shot FNV-1a digest of a string (e.g. a sweep-point key). */
inline std::uint64_t
hashString(std::string_view s)
{
    return HashStream{}.str(s).digest();
}

/** @return 16-char lower-case hex rendering of a digest (cache names). */
std::string hashHex(std::uint64_t digest);

} // namespace thermctl

#endif // THERMCTL_COMMON_HASH_HH
