#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace thermctl
{

namespace
{

std::atomic<bool> quiet_flag{false};

} // namespace

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

void
warnMessage(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "warn: " << msg << '\n';
}

void
informMessage(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "info: " << msg << '\n';
}

} // namespace thermctl
