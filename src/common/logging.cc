#include "common/logging.hh"

#include <atomic>
#include <iostream>

#include "common/mutex.hh"

namespace thermctl
{

namespace
{

std::atomic<bool> quiet_flag{false};

/**
 * Serializes warn()/inform() lines. Stream insertion on std::cerr is
 * thread-safe per the standard, but each message here is built from
 * several insertions ("warn: ", msg, '\n'), so concurrent callers --
 * sweep workers, serve connection threads -- could interleave
 * fragments mid-line without this lock.
 */
Mutex &
streamMutex()
{
    static Mutex mu;
    return mu;
}

} // namespace

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

void
warnMessage(const std::string &msg)
{
    if (!isQuiet()) {
        MutexLock lock(streamMutex());
        std::cerr << "warn: " << msg << '\n';
    }
}

void
informMessage(const std::string &msg)
{
    if (!isQuiet()) {
        MutexLock lock(streamMutex());
        std::cerr << "info: " << msg << '\n';
    }
}

} // namespace thermctl
