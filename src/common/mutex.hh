/**
 * @file
 * Annotated synchronization primitives: thermctl::Mutex, MutexLock, and
 * CondVar.
 *
 * Thin wrappers over std::mutex / std::condition_variable_any carrying
 * the Clang Thread Safety Analysis annotations from
 * common/thread_annotations.hh, so the compiler can prove guarded-field
 * access and lock contracts instead of trusting "// guarded by mutex_"
 * comments. Project rule (enforced by tools/thermctl_lint): all
 * thermctl code synchronizes through these types; naked std::mutex /
 * std::lock_guard / std::condition_variable are confined to this
 * header.
 *
 * MutexLock is a relockable scoped lock (the std::unique_lock shape the
 * scheduler's dispatch loop needs): it acquires on construction,
 * releases on destruction, and exposes annotated lock()/unlock() for
 * the drop-the-lock-around-work pattern.
 *
 * CondVar waits take the Mutex itself (not the scoped lock) so the wait
 * can carry a THERMCTL_REQUIRES contract the analysis understands;
 * predicate loops are written as explicit `while` statements at the
 * call site, which keeps every guarded-field read inside the annotated
 * critical section. The internal unlock/relock performed by the
 * standard wait lives in a system header, outside the analysis.
 */

#ifndef THERMCTL_COMMON_MUTEX_HH
#define THERMCTL_COMMON_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace thermctl
{

/** Exclusive capability; the annotated face of std::mutex. */
class THERMCTL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() THERMCTL_ACQUIRE() { m_.lock(); }
    void unlock() THERMCTL_RELEASE() { m_.unlock(); }

    bool
    try_lock() THERMCTL_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/**
 * Scoped lock over a Mutex: acquires in the constructor, releases in
 * the destructor, relockable in between.
 */
class THERMCTL_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) THERMCTL_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
        held_ = true;
    }

    ~MutexLock() THERMCTL_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Drop the lock early (e.g. around blocking work). */
    void
    unlock() THERMCTL_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    /** Re-acquire after unlock(). */
    void
    lock() THERMCTL_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex &mu_;
    bool held_ = false;
};

/**
 * Condition variable bound to thermctl::Mutex.
 *
 * Waits REQUIRE the mutex held; use an explicit predicate loop:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)
 *         cv_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mu`, sleep, and re-acquire before return. */
    void
    wait(Mutex &mu) THERMCTL_REQUIRES(mu)
    {
        cv_.wait(mu);
    }

    /**
     * wait(), bounded by `deadline`.
     * @return false when the deadline passed before a notification.
     */
    template <typename Clock, typename Duration>
    bool
    waitUntil(Mutex &mu,
              const std::chrono::time_point<Clock, Duration> &deadline)
        THERMCTL_REQUIRES(mu)
    {
        return cv_.wait_until(mu, deadline)
               == std::cv_status::no_timeout;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace thermctl

#endif // THERMCTL_COMMON_MUTEX_HH
