/**
 * @file
 * Fundamental scalar types shared by every thermctl module.
 */

#ifndef THERMCTL_COMMON_TYPES_HH
#define THERMCTL_COMMON_TYPES_HH

#include <cstdint>

#include "common/units.hh"

namespace thermctl
{

/** Simulated clock-cycle count. */
using Cycle = std::uint64_t;

/** Simulated (virtual) memory address. */
using Addr = std::uint64_t;

/** Architectural / physical register identifier. */
using RegId = std::uint16_t;

/** Sentinel register id meaning "no register". */
inline constexpr RegId kNoReg = 0xffff;

// Physical scalars are dimensional strong types (see common/units.hh):
// mixing two typed quantities must satisfy the paper's Table 1 duality
// algebra or the code does not compile. Raw double still converts both
// ways, so hot loops can unwrap.

/** Temperatures are handled in degrees Celsius throughout. */
using Celsius = units::Celsius;

/** Temperature difference in Kelvin. */
using Kelvin = units::Kelvin;

/** Power in Watts. */
using Watts = units::Watts;

/** Energy in Joules. */
using Joules = units::Joules;

/** Time in seconds. */
using Seconds = units::Seconds;

/** Thermal resistance in K/W. */
using KelvinPerWatt = units::KelvinPerWatt;

/** Thermal capacitance in J/K. */
using JoulePerKelvin = units::JoulePerKelvin;

/** Thermal conductance in W/K. */
using WattsPerKelvin = units::WattsPerKelvin;

} // namespace thermctl

#endif // THERMCTL_COMMON_TYPES_HH
