/**
 * @file
 * Fundamental scalar types shared by every thermctl module.
 */

#ifndef THERMCTL_COMMON_TYPES_HH
#define THERMCTL_COMMON_TYPES_HH

#include <cstdint>

namespace thermctl
{

/** Simulated clock-cycle count. */
using Cycle = std::uint64_t;

/** Simulated (virtual) memory address. */
using Addr = std::uint64_t;

/** Architectural / physical register identifier. */
using RegId = std::uint16_t;

/** Sentinel register id meaning "no register". */
inline constexpr RegId kNoReg = 0xffff;

/** Temperatures are handled in degrees Celsius throughout. */
using Celsius = double;

/** Power in Watts. */
using Watts = double;

/** Energy in Joules. */
using Joules = double;

/** Time in seconds. */
using Seconds = double;

} // namespace thermctl

#endif // THERMCTL_COMMON_TYPES_HH
