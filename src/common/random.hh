/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in thermctl (workload synthesis, sensor noise,
 * wrong-path instruction generation) flows through Rng so that a run is
 * fully reproducible from its seed — the moral equivalent of the paper's
 * use of SimpleScalar EIO traces "to ensure reproducible results for each
 * benchmark across multiple simulations".
 *
 * The generator is xoshiro256** seeded via SplitMix64; it is small, fast,
 * and has well-understood statistical quality.
 */

#ifndef THERMCTL_COMMON_RANDOM_HH
#define THERMCTL_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace thermctl
{

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** @return the next raw 64-bit variate. */
    std::uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [0, n) ; n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool chance(double p);

    /**
     * Geometric variate: number of failures before the first success,
     * success probability p in (0, 1]. Used for dependency-distance and
     * loop-trip-count sampling in the workload generator.
     */
    std::uint64_t geometric(double p);

    /** Standard normal variate (Box–Muller; caches the spare value). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Sample an index from a discrete distribution given by non-negative
     * weights. The weights need not be normalized; at least one must be
     * positive.
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Derive an independent child generator; children with distinct tags
     * produce uncorrelated streams. Used to give each benchmark profile
     * and each subsystem its own stream.
     */
    Rng fork(std::uint64_t tag) const;

  private:
    std::uint64_t s_[4];
    double spare_gaussian_ = 0.0;
    bool has_spare_ = false;
};

} // namespace thermctl

#endif // THERMCTL_COMMON_RANDOM_HH
