#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace thermctl
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back({std::move(row), false});
}

void
TextTable::addRule()
{
    rows_.push_back({{}, true});
}

std::size_t
TextTable::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!row.rule)
            ++n;
    return n;
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.cells.size());

    std::vector<std::size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            widths[c] = std::max(widths[c], cells[c].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        if (!row.rule)
            widen(row.cells);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cell;
            if (c + 1 < cols)
                os << "  ";
        }
        os << '\n';
    };

    std::size_t rule_len = 0;
    for (std::size_t c = 0; c < cols; ++c)
        rule_len += widths[c] + (c + 1 < cols ? 2 : 0);

    if (!header_.empty()) {
        emit(header_);
        os << std::string(rule_len, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.rule)
            os << std::string(rule_len, '-') << '\n';
        else
            emit(row.cells);
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << quote(cells[c]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        if (!row.rule)
            emit(row.cells);
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatSci(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
    return buf;
}

} // namespace thermctl
