/**
 * @file
 * Text-table and CSV rendering used by the bench binaries to print
 * paper-style tables with aligned columns.
 */

#ifndef THERMCTL_COMMON_TABLE_HH
#define THERMCTL_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace thermctl
{

/**
 * A simple column-aligned text table. Columns are sized to the widest
 * cell; numeric cells should be pre-formatted by the caller (see
 * formatDouble / formatPercent helpers).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (column count may differ from header; padded). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal-rule row. */
    void addRule();

    /** Number of data rows added (rules excluded). */
    std::size_t rowCount() const;

    /** Render with aligned columns to the given stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (rules skipped, cells quoted when needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };
    std::vector<Row> rows_;
};

/** Format a double with the given number of decimal places. */
std::string formatDouble(double v, int decimals = 2);

/** Format a fraction in [0,1] as a percentage string, e.g. "12.3%". */
std::string formatPercent(double fraction, int decimals = 1);

/** Format a double in scientific notation, e.g. "5.0e-06". */
std::string formatSci(double v, int decimals = 1);

} // namespace thermctl

#endif // THERMCTL_COMMON_TABLE_HH
