#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace thermctl
{

// ---------------------------------------------------------------- Accumulator

void
Accumulator::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::min() const
{
    return count_ ? min_ : 0.0;
}

double
Accumulator::max() const
{
    return count_ ? max_ : 0.0;
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

// -------------------------------------------------------------- BoxcarAverage

BoxcarAverage::BoxcarAverage(std::size_t window)
{
    if (window == 0)
        fatal("BoxcarAverage window must be positive");
    buf_.assign(window, 0.0);
}

void
BoxcarAverage::add(double x)
{
    if (filled_ == buf_.size()) {
        sum_ -= buf_[head_];
    } else {
        ++filled_;
    }
    buf_[head_] = x;
    head_ = (head_ + 1) % buf_.size();
    sum_ += x;
    if (++adds_since_resum_ >= (1u << 20)) {
        resum();
        adds_since_resum_ = 0;
    }
}

void
BoxcarAverage::resum()
{
    double s = 0.0;
    for (std::size_t i = 0; i < filled_; ++i)
        s += buf_[(head_ + buf_.size() - 1 - i) % buf_.size()];
    sum_ = s;
}

double
BoxcarAverage::average() const
{
    if (filled_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(filled_);
}

void
BoxcarAverage::reset()
{
    std::fill(buf_.begin(), buf_.end(), 0.0);
    head_ = 0;
    filled_ = 0;
    sum_ = 0.0;
    adds_since_resum_ = 0;
}

// ---------------------------------------------------------------- EwmaAverage

EwmaAverage::EwmaAverage(double alpha) : alpha_(alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("EwmaAverage alpha must be in (0, 1], got ", alpha);
}

void
EwmaAverage::add(double x)
{
    if (empty_) {
        value_ = x;
        empty_ = false;
    } else {
        value_ += alpha_ * (x - value_);
    }
}

void
EwmaAverage::reset()
{
    value_ = 0.0;
    empty_ = true;
}

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(hi > lo))
        fatal("Histogram range must satisfy hi > lo");
    if (bins == 0)
        fatal("Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    if (bin >= counts_.size())
        panic("Histogram::binCount: bin out of range");
    return counts_[bin];
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin)
        / static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t bin) const
{
    return binLow(bin + 1);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double running = static_cast<double>(underflow_);
    if (running >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = running + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - running) / static_cast<double>(counts_[i]);
            return binLow(i) + frac * (binHigh(i) - binLow(i));
        }
        running = next;
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << total_
       << " p50=" << quantile(0.5)
       << " p90=" << quantile(0.9)
       << " p99=" << quantile(0.99)
       << " under=" << underflow_
       << " over=" << overflow_;
    return os.str();
}

} // namespace thermctl
