/**
 * @file
 * Physical constants and unit helpers.
 *
 * Thermal quantities use the electrical duality of the paper's Table 1:
 * heat flow (W) <-> current, temperature difference (K) <-> voltage,
 * thermal resistance (K/W) <-> resistance, thermal capacitance (J/K) <->
 * capacitance, thermal RC constant (s) <-> electrical RC constant.
 */

#ifndef THERMCTL_COMMON_UNITS_HH
#define THERMCTL_COMMON_UNITS_HH

namespace thermctl
{

namespace units
{

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

/** Square millimetres to square metres. */
inline constexpr double
mm2ToM2(double mm2)
{
    return mm2 * 1e-6;
}

/** Seconds to microseconds. */
inline constexpr double
sToUs(double s)
{
    return s * 1e6;
}

} // namespace units

} // namespace thermctl

#endif // THERMCTL_COMMON_UNITS_HH
