/**
 * @file
 * Physical constants, unit helpers, and dimensional strong types.
 *
 * Thermal quantities use the electrical duality of the paper's Table 1:
 * heat flow (W) <-> current, temperature difference (K) <-> voltage,
 * thermal resistance (K/W) <-> resistance, thermal capacitance (J/K) <->
 * capacitance, thermal RC constant (s) <-> electrical RC constant.
 *
 * Quantity encodes that algebra in the type system: each quantity carries
 * integer exponents over the (Kelvin, Watt, Second) basis, and the
 * arithmetic operators derive or check dimensions at compile time. The
 * basis is closed under every Table 1 identity:
 *
 *      Watts * KelvinPerWatt        = Kelvin     (dT = P * R)
 *      KelvinPerWatt * JoulePerKelvin = Seconds  (tau = R * C)
 *      Watts * Seconds              = Joules     (E = P * t)
 *      Joules / JoulePerKelvin      = Kelvin     (dT = E / C)
 *
 * Design trade-off: Quantity converts implicitly to and from raw double.
 * Public APIs carry the strong types, so passing a KelvinPerWatt where a
 * JoulePerKelvin is expected (the classic swapped-R/C bug) is a compile
 * error, and any expression mixing two typed quantities must satisfy the
 * duality algebra. Hot loops and generic math may still unwrap to raw
 * double — that is deliberate (see DESIGN.md, "Correctness tooling").
 */

#ifndef THERMCTL_COMMON_UNITS_HH
#define THERMCTL_COMMON_UNITS_HH

#include <type_traits>

namespace thermctl
{

namespace units
{

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

/**
 * A double tagged with dimension exponents over the (Kelvin, Watt,
 * Second) basis of the paper's Table 1 duality algebra.
 *
 * @tparam KelvinExp  temperature(-difference) exponent
 * @tparam WattExp    heat-flow exponent
 * @tparam SecondExp  time exponent
 */
template <int KelvinExp, int WattExp, int SecondExp>
class Quantity
{
  public:
    constexpr Quantity() = default;

    /** Implicit wrap of a raw double (documented escape hatch). */
    constexpr Quantity(double v) : v_(v) {}

    /** @return the underlying raw value. */
    constexpr double value() const { return v_; }

    /** Implicit unwrap to raw double (documented escape hatch). */
    constexpr operator double() const { return v_; }

    constexpr Quantity operator-() const { return Quantity(-v_); }

    constexpr Quantity &
    operator+=(Quantity o)
    {
        v_ += o.v_;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity o)
    {
        v_ -= o.v_;
        return *this;
    }

    /** Scale by a dimensionless factor. */
    constexpr Quantity &
    operator*=(double s)
    {
        v_ *= s;
        return *this;
    }

    /** Divide by a dimensionless factor. */
    constexpr Quantity &
    operator/=(double s)
    {
        v_ /= s;
        return *this;
    }

  private:
    double v_ = 0.0;
};

/** Product of two quantities: dimension exponents add. */
template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr Quantity<K1 + K2, W1 + W2, S1 + S2>
operator*(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    return {a.value() * b.value()};
}

/** Quotient of two quantities: dimension exponents subtract. */
template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr Quantity<K1 - K2, W1 - W2, S1 - S2>
operator/(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    return {a.value() / b.value()};
}

// Sums, differences and comparisons require identical dimensions. The
// static_assert (rather than SFINAE) is deliberate: removing the overload
// would let both operands decay to double and compile silently.
#define THERMCTL_UNITS_REQUIRE_SAME_DIM()                                  \
    static_assert(K1 == K2 && W1 == W2 && S1 == S2,                        \
                  "dimension mismatch: Table 1 duality algebra violated")

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr Quantity<K1, W1, S1>
operator+(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return {a.value() + b.value()};
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr Quantity<K1, W1, S1>
operator-(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return {a.value() - b.value()};
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator<(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() < b.value();
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator>(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() > b.value();
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator<=(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() <= b.value();
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator>=(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() >= b.value();
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator==(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() == b.value();
}

template <int K1, int W1, int S1, int K2, int W2, int S2>
constexpr bool
operator!=(Quantity<K1, W1, S1> a, Quantity<K2, W2, S2> b)
{
    THERMCTL_UNITS_REQUIRE_SAME_DIM();
    return a.value() != b.value();
}

#undef THERMCTL_UNITS_REQUIRE_SAME_DIM

/** Dimensionless ratio (e.g. dt / RC, duty cycle). */
using Ratio = Quantity<0, 0, 0>;

/** Temperature difference in Kelvin (Table 1: voltage). */
using Kelvin = Quantity<1, 0, 0>;

/**
 * Temperature in degrees Celsius. Dimensionally identical to Kelvin —
 * the model only ever differences or offsets temperatures, so the scale
 * shift never enters the algebra.
 */
using Celsius = Quantity<1, 0, 0>;

/** Heat flow / power in Watts (Table 1: current). */
using Watts = Quantity<0, 1, 0>;

/** Time in seconds. */
using Seconds = Quantity<0, 0, 1>;

/** Energy in Joules (= Watts * Seconds). */
using Joules = Quantity<0, 1, 1>;

/** Thermal resistance in K/W (Table 1: resistance). */
using KelvinPerWatt = Quantity<1, -1, 0>;

/** Thermal capacitance in J/K (Table 1: capacitance). */
using JoulePerKelvin = Quantity<-1, 1, 1>;

/** Thermal conductance in W/K (inverse resistance). */
using WattsPerKelvin = Quantity<-1, 1, 0>;

// The paper's Table 1 duality algebra, enforced at compile time.
static_assert(std::is_same_v<decltype(Watts{} * KelvinPerWatt{}), Kelvin>,
              "dT = P * R");
static_assert(
    std::is_same_v<decltype(KelvinPerWatt{} * JoulePerKelvin{}), Seconds>,
    "tau = R * C");
static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>,
              "E = P * t");
static_assert(std::is_same_v<decltype(Joules{} / JoulePerKelvin{}), Kelvin>,
              "dT = E / C");
static_assert(std::is_same_v<decltype(Kelvin{} / KelvinPerWatt{}), Watts>,
              "P = dT / R");
static_assert(std::is_same_v<decltype(Seconds{} / Seconds{}), Ratio>,
              "dt / RC is dimensionless");
static_assert(
    std::is_same_v<decltype(Ratio{} / KelvinPerWatt{}), WattsPerKelvin>,
    "G = 1 / R");

/** Square millimetres to square metres. */
inline constexpr double
mm2ToM2(double mm2)
{
    return mm2 * 1e-6;
}

/** Seconds to microseconds. */
inline constexpr double
sToUs(Seconds s)
{
    return s.value() * 1e6;
}

} // namespace units

} // namespace thermctl

#endif // THERMCTL_COMMON_UNITS_HH
