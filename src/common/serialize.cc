#include "common/serialize.hh"

#include <cstring>

namespace thermctl
{

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

bool
ByteReader::take(void *dst, std::size_t n)
{
    if (!ok_ || buf_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    std::memcpy(dst, buf_.data() + pos_, n);
    pos_ += n;
    return true;
}

std::uint8_t
ByteReader::u8()
{
    unsigned char b = 0;
    if (!take(&b, 1))
        return 0;
    return b;
}

std::uint32_t
ByteReader::u32()
{
    unsigned char b[4] = {};
    if (!take(b, sizeof(b)))
        return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint64_t
ByteReader::u64()
{
    unsigned char b[8] = {};
    if (!take(b, sizeof(b)))
        return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return ok_ ? v : 0.0;
}

std::string
ByteReader::str()
{
    const std::uint64_t n = u64();
    if (!ok_ || buf_.size() - pos_ < n) {
        ok_ = false;
        return {};
    }
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
}

} // namespace thermctl
