#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** SplitMix64 step: seeds the xoshiro state from a single 64-bit value. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below called with n == 0");
    // Debiased modulo via rejection on the top range.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range called with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::geometric requires p in (0, 1], got ", p);
    if (p == 1.0)
        return 0;
    // Inverse-CDF sampling; u in (0,1) to keep the log finite.
    double u = 1.0 - uniform();
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

double
Rng::gaussian()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_gaussian_;
    }
    double u1 = 1.0 - uniform(); // (0, 1]
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("Rng::weighted: negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        panic("Rng::weighted: all weights zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork(std::uint64_t tag) const
{
    // Mix the current state with the tag through SplitMix64 so children
    // with different tags diverge immediately.
    std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ULL);
    std::uint64_t seed = splitmix64(x);
    return Rng(seed ^ tag);
}

} // namespace thermctl
