/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These macros attach locking contracts to types, fields, and functions
 * so `clang -Wthread-safety` can prove, at compile time, that every
 * access to a guarded field happens with the right mutex held and that
 * every REQUIRES contract is satisfied at each call site. Under any
 * other compiler (or without the analysis) they expand to nothing, so
 * annotated code stays portable.
 *
 * Usage contract for thermctl code (enforced by tools/thermctl_lint):
 *  - never use std::mutex directly; use thermctl::Mutex / MutexLock /
 *    CondVar from common/mutex.hh, which carry these annotations;
 *  - annotate every mutex-protected field THERMCTL_GUARDED_BY(mutex_);
 *  - annotate private methods that expect the caller to hold the lock
 *    THERMCTL_REQUIRES(mutex_), and public locking entry points
 *    THERMCTL_EXCLUDES(mutex_) where helpful.
 *
 * Build with -DTHERMCTL_THREAD_SAFETY=ON (Clang only) to compile the
 * whole tree under -Werror=thread-safety; see scripts/check.sh stage
 * "thread-safety".
 *
 * The macro set mirrors the naming of the Clang documentation's
 * mutex.h reference header (capability/acquire/release vocabulary).
 */

#ifndef THERMCTL_COMMON_THREAD_ANNOTATIONS_HH
#define THERMCTL_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define THERMCTL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define THERMCTL_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define THERMCTL_CAPABILITY(x) THERMCTL_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime acquires/releases a capability. */
#define THERMCTL_SCOPED_CAPABILITY \
    THERMCTL_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read or written with `x` held. */
#define THERMCTL_GUARDED_BY(x) THERMCTL_THREAD_ANNOTATION(guarded_by(x))

/** Pointed-to data may only be accessed with `x` held. */
#define THERMCTL_PT_GUARDED_BY(x) \
    THERMCTL_THREAD_ANNOTATION(pt_guarded_by(x))

/** Callers must hold every listed capability (not acquired here). */
#define THERMCTL_REQUIRES(...) \
    THERMCTL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Callers must hold the listed capabilities shared (read) mode. */
#define THERMCTL_REQUIRES_SHARED(...) \
    THERMCTL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define THERMCTL_ACQUIRE(...) \
    THERMCTL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases a capability the caller held. */
#define THERMCTL_RELEASE(...) \
    THERMCTL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `ret`. */
#define THERMCTL_TRY_ACQUIRE(ret, ...) \
    THERMCTL_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Callers must NOT hold the listed capabilities (deadlock guard). */
#define THERMCTL_EXCLUDES(...) \
    THERMCTL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares `x` as the capability returned by this accessor. */
#define THERMCTL_RETURN_CAPABILITY(x) \
    THERMCTL_THREAD_ANNOTATION(lock_returned(x))

/** Lock-ordering edge: this capability must be acquired after `...`. */
#define THERMCTL_ACQUIRED_AFTER(...) \
    THERMCTL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Lock-ordering edge: this capability must be acquired before `...`. */
#define THERMCTL_ACQUIRED_BEFORE(...) \
    THERMCTL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Escape hatch: suppress the analysis inside one function body. */
#define THERMCTL_NO_THREAD_SAFETY_ANALYSIS \
    THERMCTL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // THERMCTL_COMMON_THREAD_ANNOTATIONS_HH
