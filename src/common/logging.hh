/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * Severity model follows the gem5 convention:
 *  - panic(): an internal invariant was violated (a thermctl bug) — aborts.
 *  - fatal(): the simulation cannot continue due to user input
 *    (bad configuration, impossible parameters) — exits with an error code.
 *  - warn()/inform(): advisory messages; never stop the run.
 */

#ifndef THERMCTL_COMMON_LOGGING_HH
#define THERMCTL_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace thermctl
{

/** Thrown by fatal(): unrecoverable user-facing configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): internal invariant violation (a thermctl bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace log_detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace log_detail

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and abort the computation by throwing FatalError.
 *
 * Throwing (rather than exiting) keeps the library embeddable and lets the
 * test suite assert on misconfiguration handling.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(log_detail::concat("fatal: ",
                                        std::forward<Args>(args)...));
}

/** Report an internal invariant violation (a thermctl bug). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(log_detail::concat("panic: ",
                                        std::forward<Args>(args)...));
}

/** Print an advisory warning to stderr (suppressed in quiet mode). */
void warnMessage(const std::string &msg);

/** Print a status message to stderr (suppressed in quiet mode). */
void informMessage(const std::string &msg);

/** Globally silence warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

/** Formatted wrapper over warnMessage(). */
template <typename... Args>
void
warn(Args &&...args)
{
    warnMessage(log_detail::concat(std::forward<Args>(args)...));
}

/** Formatted wrapper over informMessage(). */
template <typename... Args>
void
inform(Args &&...args)
{
    informMessage(log_detail::concat(std::forward<Args>(args)...));
}

} // namespace thermctl

#endif // THERMCTL_COMMON_LOGGING_HH
