/**
 * @file
 * Minimal binary serialization for cached results.
 *
 * ByteWriter/ByteReader implement a tiny canonical format — fixed-width
 * little-endian integers, bit-pattern doubles, length-prefixed strings —
 * used by the sweep engine's on-disk result cache (sim/sweep.hh). The
 * format is deliberately exact: a RunResult round-trips bit-identically,
 * which is what the sweep determinism tests assert.
 *
 * Readers are defensive: any truncated or malformed buffer flips the
 * reader into a failed state (checked via ok()) instead of throwing, so
 * a corrupt cache file degrades to a cache miss, never a crash.
 */

#ifndef THERMCTL_COMMON_SERIALIZE_HH
#define THERMCTL_COMMON_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace thermctl
{

/** Appends canonical little-endian encodings to a byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<char>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<char>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Doubles are stored by bit pattern: exact round-trip. */
    void f64(double v);

    /** Length-prefixed string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        out_.append(s.data(), s.size());
    }

    [[nodiscard]] const std::string &buffer() const { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked reader over a ByteWriter buffer. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view buf) : buf_(buf) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int64_t i64()
    {
        return static_cast<std::int64_t>(u64());
    }
    [[nodiscard]] double f64();
    [[nodiscard]] std::string str();

    /** @return false once any read ran past the end of the buffer. */
    [[nodiscard]] bool ok() const { return ok_; }

    /** @return true when the whole buffer was consumed successfully. */
    [[nodiscard]] bool atEnd() const { return ok_ && pos_ == buf_.size(); }

    /**
     * @return bytes left to read (0 once failed).
     *
     * Decoders use this to sanity-bound untrusted element counts before
     * reserving: a container whose elements occupy at least k bytes each
     * cannot legitimately have more than remaining()/k elements, so a
     * hostile count prefix cannot force an oversized allocation.
     */
    [[nodiscard]] std::size_t remaining() const
    {
        return ok_ ? buf_.size() - pos_ : 0;
    }

  private:
    bool take(void *dst, std::size_t n);

    std::string_view buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace thermctl

#endif // THERMCTL_COMMON_SERIALIZE_HH
