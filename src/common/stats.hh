/**
 * @file
 * Streaming statistics primitives used across the simulator: scalar
 * accumulators, fixed-window boxcar averages (the paper's power proxy),
 * exponentially weighted averages, and simple histograms.
 */

#ifndef THERMCTL_COMMON_STATS_HH
#define THERMCTL_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace thermctl
{

/**
 * Streaming scalar accumulator: count, mean, variance (Welford), min, max.
 */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const;
    double max() const;

    /** Population variance (0 for fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-length sliding-window ("boxcar") average.
 *
 * This is exactly the temperature proxy used by prior DTM work that the
 * paper's Section 6 evaluates: the average of the last W per-cycle power
 * samples. Until the window has filled, the average is over the samples
 * seen so far.
 */
class BoxcarAverage
{
  public:
    /** @param window number of most recent samples averaged; must be > 0. */
    explicit BoxcarAverage(std::size_t window);

    /** Push the next sample, evicting the oldest once the window is full. */
    void add(double x);

    /** @return current windowed average (0 when empty). */
    double average() const;

    /** @return number of samples currently in the window. */
    std::size_t size() const { return filled_; }

    /** @return configured window length. */
    std::size_t window() const { return buf_.size(); }

    /** @return true once the window holds `window()` samples. */
    bool full() const { return filled_ == buf_.size(); }

    /** Drop all samples. */
    void reset();

  private:
    std::vector<double> buf_;
    std::size_t head_ = 0;
    std::size_t filled_ = 0;
    double sum_ = 0.0;
    /** Periodically recomputed exact sum to bound float drift. */
    std::uint64_t adds_since_resum_ = 0;
    void resum();
};

/** Exponentially weighted moving average: y += alpha * (x - y). */
class EwmaAverage
{
  public:
    explicit EwmaAverage(double alpha);

    void add(double x);
    double average() const { return value_; }
    bool empty() const { return empty_; }
    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

/** Uniform-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::uint64_t binCount(std::size_t bin) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t bins() const { return counts_.size(); }
    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;

    /** Linear-interpolated quantile estimate, q in [0, 1]. */
    double quantile(double q) const;

    /** Render a compact one-line textual summary. */
    std::string summary() const;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_COMMON_STATS_HH
